"""Section 6.3: comparison with existing approaches (quantified claims).

Two of the paper's quantitative comparisons are reproducible here:

* versus formal verification frameworks — IronFleet needs a 39,253-LOC
  proof for a 5,114-LOC implementation (ratio ≈ 7.7×); Mocket needs
  ~1,187 LOC of spec+mapping for ZooKeeper's 15,895-LOC ZAB code
  (ratio ≈ 0.075×).  We measure our spec+mapping LOC against our
  implementation LOC and assert the same two-orders-of-magnitude gap
  to the proof-based ratio.
* versus implementation-level model checkers — SAMC's ZKVerifier.java
  needs 59 LOC for two ZooKeeper properties; properties in the spec are
  invariants of a few lines each.  We count our three ZAB invariants'
  source lines.
"""

import inspect
from pathlib import Path

from conftest import print_table

import repro.specs.zab as zab_mod
import repro.systems.minizk as minizk_pkg
from repro.specs.zab import build_zab_spec
from repro.systems.minizk import MiniZkConfig, build_minizk_mapping


def _invariant_loc(spec) -> int:
    return sum(
        len(inspect.getsource(fn).splitlines()) for fn in spec.invariants.values()
    )


def test_bench_comparison(benchmark):
    spec = benchmark.pedantic(build_zab_spec, rounds=1, iterations=1)
    mapping = build_minizk_mapping(spec, MiniZkConfig())

    impl_loc = sum(len(p.read_text().splitlines())
                   for p in Path(minizk_pkg.__file__).parent.glob("*.py"))
    spec_loc = len(inspect.getsource(zab_mod).splitlines())
    effort_loc = spec_loc + mapping.mapping_loc()

    ironfleet_ratio = 39_253 / 5_114
    our_ratio = effort_loc / impl_loc
    inv_loc = _invariant_loc(spec)

    rows = [
        ("IronFleet proof/impl ratio", f"{ironfleet_ratio:.2f}x", "-"),
        ("Mocket spec+mapping/impl (paper, ZK)", f"{1187 / 15895:.3f}x", "-"),
        ("Mocket spec+mapping/impl (measured)", "-", f"{our_ratio:.3f}x"),
        ("SAMC assertions for 2 ZK properties", "59 LOC", "-"),
        ("Spec invariants (3 properties, measured)", "2 LOC (TLA+)",
         f"{inv_loc} LOC"),
    ]
    print_table("Section 6.3 — effort comparison",
                ("quantity", "paper", "measured"), rows)

    # Headline claims.  Our measured ratio is inflated relative to the
    # paper's because the denominator (our reimplementation) is ~20x
    # smaller than real ZooKeeper while the spec covers the same
    # protocol; even so, spec+mapping effort stays well below
    # proof-style effort, and property specification stays within tens
    # of lines (SAMC's 59-LOC verifier vs a couple of invariants).
    assert our_ratio < ironfleet_ratio / 5
    assert len(spec.invariants) == 3
    assert inv_loc <= 59
