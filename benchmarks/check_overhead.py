"""Benchmark guard: observability overhead on the Figure-2 example check.

The obs layer promises a no-op fast path: with tracing disabled
(the default), the instrumented checker must stay within a few percent
of the uninstrumented seed checker.  This script measures three
variants of the Figure-2 example-graph check (13 states, 18 edges):

* **baseline** — a faithful replica of the seed BFS loop with no
  instrumentation at all (the pre-obs checker),
* **disabled** — the instrumented ``ModelChecker`` with tracing off,
* **enabled** — the instrumented checker with tracing on (ring buffer
  only, no sink).

plus a per-call microbenchmark of the disabled ``emit``/``span`` fast
path.  It exits non-zero when the disabled-tracing overhead over the
baseline exceeds the threshold (default 5%).

Samples are interleaved (baseline/disabled/enabled within each round)
and the per-variant minimum is used, so slow-machine drift affects all
variants alike.

Usage::

    PYTHONPATH=src python benchmarks/check_overhead.py [--threshold 5]
"""

from __future__ import annotations

import argparse
import gc
import sys
import time
from collections import deque
from typing import Dict, Optional

from repro import obs
from repro.specs import build_example_spec
from repro.tlaplus import check
from repro.tlaplus.graph import StateGraph


def _seed_check(spec) -> StateGraph:
    """The seed checker's BFS loop, byte-for-byte logic, zero obs calls.

    Kept in sync with ``ModelChecker._run`` minus instrumentation; it is
    the measurement baseline the guard compares against.
    """
    graph = StateGraph(spec.name)
    parents: Dict[int, Optional[tuple]] = {}
    depth: Dict[int, int] = {}
    frontier = deque()
    for state in spec.initial_states():
        node_id = graph.add_state(state, initial=True)
        if node_id not in parents:
            parents[node_id] = None
            depth[node_id] = 0
            frontier.append(node_id)
            spec.check_invariants(state)
    while frontier:
        node_id = frontier.popleft()
        state = graph.state_of(node_id)
        for label, successor in spec.enabled(state):
            succ_id = graph.id_of(successor)
            is_new = succ_id is None
            if is_new:
                succ_id = graph.add_state(successor)
            graph.add_edge(node_id, succ_id, label)
            if is_new:
                parents[succ_id] = (node_id, label)
                depth[succ_id] = depth[node_id] + 1
                frontier.append(succ_id)
                spec.check_invariants(successor)
    return graph


def _time_once(fn, iterations: int) -> float:
    start = time.perf_counter()
    for _ in range(iterations):
        fn()
    return (time.perf_counter() - start) / iterations


def measure(iterations: int = 40, samples: int = 9) -> Dict[str, float]:
    """Per-variant best-of-``samples`` mean time over ``iterations`` runs."""

    def baseline() -> None:
        _seed_check(build_example_spec())

    def instrumented() -> None:
        check(build_example_spec())

    results = {"baseline": float("inf"), "disabled": float("inf"),
               "enabled": float("inf")}
    obs.reset()
    obs.METRICS.reset()
    baseline()                               # warm allocator/caches for both
    instrumented()
    # a GC collection landing inside one variant's window would dwarf
    # the few-microsecond spread being measured
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(samples):
            obs.TRACER.disable()
            results["baseline"] = min(results["baseline"],
                                      _time_once(baseline, iterations))
            results["disabled"] = min(results["disabled"],
                                      _time_once(instrumented, iterations))
            obs.configure(enabled=True)      # ring buffer only, no sink
            results["enabled"] = min(results["enabled"],
                                     _time_once(instrumented, iterations))
            gc.collect()
    finally:
        if gc_was_enabled:
            gc.enable()
    obs.reset()
    obs.METRICS.reset()

    # per-call cost of the disabled fast path (must be well under 1 µs)
    calls = 200_000
    start = time.perf_counter()
    for _ in range(calls):
        obs.TRACER.emit("guard.noop", x=1)
    results["disabled_emit_ns"] = (time.perf_counter() - start) / calls * 1e9
    start = time.perf_counter()
    for _ in range(calls):
        with obs.TRACER.span("guard.noop"):
            pass
    results["disabled_span_ns"] = (time.perf_counter() - start) / calls * 1e9

    results["disabled_overhead_pct"] = (
        100.0 * (results["disabled"] - results["baseline"]) / results["baseline"]
    )
    results["enabled_overhead_pct"] = (
        100.0 * (results["enabled"] - results["baseline"]) / results["baseline"]
    )
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--threshold", type=float, default=5.0,
                        help="max disabled-tracing overhead in percent")
    parser.add_argument("--iterations", type=int, default=40)
    parser.add_argument("--samples", type=int, default=9)
    args = parser.parse_args(argv)

    results = measure(iterations=args.iterations, samples=args.samples)
    print(f"baseline (seed replica):  {results['baseline'] * 1e3:8.3f} ms/check")
    print(f"tracing disabled:         {results['disabled'] * 1e3:8.3f} ms/check "
          f"({results['disabled_overhead_pct']:+.2f}%)")
    print(f"tracing enabled (ring):   {results['enabled'] * 1e3:8.3f} ms/check "
          f"({results['enabled_overhead_pct']:+.2f}%)")
    print(f"disabled emit():          {results['disabled_emit_ns']:8.1f} ns/call")
    print(f"disabled span():          {results['disabled_span_ns']:8.1f} ns/call")

    if results["disabled_overhead_pct"] > args.threshold:
        print(f"FAIL: disabled-tracing overhead "
              f"{results['disabled_overhead_pct']:.2f}% exceeds "
              f"{args.threshold:.1f}%")
        return 1
    print(f"OK: disabled-tracing overhead within {args.threshold:.1f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
