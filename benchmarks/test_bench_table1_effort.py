"""Table 1: development effort on real-world systems.

Measures, for each (spec, system) pair:

* Impl. LOC — lines of the system-under-test package,
* Spec LOC — lines of the specification module in the DSL,
* # Var. / # Act. — spec variables and actions,
* Mapping LOC — instrumentation effort: annotation/hook sites in the
  system source (``traced_field``/``@mocket_*``/``action_span``/
  ``get_msg``) plus the mapping-table entries.

Absolute numbers differ from the paper (Python DSL vs TLA+ text; our
systems are reimplementations), but the shape holds: the mapping costs
two orders of magnitude less than the implementation, and
message-related actions dominate the mapping effort.
"""

import inspect
import re
from pathlib import Path

from conftest import print_table

import repro.specs.raft as raft_mod
import repro.specs.zab as zab_mod
import repro.systems.minizk as minizk_pkg
import repro.systems.pyxraft as pyxraft_pkg
import repro.systems.raftkv as raftkv_pkg
from repro.specs.raft import build_raftkv_spec, build_xraft_spec
from repro.specs.zab import build_zab_spec
from repro.systems.minizk import MiniZkConfig, build_minizk_mapping
from repro.systems.pyxraft import XraftConfig, build_xraft_mapping
from repro.systems.raftkv import RaftKvConfig, build_raftkv_mapping

_HOOK_RE = re.compile(
    r"traced_field\(|@mocket_action|@mocket_receive|action_span\(|get_msg\(|record_var\("
)


def _loc_of_module(module) -> int:
    return len(inspect.getsource(module).splitlines())


def _package_loc(package) -> int:
    root = Path(package.__file__).parent
    return sum(len(p.read_text().splitlines()) for p in root.glob("*.py"))


def _hook_sites(package) -> int:
    root = Path(package.__file__).parent
    return sum(len(_HOOK_RE.findall(p.read_text())) for p in root.glob("*.py"))


def test_bench_table1(benchmark):
    def build_all():
        return [
            ("Xraft", pyxraft_pkg, build_xraft_spec(name="xraft"),
             lambda s: build_xraft_mapping(s, XraftConfig()), raft_mod,
             (16530, 841, 15, 17, 151)),
            ("Raft-java", raftkv_pkg, build_raftkv_spec(name="raftkv"),
             lambda s: build_raftkv_mapping(s, RaftKvConfig()), raft_mod,
             (15017, 809, 15, 15, 152)),
            ("ZooKeeper", minizk_pkg, build_zab_spec(),
             lambda s: build_minizk_mapping(s, MiniZkConfig()), zab_mod,
             (15895, 1053, 25, 20, 134)),
        ]

    systems = benchmark.pedantic(build_all, rounds=1, iterations=1)

    rows = []
    for name, package, spec, build_mapping, spec_module, paper in systems:
        mapping = build_mapping(spec)
        impl_loc = _package_loc(package)
        spec_loc = _loc_of_module(spec_module)
        mapping_loc = _hook_sites(package) + mapping.mapping_loc()
        n_vars, n_acts = len(spec.variables), len(spec.actions)
        rows.append((
            name,
            f"{paper[0]} / {impl_loc}",
            f"{paper[1]} / {spec_loc}",
            f"{paper[2]} / {n_vars}",
            f"{paper[3]} / {n_acts}",
            f"{paper[4]} / {mapping_loc}",
        ))
        # shape assertions: mapping effort is tiny relative to the system
        assert mapping_loc < impl_loc / 5
        assert n_vars >= 10 and n_acts >= 10

    print_table(
        "Table 1 — development effort (paper / measured)",
        ("System", "Impl. LOC", "Spec LOC", "# Var.", "# Act.", "Mapping LOC"),
        rows,
    )
