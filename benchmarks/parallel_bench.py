"""Benchmark: parallel engine speedup over the serial paths.

Measures two workloads and writes a ``BENCH_parallel.json`` record:

* **check** — exhaustive exploration of the scaled-down raft model
  (the Table-1 ``raftkv-model``): serial ``ModelChecker`` vs the
  sharded explorer with N workers.  This workload is CPU-bound, so its
  speedup is physically capped by the machine's core count — the
  record stores ``cpu_cores`` so a 1-core container's 1.0x is read as
  what it is, not as an engine regression.  Correctness is asserted
  unconditionally: the parallel graph must be canonically identical to
  the serial one.

* **suite** — controlled testing of the pyxraft election suite:
  serial ``run_suite`` vs the parallel case executor.  Test cases are
  wait-bound (scheduler timeouts, quiesce delays), so this speedup
  exceeds 1x even on a single core; it is the speedup a ``mocket test
  --workers N`` user actually sees.

The script exits non-zero only on a *correctness* failure (parallel
results differing from serial); speedups are recorded, and judged
against the 2x target only when the machine has the cores to make the
target meaningful.

Usage::

    PYTHONPATH=src python benchmarks/parallel_bench.py [--workers 4]
        [--out BENCH_parallel.json] [--repeats 3]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.core import ControlledTester, RunnerConfig, generate_test_cases
from repro.core.testgen import reached_by
from repro.engine import ShardedExplorer, canonical_signature, run_suite_parallel
from repro.specs.raft import RaftSpecOptions, build_raft_spec
from repro.systems.pyxraft import (
    XraftConfig,
    build_xraft_mapping,
    make_xraft_cluster,
)
from repro.tlaplus import check
from repro.tlaplus.checker import ModelChecker

# the Table-1 raftkv-model (329 states): big enough to shard, small
# enough to repeat
RAFT_OPTS = dict(
    servers=("n1", "n2", "n3"), max_term=1, max_client_requests=0,
    enable_restart=True, max_restarts=1,
    enable_drop=False, enable_duplicate=False,
    candidates=("n1",), name="raftkv-model",
)


def _best_of(repeats, fn):
    best = None
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def bench_check(workers: int, repeats: int) -> dict:
    spec = build_raft_spec(RaftSpecOptions(**RAFT_OPTS))
    serial_seconds, serial = _best_of(repeats, lambda: ModelChecker(spec).run())
    parallel_seconds, parallel = _best_of(
        repeats, lambda: ShardedExplorer(spec, workers=workers).run())
    return {
        "model": spec.name,
        "states": serial.states_explored,
        "edges": serial.edges_explored,
        "serial_seconds": round(serial_seconds, 4),
        "parallel_seconds": round(parallel_seconds, 4),
        "speedup": round(serial_seconds / parallel_seconds, 3),
        "graphs_canonically_identical":
            canonical_signature(serial.graph) ==
            canonical_signature(parallel.graph),
    }


def bench_suite(workers: int, repeats: int) -> dict:
    spec = build_raft_spec(RaftSpecOptions(
        servers=("n1", "n2", "n3"), max_term=1, max_client_requests=0,
        enable_restart=False, enable_drop=False, enable_duplicate=False,
        candidates=("n1",), name="election-bench",
    ))
    graph = check(spec).graph
    suite = generate_test_cases(graph, por=True,
                                end_states=reached_by("BecomeLeader"))
    config = XraftConfig()
    tester = ControlledTester(
        build_xraft_mapping(spec, config), graph,
        lambda: make_xraft_cluster(("n1", "n2", "n3"), config),
        RunnerConfig(match_timeout=1.0, done_timeout=1.0, quiesce_delay=0.02))
    serial_seconds, serial = _best_of(
        repeats, lambda: tester.run_suite(suite))
    parallel_seconds, parallel = _best_of(
        repeats, lambda: run_suite_parallel(tester, suite, workers=workers))
    return {
        "target": "pyxraft",
        "cases": len(serial.results),
        "serial_seconds": round(serial_seconds, 4),
        "parallel_seconds": round(parallel_seconds, 4),
        "speedup": round(serial_seconds / parallel_seconds, 3),
        "results_identical": (
            [(r.case.case_id, r.passed) for r in serial.results] ==
            [(r.case.case_id, r.passed) for r in parallel.results]),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--out",
        default=os.path.join(os.path.dirname(__file__), "..",
                             "BENCH_parallel.json"))
    args = parser.parse_args(argv)

    cores = os.cpu_count() or 1
    record = {
        "bench": "parallel_engine",
        "workers": args.workers,
        "cpu_cores": cores,
        "check": bench_check(args.workers, args.repeats),
        "suite": bench_suite(args.workers, args.repeats),
    }
    # the 2x target needs parallel hardware for the CPU-bound half;
    # the wait-bound suite half must deliver regardless
    record["speedup_target"] = 2.0
    record["check_target_applicable"] = cores >= 2
    record["notes"] = (
        f"check is CPU-bound: speedup is capped at ~{cores}x on this "
        f"machine; suite is wait-bound and parallelizes on any core count")

    out_path = os.path.abspath(args.out)
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")

    print(f"cpu cores: {cores}, workers: {args.workers}")
    check_rec, suite_rec = record["check"], record["suite"]
    print(f"check  ({check_rec['model']}, {check_rec['states']} states): "
          f"{check_rec['serial_seconds']}s serial, "
          f"{check_rec['parallel_seconds']}s parallel, "
          f"{check_rec['speedup']}x, canonical graphs "
          f"{'match' if check_rec['graphs_canonically_identical'] else 'DIFFER'}")
    print(f"suite  ({suite_rec['cases']} cases): "
          f"{suite_rec['serial_seconds']}s serial, "
          f"{suite_rec['parallel_seconds']}s parallel, "
          f"{suite_rec['speedup']}x, results "
          f"{'match' if suite_rec['results_identical'] else 'DIFFER'}")
    print(f"record written to {out_path}")

    if not check_rec["graphs_canonically_identical"]:
        print("FAIL: parallel exploration diverged from serial", file=sys.stderr)
        return 1
    if not suite_rec["results_identical"]:
        print("FAIL: parallel suite results diverged from serial", file=sys.stderr)
        return 1
    failed_targets = []
    if record["check_target_applicable"] and \
            check_rec["speedup"] < record["speedup_target"]:
        failed_targets.append("check")
    if suite_rec["speedup"] < record["speedup_target"]:
        failed_targets.append("suite")
    if failed_targets:
        print(f"FAIL: speedup target {record['speedup_target']}x missed "
              f"for: {', '.join(failed_targets)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
