"""Benchmark guard: ``mocket lint`` must stay interactive-fast.

The linter is meant to run on every edit-compile loop (and as a CI
gate), so a full lint of the heaviest bundled target — pyxraft, whose
context includes building the Raft spec, its mapping, and the ``ast``
model of the system package — must finish well under the threshold
(default 1 s wall clock; tightened from 2 s once the per-file
``ImplModel`` extraction cache landed).

The measured unit is one cold ``lint_target("pyxraft")`` call: target
resolution, rule selection, the full rule catalogue (including the
effect analysis the MCK30x rules trigger), and suppression matching.
The minimum over a few repeats is used so machine noise cannot fail
the guard spuriously.

Usage::

    PYTHONPATH=src python benchmarks/lint_bench.py [--threshold 1.0]
"""

from __future__ import annotations

import argparse
import gc
import sys
import time
from typing import Dict, Optional

from repro.analysis import lint_target

TARGET = "pyxraft"
DEFAULT_THRESHOLD_S = 1.0


def measure(repeats: int = 3) -> Dict[str, float]:
    """Time ``lint_target(TARGET)``; returns per-repeat and best seconds."""
    timings = []
    findings = 0
    for _ in range(repeats):
        gc.collect()
        started = time.perf_counter()
        result = lint_target(TARGET)
        timings.append(time.perf_counter() - started)
        findings = len(result.findings)
    return {
        "best_s": min(timings),
        "mean_s": sum(timings) / len(timings),
        "worst_s": max(timings),
        "findings": float(findings),
    }


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD_S,
                        help="maximum allowed best-of-N seconds")
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)

    results = measure(repeats=args.repeats)
    print(f"lint {TARGET}: best {results['best_s']*1000:.1f} ms, "
          f"mean {results['mean_s']*1000:.1f} ms, "
          f"worst {results['worst_s']*1000:.1f} ms "
          f"over {args.repeats} repeats "
          f"({int(results['findings'])} findings)")
    if results["best_s"] > args.threshold:
        print(f"FAIL: best lint time {results['best_s']:.2f}s exceeds "
              f"threshold {args.threshold:.2f}s")
        return 1
    print(f"OK: under the {args.threshold:.2f}s threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
