"""Benchmark: the simulation runtime must compress soak time.

The point of the deterministic simulation harness is scale: a soak run
should push hundreds of thousands of simulated operations through a
real raft replication pipeline in wall-clock seconds, because virtual
sleeps are free and the only cost is event dispatch.  This benchmark
runs a faulted soak (the expensive configuration: nemesis events,
elections, catch-up traffic) and gates on throughput and correctness:

* **correctness** — the faulted soak converges with zero divergences
  (the monitor's fingerprint/election/commit/stall invariants all
  hold), and every submitted op is accounted for,
* **throughput** — sustained simulated ops/sec stays above a floor
  low enough for CI noise, high enough to catch an accidental
  wall-clock sleep on the simulated path (one real ``time.sleep``
  in the event loop drops throughput by orders of magnitude),
* **compression** — simulated time elapses faster than wall time.

The wall-clock numbers in ``BENCH_soak.json`` are measurements *about*
the run made here in the benchmark layer; the soak report itself stays
wall-clock-free (that is what the determinism guard diffs).

Usage::

    PYTHONPATH=src python benchmarks/soak_bench.py
        [--out BENCH_soak.json] [--ops 200000] [--workers 4]
        [--min-ops-per-sec 20000]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.soak import SoakConfig, build_report, run_soak


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_soak.json")
    parser.add_argument("--ops", type=int, default=200_000)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--soak-seed", default="bench")
    parser.add_argument("--min-ops-per-sec", type=float, default=20_000.0,
                        help="simulated ops/sec floor (default: 20k — "
                             "well under a warm run, far above anything "
                             "that sleeps on the wall clock)")
    args = parser.parse_args(argv)

    config = SoakConfig(ops=args.ops, seed=str(args.soak_seed),
                        shards=args.shards, workers=args.workers,
                        faults=True)
    print(f"soak bench: raftkv, {args.ops} ops over {args.shards} "
          f"shard(s), {args.workers} worker(s), faults on "
          f"(seed {config.seed!r})")
    started = time.perf_counter()
    shards = run_soak(config)
    wall = time.perf_counter() - started
    report = build_report(config, shards)

    totals = report["totals"]
    ops_per_sec = totals["submitted"] / wall if wall > 0 else 0.0
    compression = totals["sim_time"] / wall if wall > 0 else 0.0
    print(f"  {totals['submitted']} submitted, {totals['acked']} acked, "
          f"{totals['sim_time']:.1f}s simulated in {wall:.1f}s wall")
    print(f"  {ops_per_sec:,.0f} simulated ops/sec, "
          f"{compression:.0f}x real time")

    failures = []
    if totals["divergences"]:
        kinds = ", ".join(f"{k}={v}"
                          for k, v in totals["divergences"].items())
        failures.append(f"faulted soak diverged: {kinds}")
    if totals["submitted"] != args.ops:
        failures.append(f"submitted {totals['submitted']} of {args.ops} ops")
    if ops_per_sec < args.min_ops_per_sec:
        failures.append(
            f"throughput {ops_per_sec:,.0f} simulated ops/sec is below "
            f"the {args.min_ops_per_sec:,.0f} floor")
    if compression <= 1.0:
        failures.append(
            f"simulated time ran {compression:.2f}x real time — the "
            f"harness is not compressing")

    record = {
        "benchmark": "soak_throughput",
        "target": "raftkv",
        "ops": args.ops,
        "shards": args.shards,
        "workers": args.workers,
        "seed": config.seed,
        "faults": True,
        "wall_seconds": round(wall, 3),
        "simulated_seconds": totals["sim_time"],
        "ops_per_sec": round(ops_per_sec, 1),
        "time_compression": round(compression, 1),
        "min_ops_per_sec": args.min_ops_per_sec,
        "acked": totals["acked"],
        "rejected": totals["rejected"],
        "divergences": totals["divergences"],
        "gate_passed": not failures,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {os.path.abspath(args.out)}")
    if failures:
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        return 1
    print(f"gate passed: {ops_per_sec:,.0f} simulated ops/sec >= "
          f"{args.min_ops_per_sec:,.0f}, no divergences")
    return 0


if __name__ == "__main__":
    sys.exit(main())
