"""Figure 2: the state-space graph of the Figure 1 example.

Regenerates the 13-state graph TLC produces for ``Data = {1, 2}`` and
checks its exact shape (state count, initial state, alternation).
"""

from conftest import print_table

from repro.specs import build_example_spec
from repro.tlaplus import check, to_dot


def test_bench_figure2(benchmark):
    result = benchmark.pedantic(
        lambda: check(build_example_spec(data=(1, 2))), rounds=3, iterations=1,
    )
    graph = result.graph
    assert graph.num_states == 13          # states 0..12 of Figure 2
    assert graph.num_edges == 18
    assert graph.initial_ids == [0]
    init = graph.state_of(0)
    assert init.msg == "Nil" and init.cache == frozenset()

    rows = [
        ("states", 13, graph.num_states),
        ("edges (transitions)", "-", graph.num_edges),
        ("initial state", "s0", f"s{graph.initial_ids[0]}"),
        ("diameter", "-", result.diameter),
    ]
    print_table("Figure 2 — example state space (Data={1,2})",
                ("quantity", "paper", "measured"), rows)
    # the DOT dump is the artifact TLC would produce
    dot = to_dot(graph)
    assert dot.count("->") == 18
