"""Benchmark: coverage-guided fuzzing must beat the unguided stream.

The paper's thesis, measured on the fuzzer: model-checking guidance
(here, fingerprint coverage of the canonical graph feeding seed
selection and mutation) should explore strictly more of the verified
state space than the same budget of schedules drawn blindly from the
seeded planner.  Both arms run the real ``raftkv`` cluster through the
real :class:`~repro.faults.runner.FaultRunner` — same graph, same base
cases, same budget, same runner timeouts — and differ only in whether
coverage feedback is on.

Writes a ``BENCH_fuzz.json`` record with both coverage trajectories
(distinct states/edges after every run) and exits non-zero when the
gates fail:

* **correctness** — every run of both arms completes and no divergence
  goes unattributed (clean raftkv must pass under transparent chaos),
* **guidance** — the guided arm finishes with strictly more distinct
  verified states + edges than the unguided arm.

Usage::

    PYTHONPATH=src python benchmarks/fuzz_bench.py
        [--out BENCH_fuzz.json] [--budget 12] [--cases 4]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.cli import _spec_independence, _target_kit
from repro.core import RunnerConfig, generate_test_cases
from repro.engine import canonicalize
from repro.faults import FaultConfig
from repro.fuzz import fuzz_campaign
from repro.tlaplus import check

FAST = RunnerConfig(match_timeout=2.0, done_timeout=2.0,
                    quiesce_delay=0.05)
FAULTS = FaultConfig(retries=2, backoff=0.05, convergence_timeout=2.0)


def run_arm(kit, guided: bool, budget: int) -> dict:
    mapping, cluster_factory, graph, suite = kit
    started = time.perf_counter()
    result = fuzz_campaign(
        graph, suite, mapping, cluster_factory,
        cluster_factory().node_ids,
        budget=budget, fuzz_seed="1", target="raftkv",
        guided=guided, runner_config=FAST, fault_config=FAULTS)
    elapsed = time.perf_counter() - started
    unattributed = sum(r["unattributed"] for r in result.trajectory)
    return {
        "guided": guided,
        "budget": budget,
        "distinct_states": result.distinct_states,
        "distinct_edges": result.distinct_edges,
        "graph_states": result.graph_states,
        "graph_edges": result.graph_edges,
        "entries": len(result.corpus.entries),
        "unattributed": unattributed,
        "elapsed_seconds": round(elapsed, 3),
        "trajectory": [{"run": r["run"], "op": r["op"],
                        "states": r["states"], "edges": r["edges"]}
                       for r in result.trajectory],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_fuzz.json")
    parser.add_argument("--budget", type=int, default=12)
    parser.add_argument("--cases", type=int, default=4)
    parser.add_argument("--max-states", type=int, default=2000)
    args = parser.parse_args(argv)

    spec, mapping, cluster_factory = _target_kit("raftkv", None)
    graph = canonicalize(check(spec, max_states=args.max_states,
                               truncate=True).graph)
    suite = generate_test_cases(
        graph, por=True, seed=0,
        independence=_spec_independence(spec)).truncated(args.cases)
    kit = (mapping, cluster_factory, graph, suite)

    print(f"fuzz bench: raftkv, {graph.num_states} states / "
          f"{graph.num_edges} edges, {len(suite)} base cases, "
          f"budget {args.budget} per arm")
    arms = {"guided": run_arm(kit, True, args.budget),
            "unguided": run_arm(kit, False, args.budget)}
    for name, arm in arms.items():
        print(f"  {name:<9} {arm['distinct_states']:>4} states "
              f"{arm['distinct_edges']:>4} edges  "
              f"({arm['elapsed_seconds']}s, "
              f"{arm['unattributed']} unattributed)")

    guided_total = (arms["guided"]["distinct_states"]
                    + arms["guided"]["distinct_edges"])
    unguided_total = (arms["unguided"]["distinct_states"]
                      + arms["unguided"]["distinct_edges"])
    failures = []
    for name, arm in arms.items():
        if arm["unattributed"]:
            failures.append(f"{name} arm hit {arm['unattributed']} "
                            f"unattributed divergences on clean raftkv")
    if guided_total <= unguided_total:
        failures.append(
            f"guided coverage {guided_total} is not strictly above "
            f"unguided {unguided_total}")

    record = {
        "benchmark": "fuzz_guidance",
        "target": "raftkv",
        "budget": args.budget,
        "cases": len(suite),
        "guided_total": guided_total,
        "unguided_total": unguided_total,
        "gate_passed": not failures,
        "arms": arms,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {os.path.abspath(args.out)}")
    if failures:
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        return 1
    print(f"gate passed: guided {guided_total} > "
          f"unguided {unguided_total} (states+edges)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
