"""Benchmark: a ≥1M-event raftkv log must conform in seconds, bounded
memory, with exact first-divergence localization.

Workload: deterministic graph walks over the canonical raftkv model
(329 states, 1020 edges) rendered as native obs JSONL ``runner.step``
records — the shape a production tracer sink writes.  Two phases:

* **replay** — stream the full log through :class:`ConformanceMonitor`
  and measure events/second.  The log is generated once on disk and
  never materialized in memory (the adapter and the monitor are both
  streaming), so peak memory is the frontier cap, not the log size.
* **localize** — corrupt one step's action at a known line, replay
  again, and assert the reported first divergence is exactly that line.

Writes a ``BENCH_conform.json`` record and exits non-zero when
throughput falls below the floor, the valid log fails to conform, or
divergence localization misses the seeded line.

Usage::

    PYTHONPATH=src python benchmarks/conform_bench.py
        [--events 1000000] [--floor 50000] [--out BENCH_conform.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

from repro.conform import ConformanceMonitor, ConformanceOptions, get_adapter
from repro.engine import canonicalize
from repro.obs.tracer import jsonable
from repro.specs.raft import RaftSpecOptions, build_raft_spec
from repro.tlaplus import check


def build_graph():
    spec = build_raft_spec(RaftSpecOptions(
        max_term=1, max_client_requests=0, candidates=("n1",),
        enable_drop=False, enable_duplicate=False, name="raftkv-model"))
    return canonicalize(check(spec).graph)


def generate_log(graph, path: str, events: int,
                 corrupt_at: int = 0) -> int:
    """Write ``events`` runner.step records of deterministic graph
    walks; returns the 1-based line of the corrupted record (0 if none).

    Sessions restart from the initial states whenever a walk hits a
    terminal state, so the log length is unbounded by the graph depth.
    """
    corrupted_line = 0
    with open(path, "w", encoding="utf-8", buffering=1 << 20) as handle:
        seq = 0
        session = 0
        while seq < events:
            current = graph.initial_ids[0]
            step = 0
            while seq < events:
                edges = graph.out_edges(current)
                if not edges:
                    break
                edges = sorted(edges, key=lambda e: (e.label.name, e.dst))
                edge = edges[(step * 7 + session * 3) % len(edges)]
                action = edge.label.name
                if corrupt_at and seq + 1 == corrupt_at:
                    action = "NoSuchAction"
                    corrupted_line = seq + 1
                record = {
                    "seq": seq, "ts": float(seq), "kind": "span",
                    "name": "runner.step", "dur": 0.0001,
                    "fields": {"case": session, "step": step,
                               "action": action, "outcome": "ok",
                               "params": jsonable(edge.label.params)},
                }
                handle.write(json.dumps(record, sort_keys=True) + "\n")
                seq += 1
                step += 1
                current = edge.dst
            session += 1
    return corrupted_line


def replay(graph, path: str) -> dict:
    monitor = ConformanceMonitor(graph, options=ConformanceOptions())
    adapter = get_adapter("obs")
    started = time.perf_counter()
    report = monitor.run(adapter.read(path), log=path, adapter="obs")
    elapsed = time.perf_counter() - started
    return {
        "verdict": report.verdict,
        "events": report.events,
        "sessions": report.sessions,
        "frontier_peak": report.frontier_peak,
        "spilled": report.spilled,
        "seconds": round(elapsed, 4),
        "events_per_sec": round(report.events / elapsed) if elapsed else 0,
        "first_divergence_line": (report.first_divergence.line
                                  if report.first_divergence else None),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=1_000_000,
                        help="log size in events (default: 1000000)")
    parser.add_argument("--floor", type=int, default=50_000,
                        help="minimum acceptable events/sec (default: 50000)")
    parser.add_argument(
        "--out",
        default=os.path.join(os.path.dirname(__file__), "..",
                             "BENCH_conform.json"))
    args = parser.parse_args(argv)

    graph = build_graph()
    corrupt_at = max(2, args.events // 2)

    with tempfile.TemporaryDirectory(prefix="conform-bench-") as tmp:
        good = os.path.join(tmp, "good.jsonl")
        bad = os.path.join(tmp, "bad.jsonl")
        gen_started = time.perf_counter()
        generate_log(graph, good, args.events)
        gen_seconds = time.perf_counter() - gen_started
        seeded_line = generate_log(graph, bad, args.events,
                                   corrupt_at=corrupt_at)
        log_bytes = os.path.getsize(good)
        good_run = replay(graph, good)
        bad_run = replay(graph, bad)

    record = {
        "bench": "conform",
        "spec": graph.spec_name,
        "graph": graph.stats(),
        "events": args.events,
        "log_bytes": log_bytes,
        "generate_seconds": round(gen_seconds, 4),
        "floor_events_per_sec": args.floor,
        "replay": good_run,
        "localize": {**bad_run, "seeded_line": seeded_line},
    }
    out_path = os.path.abspath(args.out)
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")

    print(f"replay: {good_run['events']} events in {good_run['seconds']}s "
          f"({good_run['events_per_sec']}/s, verdict {good_run['verdict']}, "
          f"frontier peak {good_run['frontier_peak']})")
    print(f"localize: seeded line {seeded_line} -> reported "
          f"{bad_run['first_divergence_line']} "
          f"({bad_run['seconds']}s)")
    print(f"record written to {out_path}")

    if good_run["verdict"] != "conforms":
        print("FAIL: the valid log did not conform", file=sys.stderr)
        return 1
    if good_run["events_per_sec"] < args.floor:
        print(f"FAIL: {good_run['events_per_sec']} events/sec is below the "
              f"floor of {args.floor}", file=sys.stderr)
        return 1
    if bad_run["verdict"] != "diverged" \
            or bad_run["first_divergence_line"] != seeded_line:
        print(f"FAIL: seeded divergence at line {seeded_line} reported as "
              f"{bad_run['first_divergence_line']}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
