"""Figures 10 and 11: the two official Raft specification bugs.

Both are revealed by testing the *fixed* raftkv implementation against
the ``spec_bugs=True`` model, and both vanish against the fixed model —
the investigator's procedure of Section 4.3.3.
"""

import time

from conftest import print_table

from repro.core import ControlledTester, DivergenceKind, RunnerConfig
from repro.systems.raftkv import build_raftkv_mapping, make_raftkv_cluster
from repro.systems.raftkv.scenarios import (
    raft_spec_bug_missing_reply,
    raft_spec_bug_update_term,
)

_CONFIG = RunnerConfig(match_timeout=1.0, done_timeout=1.0, quiesce_delay=0.05)


def _replay(scenario):
    tester = ControlledTester(
        build_raftkv_mapping(scenario.spec, scenario.buggy_config),
        scenario.graph,
        lambda: make_raftkv_cluster(scenario.servers, scenario.buggy_config),
        _CONFIG,
    )
    started = time.monotonic()
    result = tester.run_case(scenario.case)
    return result, time.monotonic() - started


def test_bench_figure10(benchmark):
    """Figure 10: UpdateTerm wrongly interleaves as a standalone action."""
    scenario = raft_spec_bug_update_term()
    result, elapsed = benchmark.pedantic(lambda: _replay(scenario),
                                         rounds=1, iterations=1)
    assert not result.passed
    assert result.divergence.kind is DivergenceKind.MISSING_ACTION
    assert result.divergence.action == "UpdateTerm"
    rows = [(i, repr(s.label)[:90]) for i, s in enumerate(scenario.case.steps)]
    print_table(f"Figure 10 — standalone UpdateTerm ({elapsed:.2f}s)",
                ("step", "action"), rows)
    print("no implementation performs UpdateTerm as an independent action: "
          "missing action UpdateTerm")


def test_bench_figure11(benchmark):
    """Figure 11: the return-to-follower branch does not Reply."""
    scenario = raft_spec_bug_missing_reply()
    result, elapsed = benchmark.pedantic(lambda: _replay(scenario),
                                         rounds=1, iterations=1)
    assert not result.passed
    assert result.divergence.kind is DivergenceKind.INCONSISTENT_STATE
    assert "messages" in result.divergence.variable_names
    rows = [(i, repr(s.label)[:90]) for i, s in enumerate(scenario.case.steps)]
    print_table(f"Figure 11 — missing Reply branch ({elapsed:.2f}s)",
                ("step", "action"), rows)
    vd = result.divergence.variables[0]
    print(f"messages bag expected {vd.expected!r}"[:120])
    print(f"          observed {vd.actual!r}"[:120])
