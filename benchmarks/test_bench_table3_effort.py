"""Table 3: testing effort — states, EC paths, EC+POR paths, time.

For each of the three (scaled-down) models:

* ``State`` — states in the model-checked graph,
* ``PathEC`` — test cases generated with edge coverage only,
* ``PathEC+POR`` — test cases after partial order reduction,
* ``Time`` — estimated suite wall clock (per-case time measured on a
  sample × number of EC+POR cases), mirroring the paper's
  seconds-per-case × cases figure.

Preserved shapes: ZooKeeper > Xraft > Raft-java in state count; POR
removes a large share of EC paths (87% for ZooKeeper in the paper).
"""

import time

from conftest import print_table

from repro.core import ControlledTester, RunnerConfig, generate_test_cases
from repro.systems.minizk import MiniZkConfig, build_minizk_mapping, make_minizk_cluster
from repro.systems.pyxraft import XraftConfig, build_xraft_mapping, make_xraft_cluster
from repro.systems.raftkv import RaftKvConfig, build_raftkv_mapping, make_raftkv_cluster

_CONFIG = RunnerConfig(match_timeout=1.0, done_timeout=1.0, quiesce_delay=0.02)
_SAMPLE = 12  # cases timed to estimate the per-case cost

_PAPER = {
    "Xraft": (91_532, 296_154, 39_047, "75 h"),
    "Raft-java": (23_911, 85_976, 9_829, "13 h"),
    "ZooKeeper": (105_054, 342_770, 44_361, "123 h"),
}


def _measure(name, spec, graph, build_mapping, make_cluster, config):
    suite_ec = generate_test_cases(graph, por=False)
    suite_por = generate_test_cases(graph, por=True)
    tester = ControlledTester(build_mapping(spec, config), graph,
                              lambda: make_cluster(spec.constants["Server"], config),
                              _CONFIG)
    started = time.monotonic()
    sample = tester.run_suite(suite_por, max_cases=_SAMPLE)
    assert sample.passed, [r.divergence for r in sample.failures][:2]
    per_case = (time.monotonic() - started) / len(sample.results)
    estimated = per_case * len(suite_por)
    return {
        "states": graph.num_states,
        "path_ec": len(suite_ec),
        "path_por": len(suite_por),
        "per_case": per_case,
        "estimate": estimated,
    }


def test_bench_table3(benchmark, xraft_model, raftkv_model, zab_model):
    def run_all():
        out = {}
        xspec, xgraph = xraft_model
        out["Xraft"] = _measure("Xraft", xspec, xgraph,
                                build_xraft_mapping, make_xraft_cluster,
                                XraftConfig())
        kspec, kgraph = raftkv_model
        out["Raft-java"] = _measure("Raft-java", kspec, kgraph,
                                    build_raftkv_mapping, make_raftkv_cluster,
                                    RaftKvConfig())
        zspec, zgraph = zab_model
        out["ZooKeeper"] = _measure("ZooKeeper", zspec, zgraph,
                                    build_minizk_mapping, make_minizk_cluster,
                                    MiniZkConfig())
        return out

    measured = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name in ("Xraft", "Raft-java", "ZooKeeper"):
        paper = _PAPER[name]
        m = measured[name]
        reduction = 100.0 * (1 - m["path_por"] / m["path_ec"])
        rows.append((
            name,
            f"{paper[0]:,} / {m['states']:,}",
            f"{paper[1]:,} / {m['path_ec']:,}",
            f"{paper[2]:,} / {m['path_por']:,}",
            f"{reduction:.0f}%",
            f"{paper[3]} / ~{m['estimate'] / 60:.1f} min",
        ))
    print_table(
        "Table 3 — testing effort (paper / measured, scaled-down models)",
        ("System", "State", "PathEC", "PathEC+POR", "POR cut", "Time"),
        rows,
    )

    # shape assertions
    assert measured["ZooKeeper"]["states"] > measured["Xraft"]["states"] \
        > measured["Raft-java"]["states"]
    for m in measured.values():
        assert m["path_por"] < m["path_ec"]
