"""Shared fixtures and models for the benchmark harness.

Every bench regenerates one table or figure of the paper.  The paper's
machines checked 10^5 states and tested for days; the benches use
scaled-down model constants (documented per bench) that preserve the
*shape* of each result — orderings, reduction ratios, divergence kinds.
"""

import pytest

from repro.specs.raft import RaftSpecOptions, build_raft_spec
from repro.specs.zab import ZabSpecOptions, build_zab_spec
from repro.tlaplus import check

# The three scaled-down models used for Tables 1 and 3.  Their relative
# sizes mirror the paper's: ZooKeeper > Xraft > Raft-java.
XRAFT_MODEL_OPTS = dict(
    servers=("n1", "n2", "n3"), max_term=1, max_client_requests=0,
    enable_restart=True, enable_drop=True, enable_duplicate=True,
    max_restarts=1, max_drops=1, max_duplicates=1,
    candidates=("n1",), name="xraft-model",
)
RAFTKV_MODEL_OPTS = dict(
    servers=("n1", "n2", "n3"), max_term=1, max_client_requests=0,
    enable_restart=True, max_restarts=1,
    enable_drop=False, enable_duplicate=False,
    candidates=("n1",), name="raftkv-model",
)
ZAB_MODEL_OPTS = dict(
    servers=("n1", "n2", "n3"), max_elections=1,
    max_crashes=0, max_restarts=0, starters=("n3",), name="zookeeper-model",
)


@pytest.fixture(scope="session")
def xraft_model():
    spec = build_raft_spec(RaftSpecOptions(**XRAFT_MODEL_OPTS))
    return spec, check(spec, max_states=120000).graph


@pytest.fixture(scope="session")
def raftkv_model():
    spec = build_raft_spec(RaftSpecOptions(**RAFTKV_MODEL_OPTS))
    return spec, check(spec, max_states=120000).graph


@pytest.fixture(scope="session")
def zab_model():
    spec = build_zab_spec(ZabSpecOptions(**ZAB_MODEL_OPTS))
    return spec, check(spec, max_states=120000).graph


def print_table(title, headers, rows):
    """Render one paper table with measured-vs-paper columns."""
    widths = [max(len(str(headers[i])), *(len(str(r[i])) for r in rows))
              for i in range(len(headers))]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
