"""Figures 8 and 9: the Xraft bug traces, replayed step by step.

Figure 8 — Xraft bug #2: node 2 grants its vote to candidate n1, a
restart erases the (never persisted) vote, and node 2 votes again for a
second candidate.

Figure 9 — Xraft bug #3 (adapted mechanics, same divergence): a stale
candidate collects votes the verified state space forbids, making a
second leader possible while the first still leads.
"""

import time

from conftest import print_table

from repro.core import ControlledTester, DivergenceKind, RunnerConfig
from repro.systems.pyxraft import XraftConfig, build_xraft_mapping, make_xraft_cluster
from repro.systems.pyxraft.scenarios import xraft_bug2, xraft_bug3

_CONFIG = RunnerConfig(match_timeout=1.0, done_timeout=1.0, quiesce_delay=0.05)


def _replay(scenario):
    tester = ControlledTester(
        build_xraft_mapping(scenario.spec, scenario.buggy_config),
        scenario.graph,
        lambda: make_xraft_cluster(scenario.servers, scenario.buggy_config),
        _CONFIG,
    )
    started = time.monotonic()
    result = tester.run_case(scenario.case)
    return result, time.monotonic() - started


def test_bench_figure8(benchmark):
    scenario = xraft_bug2()
    result, elapsed = benchmark.pedantic(lambda: _replay(scenario),
                                         rounds=1, iterations=1)
    assert not result.passed
    assert result.divergence.kind is DivergenceKind.INCONSISTENT_STATE
    assert "votedFor" in result.divergence.variable_names

    rows = [(i, repr(step.label),
             "<-- divergence" if i == result.divergence.step_index else "")
            for i, step in enumerate(scenario.case.steps)]
    print_table(f"Figure 8 — Xraft bug #2 trace ({elapsed:.2f}s)",
                ("step", "action", ""), rows)
    vd = result.divergence.variables[0]
    print(f"votedFor expected {vd.expected!r}, observed {vd.actual!r}")


def test_bench_figure9(benchmark):
    scenario = xraft_bug3()
    result, elapsed = benchmark.pedantic(lambda: _replay(scenario),
                                         rounds=1, iterations=1)
    assert not result.passed
    assert result.divergence.kind is DivergenceKind.UNEXPECTED_ACTION
    assert result.divergence.action == "HandleRequestVoteResponse"

    rows = [(i, repr(step.label)[:90],
             "<-- divergence" if i == result.divergence.step_index else "")
            for i, step in enumerate(scenario.case.steps)]
    print_table(f"Figure 9 — Xraft bug #3 trace ({elapsed:.2f}s)",
                ("step", "action", ""), rows)
    print("the system offered a granted=true vote response the verified "
          "state space forbids — a second leader becomes possible")
