"""Benchmark: static-independence fast path for POR diamond search.

Measures the diamond search (``find_diamonds``) and the full POR
exclusion computation (``por_excluded_edges``) on the two scaled guard
models — legacy join-verified search vs the effect-certified fast path
— and writes a ``BENCH_analysis.json`` record.

Correctness is asserted unconditionally and is the only thing that can
fail the script: for every model and seed the fast path must produce a
byte-identical suite (same diamonds, same excluded edges, same JSON).
The speedup itself is recorded, not gated — it is a function of how
many action pairs the effect analyzer certifies, which varies by model.

Usage::

    PYTHONPATH=src python benchmarks/analysis_bench.py
        [--out BENCH_analysis.json] [--repeats 5]
"""

from __future__ import annotations

import argparse
import io
import json
import os
import sys
import time

from repro.analysis.effects import analyze_spec
from repro.core import generate_test_cases
from repro.core.testgen.por import find_diamonds, por_excluded_edges
from repro.specs.raft import RaftSpecOptions, build_raft_spec
from repro.specs.zab import ZabSpecOptions, build_zab_spec
from repro.tlaplus import check

# the determinism-guard models: real protocol structure at bench-smoke
# cost (hundreds of states, explored in well under a second)
RAFT_OPTS = dict(
    servers=("n1", "n2", "n3"), max_term=1, max_client_requests=0,
    enable_restart=True, max_restarts=1,
    enable_drop=False, enable_duplicate=False,
    candidates=("n1",), name="raft-guard",
)
ZAB_OPTS = dict(
    servers=("n1", "n2"), max_elections=2, max_crashes=0, max_restarts=0,
    starters=("n1",), name="zab-guard",
)


def _build(model: str):
    if model == "raft":
        return build_raft_spec(RaftSpecOptions(**RAFT_OPTS))
    return build_zab_spec(ZabSpecOptions(**ZAB_OPTS))


def _best_of(repeats, fn):
    best = None
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def _suite_json(graph, seed, independence=None):
    buffer = io.StringIO()
    generate_test_cases(graph, por=True, seed=seed,
                        independence=independence).save(buffer)
    return buffer.getvalue()


def bench_model(model: str, repeats: int) -> dict:
    spec = _build(model)
    graph = check(spec).graph
    effects = analyze_spec(spec)
    independence = effects.independence()

    legacy_seconds, legacy = _best_of(repeats, lambda: find_diamonds(graph))
    static_seconds, static = _best_of(
        repeats, lambda: find_diamonds(graph, independence=independence))
    diamonds_identical = (
        len(legacy) == len(static)
        and all((a.origin, a.first_a.key(), a.second_a.key(),
                 a.first_b.key(), a.second_b.key()) ==
                (b.origin, b.first_a.key(), b.second_a.key(),
                 b.first_b.key(), b.second_b.key())
                for a, b in zip(legacy, static)))

    excl_legacy_seconds, _ = _best_of(
        repeats, lambda: por_excluded_edges(graph, seed=0))
    excl_static_seconds, _ = _best_of(
        repeats,
        lambda: por_excluded_edges(graph, seed=0, independence=independence))

    suites_identical = all(
        _suite_json(graph, seed) == _suite_json(graph, seed, independence)
        for seed in (0, 42))

    return {
        "model": spec.name,
        "states": graph.num_states,
        "diamonds": len(legacy),
        "certified_pairs": len(independence),
        "actions": len(effects.actions),
        "find_diamonds_legacy_seconds": round(legacy_seconds, 4),
        "find_diamonds_static_seconds": round(static_seconds, 4),
        "find_diamonds_speedup": round(legacy_seconds / static_seconds, 3),
        "por_excluded_legacy_seconds": round(excl_legacy_seconds, 4),
        "por_excluded_static_seconds": round(excl_static_seconds, 4),
        "por_excluded_speedup": round(
            excl_legacy_seconds / excl_static_seconds, 3),
        "diamonds_identical": diamonds_identical,
        "suites_byte_identical": suites_identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--out",
        default=os.path.join(os.path.dirname(__file__), "..",
                             "BENCH_analysis.json"))
    args = parser.parse_args(argv)

    record = {
        "bench": "static_independence_por",
        "cpu_cores": os.cpu_count() or 1,
        "models": [bench_model(m, args.repeats) for m in ("raft", "zab")],
        "notes": ("fast path skips the per-diamond join verification for "
                  "pairs the effect analyzer certifies as commuting; "
                  "identical output is asserted, speed is recorded"),
    }

    out_path = os.path.abspath(args.out)
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")

    failed = False
    for rec in record["models"]:
        print(f"{rec['model']} ({rec['states']} states, "
              f"{rec['diamonds']} diamonds, "
              f"{rec['certified_pairs']} certified pairs): "
              f"find_diamonds {rec['find_diamonds_legacy_seconds']}s -> "
              f"{rec['find_diamonds_static_seconds']}s "
              f"({rec['find_diamonds_speedup']}x), suites "
              f"{'identical' if rec['suites_byte_identical'] else 'DIFFER'}")
        if not (rec["diamonds_identical"] and rec["suites_byte_identical"]):
            failed = True
    print(f"record written to {out_path}")

    if failed:
        print("FAIL: static fast path diverged from the legacy search",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
