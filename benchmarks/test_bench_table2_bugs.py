"""Table 2: the nine bugs found by Mocket.

Runs every bug-revealing schedule against the matching buggy target
(and the correct target, which must pass) and reports, per bug, the
divergence kind, the reported inconsistency, the elapsed wall clock and
the number of actions in the bug-revealing test case — next to the
paper's values.

Elapsed times differ wildly from the paper (the paper measures *search*
time over thousands of generated cases; the scenario pinpoints the
verified schedule directly — see the Table 3 bench for search effort).
The reported divergence kinds match Table 2 row by row.
"""

import time

from conftest import print_table

from repro.core import ControlledTester, RunnerConfig
from repro.systems.minizk import MiniZkConfig, build_minizk_mapping, make_minizk_cluster
from repro.systems.minizk.scenarios import zk_bug_1419, zk_bug_1653
from repro.systems.pyxraft import XraftConfig, build_xraft_mapping, make_xraft_cluster
from repro.systems.pyxraft.scenarios import xraft_bug1, xraft_bug2, xraft_bug3
from repro.systems.raftkv import RaftKvConfig, build_raftkv_mapping, make_raftkv_cluster
from repro.systems.raftkv.scenarios import (
    raft_spec_bug_missing_reply,
    raft_spec_bug_update_term,
    raftkv_bug1,
    raftkv_bug2,
)

_CONFIG = RunnerConfig(match_timeout=1.0, done_timeout=1.0, quiesce_delay=0.05)

# (scenario builder, tester kit, paper row: type / inconsistency / time / acts)
_BUGS = [
    (xraft_bug1, "xraft", "Xraft #1 (New)",
     ("Impl.", "Inconsistent state votesGranted", "1 min", 6)),
    (xraft_bug2, "xraft", "Xraft #2 (New)",
     ("Impl.", "Inconsistent state votedFor", "7 min", 9)),
    (xraft_bug3, "xraft", "Xraft #3 (New)",
     ("Impl.", "Unexpected HandleRequestVoteResponse", "39 min", 19)),
    (raftkv_bug1, "raftkv", "Raft-java #1",
     ("Impl.", "Missing HandleRequestVoteResponse", "6 min", 18)),
    (raftkv_bug2, "raftkv", "Raft-java #2",
     ("Impl.", "Inconsistent state log", "5 hours", 31)),
    (zk_bug_1419, "minizk", "ZooKeeper #1",
     ("Impl.", "Unexpected ReceiveMessage", "13 hours", 39)),
    (zk_bug_1653, "minizk", "ZooKeeper #2",
     ("Impl.", "Missing StartElection", "29 hours", 51)),
    (raft_spec_bug_missing_reply, "raftkv", "Raft-spec #1 (New)",
     ("Spec.", "Inconsistent state messages", "<1 min", 8)),
    (raft_spec_bug_update_term, "raftkv", "Raft-spec #2 (New)",
     ("Spec.", "Missing UpdateTerm", "<1 min", 5)),
]

_KITS = {
    "xraft": (build_xraft_mapping, make_xraft_cluster, XraftConfig),
    "raftkv": (build_raftkv_mapping, make_raftkv_cluster, RaftKvConfig),
    "minizk": (build_minizk_mapping, make_minizk_cluster, MiniZkConfig),
}


def _run(scenario, kit, config):
    build_mapping, make_cluster, _ = _KITS[kit]
    tester = ControlledTester(
        build_mapping(scenario.spec, config), scenario.graph,
        lambda: make_cluster(scenario.servers, config), _CONFIG,
    )
    started = time.monotonic()
    result = tester.run_case(scenario.case)
    return result, time.monotonic() - started


def test_bench_table2(benchmark):
    def run_all():
        rows = []
        for build, kit, bug_id, paper in _BUGS:
            scenario = build()
            # the correct implementation conforms (spec-bug scenarios have
            # no correct target: the divergence IS the spec's fault)
            correct_config = getattr(scenario, "correct_config", None)
            if not getattr(scenario, "is_spec_bug", False):
                fixed = correct_config if correct_config is not None \
                    else _KITS[kit][2]()
                ok, _ = _run(scenario, kit, fixed)
                assert ok.passed, f"{bug_id}: fixed target diverged"
            result, elapsed = _run(scenario, kit, scenario.buggy_config)
            assert not result.passed, f"{bug_id}: bug not detected"
            assert result.divergence.kind.value == scenario.expected_kind
            rows.append((bug_id, paper[0], result.divergence.headline(),
                         f"{paper[2]} / {elapsed:.2f}s",
                         f"{paper[3]} / {len(scenario.case)}"))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "Table 2 — bugs found by Mocket (paper / measured)",
        ("ID", "Type", "Reported inconsistency (measured)",
         "Elapsed (paper/ours)", "# Actions (paper/ours)"),
        rows,
    )
    assert len(rows) == 9
