"""Ablation: what partial order reduction buys (DESIGN.md §5).

Compares, on the Xraft and ZooKeeper models:

* generated case counts and total scheduled actions (EC vs EC+POR),
* actual testing wall clock on a fixed case budget,
* coverage: both suites must cover every action name.

Also measures the cost side of POR: the diamond search itself.
"""

import time

from conftest import print_table

from repro.core import ControlledTester, RunnerConfig, generate_test_cases
from repro.core.testgen import diamond_stats
from repro.systems.pyxraft import XraftConfig, build_xraft_mapping, make_xraft_cluster

_CONFIG = RunnerConfig(match_timeout=1.0, done_timeout=1.0, quiesce_delay=0.02)


def test_bench_ablation_por(benchmark, xraft_model, zab_model):
    def measure():
        rows = []
        for name, (spec, graph) in (("Xraft", xraft_model),
                                    ("ZooKeeper", zab_model)):
            t0 = time.monotonic()
            suite_ec = generate_test_cases(graph, por=False)
            t_ec = time.monotonic() - t0
            t0 = time.monotonic()
            suite_por = generate_test_cases(graph, por=True)
            t_por = time.monotonic() - t0
            stats = diamond_stats(graph)
            assert suite_por.covered_action_names() == suite_ec.covered_action_names()
            rows.append((name, graph.num_states, len(suite_ec), len(suite_por),
                         f"{100 * (1 - len(suite_por) / len(suite_ec)):.0f}%",
                         stats["diamonds"], f"{t_ec:.2f}s", f"{t_por:.2f}s"))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(
        "Ablation — partial order reduction",
        ("Model", "States", "PathEC", "PathEC+POR", "cut", "diamonds",
         "gen EC", "gen EC+POR"),
        rows,
    )

    # POR pays for itself: a real cut on both models
    for row in rows:
        assert row[3] < row[2]


def test_bench_ablation_coverage_strategy(benchmark, xraft_model, zab_model):
    """Node coverage vs edge coverage (Section 4.2.1's two strategies).

    Node coverage generates far fewer paths but misses action-level
    behaviours — the bench quantifies both the saving and the loss
    (distinct edges exercised).
    """
    from repro.core.testgen import edge_coverage_paths, node_coverage_paths

    def measure():
        rows = []
        for name, (spec, graph) in (("Xraft", xraft_model),
                                    ("ZooKeeper", zab_model)):
            edge_result = edge_coverage_paths(graph)
            node_result = node_coverage_paths(graph)
            edge_edges = {e.key() for p in edge_result.paths for e in p}
            node_edges = {e.key() for p in node_result.paths for e in p}
            rows.append((name, len(edge_result.paths), len(node_result.paths),
                         len(edge_edges), len(node_edges),
                         f"{100 * (1 - len(node_edges) / len(edge_edges)):.0f}%"))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(
        "Ablation — edge vs node coverage",
        ("Model", "paths (edge)", "paths (node)", "edges hit (edge cov)",
         "edges hit (node cov)", "behaviours lost"),
        rows,
    )
    for row in rows:
        assert row[2] <= row[1]   # node coverage generates fewer paths
        assert row[4] < row[3]    # ...and exercises fewer behaviours


def test_bench_ablation_por_runtime(benchmark, xraft_model):
    """Wall-clock effect on actual controlled testing (fixed budget)."""
    spec, graph = xraft_model
    config = XraftConfig()
    tester = ControlledTester(build_xraft_mapping(spec, config), graph,
                              lambda: make_xraft_cluster(("n1", "n2", "n3"), config),
                              _CONFIG)
    budget = 20

    def run(por):
        suite = generate_test_cases(graph, por=por)
        started = time.monotonic()
        outcome = tester.run_suite(suite, max_cases=budget)
        assert outcome.passed
        return time.monotonic() - started, suite

    (t_por, suite_por) = benchmark.pedantic(lambda: run(True), rounds=1, iterations=1)
    t_ec, suite_ec = run(False)
    full_ec = t_ec / budget * len(suite_ec)
    full_por = t_por / budget * len(suite_por)
    print_table(
        "Ablation — projected full-suite wall clock (Xraft model)",
        ("suite", "cases", f"measured ({budget} cases)", "projected full run"),
        [("EC", len(suite_ec), f"{t_ec:.1f}s", f"~{full_ec / 60:.1f} min"),
         ("EC+POR", len(suite_por), f"{t_por:.1f}s", f"~{full_por / 60:.1f} min")],
    )
    assert full_por < full_ec
