"""Benchmark: shrink cost stays within the ddmin bound.

Shrinking replays candidate sub-plans through the real fault runner,
so its cost is *replays*, not CPU.  This bench measures the replay
count on two workloads and writes a ``BENCH_shrink.json`` record:

* **end_to_end** — a seeded 12-injection toycache chaos plan
  (``--chaos --max-faults 3`` over 4 cases) shrunk against the
  ``bug_wrong_max`` implementation.  The failure is fault-independent,
  so the scope + empty-plan probe must find the minimal (empty) repro
  in a handful of replays — the common fast path a `mocket test
  --shrink-on-failure` user hits.

* **ddmin_stress** — the raw ddmin reducer on synthetic injection
  lists of growing size with a planted two-injection culprit, counting
  predicate calls.  Classic delta debugging is O(n^2) tests in the
  worst case; the guard asserts each run stays at or under ``n^2 +
  n``, so a regression that degenerates the search (e.g. broken
  granularity stepping) fails the bench rather than silently making
  every future shrink campaign quadratically slower than it should be.

The script exits non-zero when a bound is violated or the end-to-end
shrink stops reproducing the failure.

Usage::

    PYTHONPATH=src python benchmarks/shrink_bench.py
        [--out BENCH_shrink.json] [--sizes 8,16,32,64]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.core import RunnerConfig, generate_test_cases
from repro.engine import canonicalize
from repro.faults import FaultConfig, plan_faults, shrink_plan
from repro.faults.plan import FaultInjection, InjectionMode
from repro.faults.shrink import _Session, _ddmin
from repro.specs import build_example_spec
from repro.systems.toycache import (
    ToyCacheConfig,
    build_toycache_mapping,
    make_toycache_cluster,
)
from repro.tlaplus import check


def bench_end_to_end() -> dict:
    spec = build_example_spec()
    config = ToyCacheConfig(bug_wrong_max=True)
    mapping = build_toycache_mapping()
    graph = canonicalize(check(spec).graph)
    suite = generate_test_cases(graph, por=True, seed=0).truncated(4)
    factory = lambda: make_toycache_cluster(config)
    # seed '6' is pinned: its 12-injection multi-fault plan leaves the
    # bug's divergence unattributed, so there is something to shrink
    plan = plan_faults(graph, suite, mapping, "6", factory().node_ids,
                       chaos=True, target="toycache", max_faults_per_case=3)
    started = time.perf_counter()
    result = shrink_plan(
        plan, graph, suite, mapping, factory,
        RunnerConfig(match_timeout=1.0, done_timeout=1.0,
                     quiesce_delay=0.05),
        fault_config=FaultConfig(retries=1, backoff=0.05,
                                 convergence_timeout=1.0),
        budget=200)
    elapsed = time.perf_counter() - started
    return {
        "target": "toycache",
        "initial_injections": result.initial_count,
        "final_injections": result.final_count,
        "replays_to_minimal": result.replays,
        "fault_independent": result.fault_independent,
        "converged": result.converged,
        "signature": result.signature,
        "seconds": round(elapsed, 4),
        # scope + probe + validation: the fast path needs no ddmin
        "replay_bound": result.initial_count + 3,
    }


def _synthetic(count: int):
    return [FaultInjection(InjectionMode.CHAOS, "reorder", case_id=0,
                           step_index=index + 1, params={"node": "server"})
            for index in range(count)]


def bench_ddmin_stress(sizes) -> list:
    rows = []
    for size in sizes:
        items = _synthetic(size)
        # planted culprit: the failure needs the first and last injection
        culprit = {id(items[0]), id(items[-1])}
        session = _Session(budget=10 * size * size)

        def fails(candidate):
            session.replays += 1
            return culprit <= set(map(id, candidate))

        minimal, converged = _ddmin(list(items), fails, session)
        rows.append({
            "size": size,
            "replays": session.replays,
            "minimal": len(minimal),
            "converged": converged,
            "bound_n2_plus_n": size * size + size,
        })
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", default="8,16,32,64")
    parser.add_argument(
        "--out",
        default=os.path.join(os.path.dirname(__file__), "..",
                             "BENCH_shrink.json"))
    args = parser.parse_args(argv)
    sizes = [int(s) for s in args.sizes.split(",") if s]

    record = {
        "bench": "shrink",
        "end_to_end": bench_end_to_end(),
        "ddmin_stress": bench_ddmin_stress(sizes),
    }

    out_path = os.path.abspath(args.out)
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")

    e2e = record["end_to_end"]
    print(f"end-to-end ({e2e['target']}): "
          f"{e2e['initial_injections']} -> {e2e['final_injections']} "
          f"injections in {e2e['replays_to_minimal']} replays "
          f"({e2e['seconds']}s)")
    for row in record["ddmin_stress"]:
        print(f"ddmin n={row['size']}: {row['replays']} replays "
              f"-> {row['minimal']} (bound {row['bound_n2_plus_n']})")
    print(f"record written to {out_path}")

    if not e2e["converged"] or not e2e["signature"]:
        print("FAIL: end-to-end shrink did not converge on a repro",
              file=sys.stderr)
        return 1
    if e2e["replays_to_minimal"] > e2e["replay_bound"]:
        print(f"FAIL: fast path took {e2e['replays_to_minimal']} replays "
              f"(bound {e2e['replay_bound']})", file=sys.stderr)
        return 1
    bad = [row for row in record["ddmin_stress"]
           if not row["converged"] or row["minimal"] != 2
           or row["replays"] > row["bound_n2_plus_n"]]
    if bad:
        print(f"FAIL: ddmin exceeded the O(n^2) bound or missed the "
              f"culprit at sizes {[row['size'] for row in bad]}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
