#!/usr/bin/env python
"""Hunting the three Xraft bugs (Table 2, Figures 8 and 9).

Each bug is reproduced twice:

* through its *scenario* — a schedule verified against the Raft
  specification (the expected states are computed by the spec),
* and, for the shallow duplicate-vote bug, through plain suite-based
  testing: generate EC+POR cases from the fault model and run them
  until one diverges, which is how the paper found the bugs.

Run:  python examples/raft_bug_hunt.py
"""

import time

from repro.core import ControlledTester, RunnerConfig, generate_test_cases
from repro.specs.raft import RaftSpecOptions, build_raft_spec
from repro.systems.pyxraft import (
    XraftConfig,
    build_xraft_mapping,
    make_xraft_cluster,
)
from repro.systems.pyxraft.scenarios import xraft_bug1, xraft_bug2, xraft_bug3
from repro.tlaplus import check

CONFIG = RunnerConfig(match_timeout=1.0, done_timeout=1.0, quiesce_delay=0.05)


def scenario_hunt() -> None:
    print("== scenario-guided reproduction ==")
    for build in (xraft_bug1, xraft_bug2, xraft_bug3):
        scenario = build()
        tester = ControlledTester(
            build_xraft_mapping(scenario.spec, scenario.buggy_config),
            scenario.graph,
            lambda: make_xraft_cluster(scenario.servers, scenario.buggy_config),
            CONFIG,
        )
        started = time.monotonic()
        result = tester.run_case(scenario.case)
        elapsed = time.monotonic() - started
        assert not result.passed
        print(f"{scenario.name}: {result.divergence.headline()}")
        print(f"  case length {len(scenario.case)} actions, "
              f"detected in {elapsed:.2f}s")
        print(f"  schedule: {scenario.case.describe()[:120]}...")


def suite_hunt() -> None:
    print("\n== suite-based discovery (the paper's mode) ==")
    spec = build_raft_spec(RaftSpecOptions(
        servers=("n1", "n2", "n3"), max_term=1, max_client_requests=0,
        enable_restart=True, enable_drop=True, enable_duplicate=True,
        max_restarts=1, max_drops=1, max_duplicates=1,
        candidates=("n1",), name="xraft-fault-model",
    ))
    graph = check(spec).graph
    suite = generate_test_cases(graph, por=True)
    print(f"model: {graph.num_states} states, {graph.num_edges} edges; "
          f"{len(suite)} EC+POR test cases")
    config = XraftConfig(bug_duplicate_vote_count=True)
    tester = ControlledTester(
        build_xraft_mapping(spec, config), graph,
        lambda: make_xraft_cluster(("n1", "n2", "n3"), config), CONFIG,
    )
    started = time.monotonic()
    outcome = tester.run_suite(suite, stop_on_divergence=True, max_cases=500)
    elapsed = time.monotonic() - started
    failing = outcome.failures[0]
    print(f"bug found after {len(outcome.results)} cases / {elapsed:.1f}s: "
          f"{failing.divergence.headline()}")
    print(f"  bug-revealing case: {len(failing.case)} actions")


if __name__ == "__main__":
    scenario_hunt()
    suite_hunt()
