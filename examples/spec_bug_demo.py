#!/usr/bin/env python
"""Specification bugs: when the implementation is right and the model is
wrong (Figures 10 and 11).

The *fixed* raftkv implementation is tested against the official Raft
TLA+ specification (``spec_bugs=True``).  Both reported inconsistencies
are spec bugs:

* ``UpdateTerm`` interleaves as a standalone action that no real
  implementation has → *missing action UpdateTerm*,
* the candidate-steps-down branch of ``HandleAppendEntriesRequest``
  neither replies nor consumes its message → *inconsistent state for
  variable messages*.

The same step-down behaviour passes against the fixed specification,
which is how an investigator concludes the spec, not the code, is wrong
(Section 4.3.3).

Run:  python examples/spec_bug_demo.py
"""

from repro.core import ControlledTester, RunnerConfig
from repro.systems.raftkv import build_raftkv_mapping, make_raftkv_cluster
from repro.systems.raftkv.scenarios import (
    raft_spec_bug_missing_reply,
    raft_spec_bug_update_term,
)

CONFIG = RunnerConfig(match_timeout=1.0, done_timeout=1.0, quiesce_delay=0.05)


def main() -> None:
    for build in (raft_spec_bug_update_term, raft_spec_bug_missing_reply):
        scenario = build()
        tester = ControlledTester(
            build_raftkv_mapping(scenario.spec, scenario.buggy_config),
            scenario.graph,
            lambda: make_raftkv_cluster(scenario.servers, scenario.buggy_config),
            CONFIG,
        )
        result = tester.run_case(scenario.case)
        assert not result.passed
        print(f"{scenario.name}: {result.divergence.headline()}")
        print(f"  schedule ({len(scenario.case)} actions): "
              f"{scenario.case.describe()[:140]}...")
        print("  verdict: the implementation is fixed — this is a SPEC bug\n")


if __name__ == "__main__":
    main()
