#!/usr/bin/env python
"""ZooKeeper/ZAB: model checking, conformance and the two known bugs.

* model-check the ZAB specification (election + epoch handshake),
* run a conformance sample against the correct minizk,
* reproduce ZOOKEEPER-1419 (election never settles → unexpected action)
  and ZOOKEEPER-1653 (inconsistent epoch → missing StartElection).

Run:  python examples/zookeeper_election.py
"""

from repro.core import ControlledTester, RunnerConfig, generate_test_cases
from repro.specs.zab import ZabSpecOptions, build_zab_spec
from repro.systems.minizk import (
    MiniZkConfig,
    build_minizk_mapping,
    make_minizk_cluster,
)
from repro.systems.minizk.scenarios import zk_bug_1419, zk_bug_1653
from repro.tlaplus import check

CONFIG = RunnerConfig(match_timeout=1.0, done_timeout=1.0, quiesce_delay=0.05)


def conformance() -> None:
    spec = build_zab_spec(ZabSpecOptions(
        servers=("n1", "n2", "n3"), max_elections=1,
        max_crashes=0, max_restarts=0, starters=("n3",), name="zab",
    ))
    result = check(spec, max_states=40000)
    print("ZAB model:", result.summary())
    suite = generate_test_cases(result.graph, por=True)
    print(f"{len(suite)} EC+POR test cases")
    config = MiniZkConfig()
    tester = ControlledTester(
        build_minizk_mapping(spec, config), result.graph,
        lambda: make_minizk_cluster(("n1", "n2", "n3"), config), CONFIG,
    )
    outcome = tester.run_suite(suite, max_cases=25)
    status = "conform" if outcome.passed else "DIVERGE"
    print(f"correct minizk: {len(outcome.results)} cases {status}\n")


def bug_reproduction() -> None:
    for build in (zk_bug_1419, zk_bug_1653):
        scenario = build()
        tester = ControlledTester(
            build_minizk_mapping(scenario.spec, scenario.buggy_config),
            scenario.graph,
            lambda: make_minizk_cluster(scenario.servers, scenario.buggy_config),
            CONFIG,
        )
        result = tester.run_case(scenario.case)
        assert not result.passed
        print(f"{scenario.name}: {result.divergence.headline()}")
        print(f"  {len(scenario.case)}-action schedule, divergence at "
              f"step {result.divergence.step_index}")


if __name__ == "__main__":
    conformance()
    bug_reproduction()
