#!/usr/bin/env python
"""raftkv as a real key/value store — no Mocket attached.

The systems under test are ordinary distributed systems first: this
example elects a leader over blocking RPCs, writes through it, crashes
the leader and shows the data survive a restart.

Run:  python examples/raftkv_store.py
"""

import time

from repro.systems.raftkv import make_raftkv_cluster
from repro.systems.raftkv.node import KvRole


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    raise TimeoutError("condition not reached")


def main() -> None:
    with make_raftkv_cluster(("n1", "n2", "n3")) as cluster:
        # elect n1
        n1 = cluster.node("n1")
        n1.trigger_timeout()
        for peer in n1.peers:
            n1.solicit_vote(peer)
        wait_until(lambda: n1.role is KvRole.LEADER)
        print(f"n1 is leader of term {n1.current_term}")

        # write through the leader, replicate, commit
        for key, value in [("color", "blue"), ("animal", "capuchin")]:
            n1.client_request((key, value))
            for peer in n1.peers:
                n1.replicate(peer)
        wait_until(lambda: n1.commit_index == 2)
        print("leader state machine:", dict(n1.kv))

        # propagate the commit index so followers apply too
        for peer in n1.peers:
            n1.replicate(peer)
        wait_until(lambda: cluster.node("n2").get("color") == "blue")
        print("follower n2 reads color =", cluster.node("n2").get("color"))

        # crash + restart the leader: the log is durable
        cluster.crash_node("n1")
        print("n1 crashed; restarting...")
        reborn = cluster.restart_node("n1")
        print(f"n1 back as {reborn.role.name}, log={reborn.log}")
        assert reborn.log[0][1] == ("color", "blue")
        print("durable log intact after restart")


if __name__ == "__main__":
    main()
