#!/usr/bin/env python
"""Quickstart: the full Mocket pipeline on the paper's Figure 1 example.

1. Write a specification (here: the cache server of Figure 1).
2. Model-check it — the checker enumerates the verified state space
   (13 states for Data = {1, 2}, exactly Figure 2).
3. Generate test cases: edge-coverage-guided traversal + partial order
   reduction over the state graph.
4. Run controlled testing against an instrumented implementation — and
   watch a seeded bug fall out as a divergence report.

Run:  python examples/quickstart.py
"""

from repro.core import ControlledTester, RunnerConfig, generate_test_cases
from repro.specs import build_example_spec
from repro.systems.toycache import (
    ToyCacheConfig,
    build_toycache_mapping,
    make_toycache_cluster,
)
from repro.tlaplus import check, to_dot


def main() -> None:
    # -- 1+2: specification and model checking ----------------------------
    spec = build_example_spec(data=(1, 2))
    result = check(spec)
    print("model checking:", result.summary())
    print("  (Figure 2 is this graph; DOT dump below)")
    print("\n".join(to_dot(result.graph).splitlines()[:4]), "...\n")

    # -- 3: test-case generation ------------------------------------------
    suite = generate_test_cases(result.graph, por=True)
    print(f"generated {len(suite)} test cases "
          f"({suite.total_actions()} scheduled actions, "
          f"{suite.excluded_edges} edges dropped by POR)")
    print("first case:", suite[0].describe(), "\n")

    # -- 4: controlled testing --------------------------------------------
    def run(config: ToyCacheConfig, label: str) -> None:
        tester = ControlledTester(
            build_toycache_mapping(), result.graph,
            lambda: make_toycache_cluster(config),
            RunnerConfig(match_timeout=1.0, done_timeout=1.0),
        )
        outcome = tester.run_suite(suite, stop_on_divergence=True)
        if outcome.passed:
            print(f"{label}: all {len(outcome.results)} cases conform")
        else:
            failing = outcome.failures[0]
            print(f"{label}: divergence after {len(outcome.results)} cases —",
                  failing.divergence.headline())
            print("  schedule:", failing.case.describe())

    run(ToyCacheConfig(), "correct implementation")
    run(ToyCacheConfig(bug_wrong_max=True), "bug_wrong_max")
    run(ToyCacheConfig(bug_forget_respond=True), "bug_forget_respond")
    run(ToyCacheConfig(bug_double_respond=True), "bug_double_respond")


if __name__ == "__main__":
    main()
