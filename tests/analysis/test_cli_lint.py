"""End-to-end tests for ``mocket lint``: exit codes, JSON schema,
and the bundled targets staying clean."""

import json

import pytest

from repro.analysis import LintContext
from repro.analysis import targets as targets_mod
from repro.cli import main
from repro.core.mapping import SpecMapping
from .test_conformance_rules import make_spec

SYSTEMS = ("toycache", "pyxraft", "raftkv", "minizk")


class TestExitCodes:
    @pytest.mark.parametrize("system", SYSTEMS)
    def test_bundled_systems_pass_fail_on_error(self, system, capsys):
        assert main(["lint", system, "--fail-on", "error"]) == 0

    def test_all_passes_fail_on_warning(self, capsys):
        assert main(["lint", "all", "--fail-on", "warning"]) == 0
        out = capsys.readouterr().out
        for name in SYSTEMS + ("example", "xraft", "zab"):
            assert f"{name}:" in out

    def test_unknown_target_exits_with_message(self, capsys):
        with pytest.raises(SystemExit, match="unknown lint target"):
            main(["lint", "nosuch"])

    def test_defective_target_fails_and_none_disables(self, monkeypatch, capsys):
        spec = make_spec()
        broken = LintContext("broken", spec, SpecMapping(spec))
        monkeypatch.setattr(targets_mod, "resolve", lambda name: broken)
        assert main(["lint", "broken"]) == 1              # default: error
        assert main(["lint", "broken", "--fail-on", "none"]) == 0
        out = capsys.readouterr().out
        assert "MCK101" in out and "MCK103" in out

    def test_warning_threshold(self, monkeypatch, capsys):
        from repro.tlaplus.spec import Specification

        spec = Specification("warnful")
        spec.add_variable("n")
        spec.add_variable("ghost")

        @spec.init
        def init(const):
            return {"n": 0, "ghost": 0}

        @spec.action()
        def Incr(state, const):
            return {"n": state.n + 1}

        monkeypatch.setattr(targets_mod, "resolve",
                            lambda name: LintContext("warnful", spec))
        assert main(["lint", "warnful"]) == 0               # MCK001 is a warning
        assert main(["lint", "warnful", "--fail-on", "warning"]) == 1


class TestJsonReport:
    def test_schema_is_stable(self, capsys):
        assert main(["lint", "toycache", "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == 1
        assert document["target"] == "toycache"
        assert set(document) == {"version", "target", "rules_run",
                                 "findings", "summary"}
        assert set(document["summary"]) == {"errors", "warnings",
                                            "suppressed", "total"}

    def test_findings_carry_full_shape(self, capsys):
        # raftkv has one (suppressed) MCK204 finding to exercise the shape
        assert main(["lint", "raftkv", "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        [finding] = [f for f in document["findings"] if f["code"] == "MCK204"]
        assert set(finding) == {"code", "severity", "message", "file",
                                "line", "object", "suppressed"}
        assert finding["suppressed"] is True
        assert finding["severity"] == "warning"
        assert finding["file"].endswith("node.py")

    def test_text_report_mentions_suppression(self, capsys):
        assert main(["lint", "raftkv"]) == 0
        out = capsys.readouterr().out
        assert "(suppressed)" in out
        assert "1 suppressed" in out
