"""End-to-end tests for ``mocket lint``: exit codes, JSON schema,
and the bundled targets staying clean."""

import json

import pytest

from repro.analysis import LintContext
from repro.analysis import targets as targets_mod
from repro.cli import main
from repro.core.mapping import SpecMapping
from .test_conformance_rules import make_spec

SYSTEMS = ("toycache", "pyxraft", "raftkv", "minizk")


class TestExitCodes:
    @pytest.mark.parametrize("system", SYSTEMS)
    def test_bundled_systems_pass_fail_on_error(self, system, capsys):
        assert main(["lint", system, "--fail-on", "error"]) == 0

    def test_all_passes_fail_on_warning(self, capsys):
        assert main(["lint", "all", "--fail-on", "warning"]) == 0
        out = capsys.readouterr().out
        for name in SYSTEMS + ("example", "xraft", "zab"):
            assert f"{name}:" in out

    def test_unknown_target_exits_with_message(self, capsys):
        with pytest.raises(SystemExit, match="unknown lint target"):
            main(["lint", "nosuch"])

    def test_defective_target_fails_and_none_disables(self, monkeypatch, capsys):
        spec = make_spec()
        broken = LintContext("broken", spec, SpecMapping(spec))
        monkeypatch.setattr(targets_mod, "resolve", lambda name: broken)
        assert main(["lint", "broken"]) == 1              # default: error
        assert main(["lint", "broken", "--fail-on", "none"]) == 0
        out = capsys.readouterr().out
        assert "MCK101" in out and "MCK103" in out

    def test_warning_threshold(self, monkeypatch, capsys):
        from repro.tlaplus.spec import Specification

        spec = Specification("warnful")
        spec.add_variable("n")
        spec.add_variable("ghost")

        @spec.init
        def init(const):
            return {"n": 0, "ghost": 0}

        @spec.action()
        def Incr(state, const):
            return {"n": state.n + 1}

        monkeypatch.setattr(targets_mod, "resolve",
                            lambda name: LintContext("warnful", spec))
        assert main(["lint", "warnful"]) == 0               # MCK001 is a warning
        assert main(["lint", "warnful", "--fail-on", "warning"]) == 1


class TestJsonReport:
    def test_schema_is_stable(self, capsys):
        assert main(["lint", "toycache", "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == 1
        assert document["target"] == "toycache"
        assert set(document) == {"version", "target", "rules_run",
                                 "findings", "summary"}
        assert set(document["summary"]) == {"errors", "warnings",
                                            "suppressed", "total"}

    def test_findings_carry_full_shape(self, capsys):
        # raftkv has one (suppressed) MCK204 finding to exercise the shape
        assert main(["lint", "raftkv", "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        [finding] = [f for f in document["findings"] if f["code"] == "MCK204"]
        assert set(finding) == {"code", "severity", "message", "file",
                                "line", "object", "suppressed"}
        assert finding["suppressed"] is True
        assert finding["severity"] == "warning"
        assert finding["file"].endswith("node.py")

    def test_text_report_mentions_suppression(self, capsys):
        assert main(["lint", "raftkv"]) == 0
        out = capsys.readouterr().out
        assert "(suppressed)" in out
        assert "1 suppressed" in out

    def test_summary_line_reports_catalogue_size(self, capsys):
        from repro.analysis import all_rules

        total = len(all_rules())
        assert main(["lint", "raftkv"]) == 0
        out = capsys.readouterr().out
        # systems run the full catalogue ...
        assert f"raftkv: 0 error(s), 0 warning(s), 1 suppressed " \
               f"({total} of {total} rules)" in out
        # ... spec-only targets visibly run a subset of it
        assert main(["lint", "example"]) == 0
        out = capsys.readouterr().out
        assert f"(12 of {total} rules)" in out


class TestSarifReport:
    def _document(self, capsys, argv):
        assert main(argv) == 0
        return json.loads(capsys.readouterr().out)

    def test_single_aggregated_run(self, capsys):
        document = self._document(
            capsys, ["lint", "all", "--format", "sarif"])
        assert document["version"] == "2.1.0"
        assert "sarif-schema" in document["$schema"]
        [run] = document["runs"]
        assert run["tool"]["driver"]["name"] == "mocket-lint"

    def test_rules_are_reporting_descriptors(self, capsys):
        from repro.analysis import all_rules

        document = self._document(
            capsys, ["lint", "toycache", "--format", "sarif"])
        descriptors = document["runs"][0]["tool"]["driver"]["rules"]
        assert [d["id"] for d in descriptors] == \
            [r.code for r in all_rules()]
        for descriptor in descriptors:
            assert descriptor["name"]
            assert descriptor["shortDescription"]["text"]
            assert descriptor["defaultConfiguration"]["level"] in (
                "error", "warning", "note")

    def test_findings_become_sarif_results(self, capsys):
        # raftkv's suppressed MCK204 exercises every result feature
        document = self._document(
            capsys, ["lint", "raftkv", "--format", "sarif"])
        run = document["runs"][0]
        [result] = [r for r in run["results"] if r["ruleId"] == "MCK204"]
        assert result["level"] == "warning"
        assert result["message"]["text"].startswith("[raftkv] ")
        assert result["suppressions"] == [{"kind": "inSource"}]
        rule_index = result["ruleIndex"]
        assert run["tool"]["driver"]["rules"][rule_index]["id"] == "MCK204"
        [location] = result["locations"]
        physical = location["physicalLocation"]
        assert physical["artifactLocation"]["uri"].endswith("node.py")
        assert physical["region"]["startLine"] > 0

    def test_sarif_exit_code_still_honours_fail_on(self, monkeypatch, capsys):
        spec = make_spec()
        broken = LintContext("broken", spec, SpecMapping(spec))
        monkeypatch.setattr(targets_mod, "resolve", lambda name: broken)
        assert main(["lint", "broken", "--format", "sarif"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["runs"][0]["results"]

    def test_json_envelope_is_unchanged_by_the_sarif_reporter(self, capsys):
        # the v1 JSON schema is frozen; SARIF is a separate format, not
        # a mutation of it
        assert main(["lint", "toycache", "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert set(document) == {"version", "target", "rules_run",
                                 "findings", "summary"}
