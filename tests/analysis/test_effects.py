"""Unit tests for the static effect analyzer (repro.analysis.effects)."""

import pytest

from repro.analysis.effects import analyze_action, analyze_spec
from repro.specs import build_example_spec
from repro.specs.raft import build_raft_spec
from repro.specs.zab import build_zab_spec
from repro.tlaplus.spec import ActionKind, Specification, from_constant, in_flight


def make_spec(constants=None):
    spec = Specification("fx", constants=constants or {"Server": ("a", "b")})
    spec.add_variable("x")
    spec.add_variable("y")
    spec.add_variable("msgs", kind=__import__(
        "repro.tlaplus.spec", fromlist=["VarKind"]).VarKind.MESSAGE)
    return spec


class TestReadWriteExtraction:
    def test_attribute_and_subscript_reads(self):
        spec = make_spec()

        @spec.action()
        def A(state, const):
            return {"x": state.x + state["y"]}

        effects = analyze_action(spec.actions["A"])
        assert effects.reads == {"x", "y"}
        assert effects.writes == {"x"}
        assert effects.certifiable

    def test_none_return_and_partial_writes(self):
        spec = make_spec()

        @spec.action()
        def A(state, const):
            if state.x > 0:
                return None
            if state.y:
                return {"x": 1}
            return {"x": 0, "y": 1}

        effects = analyze_action(spec.actions["A"])
        assert effects.writes == {"x", "y"}   # union over branches

    def test_updates_dict_dataflow(self):
        spec = make_spec()

        @spec.action()
        def A(state, const):
            updates = {"x": state.x + 1}
            if state.y:
                updates["y"] = 0
            return updates

        effects = analyze_action(spec.actions["A"])
        assert effects.writes == {"x", "y"}
        assert not effects.unknown_writes

    def test_nested_def_return_resolution(self):
        spec = make_spec()

        @spec.action()
        def A(state, const):
            def reject():
                return {"y": 0}
            if state.x:
                return reject()
            return {"x": 1}

        effects = analyze_action(spec.actions["A"])
        assert effects.writes == {"x", "y"}

    def test_const_reads(self):
        spec = make_spec({"Limit": 3, "Server": ("a",)})

        @spec.action()
        def A(state, const):
            if state.x >= const["Limit"]:
                return None
            return {"x": state.x + 1}

        assert analyze_action(spec.actions["A"]).const_reads == {"Limit"}


class TestUnknownFlags:
    def test_dict_unpacking_is_unknown(self):
        spec = make_spec()

        @spec.action()
        def A(state, const):
            extra = {"y": 1}
            return {"x": 1, **extra}

        effects = analyze_action(spec.actions["A"])
        assert effects.unknown_writes
        assert not effects.certifiable

    def test_non_literal_return_is_unknown(self):
        spec = make_spec()

        def build(state):
            return {"x": state.x}

        @spec.action()
        def A(state, const):
            return dict(x=state.x)

        assert analyze_action(spec.actions["A"]).unknown_writes

    def test_state_escaping_to_unresolvable_call_is_unknown(self):
        spec = make_spec()

        @spec.action()
        def A(state, const, fn=len):
            fn(state)
            return {"x": 1}

        assert analyze_action(spec.actions["A"]).unknown_reads

    def test_dynamic_state_subscript_is_unknown(self):
        spec = make_spec()

        @spec.action()
        def A(state, const):
            key = "x"
            return {"x": state[key]}

        assert analyze_action(spec.actions["A"]).unknown_reads


class TestHelperTraversal:
    def test_module_level_helper_reads(self):
        spec = make_spec()

        def helper(st):
            return st.y + 1

        @spec.action()
        def A(state, const):
            return {"x": helper(state)}

        effects = analyze_action(spec.actions["A"])
        assert "y" in effects.reads
        assert not effects.unknown_reads

    def test_closure_helper_reads(self):
        spec = make_spec()

        def build():
            def helper(st):
                return st.y

            @spec.action()
            def A(state, const):
                return {"x": helper(state)}

        build()
        effects = analyze_action(spec.actions["A"])
        assert "y" in effects.reads
        assert not effects.unknown_reads


class TestDomains:
    def test_from_constant_domain_reads_constant(self):
        spec = make_spec()

        @spec.action(params={"i": from_constant("Server")})
        def A(state, const, i):
            return {"x": i}

        assert "Server" in analyze_action(spec.actions["A"]).const_reads

    def test_in_flight_domain_reads_bag(self):
        spec = make_spec()

        @spec.action(params={"m": in_flight("msgs")})
        def A(state, const, m):
            return {"x": m}

        assert "msgs" in analyze_action(spec.actions["A"]).reads

    def test_lambda_domain_reads(self):
        spec = make_spec()

        @spec.action(params={"i": lambda state, const: sorted(state.y)})
        def A(state, const, i):
            return {"x": i}

        effects = analyze_action(spec.actions["A"])
        assert "y" in effects.reads
        assert not effects.unknown_reads

    def test_message_var_counts_as_read(self):
        spec = make_spec()

        @spec.action(params={"m": in_flight("msgs")},
                     kind=ActionKind.MESSAGE_RECEIVE, msg_param="m",
                     message_var="msgs")
        def A(state, const, m):
            return {"x": 1}

        assert "msgs" in analyze_action(spec.actions["A"]).reads


class TestPurity:
    def test_random_call_is_flagged(self):
        import random as _random  # noqa: F401 — must resolve in the body
        spec = make_spec()

        @spec.action()
        def A(state, const):
            import random
            return {"x": random.random()}

        effects = analyze_action(spec.actions["A"])
        assert any(v.kind == "impure-call" for v in effects.violations)
        assert not effects.certifiable

    def test_set_iteration_is_flagged(self):
        spec = make_spec()

        @spec.action()
        def A(state, const):
            for v in {1, 2}:
                pass
            return {"x": 1}

        effects = analyze_action(spec.actions["A"])
        assert any(v.kind == "unordered-iteration"
                   for v in effects.violations)

    def test_state_mutation_is_flagged(self):
        spec = make_spec()

        @spec.action()
        def A(state, const):
            state.y.append(1)
            return {"x": 1}

        effects = analyze_action(spec.actions["A"])
        assert any(v.kind == "state-mutation" for v in effects.violations)

    def test_violation_lines_are_absolute(self):
        spec = make_spec()

        @spec.action()
        def A(state, const):
            state.y.append(1)
            return {"x": 1}

        effects = analyze_action(spec.actions["A"])
        [violation] = effects.violations
        # the anchor must be a real line of this test file
        assert violation.line is not None and violation.line > 100


class TestIndependence:
    def test_disjoint_footprints_are_independent(self):
        spec = make_spec()

        @spec.action()
        def A(state, const):
            return {"x": state.x + 1}

        @spec.action()
        def B(state, const):
            return {"y": state.y + 1}

        effects = analyze_spec(spec)
        assert effects.independent("A", "B")
        assert effects.independence().certified("A", "B")
        assert effects.independence().certified("B", "A")   # symmetric

    def test_write_read_conflict_blocks_independence(self):
        spec = make_spec()

        @spec.action()
        def A(state, const):
            return {"x": state.x + 1}

        @spec.action()
        def B(state, const):
            return {"y": state.x}    # reads what A writes

        effects = analyze_spec(spec)
        assert not effects.independent("A", "B")
        assert effects.conflicts("A", "B") == {"x"}

    def test_uncertifiable_action_is_never_independent(self):
        spec = make_spec()

        @spec.action()
        def A(state, const):
            extra = {}
            return {"x": 1, **extra}   # unknown writes

        @spec.action()
        def B(state, const):
            return {"y": 1}

        assert not analyze_spec(spec).independent("A", "B")

    def test_same_action_never_independent(self):
        spec = make_spec()

        @spec.action()
        def A(state, const):
            return {"x": 1}

        assert not analyze_spec(spec).independent("A", "A")


class TestBundledSpecs:
    """The analyzer must fully certify the bundled specs — no unknown
    effects and no purity violations anywhere (that exactness is what
    makes the POR fast path safe for them)."""

    @pytest.mark.parametrize("build", [
        build_example_spec, build_raft_spec, build_zab_spec,
    ])
    def test_fully_certified(self, build):
        effects = analyze_spec(build())
        for name, action in effects.actions.items():
            assert action.certifiable, (name, action.violations,
                                        action.unknown_reads,
                                        action.unknown_writes)
        assert not effects.invariants_unknown

    def test_raft_helper_and_updates_dict_extraction(self):
        effects = analyze_spec(build_raft_spec())
        # fold_update_term aliases state as `st`; its reads must appear
        hrvr = effects.actions["HandleRequestVoteResponse"]
        assert {"votesResponded", "votesGranted"} <= hrvr.writes
        haer = effects.actions["HandleAppendEntriesRequest"]
        # the nested reject() closure's return dict must be resolved
        assert {"messages"} <= haer.writes

    def test_zab_quorum_helper_reads(self):
        effects = analyze_spec(build_zab_spec())
        # voteTable is read only inside _quorum_for_vote(state, ...) —
        # without transitive helper analysis it would look write-only
        assert "voteTable" in effects.actions["BecomeLeading"].reads

    def test_known_independent_pairs(self):
        raft = analyze_spec(build_raft_spec())
        assert raft.independent("Timeout", "DropMessage")
        assert not raft.independent("Timeout", "RequestVote")
        zab = analyze_spec(build_zab_spec())
        assert zab.independent("HandleVote", "HandleLeaderInfo")
        assert not zab.independent("Crash", "HandleVote")
