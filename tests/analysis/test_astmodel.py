"""ImplModel extraction edge cases: nested spans, mention-only helper
coverage, hook-write attribution, and the per-file extraction cache."""

import textwrap

from repro.analysis import ImplModel
from repro.analysis.astmodel import clear_cache


def model_of(tmp_path, source, name="node.py"):
    (tmp_path / name).write_text(textwrap.dedent(source))
    return ImplModel.from_package(str(tmp_path))


class TestNestedActionSpans:
    def test_nested_spans_cover_their_union(self, tmp_path):
        source = """
        class Node:
            n = traced_field("n")
            m = traced_field("m")

            def step(self):
                with action_span(self, "Outer", {}):
                    self.n += 1
                    with action_span(self, "Inner", {}):
                        self.m += 1
                self.n = 0
        """
        model = model_of(tmp_path, source)
        assert {h.action for h in model.hooks} == {"Outer", "Inner"}
        # both in-span writes are covered; only the trailing reset leaks
        [write] = model.shadow_writes
        assert (write.attr, write.method) == ("n", "step")

    def test_nested_span_write_attributed_to_both_actions(self, tmp_path):
        source = """
        class Node:
            m = traced_field("m")

            def step(self):
                with action_span(self, "Outer", {}):
                    with action_span(self, "Inner", {}):
                        self.m += 1
        """
        model = model_of(tmp_path, source)
        assert {(w.action, w.attr) for w in model.hook_writes} == \
            {("Outer", "m"), ("Inner", "m")}

    def test_sequential_spans_attribute_writes_separately(self, tmp_path):
        source = """
        class Node:
            n = traced_field("n")
            m = traced_field("m")

            def step(self):
                with action_span(self, "First", {}):
                    self.n += 1
                with action_span(self, "Second", {}):
                    self.m += 1
        """
        model = model_of(tmp_path, source)
        assert {(w.action, w.attr) for w in model.hook_writes} == \
            {("First", "n"), ("Second", "m")}


class TestHelperCoverage:
    def test_mention_only_reference_from_hook_covers_helper(self, tmp_path):
        # `self.helper` passed as a callback, never called directly:
        # the mention sits on a covered line, so the helper is covered
        source = """
        class Node:
            n = traced_field("n")

            @mocket_action("Incr")
            def incr(self):
                self.defer(self._bump)

            def _bump(self):
                self.n += 1
        """
        assert model_of(tmp_path, source).shadow_writes == []

    def test_mention_from_uncovered_method_leaks(self, tmp_path):
        source = """
        class Node:
            n = traced_field("n")

            @mocket_action("Incr")
            def incr(self):
                self.defer(self._bump)

            def rogue(self):
                self.defer(self._bump)

            def _bump(self):
                self.n += 1
        """
        [write] = model_of(tmp_path, source).shadow_writes
        assert write.method == "_bump"

    def test_helper_chain_covers_transitively(self, tmp_path):
        # incr -> _outer -> _bump: the fixpoint must propagate coverage
        # through the intermediate helper
        source = """
        class Node:
            n = traced_field("n")

            @mocket_action("Incr")
            def incr(self):
                self._outer()

            def _outer(self):
                self._bump()

            def _bump(self):
                self.n += 1
        """
        assert model_of(tmp_path, source).shadow_writes == []

    def test_helper_mentioned_inside_span_block_is_covered(self, tmp_path):
        source = """
        class Node:
            n = traced_field("n")

            def step(self):
                with action_span(self, "Step", {}):
                    self._bump()

            def _bump(self):
                self.n += 1
        """
        assert model_of(tmp_path, source).shadow_writes == []

    def test_helper_writes_are_not_attributed_to_actions(self, tmp_path):
        # transitively-covered helper writes carry no action attribution
        # (a helper may run under several hooks), so MCK306 stays out
        source = """
        class Node:
            n = traced_field("n")

            @mocket_action("Incr")
            def incr(self):
                self._bump()

            @mocket_action("Decr")
            def decr(self):
                self._bump()

            def _bump(self):
                self.n += 1
        """
        model = model_of(tmp_path, source)
        assert model.shadow_writes == []
        assert model.hook_writes == []


class TestHookWriteAttribution:
    def test_decorated_method_write(self, tmp_path):
        source = """
        class Node:
            n = traced_field("shadowN")

            @mocket_action("Incr", ("i",))
            def incr(self):
                self.n += 1
        """
        [write] = model_of(tmp_path, source).hook_writes
        assert (write.attr, write.spec_name, write.action,
                write.class_name, write.method) == \
            ("n", "shadowN", "Incr", "Node", "incr")
        assert write.file.endswith("node.py")
        assert write.line > 0

    def test_init_writes_are_covered_but_not_attributed(self, tmp_path):
        source = """
        class Node:
            n = traced_field("n")

            def __init__(self):
                self.n = 0
        """
        model = model_of(tmp_path, source)
        assert model.shadow_writes == []
        assert model.hook_writes == []


class TestFileCache:
    def test_repeated_extraction_shares_the_parse(self, tmp_path):
        source = """
        class Node:
            n = traced_field("n")

            @mocket_action("Incr")
            def incr(self):
                self.n += 1
        """
        first = model_of(tmp_path, source)
        second = ImplModel.from_package(str(tmp_path))
        assert second.shadow_names == first.shadow_names
        assert second.hook_actions == first.hook_actions
        # cache hit: the frozen entries are literally shared
        assert second.traced_fields[0] is first.traced_fields[0]
        assert second.hooks[0] is first.hooks[0]

    def test_rewritten_file_invalidates_the_entry(self, tmp_path):
        model_of(tmp_path, """
        class Node:
            n = traced_field("n")
        """)
        import os
        path = tmp_path / "node.py"
        path.write_text(textwrap.dedent("""
        class Node:
            m = traced_field("m")
        """))
        # force a different (mtime_ns, size)-signature even on coarse
        # filesystem timestamps
        os.utime(path, ns=(1, 1))
        model = ImplModel.from_package(str(tmp_path))
        assert model.shadow_names == {"m"}

    def test_clear_cache_forces_reextraction(self, tmp_path):
        first = model_of(tmp_path, """
        class Node:
            n = traced_field("n")
        """)
        clear_cache()
        second = ImplModel.from_package(str(tmp_path))
        assert second.shadow_names == first.shadow_names
        assert second.traced_fields[0] is not first.traced_fields[0]

    def test_merge_accumulates_across_files(self, tmp_path):
        model_of(tmp_path, """
        class A:
            n = traced_field("n")
        """, name="a.py")
        model = model_of(tmp_path, """
        class B:
            m = traced_field("m")

            @mocket_action("Incr")
            def incr(self):
                self.m += 1
        """, name="b.py")
        assert model.shadow_names == {"n", "m"}
        assert len(model.files) == 2
