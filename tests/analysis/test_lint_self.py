"""Slow self-lint gate: every bundled target must stay free of
unsuppressed findings (docs/ANALYSIS.md documents the workflow)."""

import pytest

from repro.analysis import Severity, lint_target
from repro.analysis.targets import all_targets


@pytest.mark.slow
@pytest.mark.parametrize("target", all_targets())
def test_bundled_target_lints_clean(target):
    result = lint_target(target)
    errors = result.unsuppressed(Severity.ERROR)
    assert errors == [], \
        f"{target}: unsuppressed errors: {[f.message for f in errors]}"
    warnings = result.unsuppressed(Severity.WARNING)
    assert warnings == [], \
        f"{target}: unsuppressed warnings: {[f.message for f in warnings]}"
