"""Slow guard: linting the heaviest bundled target stays under 2 s."""

import os
import sys

import pytest

BENCH_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "benchmarks")
sys.path.insert(0, os.path.abspath(BENCH_DIR))

import lint_bench  # noqa: E402  (benchmarks/ is not a package)


@pytest.mark.slow
class TestLintPerfGuard:
    def test_pyxraft_lint_under_threshold(self):
        results = lint_bench.measure(repeats=3)
        assert results["best_s"] <= lint_bench.DEFAULT_THRESHOLD_S, results

    def test_guard_script_exits_clean(self, capsys):
        assert lint_bench.main(["--repeats", "1"]) == 0
        assert "OK" in capsys.readouterr().out
