"""Mapping-level conformance rules (MCK101-MCK105) and the shared
``SpecMapping.problems`` source of truth."""

import pytest

from repro.analysis import LintContext, run_lint
from repro.core.mapping import MappingError, SpecMapping
from repro.tlaplus.spec import ActionKind, Specification, VarKind


def make_spec():
    spec = Specification("fix")
    spec.add_variable("n")
    spec.add_variable("c", kind=VarKind.COUNTER)

    @spec.init
    def init(const):
        return {"n": 0, "c": 0}

    @spec.action()
    def Incr(state, const):
        return {"n": state.n + 1, "c": state.c}

    @spec.action(kind=ActionKind.FAULT)
    def Crash(state, const):
        return {"c": state.c + 1}

    @spec.action(kind=ActionKind.USER_REQUEST)
    def Ask(state, const):
        return {"n": 0}

    return spec


def make_mapping(spec):
    return (SpecMapping(spec)
            .map_variable("n", "shadowN")
            .map_action("Incr")
            .map_crash("Crash")
            .map_user_request("Ask", run=lambda cluster, params, occurrence: None))


def lint_codes(spec, mapping):
    result = run_lint(LintContext("fixture", spec, mapping))
    return [f.code for f in result.findings]


class TestMappingRules:
    def test_complete_mapping_is_clean(self):
        spec = make_spec()
        mapping = make_mapping(spec)
        assert lint_codes(spec, mapping) == []
        mapping.validate()  # does not raise

    def test_mck101_unmapped_variable(self):
        spec = make_spec()
        mapping = (SpecMapping(spec)
                   .map_action("Incr").map_crash("Crash")
                   .map_user_request("Ask", run=lambda c, p, o: None))
        assert lint_codes(spec, mapping) == ["MCK101"]

    def test_mck102_forbidden_counter_mapping(self):
        spec = make_spec()
        mapping = make_mapping(spec).map_variable("c", "shadowC")
        assert lint_codes(spec, mapping) == ["MCK102"]

    def test_mck103_unmapped_action(self):
        spec = make_spec()
        mapping = (SpecMapping(spec)
                   .map_variable("n", "shadowN")
                   .map_crash("Crash")
                   .map_user_request("Ask", run=lambda c, p, o: None))
        assert lint_codes(spec, mapping) == ["MCK103"]

    def test_mck104_fault_mapped_as_spontaneous(self):
        spec = make_spec()
        mapping = (SpecMapping(spec)
                   .map_variable("n", "shadowN")
                   .map_action("Incr").map_action("Crash")
                   .map_user_request("Ask", run=lambda c, p, o: None))
        assert lint_codes(spec, mapping) == ["MCK104"]

    def test_mck104_user_request_mapped_as_spontaneous(self):
        spec = make_spec()
        mapping = (SpecMapping(spec)
                   .map_variable("n", "shadowN")
                   .map_action("Incr").map_crash("Crash").map_action("Ask"))
        assert lint_codes(spec, mapping) == ["MCK104"]


class TestValidateAggregation:
    """Satellite: validate() reports *all* problems in one MappingError."""

    def test_empty_mapping_reports_every_problem(self):
        spec = make_spec()
        mapping = SpecMapping(spec)
        with pytest.raises(MappingError) as excinfo:
            mapping.validate()
        problems = excinfo.value.problems
        assert sorted(p.code for p in problems) == \
            ["MCK101", "MCK103", "MCK103", "MCK103"]
        # the message carries every problem, ";"-joined
        assert str(excinfo.value).count(";") == len(problems) - 1
        for problem in problems:
            assert problem.message in str(excinfo.value)

    def test_linter_and_validate_agree(self):
        spec = make_spec()
        mapping = SpecMapping(spec).map_action("Ask")  # wrong trigger too
        with pytest.raises(MappingError) as excinfo:
            mapping.validate()
        runtime_codes = sorted(p.code for p in excinfo.value.problems)
        static_codes = sorted(c for c in lint_codes(spec, mapping)
                              if c.startswith("MCK1"))
        assert runtime_codes == static_codes

    def test_point_errors_have_no_problem_list(self):
        spec = make_spec()
        with pytest.raises(MappingError) as excinfo:
            SpecMapping(spec).map_variable("nope")
        assert excinfo.value.problems == []


class TestTranslatorArity:
    def test_mck105_to_spec_wrong_arity(self):
        spec = make_spec()
        mapping = make_mapping(spec)
        mapping.map_variable("n", "shadowN", to_spec=lambda: 0)
        assert lint_codes(spec, mapping) == ["MCK105"]

    def test_mck105_compare_wrong_arity(self):
        spec = make_spec()
        mapping = make_mapping(spec)
        mapping.map_variable("n", "shadowN", compare=lambda a: True)
        assert lint_codes(spec, mapping) == ["MCK105"]

    def test_mck105_derive_wrong_arity(self):
        spec = make_spec()
        mapping = make_mapping(spec)
        mapping.map_variable("n", "shadowN", derive=lambda cluster: 0)
        assert lint_codes(spec, mapping) == ["MCK105"]

    def test_mck105_run_wrong_arity(self):
        spec = make_spec()
        mapping = make_mapping(spec)
        mapping.map_user_request("Ask", run=lambda cluster: None)
        assert lint_codes(spec, mapping) == ["MCK105"]

    def test_mck105_duplicate_wrong_arity(self):
        spec = make_spec()
        mapping = make_mapping(spec)
        mapping.map_duplicate("Crash", duplicate=lambda msg: None)
        assert lint_codes(spec, mapping) == ["MCK105"]

    def test_varargs_and_builtins_accepted(self):
        spec = make_spec()
        mapping = make_mapping(spec)
        mapping.map_variable("n", "shadowN", to_spec=len,
                             compare=lambda *args: True)
        assert lint_codes(spec, mapping) == []


def make_budget_spec(max_crashes):
    """A spec whose fault vocabulary is gated by a budget constant."""
    spec = Specification("budget", constants={"MaxCrashes": max_crashes})
    spec.add_variable("n")
    spec.add_variable("crashes", kind=VarKind.COUNTER)

    @spec.init
    def init(const):
        return {"n": 0, "crashes": 0}

    @spec.action()
    def Incr(state, const):
        return {"n": state.n + 1}

    @spec.action(kind=ActionKind.FAULT)
    def Crash(state, const):
        if state.crashes >= const["MaxCrashes"]:
            return None
        return {"crashes": state.crashes + 1}

    return spec


def make_budget_mapping(spec):
    return (SpecMapping(spec)
            .map_variable("n", "shadowN")
            .map_action("Incr")
            .map_crash("Crash"))


class TestDormantFaultVocabulary:
    def test_live_budget_with_fault_hook_is_clean(self):
        spec = make_budget_spec(max_crashes=1)
        assert lint_codes(spec, make_budget_mapping(spec)) == []

    def test_mck106_zero_budget_is_dormant(self):
        spec = make_budget_spec(max_crashes=0)
        mapping = make_budget_mapping(spec)
        result = run_lint(LintContext("fixture", spec, mapping))
        findings = [f for f in result.findings if f.code == "MCK106"]
        assert len(findings) == 1
        assert findings[0].severity.name == "WARNING"
        assert "MaxCrashes" in findings[0].message
        assert "Crash" in findings[0].message

    def test_mck106_no_fault_hook_in_the_mapping(self):
        spec = make_budget_spec(max_crashes=1)
        # Crash mapped, but as a spontaneous action: MCK104 catches the
        # wrong trigger and MCK106 the undriveable fault vocabulary
        mapping = (SpecMapping(spec)
                   .map_variable("n", "shadowN")
                   .map_action("Incr")
                   .map_action("Crash"))
        assert sorted(lint_codes(spec, mapping)) == ["MCK104", "MCK106"]

    def test_constantless_fault_actions_stay_silent(self):
        # the MCK104 fixture's Crash reads no budget constant: no basis
        # for a dormancy claim, so MCK106 must not fire (either clause)
        spec = make_spec()
        mapping = (SpecMapping(spec)
                   .map_variable("n", "shadowN")
                   .map_action("Incr").map_action("Crash")
                   .map_user_request("Ask", run=lambda c, p, o: None))
        assert lint_codes(spec, mapping) == ["MCK104"]

    def test_boolean_constants_are_not_budgets(self):
        spec = Specification("flags", constants={"EnableCrash": False})
        spec.add_variable("n")

        @spec.init
        def init(const):
            return {"n": 0}

        @spec.action()
        def Incr(state, const):
            return {"n": state.n + 1}

        @spec.action(kind=ActionKind.FAULT)
        def Crash(state, const):
            if not const["EnableCrash"]:
                return None
            return {"n": 0}

        mapping = (SpecMapping(spec)
                   .map_variable("n", "shadowN")
                   .map_action("Incr")
                   .map_crash("Crash"))
        # no budget-rule findings; MCK303 correctly flags that the
        # guard-disabled Crash action is dead under EnableCrash=False
        assert lint_codes(spec, mapping) == ["MCK303"]


class TestUnboundConformAction:
    def test_no_event_bindings_stays_silent(self):
        # a mapping never used for conformance must not be nagged
        spec = make_spec()
        assert "MCK107" not in lint_codes(spec, make_mapping(spec))

    def test_mck107_partial_bindings_flag_the_rest(self):
        spec = make_spec()
        mapping = make_mapping(spec).bind_event("Incr")
        findings = lint_codes(spec, mapping)
        # Crash and Ask are observable-in-principle but unbound
        assert findings.count("MCK107") == 2

    def test_bind_default_events_is_clean(self):
        spec = make_spec()
        mapping = make_mapping(spec).bind_default_events()
        assert lint_codes(spec, mapping) == []

    def test_bundled_system_mappings_are_bound(self):
        # the four bundled systems ship with default bindings, so their
        # mappings stay MCK107-clean and usable with `mocket conform`
        from repro.analysis import lint_target

        for name in ("toycache", "pyxraft", "raftkv", "minizk"):
            result = lint_target(name)
            assert not [f for f in result.findings if f.code == "MCK107"], name
