"""Effect rules (MCK301-MCK306): accept and reject fixtures per rule."""

import textwrap

from repro.analysis import ImplModel, LintContext, Severity, run_lint
from repro.core.mapping import SpecMapping
from repro.tlaplus.spec import Specification


def effect_codes(spec, mapping=None, impl=None):
    result = run_lint(LintContext("fixture", spec, mapping, impl))
    return [f.code for f in result.findings if f.code.startswith("MCK3")]


def effect_findings(spec, mapping=None, impl=None):
    result = run_lint(LintContext("fixture", spec, mapping, impl))
    return [f for f in result.findings if f.code.startswith("MCK3")]


def base_spec(constants=None):
    """Two variables, each read and written by its own action: every
    MCK30x rule is silent on this shape."""
    spec = Specification("fx", constants=constants or {})
    spec.add_variable("n")
    spec.add_variable("m")

    @spec.init
    def init(const):
        return {"n": 0, "m": 0}

    @spec.action()
    def Incr(state, const):
        return {"n": state.n + 1}

    @spec.action()
    def Bump(state, const):
        return {"m": state.m + 1}

    return spec


class TestMCK301WriteOnly:
    def test_base_spec_is_clean(self):
        assert effect_codes(base_spec()) == []

    def test_written_but_never_read_variable(self):
        spec = base_spec()
        spec.add_variable("ghost")

        @spec.action()
        def Haunt(state, const):
            if state.n:
                return {"ghost": state.n}
            return None

        [finding] = effect_findings(spec)
        assert finding.code == "MCK301"
        assert finding.severity is Severity.WARNING
        assert "'ghost'" in finding.message
        assert "Haunt" in finding.message

    def test_invariant_read_keeps_variable_live(self):
        spec = base_spec()
        spec.add_variable("ghost")

        @spec.action()
        def Haunt(state, const):
            return {"ghost": state.n}

        @spec.invariant()
        def GhostOk(state, const):
            return state.ghost >= 0

        assert effect_codes(spec) == []

    def test_domain_read_keeps_variable_live(self):
        spec = base_spec()
        spec.add_variable("ghost")

        @spec.action(params={"g": lambda state, const: sorted(state.ghost)})
        def Haunt(state, const, g):
            return {"ghost": (g,)}

        assert effect_codes(spec) == []

    def test_any_unknown_footprint_silences_the_rule(self):
        spec = base_spec()
        spec.add_variable("ghost")

        @spec.action()
        def Haunt(state, const):
            return {"ghost": state.n}

        @spec.action()
        def Opaque(state, const):
            extra = {"n": 1}
            return {**extra}   # unknown writes: no basis for liveness claims

        assert effect_codes(spec) == []


class TestMCK302ReadOnly:
    def test_read_but_never_written_variable(self):
        spec = base_spec()
        spec.add_variable("cfg")

        @spec.action()
        def UseCfg(state, const):
            return {"n": state.n + state.cfg}

        [finding] = effect_findings(spec)
        assert finding.code == "MCK302"
        assert finding.severity is Severity.WARNING
        assert "'cfg'" in finding.message
        assert "constant" in finding.message

    def test_unread_unwritten_variable_is_not_this_rules_business(self):
        spec = base_spec()
        spec.add_variable("idle")   # structural rules own this case
        assert "MCK302" not in effect_codes(spec)


class TestMCK303UnsatisfiableGuard:
    def _guarded_spec(self, enabled):
        spec = base_spec(constants={"Enable": enabled, "Max": 2})

        @spec.action()
        def Guarded(state, const):
            if not const["Enable"]:
                return None
            return {"n": 0}

        return spec

    def test_guard_false_under_constants_fires(self):
        [finding] = effect_findings(self._guarded_spec(enabled=False))
        assert finding.code == "MCK303"
        assert "'Guarded'" in finding.message
        assert finding.file and finding.file.endswith("test_effects_rules.py")

    def test_guard_true_under_constants_is_clean(self):
        assert effect_codes(self._guarded_spec(enabled=True)) == []

    def test_arithmetic_and_len_guards_evaluate(self):
        spec = base_spec(constants={"Quorum": 2, "Server": ("a", "b")})

        @spec.action()
        def Dead(state, const):
            if len(const["Server"]) < const["Quorum"] + 1:
                return None
            return {"n": 0}

        assert effect_codes(spec) == ["MCK303"]

    def test_state_dependent_guard_is_not_evaluated(self):
        spec = base_spec(constants={"Enable": False})

        @spec.action()
        def Mixed(state, const):
            if not const["Enable"] and state.n == 0:
                return None
            return {"n": 0}

        assert effect_codes(spec) == []

    def test_guard_behind_state_statement_is_skipped(self):
        # only *leading* const guards count: after a state-dependent
        # early return the const guard is no longer proof of deadness
        spec = base_spec(constants={"Enable": False})

        @spec.action()
        def Later(state, const):
            if state.n > 0:
                return None
            if not const["Enable"]:
                return None
            return {"n": 0}

        assert effect_codes(spec) == []


class TestMCK304UndeclaredUpdate:
    def test_undeclared_key_is_an_error(self):
        spec = base_spec()

        @spec.action()
        def Typo(state, const):
            return {"nn": state.n + 1}

        [finding] = effect_findings(spec)
        assert finding.code == "MCK304"
        assert finding.severity is Severity.ERROR
        assert "'nn'" in finding.message
        assert finding.line and finding.line > 0

    def test_tracked_updates_dict_is_also_checked(self):
        spec = base_spec()

        @spec.action()
        def Typo(state, const):
            updates = {"n": state.n}
            updates["mm"] = 1
            return updates

        assert effect_codes(spec) == ["MCK304"]


class TestMCK305Nondeterminism:
    def test_random_call_is_an_error(self):
        spec = base_spec()

        @spec.action()
        def Flaky(state, const):
            import random
            return {"n": random.randint(0, 1)}

        findings = [f for f in effect_findings(spec) if f.code == "MCK305"]
        assert findings
        assert findings[0].severity is Severity.ERROR
        assert "Flaky" in findings[0].message

    def test_set_iteration_is_an_error(self):
        spec = base_spec()

        @spec.action()
        def Unordered(state, const):
            total = 0
            for v in {1, 2, 3}:
                total += v
            return {"n": total}

        assert "MCK305" in effect_codes(spec)

    def test_state_mutation_is_an_error(self):
        spec = base_spec()

        @spec.action()
        def Mutator(state, const):
            state.n += 1
            return {"n": state.n}

        assert "MCK305" in effect_codes(spec)


def impl_model(tmp_path, source):
    (tmp_path / "node.py").write_text(textwrap.dedent(source))
    return ImplModel.from_package(str(tmp_path))


def impl_mapping(spec):
    return (SpecMapping(spec)
            .map_variable("n", "n")
            .map_variable("m", "m")
            .map_action("Incr")
            .map_action("Bump"))


CLEAN_IMPL = """
class Node:
    n = traced_field("n")
    m = traced_field("m")

    def __init__(self):
        self.n = 0
        self.m = 0

    @mocket_action("Incr")
    def incr(self):
        self.n += 1

    @mocket_action("Bump")
    def bump(self):
        self.m += 1
"""


class TestMCK306FootprintDrift:
    def test_matching_footprints_are_clean(self, tmp_path):
        spec = base_spec()
        assert effect_codes(spec, impl_mapping(spec),
                            impl_model(tmp_path, CLEAN_IMPL)) == []

    def test_hook_writing_outside_spec_footprint(self, tmp_path):
        source = CLEAN_IMPL.replace(
            "self.n += 1", "self.n += 1\n        self.m = 0")
        spec = base_spec()
        [finding] = effect_findings(spec, impl_mapping(spec),
                                    impl_model(tmp_path, source))
        assert finding.code == "MCK306"
        assert finding.severity is Severity.WARNING
        assert "'m'" in finding.message
        assert "'Incr'" in finding.message
        assert finding.file and finding.file.endswith("node.py")

    def test_action_span_write_outside_footprint(self, tmp_path):
        source = CLEAN_IMPL.replace(
            "self.n += 1",
            'with action_span(self, "Incr", {}):\n'
            "            self.m = 0")
        spec = base_spec()
        codes = effect_codes(spec, impl_mapping(spec),
                             impl_model(tmp_path, source))
        assert codes == ["MCK306"]

    def test_unknown_hook_action_is_not_this_rules_business(self, tmp_path):
        source = CLEAN_IMPL + """
    @mocket_action("Mystery")
    def mystery(self):
        self.m = 0
"""
        spec = base_spec()
        # MCK204 reports the unknown hook; MCK306 must stay silent
        assert effect_codes(spec, impl_mapping(spec),
                            impl_model(tmp_path, source)) == []

    def test_rule_requires_an_impl_model(self):
        spec = base_spec()
        result = run_lint(LintContext("fixture", spec, impl_mapping(spec)))
        assert "MCK306" not in [f.code for f in result.findings]
