"""End-to-end tests for ``mocket analyze``: effect tables, the JSON
envelope, and the DOT dependency graph."""

import json

import pytest

from repro.cli import main

ALL_TARGETS = ("toycache", "pyxraft", "raftkv", "minizk",
               "example", "xraft", "zab")


class TestTextReport:
    def test_spec_target_effect_table(self, capsys):
        assert main(["analyze", "xraft"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("raft-xraft:")
        # every action row carries the full footprint triple and a flag
        assert "reads={" in out and "writes={" in out and "consts={" in out
        assert "[ok]" in out
        assert "statically independent pairs:" in out
        # one hand-checked pair: Timeout only writes state/votes*,
        # DropMessage only touches the message bag
        assert "DropMessage || Timeout" in out

    def test_system_target_resolves_through_lint_targets(self, capsys):
        assert main(["analyze", "toycache"]) == 0
        assert "action(s)" in capsys.readouterr().out

    @pytest.mark.parametrize("target", ALL_TARGETS)
    def test_bundled_targets_are_fully_certified(self, target, capsys):
        # the POR fast path leans on this: no unknown footprints and no
        # purity violations anywhere in the bundled specs
        assert main(["analyze", target]) == 0
        out = capsys.readouterr().out
        assert "?" not in out
        assert "violation" not in out

    def test_unknown_target_exits_with_message(self, capsys):
        with pytest.raises(SystemExit, match="unknown lint target"):
            main(["analyze", "nosuch"])


class TestJsonReport:
    def test_envelope_shape(self, capsys):
        assert main(["analyze", "zab", "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == 1
        assert document["spec"] == "zab"
        assert set(document) == {"version", "spec", "actions",
                                 "independent_pairs", "dependencies",
                                 "invariant_reads"}

    def test_action_entries_have_stable_keys(self, capsys):
        assert main(["analyze", "example", "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        for action in document["actions"]:
            assert set(action) >= {"name", "reads", "writes", "const_reads",
                                   "certifiable"}
            assert action["certifiable"] is True

    def test_pairs_and_dependencies_partition_the_action_pairs(self, capsys):
        assert main(["analyze", "zab", "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        names = [a["name"] for a in document["actions"]]
        independent = {frozenset(p) for p in document["independent_pairs"]}
        dependent = {frozenset((d["a"], d["b"]))
                     for d in document["dependencies"]}
        assert not independent & dependent
        total = len(names) * (len(names) - 1) // 2
        assert len(independent) + len(dependent) == total
        for dep in document["dependencies"]:
            assert dep["vars"], dep  # every dependency names its conflict


class TestDotOutput:
    def test_dot_file_is_written(self, tmp_path, capsys):
        dot = tmp_path / "deps.dot"
        assert main(["analyze", "zab", "--dot", str(dot)]) == 0
        assert f"written to {dot}" in capsys.readouterr().out
        text = dot.read_text()
        assert text.startswith('graph "zab-dependencies" {')
        assert text.rstrip().endswith("}")
        # fully certified spec: no dashed (uncertifiable) nodes
        assert "style=dashed" not in text
        assert '"Crash" -- "HandleVote"' in text  # Crash writes 'online'
        assert '"HandleLeaderInfo" -- "HandleVote"' not in text

    def test_dot_edges_match_json_dependencies(self, tmp_path, capsys):
        dot = tmp_path / "deps.dot"
        assert main(["analyze", "xraft", "--format", "json",
                     "--dot", str(dot)]) == 0
        out = capsys.readouterr().out
        document = json.loads(out[:out.rindex("}") + 1])
        text = dot.read_text()
        edges = [line for line in text.splitlines() if " -- " in line]
        assert len(edges) == len(document["dependencies"])
