"""One fixture spec per spec-rule code (MCK001-MCK007), each triggering
its rule exactly once."""

from repro.analysis import LintContext, run_lint
from repro.tlaplus.spec import (
    ActionKind, Specification, VarKind, from_constant, in_flight,
)

# A module-level value a fixture constant can alias (the detector must
# see constants used through globals, like raft.py's role model values).
SENTINEL = "sentinel-role"


def lint_codes(spec):
    result = run_lint(LintContext("fixture", spec))
    return [f.code for f in result.findings]


def test_mck001_unreferenced_variable():
    spec = Specification("s")
    spec.add_variable("n")
    spec.add_variable("ghost")

    @spec.init
    def init(const):
        return {"n": 0, "ghost": 0}

    @spec.action()
    def Incr(state, const):
        return {"n": state.n + 1}

    assert lint_codes(spec) == ["MCK001"]


def test_mck001_quiet_on_subscript_reference():
    spec = Specification("s")
    spec.add_variable("n")

    @spec.init
    def init(const):
        return {"n": 0}

    @spec.action()
    def Incr(state, const):
        return {"n": state["n"] + 1}

    assert lint_codes(spec) == []


def test_mck002_unknown_constant_domain():
    spec = Specification("s")
    spec.add_variable("n")

    @spec.init
    def init(const):
        return {"n": 0}

    @spec.action(params={"i": from_constant("Peers")})
    def Touch(state, const, i):
        return {"n": state.n + 1}

    assert lint_codes(spec) == ["MCK002"]


def test_mck003_in_flight_over_undeclared_variable():
    spec = Specification("s")
    spec.add_variable("n")

    @spec.init
    def init(const):
        return {"n": 0}

    @spec.action(params={"m": in_flight("bag")})
    def Recv(state, const, m):
        return {"n": state.n + 1}

    assert lint_codes(spec) == ["MCK003"]


def test_mck003_in_flight_over_state_variable():
    spec = Specification("s")
    spec.add_variable("n")

    @spec.init
    def init(const):
        return {"n": 0}

    @spec.action(params={"m": in_flight("n")})
    def Recv(state, const, m):
        return {"n": state.n + 1}

    assert lint_codes(spec) == ["MCK003"]


def test_mck004_invariant_unknown_variable():
    spec = Specification("s")
    spec.add_variable("n")

    @spec.init
    def init(const):
        return {"n": 0}

    @spec.action()
    def Incr(state, const):
        return {"n": state.n + 1}

    @spec.invariant()
    def Safe(state, const):
        return state.mystery >= 0

    assert lint_codes(spec) == ["MCK004"]


def test_mck004_quiet_on_state_api_and_declared(tmp_path):
    spec = Specification("s")
    spec.add_variable("n")

    @spec.init
    def init(const):
        return {"n": 0}

    @spec.action()
    def Incr(state, const):
        return {"n": state.n + 1}

    @spec.invariant()
    def Safe(state, const):
        return "n" in state.as_dict() and state.get("n") >= 0

    assert lint_codes(spec) == []


def test_mck005_unused_constant():
    spec = Specification("s", constants={"Limit": 3, "Unused": 99})
    spec.add_variable("n")

    @spec.init
    def init(const):
        return {"n": 0}

    @spec.action()
    def Incr(state, const):
        if state.n >= const["Limit"]:
            return None
        return {"n": state.n + 1}

    assert lint_codes(spec) == ["MCK005"]


def test_mck005_quiet_on_value_used_through_global():
    spec = Specification("s", constants={"Limit": 3, "Role": SENTINEL})
    spec.add_variable("n")

    @spec.init
    def init(const):
        return {"n": SENTINEL}

    @spec.action()
    def Incr(state, const):
        if state.n >= const["Limit"]:
            return None
        return {"n": state.n + 1}

    assert lint_codes(spec) == []


def test_mck005_quiet_on_value_used_through_helper():
    limit = 3

    def gate(state):
        return state.n >= limit

    spec = Specification("s", constants={"Limit": limit})
    spec.add_variable("n")

    @spec.init
    def init(const):
        return {"n": 0}

    @spec.action()
    def Incr(state, const):
        if gate(state):
            return None
        return {"n": state.n + 1}

    assert lint_codes(spec) == []


def test_mck006_receive_without_message_wiring():
    spec = Specification("s")
    spec.add_variable("msgs", kind=VarKind.MESSAGE)

    @spec.init
    def init(const):
        return {"msgs": {}}

    @spec.action(kind=ActionKind.MESSAGE_RECEIVE)
    def Recv(state, const):
        return {"msgs": state.msgs}

    codes = lint_codes(spec)
    assert codes == ["MCK006"]


def test_mck007_message_var_of_wrong_kind():
    spec = Specification("s")
    spec.add_variable("n")
    spec.add_variable("msgs", kind=VarKind.MESSAGE)

    @spec.init
    def init(const):
        return {"n": 0, "msgs": {}}

    @spec.action(params={"m": in_flight("msgs")}, msg_param="m",
                 kind=ActionKind.MESSAGE_RECEIVE, message_var="n")
    def Recv(state, const, m):
        return {"n": state.n, "msgs": state.msgs}

    assert lint_codes(spec) == ["MCK007"]


def test_bundled_specs_are_clean():
    from repro.analysis.targets import SPEC_TARGETS, resolve

    for name in SPEC_TARGETS:
        assert lint_codes(resolve(name).spec) == [], name
