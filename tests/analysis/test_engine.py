"""Engine-level tests: registry, severities, suppressions, LintResult."""

import pytest

from repro.analysis import (
    Finding, LintContext, LintResult, Rule, Severity, all_rules, run_lint,
)
from repro.analysis.engine import register
from repro.analysis.findings import apply_suppressions
from repro.tlaplus.spec import Specification


def make_spec(name="fixture"):
    spec = Specification(name)
    spec.add_variable("n")

    @spec.init
    def init(const):
        return {"n": 0}

    @spec.action()
    def Incr(state, const):
        return {"n": state.n + 1}

    return spec


class TestRegistry:
    def test_all_rules_codes_unique_and_sorted(self):
        rules = all_rules()
        codes = [rule.code for rule in rules]
        assert len(codes) == len(set(codes))
        assert codes == sorted(codes)

    def test_catalogue_has_at_least_ten_codes(self):
        assert len(all_rules()) >= 10

    def test_every_rule_is_documented(self):
        for rule in all_rules():
            assert rule.code.startswith("MCK")
            assert rule.name
            assert rule.description
            assert isinstance(rule.severity, Severity)
            assert rule.requires

    def test_duplicate_code_rejected(self):
        existing = all_rules()[0].code

        with pytest.raises(ValueError, match="duplicate"):
            @register
            class Clone(Rule):
                code = existing
                name = "clone"

    def test_missing_code_rejected(self):
        with pytest.raises(ValueError, match="no code"):
            @register
            class Anonymous(Rule):
                name = "anonymous"


class TestSeverity:
    def test_ordering(self):
        assert Severity.ERROR > Severity.WARNING > Severity.INFO

    def test_parse_roundtrip(self):
        for sev in Severity:
            assert Severity.parse(str(sev)) is sev
        assert Severity.parse("ERROR") is Severity.ERROR

    def test_parse_unknown(self):
        with pytest.raises(ValueError, match="unknown severity"):
            Severity.parse("fatal")

    def test_str_is_lowercase_name(self):
        assert str(Severity.WARNING) == "warning"


class TestSuppressions:
    def _finding(self, path, line, code="MCK203"):
        return Finding(code=code, severity=Severity.ERROR, message="m",
                       file=str(path), line=line)

    def test_bare_ignore_suppresses_any_code(self, tmp_path):
        src = tmp_path / "mod.py"
        src.write_text("x = 1  # mocket: ignore\n")
        [finding] = apply_suppressions([self._finding(src, 1)])
        assert finding.suppressed

    def test_coded_ignore_matches(self, tmp_path):
        src = tmp_path / "mod.py"
        src.write_text("x = 1  # mocket: ignore[MCK203, MCK105]\n")
        [finding] = apply_suppressions([self._finding(src, 1)])
        assert finding.suppressed

    def test_coded_ignore_other_code_does_not_match(self, tmp_path):
        src = tmp_path / "mod.py"
        src.write_text("x = 1  # mocket: ignore[MCK001]\n")
        [finding] = apply_suppressions([self._finding(src, 1)])
        assert not finding.suppressed

    def test_unanchored_finding_never_suppressed(self):
        finding = Finding(code="MCK101", severity=Severity.ERROR, message="m")
        [out] = apply_suppressions([finding])
        assert not out.suppressed

    def test_missing_file_and_bad_line_are_harmless(self, tmp_path):
        src = tmp_path / "mod.py"
        src.write_text("x = 1\n")
        findings = [self._finding(tmp_path / "gone.py", 1),
                    self._finding(src, 99)]
        assert not any(f.suppressed for f in apply_suppressions(findings))


class TestEngine:
    def test_spec_only_context_skips_conformance_rules(self):
        result = run_lint(LintContext("fixture", make_spec()))
        # MCK001-MCK007 plus the spec-only effect rules MCK301-MCK305;
        # mapping/impl rules (incl. MCK306) are skipped
        assert result.rules_run == 12

    def test_clean_fixture_has_no_findings(self):
        result = run_lint(LintContext("fixture", make_spec()))
        assert result.findings == []
        assert result.counts() == {"errors": 0, "warnings": 0,
                                   "suppressed": 0, "total": 0}

    def test_unsuppressed_threshold(self):
        result = LintResult("t", findings=[
            Finding("MCK001", Severity.WARNING, "w"),
            Finding("MCK101", Severity.ERROR, "e"),
            Finding("MCK203", Severity.ERROR, "s", suppressed=True),
        ])
        assert [f.code for f in result.errors] == ["MCK101"]
        assert [f.code for f in result.warnings] == ["MCK001"]
        assert [f.code for f in result.suppressed] == ["MCK203"]
        assert len(result.unsuppressed(Severity.WARNING)) == 2

    def test_finding_as_dict_keys(self):
        finding = Finding("MCK001", Severity.WARNING, "w", file="f.py",
                          line=3, obj="spec.s/variable.n")
        assert finding.as_dict() == {
            "code": "MCK001", "severity": "warning", "message": "w",
            "file": "f.py", "line": 3, "object": "spec.s/variable.n",
            "suppressed": False,
        }
