"""Implementation-level conformance rules (MCK201-MCK206), run over
``ast``-extracted models of synthetic instrumented sources."""

import textwrap

import pytest

from repro.analysis import ImplModel, LintContext, Severity, run_lint
from .test_conformance_rules import make_mapping, make_spec

GOOD_SOURCE = """
class Node:
    n = traced_field("shadowN")

    def __init__(self):
        self.n = 0

    @mocket_action("Incr", ("i",))
    def incr(self):
        self.n += 1

    @mocket_action("Ask")
    def ask(self):
        self.n = 0
"""


def model_of(tmp_path, source, name="node.py"):
    (tmp_path / name).write_text(textwrap.dedent(source))
    return ImplModel.from_package(str(tmp_path))


def full_context(tmp_path, source):
    spec = make_spec()
    return LintContext("fixture", spec, make_mapping(spec),
                       model_of(tmp_path, source))


def lint_codes(ctx):
    return [f.code for f in run_lint(ctx).findings]


class TestImplModel:
    def test_extraction(self, tmp_path):
        model = model_of(tmp_path, GOOD_SOURCE)
        assert model.shadow_names == {"shadowN"}
        assert model.hook_actions == {"Incr", "Ask"}
        [tf] = model.traced_fields
        assert (tf.attr, tf.spec_name, tf.class_name) == ("n", "shadowN", "Node")
        assert model.shadow_writes == []

    def test_clean_source_lints_clean(self, tmp_path):
        assert lint_codes(full_context(tmp_path, GOOD_SOURCE)) == []


class TestMissingShadowField:
    def test_mck201_unrealized_impl_name(self, tmp_path):
        spec = make_spec()
        mapping = make_mapping(spec).map_variable("n", "shadowGone")
        ctx = LintContext("fixture", spec, mapping,
                          model_of(tmp_path, GOOD_SOURCE))
        # the stale traced_field("shadowN") now also dangles
        assert lint_codes(ctx) == ["MCK201", "MCK205"]

    def test_skipped_and_derived_variables_need_no_shadow(self, tmp_path):
        # the minizk "online" pattern: the value comes from the deployment
        # (derive), so no traced field exists for it anywhere in the source
        source = """
        class Node:
            @mocket_action("Incr")
            def incr(self):
                pass

            @mocket_action("Ask")
            def ask(self):
                pass
        """
        spec = make_spec()
        mapping = (make_mapping(spec)
                   .map_variable("n", "anything",
                                 derive=lambda cluster, node_id: 0))
        assert lint_codes(LintContext("fixture", spec, mapping,
                                      model_of(tmp_path, source))) == []


class TestMissingActionHook:
    def test_mck202_user_request_without_hook(self, tmp_path):
        source = """
        class Node:
            n = traced_field("shadowN")

            def __init__(self):
                self.n = 0

            @mocket_action("Incr")
            def incr(self):
                self.n += 1
        """
        assert lint_codes(full_context(tmp_path, source)) == ["MCK202"]

    def test_fault_actions_need_no_hook(self, tmp_path):
        # GOOD_SOURCE has no "Crash" hook yet lints clean: the mapping
        # drives Crash as an injected fault
        assert lint_codes(full_context(tmp_path, GOOD_SOURCE)) == []


class TestShadowWrite:
    def test_mck203_seeded_violation_is_caught(self, tmp_path):
        # the acceptance scenario: state mutated behind the testbed's back
        source = GOOD_SOURCE + """
    def sneaky(self):
        self.n = 99
"""
        ctx = full_context(tmp_path, source)
        result = run_lint(ctx)
        [finding] = result.findings
        assert finding.code == "MCK203"
        assert finding.severity is Severity.ERROR
        assert "sneaky" in finding.message
        assert finding.file.endswith("node.py")
        assert not finding.suppressed

    def test_init_writes_are_covered(self, tmp_path):
        assert model_of(tmp_path, GOOD_SOURCE).shadow_writes == []

    def test_action_span_covers_its_block_only(self, tmp_path):
        source = """
        class Node:
            n = traced_field("shadowN")

            def incr(self):
                with action_span(self, "Incr", {}):
                    self.n += 1
                self.n = 0
        """
        [write] = model_of(tmp_path, source).shadow_writes
        assert write.method == "incr"
        # the flagged write is the reset *after* the span, not the one inside
        lines = textwrap.dedent(source).splitlines()
        assert lines[write.line - 1].strip() == "self.n = 0"

    def test_helper_called_only_from_hooks_is_covered(self, tmp_path):
        source = """
        class Node:
            n = traced_field("shadowN")

            @mocket_action("Incr")
            def incr(self):
                self._bump()

            @mocket_action("Ask")
            def ask(self):
                self._bump()

            def _bump(self):
                self.n += 1
        """
        assert model_of(tmp_path, source).shadow_writes == []

    def test_helper_with_uncovered_caller_is_flagged(self, tmp_path):
        source = """
        class Node:
            n = traced_field("shadowN")

            @mocket_action("Incr")
            def incr(self):
                self._bump()

            def rogue(self):
                self._bump()

            def _bump(self):
                self.n += 1
        """
        [write] = model_of(tmp_path, source).shadow_writes
        assert write.method == "_bump"

    def test_inline_suppression(self, tmp_path):
        source = GOOD_SOURCE + """
    def sneaky(self):
        self.n = 99  # mocket: ignore[MCK203]
"""
        result = run_lint(full_context(tmp_path, source))
        [finding] = result.findings
        assert finding.suppressed
        assert result.unsuppressed() == []


class TestUnknownHookAction:
    def test_mck204_hook_for_undeclared_action(self, tmp_path):
        source = GOOD_SOURCE + """
    @mocket_action("Mystery")
    def mystery(self):
        pass
"""
        result = run_lint(full_context(tmp_path, source))
        [finding] = result.findings
        assert finding.code == "MCK204"
        assert finding.severity is Severity.WARNING


class TestDanglingTracedField:
    def test_mck205_traced_field_nobody_reads(self, tmp_path):
        source = GOOD_SOURCE.replace(
            'n = traced_field("shadowN")',
            'n = traced_field("shadowN")\n    x = traced_field("extra")')
        assert lint_codes(full_context(tmp_path, source)) == ["MCK205"]

    def test_mck205_record_var_nobody_reads(self, tmp_path):
        source = GOOD_SOURCE + """
    @mocket_action("Incr2")
    def incr2(self):
        record_var(self, "extra2", 1)
"""
        codes = lint_codes(full_context(tmp_path, source))
        # the synthetic hook also trips MCK204; MCK205 is what we're after
        assert codes.count("MCK205") == 1


class TestBadMessageUse:
    def test_mck206_get_msg_with_unknown_variable(self, tmp_path):
        source = GOOD_SOURCE.replace(
            "self.n += 1",
            'self.n += 1\n        get_msg(self, "nope", kind="x")')
        assert lint_codes(full_context(tmp_path, source)) == ["MCK206"]

    def test_mck206_receive_decorator_with_state_variable(self, tmp_path):
        # "n" is a state variable, not a message bag
        source = GOOD_SOURCE + """
    @mocket_receive("Incr", "n", ("m",), "m")
    def recv(self, m):
        pass
"""
        assert lint_codes(full_context(tmp_path, source)) == ["MCK206"]
