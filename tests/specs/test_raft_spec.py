"""Unit tests for the Raft specification's action semantics."""

import pytest

from repro.core.testgen import ScenarioError, label, scenario_case
from repro.specs.raft import (
    CANDIDATE,
    FOLLOWER,
    LEADER,
    NIL,
    RaftSpecOptions,
    build_raft_spec,
    build_raftkv_spec,
    build_xraft_spec,
    last_term,
)
from repro.tlaplus import ActionKind, VarKind, bag_count, bag_size, check


def _spec(**kwargs):
    defaults = dict(servers=("n1", "n2", "n3"), max_term=2, max_client_requests=1,
                    enable_restart=True, enable_drop=True, enable_duplicate=True,
                    name="raft-test")
    defaults.update(kwargs)
    return build_raft_spec(RaftSpecOptions(**defaults))


def _apply(spec, state, name, **params):
    decl = spec.actions[name]
    successor = spec.apply(decl, state, params)
    assert successor is not None, f"{name}({params}) not enabled"
    return successor


def _rv_request(src, dst, term, llt=0, lli=0):
    return {"mtype": "RequestVoteRequest", "mterm": term, "mlastLogTerm": llt,
            "mlastLogIndex": lli, "msource": src, "mdest": dst}


class TestHelpers:
    def test_last_term(self):
        assert last_term(()) == 0
        assert last_term(((1, "a"), (3, "b"))) == 3


class TestVariableShape:
    def test_fifteen_variables_like_the_paper(self):
        spec = _spec()
        assert len(spec.variables) == 15  # Table 1: 15 variables

    def test_variable_categories(self):
        spec = _spec()
        assert spec.variables["messages"].kind is VarKind.MESSAGE
        assert spec.variables["electionCtr"].kind is VarKind.COUNTER
        assert spec.variables["currentTerm"].kind is VarKind.STATE
        assert spec.variables["currentTerm"].per_node

    def test_variant_action_sets(self):
        xraft = build_xraft_spec()
        raftkv = build_raftkv_spec()
        assert "DropMessage" in xraft.actions
        assert "DuplicateMessage" in xraft.actions
        assert "DropMessage" not in raftkv.actions
        assert "DuplicateMessage" not in raftkv.actions
        # same core actions otherwise
        assert set(raftkv.actions) | {"DropMessage", "DuplicateMessage"} == set(xraft.actions)

    def test_spec_bug_variant_adds_update_term(self):
        assert "UpdateTerm" in build_raftkv_spec(spec_bugs=True).actions
        assert "UpdateTerm" not in build_raftkv_spec().actions

    def test_action_kinds(self):
        spec = _spec()
        assert spec.actions["ClientRequest"].kind is ActionKind.USER_REQUEST
        assert spec.actions["Restart"].kind is ActionKind.FAULT
        assert spec.actions["HandleRequestVoteRequest"].kind is ActionKind.MESSAGE_RECEIVE
        assert spec.actions["RequestVote"].kind is ActionKind.MESSAGE_SEND
        assert spec.actions["Timeout"].kind is ActionKind.SINGLE_NODE


class TestElectionSemantics:
    def test_timeout_starts_candidacy(self):
        spec = _spec()
        (init,) = spec.initial_states()
        after = _apply(spec, init, "Timeout", i="n1")
        assert after.state["n1"] == CANDIDATE
        assert after.currentTerm["n1"] == 1
        assert after.votedFor["n1"] == "n1"
        assert after.votesGranted["n1"] == frozenset({"n1"})
        # other nodes untouched
        assert after.state["n2"] == FOLLOWER

    def test_timeout_respects_term_bound(self):
        spec = _spec(max_term=1)
        (init,) = spec.initial_states()
        state = _apply(spec, init, "Timeout", i="n1")
        decl = spec.actions["Timeout"]
        assert spec.apply(decl, state, {"i": "n1"}) is None

    def test_timeout_restricted_to_candidates_option(self):
        spec = _spec(candidates=("n2",))
        (init,) = spec.initial_states()
        decl = spec.actions["Timeout"]
        assert spec.apply(decl, init, {"i": "n1"}) is None
        assert spec.apply(decl, init, {"i": "n2"}) is not None

    def test_leader_cannot_timeout(self):
        spec = _spec()
        graph, case = scenario_case(spec, [
            label("Timeout", i="n1"),
            label("RequestVote", i="n1", j="n2"),
            label("HandleRequestVoteRequest", m=_rv_request("n1", "n2", 1)),
            label("HandleRequestVoteResponse",
                  m={"mtype": "RequestVoteResponse", "mterm": 1,
                     "mvoteGranted": True, "msource": "n2", "mdest": "n1"}),
            label("BecomeLeader", i="n1"),
        ])
        final = case.final_state
        assert final.state["n1"] == LEADER
        decl = spec.actions["Timeout"]
        assert spec.apply(decl, final, {"i": "n1"}) is None

    def test_request_vote_puts_message_in_flight(self):
        spec = _spec()
        (init,) = spec.initial_states()
        state = _apply(spec, init, "Timeout", i="n1")
        state = _apply(spec, state, "RequestVote", i="n1", j="n2")
        assert bag_count(state.messages, _rv_request("n1", "n2", 1)) == 1

    def test_request_vote_not_resent_while_in_flight(self):
        spec = _spec()
        (init,) = spec.initial_states()
        state = _apply(spec, init, "Timeout", i="n1")
        state = _apply(spec, state, "RequestVote", i="n1", j="n2")
        decl = spec.actions["RequestVote"]
        assert spec.apply(decl, state, {"i": "n1", "j": "n2"}) is None
        assert spec.apply(decl, state, {"i": "n1", "j": "n1"}) is None  # never to self

    def test_grant_updates_voted_for_and_replies(self):
        spec = _spec()
        (init,) = spec.initial_states()
        state = _apply(spec, init, "Timeout", i="n1")
        state = _apply(spec, state, "RequestVote", i="n1", j="n2")
        state = _apply(spec, state, "HandleRequestVoteRequest",
                       m=_rv_request("n1", "n2", 1))
        assert state.votedFor["n2"] == "n1"
        assert state.currentTerm["n2"] == 1  # folded UpdateTerm
        response = {"mtype": "RequestVoteResponse", "mterm": 1,
                    "mvoteGranted": True, "msource": "n2", "mdest": "n1"}
        assert bag_count(state.messages, response) == 1
        # the request was consumed
        assert bag_count(state.messages, _rv_request("n1", "n2", 1)) == 0

    def test_vote_rejected_when_already_voted(self):
        spec = _spec()
        (init,) = spec.initial_states()
        state = _apply(spec, init, "Timeout", i="n1")
        state = _apply(spec, state, "Timeout", i="n2")  # n2 votes for itself
        state = _apply(spec, state, "RequestVote", i="n1", j="n2")
        state = _apply(spec, state, "HandleRequestVoteRequest",
                       m=_rv_request("n1", "n2", 1))
        response = {"mtype": "RequestVoteResponse", "mterm": 1,
                    "mvoteGranted": False, "msource": "n2", "mdest": "n1"}
        assert bag_count(state.messages, response) == 1
        assert state.votedFor["n2"] == "n2"

    def test_vote_rejected_for_stale_log(self):
        """A candidate with an older log must not get the vote."""
        spec = _spec(max_client_requests=1, candidates=("n1", "n3"))
        graph, case = scenario_case(spec, [
            label("Timeout", i="n1"),
            label("RequestVote", i="n1", j="n2"),
            label("HandleRequestVoteRequest", m=_rv_request("n1", "n2", 1)),
            label("HandleRequestVoteResponse",
                  m={"mtype": "RequestVoteResponse", "mterm": 1,
                     "mvoteGranted": True, "msource": "n2", "mdest": "n1"}),
            label("BecomeLeader", i="n1"),
            label("ClientRequest", i="n1"),
            label("AppendEntries", i="n1", j="n2"),
            label("HandleAppendEntriesRequest",
                  m={"mtype": "AppendEntriesRequest", "mterm": 1,
                     "mprevLogIndex": 0, "mprevLogTerm": 0,
                     "mentries": ((1, 1),), "mcommitIndex": 0,
                     "msource": "n1", "mdest": "n2"}),
            label("Timeout", i="n3"),
            label("Timeout", i="n3"),
            label("RequestVote", i="n3", j="n2"),
            label("HandleRequestVoteRequest", m=_rv_request("n3", "n2", 2)),
        ])
        final = case.final_state
        reject = {"mtype": "RequestVoteResponse", "mterm": 2,
                  "mvoteGranted": False, "msource": "n2", "mdest": "n3"}
        assert bag_count(final.messages, reject) == 1
        assert final.votedFor["n2"] == NIL  # term bumped, vote withheld

    def test_become_leader_requires_quorum(self):
        spec = _spec()
        (init,) = spec.initial_states()
        state = _apply(spec, init, "Timeout", i="n1")
        decl = spec.actions["BecomeLeader"]
        assert spec.apply(decl, state, {"i": "n1"}) is None  # 1 vote of 2 needed

    def test_election_safety_invariant_holds(self):
        result = check(_spec(max_term=1, enable_restart=False, enable_drop=False,
                             enable_duplicate=False, max_client_requests=0,
                             candidates=("n1", "n2")), max_states=60000)
        assert result.ok


class TestReplicationSemantics:
    def _leader_state(self, spec):
        graph, case = scenario_case(spec, [
            label("Timeout", i="n1"),
            label("RequestVote", i="n1", j="n2"),
            label("HandleRequestVoteRequest", m=_rv_request("n1", "n2", 1)),
            label("HandleRequestVoteResponse",
                  m={"mtype": "RequestVoteResponse", "mterm": 1,
                     "mvoteGranted": True, "msource": "n2", "mdest": "n1"}),
            label("BecomeLeader", i="n1"),
        ])
        return case.final_state

    def test_client_request_appends_counter_value(self):
        spec = _spec()
        state = self._leader_state(spec)
        after = _apply(spec, state, "ClientRequest", i="n1")
        assert after.log["n1"] == ((1, 1),)

    def test_client_request_only_on_leader(self):
        spec = _spec()
        state = self._leader_state(spec)
        decl = spec.actions["ClientRequest"]
        assert spec.apply(decl, state, {"i": "n2"}) is None

    def test_client_request_bounded_by_counter(self):
        spec = _spec(max_client_requests=1)
        state = self._leader_state(spec)
        state = _apply(spec, state, "ClientRequest", i="n1")
        decl = spec.actions["ClientRequest"]
        assert spec.apply(decl, state, {"i": "n1"}) is None

    def test_append_entries_carries_one_entry(self):
        spec = _spec()
        state = self._leader_state(spec)
        state = _apply(spec, state, "ClientRequest", i="n1")
        state = _apply(spec, state, "AppendEntries", i="n1", j="n2")
        request = {"mtype": "AppendEntriesRequest", "mterm": 1,
                   "mprevLogIndex": 0, "mprevLogTerm": 0,
                   "mentries": ((1, 1),), "mcommitIndex": 0,
                   "msource": "n1", "mdest": "n2"}
        assert bag_count(state.messages, request) == 1

    def test_follower_appends_and_acks(self):
        spec = _spec()
        state = self._leader_state(spec)
        state = _apply(spec, state, "ClientRequest", i="n1")
        state = _apply(spec, state, "AppendEntries", i="n1", j="n2")
        request = {"mtype": "AppendEntriesRequest", "mterm": 1,
                   "mprevLogIndex": 0, "mprevLogTerm": 0,
                   "mentries": ((1, 1),), "mcommitIndex": 0,
                   "msource": "n1", "mdest": "n2"}
        state = _apply(spec, state, "HandleAppendEntriesRequest", m=request)
        assert state.log["n2"] == ((1, 1),)
        ack = {"mtype": "AppendEntriesResponse", "mterm": 1, "msuccess": True,
               "mmatchIndex": 1, "msource": "n2", "mdest": "n1"}
        assert bag_count(state.messages, ack) == 1

    def test_log_mismatch_rejected(self):
        spec = _spec()
        state = self._leader_state(spec)
        # fabricate via spec transitions is impossible here (prev=1 needs a
        # log); exercise the reject path through the stale-term route instead
        state2 = _apply(spec, state, "AppendEntries", i="n1", j="n2")
        heartbeat = {"mtype": "AppendEntriesRequest", "mterm": 1,
                     "mprevLogIndex": 0, "mprevLogTerm": 0, "mentries": (),
                     "mcommitIndex": 0, "msource": "n1", "mdest": "n2"}
        after = _apply(spec, state2, "HandleAppendEntriesRequest", m=heartbeat)
        assert after.log["n2"] == ()

    def test_commit_advances_on_quorum(self):
        spec = _spec()
        graph, case = scenario_case(spec, [
            label("Timeout", i="n1"),
            label("RequestVote", i="n1", j="n2"),
            label("HandleRequestVoteRequest", m=_rv_request("n1", "n2", 1)),
            label("HandleRequestVoteResponse",
                  m={"mtype": "RequestVoteResponse", "mterm": 1,
                     "mvoteGranted": True, "msource": "n2", "mdest": "n1"}),
            label("BecomeLeader", i="n1"),
            label("ClientRequest", i="n1"),
            label("AppendEntries", i="n1", j="n2"),
            label("HandleAppendEntriesRequest",
                  m={"mtype": "AppendEntriesRequest", "mterm": 1,
                     "mprevLogIndex": 0, "mprevLogTerm": 0,
                     "mentries": ((1, 1),), "mcommitIndex": 0,
                     "msource": "n1", "mdest": "n2"}),
            label("HandleAppendEntriesResponse",
                  m={"mtype": "AppendEntriesResponse", "mterm": 1,
                     "msuccess": True, "mmatchIndex": 1,
                     "msource": "n2", "mdest": "n1"}),
            label("AdvanceCommitIndex", i="n1"),
        ])
        final = case.final_state
        assert final.commitIndex["n1"] == 1
        assert final.matchIndex["n1"]["n2"] == 1
        assert final.nextIndex["n1"]["n2"] == 2


class TestFaultSemantics:
    def test_restart_keeps_persistent_state(self):
        spec = _spec()
        (init,) = spec.initial_states()
        state = _apply(spec, init, "Timeout", i="n1")
        after = _apply(spec, state, "Restart", i="n1")
        assert after.state["n1"] == FOLLOWER
        assert after.currentTerm["n1"] == 1   # persistent
        assert after.votedFor["n1"] == "n1"   # persistent
        assert after.votesGranted["n1"] == frozenset()  # volatile
        assert after.commitIndex["n1"] == 0

    def test_restart_bounded_by_counter(self):
        spec = _spec(max_restarts=1)
        (init,) = spec.initial_states()
        state = _apply(spec, init, "Restart", i="n1")
        decl = spec.actions["Restart"]
        assert spec.apply(decl, state, {"i": "n2"}) is None

    def test_drop_removes_one_copy(self):
        spec = _spec()
        (init,) = spec.initial_states()
        state = _apply(spec, init, "Timeout", i="n1")
        state = _apply(spec, state, "RequestVote", i="n1", j="n2")
        m = _rv_request("n1", "n2", 1)
        after = _apply(spec, state, "DropMessage", m=m)
        assert bag_count(after.messages, m) == 0

    def test_duplicate_adds_one_copy(self):
        spec = _spec()
        (init,) = spec.initial_states()
        state = _apply(spec, init, "Timeout", i="n1")
        state = _apply(spec, state, "RequestVote", i="n1", j="n2")
        m = _rv_request("n1", "n2", 1)
        after = _apply(spec, state, "DuplicateMessage", m=m)
        assert bag_count(after.messages, m) == 2
        # an already-duplicated message cannot be duplicated again (bag bound)
        spec2 = _spec(max_duplicates=5)
        (init2,) = spec2.initial_states()
        s2 = _apply(spec2, init2, "Timeout", i="n1")
        s2 = _apply(spec2, s2, "RequestVote", i="n1", j="n2")
        s2 = _apply(spec2, s2, "DuplicateMessage", m=m)
        decl = spec2.actions["DuplicateMessage"]
        assert spec2.apply(decl, s2, {"m": m}) is None


class TestSpecBugVariant:
    def test_handlers_blocked_until_update_term(self):
        spec = _spec(spec_bugs=True)
        (init,) = spec.initial_states()
        state = _apply(spec, init, "Timeout", i="n1")
        state = _apply(spec, state, "RequestVote", i="n1", j="n2")
        m = _rv_request("n1", "n2", 1)
        handler = spec.actions["HandleRequestVoteRequest"]
        assert spec.apply(handler, state, {"m": m}) is None  # official guard
        state = _apply(spec, state, "UpdateTerm", m=m)
        assert state.currentTerm["n2"] == 1
        # UpdateTerm does NOT consume (Figure 10)
        assert bag_count(state.messages, m) == 1
        # now the handler is enabled
        assert spec.apply(handler, state, {"m": m}) is not None

    def test_return_to_follower_branch_keeps_message(self):
        spec = _spec(spec_bugs=True, candidates=("n1", "n2"))
        graph, case = scenario_case(spec, [
            label("Timeout", i="n1"),
            label("Timeout", i="n2"),
            label("RequestVote", i="n2", j="n3"),
            label("UpdateTerm", m=_rv_request("n2", "n3", 1)),
            label("HandleRequestVoteRequest", m=_rv_request("n2", "n3", 1)),
            label("HandleRequestVoteResponse",
                  m={"mtype": "RequestVoteResponse", "mterm": 1,
                     "mvoteGranted": True, "msource": "n3", "mdest": "n2"}),
            label("BecomeLeader", i="n2"),
            label("AppendEntries", i="n2", j="n1"),
        ])
        state = case.final_state
        heartbeat = {"mtype": "AppendEntriesRequest", "mterm": 1,
                     "mprevLogIndex": 0, "mprevLogTerm": 0, "mentries": (),
                     "mcommitIndex": 0, "msource": "n2", "mdest": "n1"}
        after = _apply(spec, state, "HandleAppendEntriesRequest", m=heartbeat)
        # Figure 11: step down but neither reply nor consume
        assert after.state["n1"] == FOLLOWER
        assert bag_count(after.messages, heartbeat) == 1
        assert bag_size(after.messages) == bag_size(state.messages)


class TestScenarioValidation:
    def test_disabled_step_raises(self):
        spec = _spec()
        with pytest.raises(ScenarioError, match="not enabled"):
            scenario_case(spec, [label("BecomeLeader", i="n1")])

    def test_unknown_action_raises(self):
        spec = _spec()
        with pytest.raises(ScenarioError, match="unknown action"):
            scenario_case(spec, [label("Nope", i="n1")])

    def test_empty_schedule_raises(self):
        with pytest.raises(ScenarioError):
            scenario_case(_spec(), [])

    def test_final_state_edges_materialized(self):
        spec = _spec()
        graph, case = scenario_case(spec, [label("Timeout", i="n1")])
        labels = {lbl.name for lbl in graph.enabled_labels(case.final_id)}
        assert "RequestVote" in labels
