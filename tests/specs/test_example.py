"""The Figure 1 example spec must reproduce Figure 2's state space exactly."""

import pytest

from repro.specs.example import MAX, NIL, NOT_MAX, build_example_spec
from repro.tlaplus import ActionKind, ActionLabel, VarKind, check


@pytest.fixture(scope="module")
def result():
    return check(build_example_spec(data=(1, 2)))


class TestFigure2:
    def test_thirteen_states(self, result):
        assert result.graph.num_states == 13

    def test_eighteen_edges(self, result):
        assert result.graph.num_edges == 18

    def test_initial_state(self, result):
        init = result.graph.state_of(result.graph.initial_ids[0])
        assert init.msg == NIL
        assert init.stage == "request"
        assert init.cache == frozenset()

    def test_invariant_holds(self, result):
        assert result.ok

    def test_actions_alternate(self, result):
        """Every path alternates Request and Respond (stage controls this)."""
        for node_id, state in result.graph.states():
            for label in result.graph.enabled_labels(node_id):
                if state.stage == "request":
                    assert label.name == "Request"
                else:
                    assert label.name == "Respond"

    def test_max_answer_only_when_msg_is_max(self, result):
        """The Max/NotMax response logic of Figure 1 lines 16-17."""
        for _, state in result.graph.states():
            if state.stage == "request" and state.msg == MAX:
                assert state.cache  # Max can only follow a cached datum
            if state.msg == NOT_MAX and state.stage == "request":
                assert len(state.cache) == 2  # only 1 after 2 produces NotMax here

    def test_figure2_state9_and_10_reached(self, result):
        """Both 'Max' and 'NotMax' full-cache states exist (states 9/10)."""
        dumps = [s.as_dict() for _, s in result.graph.states()]
        assert {"msg": MAX, "stage": "request", "cache": {1, 2}} in dumps
        assert {"msg": NOT_MAX, "stage": "request", "cache": {1, 2}} in dumps

    def test_cycles_exist(self, result):
        """Figure 2 contains cycles (e.g. state 3 -> 5 -> 3)."""
        import networkx as nx

        nxg = result.graph.to_networkx()
        assert not nx.is_directed_acyclic_graph(nxg)

    def test_duplicate_request_edge_labels(self, result):
        """Request(1) and Request(2) both leave every 'request' state."""
        for node_id, state in result.graph.states():
            if state.stage != "request":
                continue
            labels = set(result.graph.enabled_labels(node_id))
            assert ActionLabel("Request", {"data": 1}) in labels
            assert ActionLabel("Request", {"data": 2}) in labels


class TestSpecShape:
    def test_variable_kinds(self):
        spec = build_example_spec()
        assert spec.variables["stage"].kind is VarKind.AUXILIARY
        assert spec.variables["msg"].kind is VarKind.STATE
        assert spec.variables["cache"].kind is VarKind.STATE

    def test_action_kinds(self):
        spec = build_example_spec()
        assert spec.actions["Request"].kind is ActionKind.USER_REQUEST
        assert spec.actions["Respond"].kind is ActionKind.SINGLE_NODE

    def test_larger_data_scales(self):
        result = check(build_example_spec(data=(1, 2, 3)))
        assert result.ok
        assert result.graph.num_states > 13

    def test_singleton_data(self):
        result = check(build_example_spec(data=(7,)))
        assert result.ok
        # (Nil,{}), (7,{}), (Max,{7}), (7,{7}) — then the cycle closes
        assert result.graph.num_states == 4
