"""Property-based tests: protocol invariants along random spec walks.

Hypothesis drives random (but spec-legal) walks through the Raft and
ZAB specifications and checks protocol invariants the model checker
would otherwise only certify for the explored configurations.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.testgen import scenario_case
from repro.specs.raft import LEADER, NIL, RaftSpecOptions, build_raft_spec
from repro.specs.zab import ZabSpecOptions, build_zab_spec
from repro.tlaplus import bag_size, check, is_bag


def _walk(spec, choices, max_steps=25):
    """Take a deterministic pseudo-random walk; returns visited states."""
    (state,) = spec.initial_states()
    visited = [state]
    for choice in choices[:max_steps]:
        transitions = sorted(spec.enabled(state), key=lambda t: repr(t[0]))
        if not transitions:
            break
        _, state = transitions[choice % len(transitions)]
        visited.append(state)
    return visited


@pytest.fixture(scope="module")
def raft_spec():
    return build_raft_spec(RaftSpecOptions(
        servers=("n1", "n2", "n3"), max_term=2, max_client_requests=1,
        enable_restart=True, enable_drop=True, enable_duplicate=True,
        name="raft-walk",
    ))


@pytest.fixture(scope="module")
def zab_spec():
    return build_zab_spec(ZabSpecOptions(
        servers=("n1", "n2", "n3"), max_elections=2, max_crashes=1,
        max_restarts=1, name="zab-walk",
    ))


class TestRaftWalkProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=10 ** 6),
                    min_size=1, max_size=25))
    def test_election_safety_along_walks(self, raft_spec, choices):
        for state in _walk(raft_spec, choices):
            leaders = [i for i in ("n1", "n2", "n3")
                       if state.state[i] == LEADER]
            terms = [state.currentTerm[i] for i in leaders]
            assert len(terms) == len(set(terms))

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=10 ** 6),
                    min_size=1, max_size=25))
    def test_terms_monotone_and_votes_well_formed(self, raft_spec, choices):
        previous = None
        for state in _walk(raft_spec, choices):
            for i in ("n1", "n2", "n3"):
                if previous is not None:
                    assert state.currentTerm[i] >= previous.currentTerm[i]
                assert state.votedFor[i] == NIL or state.votedFor[i] in (
                    "n1", "n2", "n3")
                assert state.commitIndex[i] <= len(state.log[i])
                # log terms never exceed the node's current term... they may
                # exceed a *follower's* term before it catches up, but never
                # the global max
            assert all(
                entry[0] <= max(state.currentTerm[j] for j in ("n1", "n2", "n3"))
                for i in ("n1", "n2", "n3") for entry in state.log[i]
            )
            previous = state

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=10 ** 6),
                    min_size=1, max_size=25))
    def test_message_bag_stays_well_formed_and_bounded(self, raft_spec, choices):
        for state in _walk(raft_spec, choices):
            assert is_bag(state.messages)
            # the built-in exchange bound keeps the bag small
            assert bag_size(state.messages) <= 24

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=10 ** 6),
                    min_size=1, max_size=20))
    def test_votes_granted_subset_of_responded(self, raft_spec, choices):
        for state in _walk(raft_spec, choices):
            for i in ("n1", "n2", "n3"):
                assert state.votesGranted[i] <= state.votesResponded[i]


class TestZabWalkProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=10 ** 6),
                    min_size=1, max_size=25))
    def test_epochs_monotone(self, zab_spec, choices):
        previous = None
        for state in _walk(zab_spec, choices):
            for i in ("n1", "n2", "n3"):
                assert state.currentEpoch[i] <= state.acceptedEpoch[i]
                if previous is not None:
                    assert state.acceptedEpoch[i] >= previous.acceptedEpoch[i]
                    assert state.currentEpoch[i] >= previous.currentEpoch[i]
            previous = state

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=10 ** 6),
                    min_size=1, max_size=25))
    def test_offline_nodes_never_change(self, zab_spec, choices):
        previous = None
        for state in _walk(zab_spec, choices):
            if previous is not None:
                for i in ("n1", "n2", "n3"):
                    if not previous.online[i] and not state.online[i]:
                        for var in ("state", "round", "vote", "acceptedEpoch",
                                    "currentEpoch", "lastZxid"):
                            assert state[var][i] == previous[var][i]
            previous = state

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=10 ** 6),
                    min_size=1, max_size=25))
    def test_bags_well_formed(self, zab_spec, choices):
        for state in _walk(zab_spec, choices):
            assert is_bag(state.le_msgs)
            assert is_bag(state.bc_msgs)


class TestGraphScenarioAgreement:
    """Any path read off a checked graph re-validates as a scenario and
    reproduces the same states — the two test-case sources agree."""

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10 ** 6),
           st.integers(min_value=1, max_value=10))
    def test_graph_paths_revalidate(self, seed, length):
        from repro.specs import build_example_spec

        spec = build_example_spec()
        graph = check(spec).graph
        # deterministic pseudo-random path from the initial state
        node_id = graph.initial_ids[0]
        schedule = []
        expected = []
        rnd = seed
        for _ in range(length):
            edges = graph.out_edges(node_id)
            if not edges:
                break
            rnd = (rnd * 1103515245 + 12345) % (2 ** 31)
            edge = edges[rnd % len(edges)]
            schedule.append(edge.label)
            expected.append(graph.state_of(edge.dst))
            node_id = edge.dst
        if not schedule:
            return
        _, case = scenario_case(spec, schedule)
        assert [step.expected_state for step in case.steps] == expected
