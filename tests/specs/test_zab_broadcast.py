"""Tests for the ZAB broadcast stage (proposal → ack → commit)."""

import pytest

from repro.core.testgen import label, scenario_case
from repro.specs.zab import ZabSpecOptions, build_zab_spec
from repro.tlaplus import bag_count


def _spec(**kwargs):
    defaults = dict(servers=("n1", "n2", "n3"), max_elections=1,
                    max_crashes=1, max_restarts=1, max_client_requests=2,
                    starters=("n3",), name="zab-bcast-test")
    defaults.update(kwargs)
    return build_zab_spec(ZabSpecOptions(**defaults))


def _vote(src, dst, rnd, vote):
    return {"mtype": "Vote", "mround": rnd, "mvote": tuple(vote),
            "msource": src, "mdest": dst}


_SYNCED_PREFIX = [
    label("StartElection", i="n3"),
    label("HandleVote", m=_vote("n3", "n2", 1, (0, "n3"))),
    label("BecomeFollowing", i="n2"),
    label("HandleVote", m=_vote("n2", "n3", 1, (0, "n3"))),
    label("BecomeLeading", i="n3"),
    label("SendLeaderInfo", i="n3", j="n2"),
    label("HandleLeaderInfo",
          m={"mtype": "LeaderInfo", "mepoch": 1, "msource": "n3", "mdest": "n2"}),
    label("HandleAckEpoch",
          m={"mtype": "AckEpoch", "mepoch": 1, "msource": "n2", "mdest": "n3"}),
    label("HandleNewLeader",
          m={"mtype": "NewLeader", "mepoch": 1, "msource": "n3", "mdest": "n2"}),
    label("HandleAck",
          m={"mtype": "Ack", "mepoch": 1, "msource": "n2", "mdest": "n3"}),
]


def _state_after(spec, extra):
    _, case = scenario_case(spec, _SYNCED_PREFIX + list(extra))
    return case.final_state


def _apply(spec, state, name, **params):
    decl = spec.actions[name]
    successor = spec.apply(decl, state, params)
    assert successor is not None, f"{name}({params}) not enabled"
    return successor


class TestClientRequest:
    def test_appends_to_leader_history(self):
        spec = _spec()
        state = _state_after(spec, [label("ClientRequest", i="n3")])
        assert state.history["n3"] == ((1, 1),)
        assert state.lastZxid["n3"] == 1
        assert state.proposalAcks["n3"][1] == frozenset({"n3"})

    def test_requires_completed_sync(self):
        spec = _spec()
        _, case = scenario_case(spec, _SYNCED_PREFIX[:5])  # leader, no sync
        decl = spec.actions["ClientRequest"]
        assert spec.apply(decl, case.final_state, {"i": "n3"}) is None

    def test_only_on_leader(self):
        spec = _spec()
        state = _state_after(spec, [])
        decl = spec.actions["ClientRequest"]
        assert spec.apply(decl, state, {"i": "n2"}) is None

    def test_bounded_by_counter(self):
        spec = _spec(max_client_requests=1)
        state = _state_after(spec, [label("ClientRequest", i="n3")])
        decl = spec.actions["ClientRequest"]
        assert spec.apply(decl, state, {"i": "n3"}) is None


class TestProposalFlow:
    def _proposal(self, zxid=1, value=1):
        return {"mtype": "Proposal", "mzxid": zxid, "mvalue": value,
                "msource": "n3", "mdest": "n2"}

    def test_send_proposal_targets_behind_follower(self):
        spec = _spec()
        state = _state_after(spec, [label("ClientRequest", i="n3")])
        state = _apply(spec, state, "SendProposal", i="n3", j="n2")
        assert bag_count(state.bc_msgs, self._proposal()) == 1
        # not re-sent while in flight (session discipline)
        decl = spec.actions["SendProposal"]
        assert spec.apply(decl, state, {"i": "n3", "j": "n2"}) is None

    def test_send_proposal_skips_unsynced_follower(self):
        spec = _spec()
        state = _state_after(spec, [label("ClientRequest", i="n3")])
        decl = spec.actions["SendProposal"]
        # n1 never completed the epoch handshake
        assert spec.apply(decl, state, {"i": "n3", "j": "n1"}) is None

    def test_follower_logs_and_acks(self):
        spec = _spec()
        state = _state_after(spec, [
            label("ClientRequest", i="n3"),
            label("SendProposal", i="n3", j="n2"),
            label("HandleProposal", m=self._proposal()),
        ])
        assert state.history["n2"] == ((1, 1),)
        assert state.lastZxid["n2"] == 1
        ack = {"mtype": "ProposalAck", "mzxid": 1, "msource": "n2", "mdest": "n3"}
        assert bag_count(state.bc_msgs, ack) == 1

    def test_quorum_ack_commits_on_leader(self):
        spec = _spec()
        state = _state_after(spec, [
            label("ClientRequest", i="n3"),
            label("SendProposal", i="n3", j="n2"),
            label("HandleProposal", m=self._proposal()),
            label("HandleProposalAck",
                  m={"mtype": "ProposalAck", "mzxid": 1,
                     "msource": "n2", "mdest": "n3"}),
        ])
        assert state.committed["n3"] == 1

    def test_commit_propagates_to_follower(self):
        spec = _spec()
        state = _state_after(spec, [
            label("ClientRequest", i="n3"),
            label("SendProposal", i="n3", j="n2"),
            label("HandleProposal", m=self._proposal()),
            label("HandleProposalAck",
                  m={"mtype": "ProposalAck", "mzxid": 1,
                     "msource": "n2", "mdest": "n3"}),
            label("SendCommit", i="n3", j="n2"),
            label("HandleCommit",
                  m={"mtype": "Commit", "mzxid": 1, "msource": "n3",
                     "mdest": "n2"}),
        ])
        assert state.committed["n2"] == 1

    def test_restart_resets_committed_keeps_history(self):
        spec = _spec()
        state = _state_after(spec, [
            label("ClientRequest", i="n3"),
            label("SendProposal", i="n3", j="n2"),
            label("HandleProposal", m=self._proposal()),
            label("Crash", i="n2"),
            label("Restart", i="n2"),
        ])
        assert state.history["n2"] == ((1, 1),)   # persistent
        assert state.lastZxid["n2"] == 1          # persistent
        assert state.committed["n2"] == 0         # volatile


class TestControlledBroadcast:
    def test_full_pipeline_scenario_passes(self):
        from repro.core import ControlledTester, RunnerConfig
        from repro.systems.minizk import (
            MiniZkConfig, build_minizk_mapping, make_minizk_cluster,
        )

        spec = _spec(max_client_requests=1, max_crashes=0, max_restarts=0)
        schedule = _SYNCED_PREFIX + [
            label("ClientRequest", i="n3"),
            label("SendProposal", i="n3", j="n2"),
            label("HandleProposal",
                  m={"mtype": "Proposal", "mzxid": 1, "mvalue": 1,
                     "msource": "n3", "mdest": "n2"}),
            label("HandleProposalAck",
                  m={"mtype": "ProposalAck", "mzxid": 1,
                     "msource": "n2", "mdest": "n3"}),
            label("SendCommit", i="n3", j="n2"),
            label("HandleCommit",
                  m={"mtype": "Commit", "mzxid": 1,
                     "msource": "n3", "mdest": "n2"}),
        ]
        graph, case = scenario_case(spec, schedule)
        config = MiniZkConfig()
        tester = ControlledTester(
            build_minizk_mapping(spec, config), graph,
            lambda: make_minizk_cluster(("n1", "n2", "n3"), config),
            RunnerConfig(match_timeout=1.0, done_timeout=1.0, quiesce_delay=0.05),
        )
        result = tester.run_case(case)
        assert result.passed, result.divergence
