"""Unit tests for the ZAB specification's action semantics."""

import pytest

from repro.core.testgen import ScenarioError, label, scenario_case
from repro.specs.zab import (
    FOLLOWING,
    LEADING,
    LOOKING,
    NIL,
    ZabSpecOptions,
    build_zab_spec,
)
from repro.tlaplus import VarKind, bag_count, check


def _spec(**kwargs):
    defaults = dict(servers=("n1", "n2", "n3"), max_elections=2,
                    max_crashes=1, max_restarts=1, name="zab-test")
    defaults.update(kwargs)
    return build_zab_spec(ZabSpecOptions(**defaults))


def _apply(spec, state, name, **params):
    decl = spec.actions[name]
    successor = spec.apply(decl, state, params)
    assert successor is not None, f"{name}({params}) not enabled"
    return successor


def _vote(src, dst, rnd, vote):
    return {"mtype": "Vote", "mround": rnd, "mvote": tuple(vote),
            "msource": src, "mdest": dst}


class TestShape:
    def test_two_message_variables(self):
        spec = _spec()
        assert spec.variables_of_kind(VarKind.MESSAGE) == ["le_msgs", "bc_msgs"]

    def test_counters(self):
        spec = _spec()
        assert set(spec.variables_of_kind(VarKind.COUNTER)) == {
            "electionCtr", "crashCtr", "restartCtr", "requestCtr",
        }

    def test_action_count(self):
        spec = _spec()
        assert set(spec.actions) == {
            "StartElection", "HandleVote", "BecomeLeading", "BecomeFollowing",
            "SendLeaderInfo", "HandleLeaderInfo", "HandleAckEpoch",
            "HandleNewLeader", "HandleAck", "Crash", "Restart",
            "ClientRequest", "SendProposal", "HandleProposal",
            "HandleProposalAck", "SendCommit", "HandleCommit",
        }


class TestElection:
    def test_start_election_broadcasts(self):
        spec = _spec()
        (init,) = spec.initial_states()
        state = _apply(spec, init, "StartElection", i="n3")
        assert state.round["n3"] == 1
        assert state.vote["n3"] == (0, "n3")
        assert bag_count(state.le_msgs, _vote("n3", "n1", 1, (0, "n3"))) == 1
        assert bag_count(state.le_msgs, _vote("n3", "n2", 1, (0, "n3"))) == 1

    def test_start_election_restricted_to_starters(self):
        spec = _spec(starters=("n3",))
        (init,) = spec.initial_states()
        decl = spec.actions["StartElection"]
        assert spec.apply(decl, init, {"i": "n1"}) is None
        assert spec.apply(decl, init, {"i": "n3"}) is not None

    def test_newer_round_adopted_and_rebroadcast(self):
        spec = _spec()
        (init,) = spec.initial_states()
        state = _apply(spec, init, "StartElection", i="n3")
        state = _apply(spec, state, "HandleVote", m=_vote("n3", "n1", 1, (0, "n3")))
        # n1 adopts round 1 and the better vote (n3's sid wins the tie)
        assert state.round["n1"] == 1
        assert state.vote["n1"] == (0, "n3")
        assert bag_count(state.le_msgs, _vote("n1", "n2", 1, (0, "n3"))) == 1

    def test_own_vote_wins_over_lower_sid(self):
        spec = _spec(starters=("n1",))
        (init,) = spec.initial_states()
        state = _apply(spec, init, "StartElection", i="n1")
        state = _apply(spec, state, "HandleVote", m=_vote("n1", "n3", 1, (0, "n1")))
        # n3's own (0, n3) beats the received (0, n1)
        assert state.vote["n3"] == (0, "n3")

    def test_worse_vote_same_round_recorded_without_sends(self):
        spec = _spec(starters=("n3", "n1"))
        (init,) = spec.initial_states()
        state = _apply(spec, init, "StartElection", i="n3")
        state = _apply(spec, state, "StartElection", i="n1")
        before = state.le_msgs
        after = _apply(spec, state, "HandleVote", m=_vote("n1", "n3", 1, (0, "n1")))
        # the notification was consumed, nothing new was sent
        assert sum(after.le_msgs.values()) == sum(before.values()) - 1
        assert after.voteTable["n3"]["n1"] == (0, "n1")

    def test_non_looking_receiver_swallows(self):
        spec = _spec(starters=("n3",))
        graph, case = scenario_case(spec, [
            label("StartElection", i="n3"),
            label("HandleVote", m=_vote("n3", "n2", 1, (0, "n3"))),
            label("BecomeFollowing", i="n2"),
        ])
        state = case.final_state
        assert state.state["n2"] == FOLLOWING
        m = _vote("n2", "n3", 1, (0, "n3"))  # n2's rebroadcast to n3
        # deliver n1-bound message to follower? use the one addressed to n2:
        # after following, any further vote to n2 is swallowed
        state2 = _apply(spec, state, "HandleVote", m=_vote("n3", "n1", 1, (0, "n3")))
        assert state2.vote["n1"] == (0, "n3")

    def test_become_leading_bumps_accepted_epoch(self):
        spec = _spec(starters=("n3",))
        graph, case = scenario_case(spec, [
            label("StartElection", i="n3"),
            label("HandleVote", m=_vote("n3", "n2", 1, (0, "n3"))),
            label("HandleVote", m=_vote("n2", "n3", 1, (0, "n3"))),
            label("BecomeLeading", i="n3"),
        ])
        state = case.final_state
        assert state.state["n3"] == LEADING
        assert state.acceptedEpoch["n3"] == 1
        assert state.ackd["n3"] == frozenset({"n3"})

    def test_become_leading_requires_quorum_and_self_vote(self):
        spec = _spec(starters=("n3",))
        (init,) = spec.initial_states()
        state = _apply(spec, init, "StartElection", i="n3")
        decl = spec.actions["BecomeLeading"]
        assert spec.apply(decl, state, {"i": "n3"}) is None  # only its own vote


class TestSyncPhase:
    def _synced(self, upto):
        spec = _spec(starters=("n3",))
        schedule = [
            label("StartElection", i="n3"),
            label("HandleVote", m=_vote("n3", "n2", 1, (0, "n3"))),
            label("BecomeFollowing", i="n2"),
            label("HandleVote", m=_vote("n2", "n3", 1, (0, "n3"))),
            label("BecomeLeading", i="n3"),
            label("SendLeaderInfo", i="n3", j="n2"),
            label("HandleLeaderInfo",
                  m={"mtype": "LeaderInfo", "mepoch": 1, "msource": "n3", "mdest": "n2"}),
            label("HandleAckEpoch",
                  m={"mtype": "AckEpoch", "mepoch": 1, "msource": "n2", "mdest": "n3"}),
            label("HandleNewLeader",
                  m={"mtype": "NewLeader", "mepoch": 1, "msource": "n3", "mdest": "n2"}),
            label("HandleAck",
                  m={"mtype": "Ack", "mepoch": 1, "msource": "n2", "mdest": "n3"}),
        ]
        graph, case = scenario_case(spec, schedule[:upto])
        return spec, case.final_state

    def test_leader_info_persists_accepted_epoch(self):
        spec, state = self._synced(7)
        assert state.acceptedEpoch["n2"] == 1
        assert state.currentEpoch["n2"] == 0  # not yet committed

    def test_new_leader_commits_current_epoch(self):
        spec, state = self._synced(9)
        assert state.currentEpoch["n2"] == 1

    def test_quorum_ack_commits_leader_epoch(self):
        spec, state = self._synced(10)
        assert state.currentEpoch["n3"] == 1
        assert state.ackd["n3"] == frozenset({"n2", "n3"})

    def test_one_handshake_message_per_session(self):
        spec, state = self._synced(6)
        decl = spec.actions["SendLeaderInfo"]
        assert spec.apply(decl, state, {"i": "n3", "j": "n2"}) is None

    def test_epochs_monotone_invariant(self):
        result = check(_spec(max_elections=1, max_crashes=0, max_restarts=0,
                             starters=("n3",)), max_states=30000)
        assert result.ok


class TestFaults:
    def _elected(self):
        spec = _spec(starters=("n3", "n2"))
        graph, case = scenario_case(spec, [
            label("StartElection", i="n3"),
            label("HandleVote", m=_vote("n3", "n2", 1, (0, "n3"))),
            label("BecomeFollowing", i="n2"),
        ])
        return spec, case.final_state

    def test_crash_marks_offline_only(self):
        spec, state = self._elected()
        after = _apply(spec, state, "Crash", i="n2")
        assert after.online["n2"] is False
        assert after.state["n2"] == FOLLOWING  # durable view unchanged

    def test_crashed_node_cannot_act(self):
        spec, state = self._elected()
        state = _apply(spec, state, "Crash", i="n2")
        decl = spec.actions["HandleVote"]
        # any vote addressed to the dead n2 is not handleable
        for m in state.le_msgs:
            if m["mdest"] == "n2":
                assert spec.apply(decl, state, {"m": m}) is None

    def test_restart_resets_volatile_keeps_epochs(self):
        spec, state = self._elected()
        state = _apply(spec, state, "Crash", i="n2")
        after = _apply(spec, state, "Restart", i="n2")
        assert after.online["n2"] is True
        assert after.state["n2"] == LOOKING
        assert after.round["n2"] == 0
        assert after.vote["n2"] == NIL
        assert after.leader["n2"] == NIL

    def test_restart_requires_crash_first(self):
        spec, state = self._elected()
        decl = spec.actions["Restart"]
        assert spec.apply(decl, state, {"i": "n2"}) is None
