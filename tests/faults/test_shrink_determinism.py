"""Determinism guard for the shrinker (mirrors ``tests/engine``'s):

* the same failing plan shrinks to the byte-identical minimal plan and
  shrink log under ``workers=1`` and ``workers=4``,
* the result is independent of ``PYTHONHASHSEED`` (verified in fresh
  subprocesses with seeds 0 and 42).

A regression here makes a minimal repro irreproducible — exactly the
property the shrinker exists to provide.
"""

import os
import subprocess
import sys

import pytest

from repro.core import RunnerConfig, generate_test_cases
from repro.engine import canonicalize, fork_available
from repro.faults import FaultConfig, plan_faults, shrink_plan
from repro.specs import build_example_spec
from repro.systems.toycache import (
    ToyCacheConfig,
    build_toycache_mapping,
    make_toycache_cluster,
)
from repro.tlaplus import check

_RUNNER = RunnerConfig(match_timeout=1.0, done_timeout=1.0,
                       quiesce_delay=0.05)
_FAULTS = FaultConfig(retries=2, backoff=0.05, convergence_timeout=1.0)

_KIT_SCRIPT = """
from repro.core import RunnerConfig, generate_test_cases
from repro.engine import canonicalize
from repro.faults import FaultConfig, plan_faults, shrink_plan
from repro.specs import build_example_spec
from repro.systems.toycache import (
    ToyCacheConfig, build_toycache_mapping, make_toycache_cluster,
)
from repro.tlaplus import check

config = ToyCacheConfig(bug_wrong_max=True)
spec = build_example_spec()
mapping = build_toycache_mapping()
graph = canonicalize(check(spec, max_states=10_000, truncate=True).graph)
suite = generate_test_cases(graph, por=True, seed=0).truncated(4)
factory = lambda: make_toycache_cluster(config)
plan = plan_faults(graph, suite, mapping, "1", factory().node_ids,
                   target="toycache")
result = shrink_plan(
    plan, graph, suite, mapping, factory,
    RunnerConfig(match_timeout=1.0, done_timeout=1.0, quiesce_delay=0.05),
    FaultConfig(retries=2, backoff=0.05, convergence_timeout=1.0))
print(result.minimal.to_json(), end="")
print("===")
import io
log = io.StringIO()
result.write_log(log)
print(log.getvalue(), end="")
"""


def build_failing_kit():
    config = ToyCacheConfig(bug_wrong_max=True)
    spec = build_example_spec()
    mapping = build_toycache_mapping()
    graph = canonicalize(check(spec, max_states=10_000, truncate=True).graph)
    suite = generate_test_cases(graph, por=True, seed=0).truncated(4)
    factory = lambda: make_toycache_cluster(config)
    plan = plan_faults(graph, suite, mapping, "1", factory().node_ids,
                       target="toycache")
    return plan, graph, suite, mapping, factory


@pytest.mark.skipif(not fork_available(),
                    reason="parallel executor needs fork")
def test_worker_count_does_not_change_the_minimal_plan(tmp_path):
    plan, graph, suite, mapping, factory = build_failing_kit()
    outputs = []
    for workers in (1, 4):
        result = shrink_plan(plan, graph, suite, mapping, factory,
                             _RUNNER, _FAULTS, workers=workers)
        path = tmp_path / f"log-w{workers}.jsonl"
        result.write_log(str(path))
        outputs.append((result.minimal.to_json(), path.read_bytes()))
    assert outputs[0] == outputs[1]


@pytest.mark.slow
def test_hash_seed_does_not_change_the_minimal_plan():
    outputs = []
    for hash_seed in ("0", "42"):
        env = dict(os.environ, PYTHONHASHSEED=hash_seed,
                   PYTHONPATH=os.pathsep.join(sys.path))
        proc = subprocess.run([sys.executable, "-c", _KIT_SCRIPT], env=env,
                              capture_output=True, text=True, check=True)
        outputs.append(proc.stdout)
    assert "===" in outputs[0]
    assert outputs[0] == outputs[1]
