"""Nemesis primitives against the runtime layer: partition/heal,
reorder, bounce, crash — plus the network's hold/flush mechanics."""

import random

import pytest

from repro.faults import ChaosKind, FaultInjection, InjectionMode, Nemesis
from repro.runtime.network import Network


class _FakeRuntime:
    """Just enough of MocketRuntime for the bounce path."""

    def __init__(self):
        self.snapshots = []

    def snapshot_node(self, node):
        self.snapshots.append(node.node_id)


def chaos(kind, step=1, **params):
    return FaultInjection(InjectionMode.CHAOS, kind.value, case_id=0,
                          step_index=step, params=params)


@pytest.fixture
def cluster():
    from repro.systems.pyxraft import XraftConfig, make_xraft_cluster

    built = make_xraft_cluster(("n1", "n2", "n3"), XraftConfig())
    built.deploy()
    yield built
    built.shutdown()


class TestNetworkPartition:
    def test_cross_cut_sends_are_held_not_lost(self):
        network = Network()
        for node in ("n1", "n2"):
            network.register(node)
        network.partition([["n1"], ["n2"]])
        assert network.send("n1", "n2", {"x": 1}) is True
        assert network.pending_count("n2") == 0
        assert len(network.held_snapshot()) == 1
        released = network.heal()
        assert released == 1
        assert network.pending_count("n2") == 1

    def test_heal_flushes_in_send_order(self):
        network = Network()
        for node in ("n1", "n2"):
            network.register(node)
        network.partition([["n1"], ["n2"]])
        for value in range(3):
            network.send("n1", "n2", value)
        network.heal()
        got = [network.receive("n2").payload for _ in range(3)]
        assert got == [0, 1, 2]

    def test_unnamed_nodes_see_everyone(self):
        network = Network()
        for node in ("n1", "n2", "client"):
            network.register(node)
        network.partition([["n1"], ["n2"]])
        assert network.send("client", "n1", "hello") is True
        assert network.pending_count("n1") == 1


class TestNemesis:
    def test_partition_isolates_and_heal_releases(self, cluster):
        nemesis = Nemesis(cluster, _FakeRuntime(), random.Random(0), case_id=0)
        nemesis.apply(chaos(ChaosKind.PARTITION, isolate="n1"))
        assert cluster.network.partitioned
        assert len(nemesis.applied) == 1
        nemesis.heal_all()
        assert not cluster.network.partitioned

    def test_heal_all_without_partition_is_a_noop(self, cluster):
        nemesis = Nemesis(cluster, _FakeRuntime(), random.Random(0), case_id=0)
        assert nemesis.heal_all() == 0

    def test_reorder_records_permuted_count(self, cluster):
        nemesis = Nemesis(cluster, _FakeRuntime(), random.Random(0), case_id=0)
        summary = nemesis.apply(chaos(ChaosKind.REORDER, node="n2"))
        assert "messages permuted" in summary
        assert cluster.network.reorder_count == 1

    def test_bounce_restarts_and_snapshots(self, cluster):
        runtime = _FakeRuntime()
        nemesis = Nemesis(cluster, runtime, random.Random(0), case_id=0)
        summary = nemesis.apply(chaos(ChaosKind.BOUNCE, node="n2"))
        assert cluster.is_up("n2")
        assert cluster.restart_counts["n2"] == 1
        assert runtime.snapshots == ["n2"]
        assert "incarnation 1" in summary

    def test_crash_takes_the_node_down_and_tolerates_repeats(self, cluster):
        nemesis = Nemesis(cluster, _FakeRuntime(), random.Random(0), case_id=0)
        nemesis.apply(chaos(ChaosKind.CRASH, node="n3"))
        assert not cluster.is_up("n3")
        summary = nemesis.apply(chaos(ChaosKind.CRASH, node="n3"))
        assert "already down" in summary

    def test_applied_summaries_are_timing_free(self, cluster):
        nemesis = Nemesis(cluster, _FakeRuntime(), random.Random(0), case_id=0)
        nemesis.apply(chaos(ChaosKind.PARTITION, isolate="n1"))
        nemesis.apply(chaos(ChaosKind.CRASH, node="n3"))
        again = Nemesis(cluster, _FakeRuntime(), random.Random(0), case_id=0)
        expected = [chaos(ChaosKind.PARTITION, isolate="n1").summary(),
                    chaos(ChaosKind.CRASH, node="n3").summary()]
        assert nemesis.applied == expected
        assert again.applied == []


class TestLinkCut:
    def test_cut_is_one_way(self):
        network = Network()
        for node in ("n1", "n2"):
            network.register(node)
        network.cut_link("n1", "n2")
        assert network.send("n1", "n2", "held") is True
        assert network.pending_count("n2") == 0
        assert network.send("n2", "n1", "through") is True
        assert network.pending_count("n1") == 1

    def test_rpc_over_a_cut_link_fails(self):
        network = Network()
        for node in ("n1", "n2"):
            network.register(node)
        network.cut_link("n1", "n2")
        with pytest.raises(Exception):
            network.rpc("n1", "n2", {"op": "ping"})

    def test_heal_releases_held_messages(self):
        network = Network()
        for node in ("n1", "n2"):
            network.register(node)
        network.cut_link("n1", "n2")
        network.send("n1", "n2", "held")
        assert network.disrupted
        assert network.heal() == 1
        assert not network.disrupted
        assert network.pending_count("n2") == 1


class TestDelay:
    def test_delay_holds_exactly_n_messages(self):
        network = Network()
        for node in ("n1", "n2"):
            network.register(node)
        network.delay_link("n1", "n2", 2)
        for value in range(3):
            network.send("n1", "n2", value)
        # first two held, budget exhausted, third sails through
        assert network.pending_count("n2") == 1
        assert network.receive("n2").payload == 2
        network.heal()
        got = [network.receive("n2").payload for _ in range(2)]
        assert got == [0, 1]

    def test_delay_rejects_nonpositive_counts(self):
        network = Network()
        network.register("n1")
        network.register("n2")
        with pytest.raises(ValueError):
            network.delay_link("n1", "n2", 0)

    def test_delay_accumulates_across_calls(self):
        network = Network()
        for node in ("n1", "n2"):
            network.register(node)
        network.delay_link("n1", "n2", 1)
        network.delay_link("n1", "n2", 1)
        network.send("n1", "n2", "a")
        network.send("n1", "n2", "b")
        assert network.pending_count("n2") == 0


class TestCorrupt:
    def test_corrupt_drops_exactly_one_pending_message(self):
        network = Network()
        for node in ("n1", "n2"):
            network.register(node)
        for value in range(3):
            network.send("n1", "n2", value)
        victim = network.corrupt_inbox("n2", random.Random(0))
        assert victim is not None
        assert network.pending_count("n2") == 2
        assert network.corrupt_count == 1
        assert network.corrupted == [victim]

    def test_corrupt_on_empty_inbox_is_a_noop(self):
        network = Network()
        network.register("n1")
        assert network.corrupt_inbox("n1", random.Random(0)) is None
        assert network.corrupt_count == 0

    def test_victim_pick_is_seed_deterministic(self):
        def pick(seed):
            network = Network()
            for node in ("n1", "n2"):
                network.register(node)
            for value in range(5):
                network.send("n1", "n2", value)
            return network.corrupt_inbox("n2", random.Random(seed)).payload

        assert pick(3) == pick(3)


@pytest.fixture
def quiet_cluster():
    """An undeployed cluster: the nemesis network primitives need
    registered inboxes, not running node threads — and without
    consumers, pending counts can be asserted race-free."""
    from repro.runtime.cluster import Cluster

    built = Cluster(("n1", "n2", "n3"), factory=lambda *a, **k: None)
    for node_id in built.node_ids:
        built.network.register(node_id)
    return built


class TestNewKindsViaNemesis:
    def test_partial_partition_splits_group_from_rest(self, quiet_cluster):
        nemesis = Nemesis(quiet_cluster, _FakeRuntime(), random.Random(0),
                          case_id=0)
        nemesis.apply(chaos(ChaosKind.PARTIAL_PARTITION, group=["n1", "n2"]))
        network = quiet_cluster.network
        assert network.send("n3", "n1", "held") is True
        assert network.pending_count("n1") == 0
        assert network.send("n1", "n2", "through") is True
        assert network.pending_count("n2") == 1
        nemesis.heal_all()
        assert network.pending_count("n1") == 1

    def test_link_cut_and_delay_flow_through_apply(self, quiet_cluster):
        nemesis = Nemesis(quiet_cluster, _FakeRuntime(), random.Random(0),
                          case_id=0)
        nemesis.apply(chaos(ChaosKind.LINK_CUT, src="n1", dst="n2"))
        nemesis.apply(chaos(ChaosKind.DELAY, src="n2", dst="n3", count=1))
        assert quiet_cluster.network.disrupted
        assert len(nemesis.applied) == 2
        assert nemesis.heal_all() >= 0
        assert not quiet_cluster.network.disrupted

    def test_corrupt_summary_names_the_dropped_edge(self, quiet_cluster):
        quiet_cluster.network.send("n1", "n2", {"x": 1})
        nemesis = Nemesis(quiet_cluster, _FakeRuntime(), random.Random(0),
                          case_id=0)
        summary = nemesis.apply(chaos(ChaosKind.CORRUPT, node="n2"))
        assert "dropped n1 -> n2" in summary
        empty = nemesis.apply(chaos(ChaosKind.CORRUPT, node="n3"))
        assert "no pending messages" in empty


class TestIncarnation:
    def test_nodes_report_their_restart_generation(self, cluster):
        assert cluster.node("n1").incarnation == 0
        cluster.restart_node("n1")
        assert cluster.node("n1").incarnation == 1
