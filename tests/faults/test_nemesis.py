"""Nemesis primitives against the runtime layer: partition/heal,
reorder, bounce, crash — plus the network's hold/flush mechanics."""

import random

import pytest

from repro.faults import ChaosKind, FaultInjection, InjectionMode, Nemesis
from repro.runtime.network import Network


class _FakeRuntime:
    """Just enough of MocketRuntime for the bounce path."""

    def __init__(self):
        self.snapshots = []

    def snapshot_node(self, node):
        self.snapshots.append(node.node_id)


def chaos(kind, step=1, **params):
    return FaultInjection(InjectionMode.CHAOS, kind.value, case_id=0,
                          step_index=step, params=params)


@pytest.fixture
def cluster():
    from repro.systems.pyxraft import XraftConfig, make_xraft_cluster

    built = make_xraft_cluster(("n1", "n2", "n3"), XraftConfig())
    built.deploy()
    yield built
    built.shutdown()


class TestNetworkPartition:
    def test_cross_cut_sends_are_held_not_lost(self):
        network = Network()
        for node in ("n1", "n2"):
            network.register(node)
        network.partition([["n1"], ["n2"]])
        assert network.send("n1", "n2", {"x": 1}) is True
        assert network.pending_count("n2") == 0
        assert len(network.held_snapshot()) == 1
        released = network.heal()
        assert released == 1
        assert network.pending_count("n2") == 1

    def test_heal_flushes_in_send_order(self):
        network = Network()
        for node in ("n1", "n2"):
            network.register(node)
        network.partition([["n1"], ["n2"]])
        for value in range(3):
            network.send("n1", "n2", value)
        network.heal()
        got = [network.receive("n2").payload for _ in range(3)]
        assert got == [0, 1, 2]

    def test_unnamed_nodes_see_everyone(self):
        network = Network()
        for node in ("n1", "n2", "client"):
            network.register(node)
        network.partition([["n1"], ["n2"]])
        assert network.send("client", "n1", "hello") is True
        assert network.pending_count("n1") == 1


class TestNemesis:
    def test_partition_isolates_and_heal_releases(self, cluster):
        nemesis = Nemesis(cluster, _FakeRuntime(), random.Random(0), case_id=0)
        nemesis.apply(chaos(ChaosKind.PARTITION, isolate="n1"))
        assert cluster.network.partitioned
        assert len(nemesis.applied) == 1
        nemesis.heal_all()
        assert not cluster.network.partitioned

    def test_heal_all_without_partition_is_a_noop(self, cluster):
        nemesis = Nemesis(cluster, _FakeRuntime(), random.Random(0), case_id=0)
        assert nemesis.heal_all() == 0

    def test_reorder_records_permuted_count(self, cluster):
        nemesis = Nemesis(cluster, _FakeRuntime(), random.Random(0), case_id=0)
        summary = nemesis.apply(chaos(ChaosKind.REORDER, node="n2"))
        assert "messages permuted" in summary
        assert cluster.network.reorder_count == 1

    def test_bounce_restarts_and_snapshots(self, cluster):
        runtime = _FakeRuntime()
        nemesis = Nemesis(cluster, runtime, random.Random(0), case_id=0)
        summary = nemesis.apply(chaos(ChaosKind.BOUNCE, node="n2"))
        assert cluster.is_up("n2")
        assert cluster.restart_counts["n2"] == 1
        assert runtime.snapshots == ["n2"]
        assert "incarnation 1" in summary

    def test_crash_takes_the_node_down_and_tolerates_repeats(self, cluster):
        nemesis = Nemesis(cluster, _FakeRuntime(), random.Random(0), case_id=0)
        nemesis.apply(chaos(ChaosKind.CRASH, node="n3"))
        assert not cluster.is_up("n3")
        summary = nemesis.apply(chaos(ChaosKind.CRASH, node="n3"))
        assert "already down" in summary

    def test_applied_summaries_are_timing_free(self, cluster):
        nemesis = Nemesis(cluster, _FakeRuntime(), random.Random(0), case_id=0)
        nemesis.apply(chaos(ChaosKind.PARTITION, isolate="n1"))
        nemesis.apply(chaos(ChaosKind.CRASH, node="n3"))
        again = Nemesis(cluster, _FakeRuntime(), random.Random(0), case_id=0)
        expected = [chaos(ChaosKind.PARTITION, isolate="n1").summary(),
                    chaos(ChaosKind.CRASH, node="n3").summary()]
        assert nemesis.applied == expected
        assert again.applied == []


class TestIncarnation:
    def test_nodes_report_their_restart_generation(self, cluster):
        assert cluster.node("n1").incarnation == 0
        cluster.restart_node("n1")
        assert cluster.node("n1").incarnation == 1
