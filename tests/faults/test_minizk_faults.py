"""Verified (modeled) crash/restart fault cases against minizk.

With ``ZabSpecOptions.crashers`` narrowing the fault vocabulary to one
node, the crash/restart state space stays small enough to plan modeled
splices from — giving minizk end-to-end *verified* fault coverage: the
spliced Crash/Restart steps are spec transitions, so the fault runner
checks every step exactly and a correct implementation must pass.
"""

import pytest

from repro.core import RunnerConfig, generate_test_cases
from repro.engine import canonicalize
from repro.faults import FaultConfig, FaultRunner, apply_plan, plan_faults, triage
from repro.specs.zab import ZabSpecOptions, build_zab_spec
from repro.systems.minizk import (
    MiniZkConfig,
    build_minizk_mapping,
    make_minizk_cluster,
)
from repro.tlaplus import check

SERVERS = ("n1", "n2", "n3")

_RUNNER = RunnerConfig(match_timeout=1.0, done_timeout=1.0,
                       quiesce_delay=0.05)
_FAULTS = FaultConfig(retries=2, backoff=0.05, convergence_timeout=1.0)


@pytest.fixture(scope="module")
def kit():
    options = ZabSpecOptions(
        servers=SERVERS, max_elections=1, max_crashes=1, max_restarts=1,
        starters=("n3",), crashers=("n1",), name="zab-fault-kit",
    )
    spec = build_zab_spec(options)
    mapping = build_minizk_mapping(spec, MiniZkConfig())
    graph = canonicalize(check(spec, max_states=4_000, truncate=True).graph)
    suite = generate_test_cases(graph, por=True, seed=0).truncated(2)
    return options, mapping, graph, suite


def test_planner_splices_verified_crash_restart(kit):
    options, mapping, graph, suite = kit
    plan = plan_faults(graph, suite, mapping, "1", SERVERS,
                       target="minizk", max_faults_per_case=2)
    modeled = plan.modeled()
    assert modeled, "zab fault edges must be reachable from the suite"
    kinds = {injection.kind for injection in modeled}
    assert kinds <= {"crash", "restart"}
    for injection in modeled:
        assert injection.edge.label.params.get("i") == "n1"  # crashers pin


def test_minizk_runs_verified_fault_cases_end_to_end(kit):
    _, mapping, graph, suite = kit
    plan = plan_faults(graph, suite, mapping, "1", SERVERS,
                       target="minizk", max_faults_per_case=2)
    augmented = apply_plan(suite, graph, plan)
    derived_ids = {injection.derived_case_id for injection in plan.modeled()}
    fault_names = {"Crash", "Restart"}
    assert any(fault_names & set(case.action_names())
               for case in augmented if case.case_id in derived_ids)

    runner = FaultRunner(
        mapping, graph,
        lambda: make_minizk_cluster(SERVERS, MiniZkConfig()),
        plan, _RUNNER, _FAULTS)
    outcome = runner.run_suite(augmented)
    payload = triage(outcome, plan)
    assert payload["unattributed"] == 0, payload
    # every verified fault case passed with exact per-step checking
    for result in outcome.results:
        if result.case.case_id in derived_ids:
            assert result.passed, result.divergence
