"""Determinism guard for fault injection (the tentpole's core contract):

* the same ``--fault-seed`` over the same model yields a byte-identical
  ``FaultPlan`` JSON — regardless of whether the graph came from the
  serial checker or the sharded parallel explorer (canonical
  renumbering erases discovery order),
* running the injected suite with ``workers=1`` and ``workers=2``
  yields identical divergence reports and triage payloads.

A regression here makes fault runs unreproducible, which silently
invalidates every replayed plan and triage verdict.
"""

import pytest

from repro.core import RunnerConfig, generate_test_cases
from repro.engine import canonicalize, fork_available
from repro.faults import (
    FaultConfig,
    FaultRunner,
    apply_plan,
    plan_faults,
    triage,
)
from repro.specs.raft import RaftSpecOptions, build_raft_spec
from repro.systems.pyxraft import (
    XraftConfig,
    build_xraft_mapping,
    make_xraft_cluster,
)
from repro.tlaplus import check

NODE_IDS = ("n1", "n2", "n3")

GUARD_OPTS = dict(
    servers=NODE_IDS, max_term=1, max_client_requests=0,
    enable_restart=True, max_restarts=1,
    enable_drop=True, max_drops=1,
    enable_duplicate=True, max_duplicates=1,
    candidates=("n1",), name="faults-guard",
)

_RUNNER = RunnerConfig(match_timeout=1.0, done_timeout=1.0,
                       quiesce_delay=0.05)
_FAULTS = FaultConfig(retries=2, backoff=0.1, convergence_timeout=1.0)


def build_kit(workers=1):
    spec = build_raft_spec(RaftSpecOptions(**GUARD_OPTS))
    mapping = build_xraft_mapping(spec, XraftConfig())
    graph = canonicalize(
        check(spec, max_states=50_000, truncate=True, workers=workers).graph)
    suite = generate_test_cases(graph, por=True, seed=0).truncated(4)
    return spec, mapping, graph, suite


def report_key(outcome):
    """The timing-free projection of a suite outcome."""
    return [
        (r.case.case_id, r.passed, list(r.injected_faults),
         None if r.divergence is None
         else (r.divergence.kind.value, r.divergence.step_index,
               r.divergence.action))
        for r in outcome.results
    ]


class TestPlanBytes:
    def test_same_seed_same_exploration_is_byte_identical(self):
        _, mapping, graph, suite = build_kit()
        first = plan_faults(graph, suite, mapping, "7", NODE_IDS, chaos=True)
        second = plan_faults(graph, suite, mapping, "7", NODE_IDS, chaos=True)
        assert first.to_json() == second.to_json()

    @pytest.mark.skipif(not fork_available(),
                        reason="parallel explorer needs fork")
    def test_serial_and_parallel_exploration_plan_identically(self):
        _, mapping, serial_graph, serial_suite = build_kit(workers=1)
        _, mapping2, parallel_graph, parallel_suite = build_kit(workers=2)
        serial_plan = plan_faults(serial_graph, serial_suite, mapping,
                                  "7", NODE_IDS, chaos=True)
        parallel_plan = plan_faults(parallel_graph, parallel_suite, mapping2,
                                    "7", NODE_IDS, chaos=True)
        assert serial_plan.to_json() == parallel_plan.to_json()


@pytest.mark.skipif(not fork_available(),
                    reason="parallel executor needs fork")
class TestReportIdentity:
    def test_worker_count_does_not_change_the_report(self):
        spec, mapping, graph, suite = build_kit()
        plan = plan_faults(graph, suite, mapping, "7", NODE_IDS, chaos=True)
        injected = apply_plan(suite, graph, plan)
        config = XraftConfig()

        def factory(servers=NODE_IDS, cfg=config):
            return make_xraft_cluster(servers, cfg)

        outcomes = []
        for workers in (1, 2):
            tester = FaultRunner(mapping, graph, factory, plan,
                                 _RUNNER, _FAULTS)
            outcomes.append(tester.run_suite(injected, workers=workers))
        assert report_key(outcomes[0]) == report_key(outcomes[1])
        assert triage(outcomes[0], plan) == triage(outcomes[1], plan)
