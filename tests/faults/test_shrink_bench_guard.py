"""Slow guard: shrink cost stays within the ddmin O(n^2) replay bound,
and the common fault-independent fast path stays a handful of replays.
"""

import os
import sys

import pytest

BENCH_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "benchmarks")
sys.path.insert(0, os.path.abspath(BENCH_DIR))

import shrink_bench  # noqa: E402  (benchmarks/ is not a package)


@pytest.mark.slow
class TestShrinkReplayGuard:
    def test_ddmin_stays_under_the_quadratic_bound(self):
        for row in shrink_bench.bench_ddmin_stress([8, 16, 32, 64]):
            assert row["converged"], row
            assert row["minimal"] == 2, row
            assert row["replays"] <= row["bound_n2_plus_n"], row

    def test_fast_path_needs_only_a_handful_of_replays(self):
        record = shrink_bench.bench_end_to_end()
        assert record["fault_independent"], record
        assert record["replays_to_minimal"] <= record["replay_bound"], record

    def test_bench_script_exits_clean(self, tmp_path, capsys):
        out = tmp_path / "BENCH_shrink.json"
        assert shrink_bench.main(["--out", str(out), "--sizes", "8,16"]) == 0
        assert "record written" in capsys.readouterr().out
        assert out.exists()
