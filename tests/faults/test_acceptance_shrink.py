"""Acceptance: a seeded multi-fault chaos run against raftkv that
fails with an unattributed divergence shrinks — fully deterministically
— to a minimal repro.

The kit plants ``bug_drop_higher_term_response`` and picks four cases
that all diverge on it; seed '21' is pinned because its plan lands
every injection for case 253 *after* that case's divergence step, so
triage cannot attribute the failure to the faults — the unattributed
divergence a shrink is worth running for.  The shrinker then proves
the point the hard way: scoped replay, then the empty-plan probe still
fails, so the minimal repro is zero injections (fault-independent) in
three replays.
"""

import json

import pytest

from repro.core import RunnerConfig, generate_test_cases
from repro.core.testgen.testcase import TestSuite
from repro.engine import canonicalize
from repro.faults import (
    FaultConfig,
    FaultRunner,
    apply_plan,
    plan_faults,
    shrink_plan,
    triage,
)
from repro.specs.raft import RaftSpecOptions, build_raft_spec
from repro.systems.raftkv import (
    RaftKvConfig,
    build_raftkv_mapping,
    make_raftkv_cluster,
)
from repro.tlaplus import check

SERVERS = ("n1", "n2")
SEED = "21"
# the four cases of the por suite (seed 0) that diverge on the planted
# bug; 253 is the one whose seed-'21' injections all land post-divergence
PICK = [147, 253, 254, 256]
UNATTRIBUTED_CASE = 253
UNATTRIBUTED_KIND = "missing_action"

_RUNNER = RunnerConfig(match_timeout=1.0, done_timeout=1.0,
                       quiesce_delay=0.05)
_FAULTS = FaultConfig(retries=2, backoff=0.05, convergence_timeout=1.0)


@pytest.fixture(scope="module")
def kit():
    options = RaftSpecOptions(
        servers=SERVERS, max_term=2, max_client_requests=0,
        enable_restart=False, enable_drop=False, enable_duplicate=False,
        candidates=SERVERS, name="raftkv-accept",
    )
    spec = build_raft_spec(options)
    config = RaftKvConfig(bug_drop_higher_term_response=True)
    mapping = build_raftkv_mapping(spec, config)
    graph = canonicalize(check(spec, max_states=5_000, truncate=True).graph)
    full = generate_test_cases(graph, por=True, seed=0)
    suite = TestSuite([c for c in full if c.case_id in PICK],
                      graph=full.graph,
                      excluded_edges=full.excluded_edges,
                      uncovered_edges=full.uncovered_edges)
    factory = lambda: make_raftkv_cluster(SERVERS, config)
    plan = plan_faults(graph, suite, mapping, SEED, SERVERS,
                       chaos=True, target="raftkv", max_faults_per_case=3)
    return mapping, graph, suite, factory, plan


@pytest.mark.slow
class TestAcceptance:
    def test_chaos_run_fails_with_an_unattributed_divergence(self, kit):
        mapping, graph, suite, factory, plan = kit
        assert len(plan) >= 10
        # the widened vocabulary is actually exercised, not just planned
        assert {i.kind for i in plan.injections} >= {
            "link_cut", "delay", "corrupt"}
        steps = [i.step_index for i in plan.injections
                 if i.case_id == UNATTRIBUTED_CASE]
        assert steps and all(s > 6 for s in steps)  # all post-divergence

        runner = FaultRunner(mapping, graph, factory, plan,
                             _RUNNER, _FAULTS)
        outcome = runner.run_suite(apply_plan(suite, graph, plan))
        payload = triage(outcome, plan)
        assert payload["unattributed"] >= 1, payload
        unattributed = [f for f in payload["failures"]
                        if f["verdict"] == "unattributed"]
        assert {f["case_id"] for f in unattributed} == {UNATTRIBUTED_CASE}
        assert {f["kind"] for f in unattributed} == {UNATTRIBUTED_KIND}

    def test_shrinks_deterministically_to_a_minimal_repro(self, kit):
        mapping, graph, suite, factory, plan = kit
        first = shrink_plan(plan, graph, suite, mapping, factory, _RUNNER,
                            fault_config=_FAULTS, budget=200, workers=1)
        assert first.converged
        assert first.final_count <= 3
        # the minimal plan reproduces the same unattributed kind — here
        # with zero injections: the planted bug needs no faults at all
        assert first.signature == [UNATTRIBUTED_KIND]
        assert first.fault_independent
        assert first.final_count == 0
        assert first.replays <= 3

        again = shrink_plan(plan, graph, suite, mapping, factory, _RUNNER,
                            fault_config=_FAULTS, budget=200, workers=4)
        assert first.minimal.to_json() == again.minimal.to_json()
        assert json.dumps(first.log) == json.dumps(again.log)
