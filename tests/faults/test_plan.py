"""Fault plans: derivation from the graph, canonical serialization,
and splice materialization (`plan_faults` / `apply_plan`)."""

import io

import pytest

from repro.core import generate_test_cases
from repro.engine import canonicalize
from repro.faults import (
    FaultPlan,
    InjectionMode,
    PLAN_FORMAT,
    apply_plan,
    plan_faults,
)
from repro.specs.raft import RaftSpecOptions, build_raft_spec
from repro.systems.pyxraft import XraftConfig, build_xraft_mapping
from repro.tlaplus import check

NODE_IDS = ["n1", "n2", "n3"]

GUARD_OPTS = dict(
    servers=tuple(NODE_IDS), max_term=1, max_client_requests=0,
    enable_restart=True, max_restarts=1,
    enable_drop=True, max_drops=1,
    enable_duplicate=True, max_duplicates=1,
    candidates=("n1",), name="faults-guard",
)


@pytest.fixture(scope="module")
def kit():
    options = RaftSpecOptions(**GUARD_OPTS)
    spec = build_raft_spec(options)
    mapping = build_xraft_mapping(spec, XraftConfig())
    graph = canonicalize(check(spec, max_states=50_000, truncate=True).graph)
    suite = generate_test_cases(graph, por=True, seed=0)
    return options, mapping, graph, suite


class TestPlanDerivation:
    def test_modeled_kinds_come_from_the_spec_vocabulary(self, kit):
        options, mapping, graph, suite = kit
        plan = plan_faults(graph, suite, mapping, "1", NODE_IDS)
        modeled_actions = {i.edge.label.name for i in plan.modeled()}
        assert modeled_actions  # fault edges exist in this model
        assert modeled_actions <= set(options.fault_actions())

    def test_modeled_splices_reference_real_graph_edges(self, kit):
        _, mapping, graph, suite = kit
        plan = plan_faults(graph, suite, mapping, "1", NODE_IDS)
        for injection in plan.modeled():
            ref = injection.edge
            assert graph.edge_between(ref.src, ref.dst, ref.label) is not None

    def test_chaos_mode_adds_disruptive_injections(self, kit):
        _, mapping, graph, suite = kit
        tame = plan_faults(graph, suite, mapping, "1", NODE_IDS, chaos=False)
        wild = plan_faults(graph, suite, mapping, "1", NODE_IDS, chaos=True)
        assert not any(i.disruptive for i in tame.injections)
        assert any(i.disruptive for i in wild.injections)
        assert len(wild) > len(tame)

    def test_at_least_three_distinct_kinds(self, kit):
        _, mapping, graph, suite = kit
        plan = plan_faults(graph, suite, mapping, "1", NODE_IDS)
        assert len(plan.kinds()) >= 3

    def test_chaos_for_returns_step_ordered_injections(self, kit):
        _, mapping, graph, suite = kit
        plan = plan_faults(graph, suite, mapping, "1", NODE_IDS, chaos=True)
        for case in suite:
            hits = plan.chaos_for(case.case_id)
            assert [i.step_index for i in hits] == sorted(
                i.step_index for i in hits)
            assert all(i.mode is InjectionMode.CHAOS for i in hits)


class TestPlanSerialization:
    def test_same_seed_is_byte_identical(self, kit):
        _, mapping, graph, suite = kit
        first = plan_faults(graph, suite, mapping, "7", NODE_IDS, chaos=True)
        second = plan_faults(graph, suite, mapping, "7", NODE_IDS, chaos=True)
        assert first.to_json() == second.to_json()

    def test_different_seed_differs(self, kit):
        _, mapping, graph, suite = kit
        first = plan_faults(graph, suite, mapping, "7", NODE_IDS)
        second = plan_faults(graph, suite, mapping, "8", NODE_IDS)
        assert first.to_json() != second.to_json()

    def test_roundtrip_preserves_the_plan(self, kit):
        _, mapping, graph, suite = kit
        plan = plan_faults(graph, suite, mapping, "7", NODE_IDS, chaos=True)
        buffer = io.StringIO()
        plan.save(buffer)
        buffer.seek(0)
        loaded = FaultPlan.load(buffer)
        assert loaded.to_json() == plan.to_json()
        assert loaded.seed == plan.seed
        assert loaded.chaos == plan.chaos

    def test_format_marker_is_checked(self):
        with pytest.raises(ValueError, match="not a mocket fault plan"):
            FaultPlan.from_jsonable({"format": "something-else"})
        assert PLAN_FORMAT == "mocket-fault-plan/1"


class TestApplyPlan:
    def test_derived_cases_are_appended_with_fresh_ids(self, kit):
        _, mapping, graph, suite = kit
        plan = plan_faults(graph, suite, mapping, "1", NODE_IDS)
        augmented = apply_plan(suite, graph, plan)
        base_ids = {case.case_id for case in suite}
        derived_ids = {case.case_id for case in augmented} - base_ids
        assert derived_ids == {i.derived_case_id for i in plan.modeled()}
        assert len(augmented) == len(suite) + len(plan.modeled())

    def test_derived_cases_are_verified_paths(self, kit):
        _, mapping, graph, suite = kit
        plan = plan_faults(graph, suite, mapping, "1", NODE_IDS)
        augmented = apply_plan(suite, graph, plan)
        for injection in plan.modeled():
            derived = next(c for c in augmented
                           if c.case_id == injection.derived_case_id)
            # contiguous graph path: every step resolves to a real edge
            for step in derived.steps:
                assert graph.edge_between(step.src_id, step.dst_id,
                                          step.label) is not None
            assert derived.steps[injection.step_index].label == \
                injection.edge.label

    def test_truncation_composes_with_planning(self, kit):
        _, mapping, graph, suite = kit
        capped = suite.truncated(2)
        plan = plan_faults(graph, capped, mapping, "1", NODE_IDS)
        augmented = apply_plan(capped, graph, plan)
        # derived cases ride along even though the base suite was capped
        assert len(augmented) == 2 + len(plan.modeled())

    def test_unknown_case_is_rejected(self, kit):
        _, mapping, graph, suite = kit
        plan = plan_faults(graph, suite, mapping, "1", NODE_IDS)
        if not plan.modeled():
            pytest.skip("model produced no modeled splices")
        plan.modeled()[0].case_id = 10_000
        with pytest.raises(ValueError, match="unknown case"):
            apply_plan(suite, graph, plan)


class TestMultiFaultPlanning:
    """`max_faults_per_case=k`: the widened vocabulary, the per-case
    legality rules, and the k == 1 compatibility promise."""

    LEGACY_CHAOS = {"partition", "reorder", "bounce", "crash"}
    WIDE_CHAOS = {"link_cut", "delay", "partial_partition", "corrupt"}

    def chaos_by_case(self, plan):
        grouped = {}
        for injection in plan.injections:
            if injection.mode is InjectionMode.CHAOS:
                grouped.setdefault(injection.case_id, []).append(injection)
        return grouped

    def test_budget_below_one_is_rejected(self, kit):
        _, mapping, graph, suite = kit
        with pytest.raises(ValueError, match="max_faults_per_case"):
            plan_faults(graph, suite, mapping, "1", NODE_IDS,
                        max_faults_per_case=0)

    def test_k1_stays_on_the_legacy_vocabulary(self, kit):
        _, mapping, graph, suite = kit
        explicit = plan_faults(graph, suite, mapping, "1", NODE_IDS,
                               chaos=True, max_faults_per_case=1)
        implicit = plan_faults(graph, suite, mapping, "1", NODE_IDS,
                               chaos=True)
        assert explicit.to_json() == implicit.to_json()
        chaos_kinds = {i.kind for i in explicit.injections
                       if i.mode is InjectionMode.CHAOS}
        assert chaos_kinds <= self.LEGACY_CHAOS

    def test_k3_reaches_the_wide_vocabulary(self, kit):
        _, mapping, graph, suite = kit
        plan = plan_faults(graph, suite, mapping, "1", NODE_IDS,
                           chaos=True, max_faults_per_case=3)
        kinds = {i.kind for i in plan.injections
                 if i.mode is InjectionMode.CHAOS}
        assert kinds & self.WIDE_CHAOS
        assert "corrupt" in kinds  # odd-index chaos cases trade a slot

    def test_k3_respects_the_per_case_budget_and_legality(self, kit):
        _, mapping, graph, suite = kit
        plan = plan_faults(graph, suite, mapping, "1", NODE_IDS,
                           chaos=True, max_faults_per_case=3)
        partition_family = {"partition", "partial_partition"}
        for case_id, injections in self.chaos_by_case(plan).items():
            assert len(injections) <= 3, case_id
            assert sum(1 for i in injections if i.disruptive) <= 1, case_id
            assert sum(1 for i in injections
                       if i.kind in partition_family) <= 1, case_id

    def test_k3_is_seed_deterministic(self, kit):
        _, mapping, graph, suite = kit
        first = plan_faults(graph, suite, mapping, "9", NODE_IDS,
                            chaos=True, max_faults_per_case=3)
        second = plan_faults(graph, suite, mapping, "9", NODE_IDS,
                             chaos=True, max_faults_per_case=3)
        assert first.to_json() == second.to_json()

    def test_single_node_cluster_skips_link_kinds(self, kit):
        _, mapping, graph, suite = kit
        plan = plan_faults(graph, suite, mapping, "1", ["solo"],
                           chaos=True, max_faults_per_case=3)
        for injection in plan.injections:
            if injection.mode is InjectionMode.CHAOS:
                assert injection.kind not in {"link_cut", "delay",
                                              "partial_partition"}

    def test_modeled_chains_splice_extra_fault_edges(self, kit):
        options, mapping, graph, suite = kit
        single = plan_faults(graph, suite, mapping, "1", NODE_IDS)
        chained = plan_faults(graph, suite, mapping, "1", NODE_IDS,
                              max_faults_per_case=3)
        fault_actions = set(options.fault_actions())

        def chained_faults(plan):
            return sum(
                sum(1 for ref in i.tail if ref.label.name in fault_actions)
                for i in plan.modeled())

        assert chained_faults(single) == 0  # tails prefer non-fault edges
        assert chained_faults(chained) > 0  # k>1 chains verified faults
        # the chained plan still materializes as verified graph paths
        augmented = apply_plan(suite, graph, chained)
        assert len(augmented) == len(suite) + len(chained.modeled())

    def test_wide_params_are_well_formed(self, kit):
        _, mapping, graph, suite = kit
        plan = plan_faults(graph, suite, mapping, "3", NODE_IDS,
                           chaos=True, max_faults_per_case=4)
        for injection in plan.injections:
            if injection.kind == "link_cut":
                assert injection.params["src"] != injection.params["dst"]
                assert injection.params["heal_after"] >= 1
            elif injection.kind == "delay":
                assert injection.params["src"] != injection.params["dst"]
                assert 1 <= injection.params["count"] <= 3
            elif injection.kind == "partial_partition":
                group = injection.params["group"]
                assert group == sorted(group)
                assert 1 <= len(group) < len(NODE_IDS)
