"""Static plan legality (`plan_violations`): every planner output must
pass, and each documented k-budget rule must be detected when broken."""

import pytest

from repro.core import generate_test_cases
from repro.engine import canonicalize
from repro.faults import (
    FaultInjection,
    FaultPlan,
    InjectionMode,
    plan_faults,
    plan_is_legal,
    plan_violations,
)
from repro.specs.raft import RaftSpecOptions, build_raft_spec
from repro.systems.pyxraft import XraftConfig, build_xraft_mapping
from repro.tlaplus import check

NODE_IDS = ["n1", "n2", "n3"]


@pytest.fixture(scope="module")
def kit():
    spec = build_raft_spec(RaftSpecOptions(
        servers=tuple(NODE_IDS), max_term=1, max_client_requests=0,
        enable_restart=True, max_restarts=1,
        enable_drop=True, max_drops=1,
        enable_duplicate=True, max_duplicates=1,
        candidates=("n1",), name="legality-guard",
    ))
    mapping = build_xraft_mapping(spec, XraftConfig())
    graph = canonicalize(check(spec, max_states=50_000,
                               truncate=True).graph)
    suite = generate_test_cases(graph, por=True, seed=0)
    return mapping, graph, suite


def first_chaos(plan, mode=InjectionMode.CHAOS):
    return next(i for i, injection in enumerate(plan.injections)
                if injection.mode is mode)


def replace(plan, position, injection):
    injections = list(plan.injections)
    injections[position] = injection
    return plan.subset(injections)


class TestPlannerOutputIsLegal:
    @pytest.mark.parametrize("seed", ["0", "1", "2", "7"])
    @pytest.mark.parametrize("chaos", [False, True])
    def test_every_planned_schedule_passes(self, kit, seed, chaos):
        mapping, graph, suite = kit
        plan = plan_faults(graph, suite, mapping, seed, NODE_IDS,
                           chaos=chaos)
        assert plan_violations(plan, suite, graph=graph,
                               node_ids=NODE_IDS) == []

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_k_budget_plans_respect_their_own_k(self, kit, k):
        mapping, graph, suite = kit
        plan = plan_faults(graph, suite, mapping, "3", NODE_IDS,
                           chaos=True, max_faults_per_case=k)
        assert plan_is_legal(plan, suite, graph=graph, node_ids=NODE_IDS,
                             max_faults_per_case=k)

    def test_empty_plan_is_legal(self, kit):
        _mapping, graph, suite = kit
        plan = FaultPlan("0", [])
        assert plan_is_legal(plan, suite, graph=graph, node_ids=NODE_IDS)


class TestChaosViolations:
    def chaos_case(self, suite):
        return next(case for case in suite if len(case.steps) >= 2)

    def test_unknown_case_is_flagged(self, kit):
        _mapping, _graph, suite = kit
        plan = FaultPlan("0", [FaultInjection(
            InjectionMode.CHAOS, "partition", 10_000, 1,
            params={"isolate": "n1"})])
        assert any("unknown case" in p
                   for p in plan_violations(plan, suite))

    def test_step_out_of_planner_range_is_flagged(self, kit):
        _mapping, _graph, suite = kit
        case = self.chaos_case(suite)
        # transparent kinds stop at len-1; len is only legal when disruptive
        plan = FaultPlan("0", [FaultInjection(
            InjectionMode.CHAOS, "partition", case.case_id,
            len(case.steps), params={"isolate": "n1"})])
        assert any("outside [1," in p for p in plan_violations(plan, suite))
        bounce = FaultPlan("0", [FaultInjection(
            InjectionMode.CHAOS, "bounce", case.case_id, len(case.steps),
            params={"node": "n1"})])
        assert plan_violations(bounce, suite, node_ids=NODE_IDS) == []

    def test_two_disruptive_in_one_case_is_flagged(self, kit):
        _mapping, _graph, suite = kit
        case = self.chaos_case(suite)
        plan = FaultPlan("0", [
            FaultInjection(InjectionMode.CHAOS, "bounce", case.case_id, 1,
                           params={"node": "n1"}),
            FaultInjection(InjectionMode.CHAOS, "crash", case.case_id, 2,
                           params={"node": "n2"}),
        ])
        assert any("disruptive" in p for p in plan_violations(plan, suite))

    def test_two_partition_family_in_one_case_is_flagged(self, kit):
        _mapping, _graph, suite = kit
        case = self.chaos_case(suite)
        plan = FaultPlan("0", [
            FaultInjection(InjectionMode.CHAOS, "partition", case.case_id,
                           1, params={"isolate": "n1"}),
            FaultInjection(InjectionMode.CHAOS, "partial_partition",
                           case.case_id, 1,
                           params={"group": ["n1", "n2"]}),
        ])
        assert any("partition-family" in p
                   for p in plan_violations(plan, suite))

    def test_chaos_k_budget_is_enforced(self, kit):
        _mapping, _graph, suite = kit
        case = self.chaos_case(suite)
        plan = FaultPlan("0", [
            FaultInjection(InjectionMode.CHAOS, "reorder", case.case_id, 1,
                           params={"node": "n1"}),
            FaultInjection(InjectionMode.CHAOS, "reorder", case.case_id, 1,
                           params={"node": "n2"}),
        ])
        assert plan_is_legal(plan, suite, node_ids=NODE_IDS)
        assert any("k-budget" in p
                   for p in plan_violations(plan, suite, node_ids=NODE_IDS,
                                            max_faults_per_case=1))

    def test_parameter_checks_need_node_ids(self, kit):
        _mapping, _graph, suite = kit
        case = self.chaos_case(suite)
        plan = FaultPlan("0", [FaultInjection(
            InjectionMode.CHAOS, "partition", case.case_id, 1,
            params={"isolate": "nope"})])
        assert plan_is_legal(plan, suite)  # structural pass
        assert any("not a cluster node" in p
                   for p in plan_violations(plan, suite,
                                            node_ids=NODE_IDS))

    def test_missing_required_param_is_flagged(self, kit):
        _mapping, _graph, suite = kit
        case = self.chaos_case(suite)
        plan = FaultPlan("0", [FaultInjection(
            InjectionMode.CHAOS, "delay", case.case_id, 1,
            params={"src": "n1", "dst": "n2"})])
        assert any("missing parameter 'count'" in p
                   for p in plan_violations(plan, suite))

    def test_group_must_leave_a_node_outside(self, kit):
        _mapping, _graph, suite = kit
        case = self.chaos_case(suite)
        plan = FaultPlan("0", [FaultInjection(
            InjectionMode.CHAOS, "partial_partition", case.case_id, 1,
            params={"group": list(NODE_IDS)})])
        assert any("outside the partition" in p
                   for p in plan_violations(plan, suite,
                                            node_ids=NODE_IDS))


class TestModeledViolations:
    def modeled_plan(self, kit, seed="1"):
        mapping, graph, suite = kit
        plan = plan_faults(graph, suite, mapping, seed, NODE_IDS)
        assert plan.modeled(), "guard spec must yield modeled splices"
        return plan

    def test_wrong_source_state_is_flagged(self, kit):
        mapping, graph, suite = kit
        plan = self.modeled_plan(kit)
        position = first_chaos(plan, InjectionMode.MODELED)
        injection = plan.injections[position]
        base = next(c for c in suite if c.case_id == injection.case_id)
        source_ids = [s.src_id for s in base.steps] + [base.final_id]
        bad_pos = next((pos for pos, sid in enumerate(source_ids)
                        if sid >= 0 and sid != injection.edge.src), None)
        if bad_pos is None:
            pytest.skip("base path never leaves the splice source")
        moved = FaultInjection(
            injection.mode, injection.kind, injection.case_id, bad_pos,
            derived_case_id=injection.derived_case_id,
            edge=injection.edge, tail=injection.tail)
        broken = replace(plan, position, moved)
        assert any("base path is at" in p
                   for p in plan_violations(broken, suite, graph=graph))

    def test_derived_id_collision_is_flagged(self, kit):
        mapping, graph, suite = kit
        plan = self.modeled_plan(kit)
        position = first_chaos(plan, InjectionMode.MODELED)
        injection = plan.injections[position]
        clashing = FaultInjection(
            injection.mode, injection.kind, injection.case_id,
            injection.step_index, derived_case_id=suite.cases[0].case_id,
            edge=injection.edge, tail=injection.tail)
        broken = replace(plan, position, clashing)
        assert any("collides" in p
                   for p in plan_violations(broken, suite, graph=graph))

    def test_noncontiguous_tail_is_flagged(self, kit):
        mapping, graph, suite = kit
        plan = self.modeled_plan(kit)
        position = next(
            (i for i, injection in enumerate(plan.injections)
             if injection.mode is InjectionMode.MODELED
             and len(injection.tail) >= 2), None)
        if position is None:
            pytest.skip("no splice with a 2-edge tail under this seed")
        injection = plan.injections[position]
        scrambled = FaultInjection(
            injection.mode, injection.kind, injection.case_id,
            injection.step_index,
            derived_case_id=injection.derived_case_id,
            edge=injection.edge,
            tail=list(reversed(injection.tail)))
        broken = replace(plan, position, scrambled)
        assert any("not contiguous" in p
                   for p in plan_violations(broken, suite, graph=graph))
