"""Shrinking a failing fault plan to a minimal repro.

The ddmin machinery is exercised synthetically (predicates over fake
injection lists — single culprit, a dependent pair, a monotone set) so
its 1-minimality guarantee is pinned independently of any runner; the
end-to-end path replays a real failing toycache campaign and must
converge to the fault-independence proof (0 injections) in a handful
of replays, byte-identically run over run.
"""

import json

import pytest

from repro.core import RunnerConfig, generate_test_cases
from repro.engine import canonicalize
from repro.faults import (
    ChaosKind,
    FaultConfig,
    FaultInjection,
    InjectionMode,
    plan_faults,
    shrink_plan,
)
from repro.faults.plan import EdgeRef
from repro.faults.shrink import (
    _Session,
    _ddmin,
    _shrink_params,
    _split,
    _weaker_variants,
)
from repro.specs import build_example_spec
from repro.systems.toycache import (
    ToyCacheConfig,
    build_toycache_mapping,
    make_toycache_cluster,
)
from repro.tlaplus import check

_RUNNER = RunnerConfig(match_timeout=1.0, done_timeout=1.0,
                       quiesce_delay=0.05)
_FAULTS = FaultConfig(retries=2, backoff=0.05, convergence_timeout=1.0)


def fake_injections(n):
    return [FaultInjection(InjectionMode.CHAOS, ChaosKind.REORDER.value,
                           case_id=0, step_index=index,
                           params={"node": "server", "tag": index})
            for index in range(n)]


def counting(predicate, session):
    """Wrap a set-predicate as the shrinker's ``fails`` callback."""
    def fails(items, phase="ddmin"):
        session.replays += 1
        return predicate({i.params["tag"] for i in items})
    return fails


class TestDdminSynthetic:
    def test_single_culprit_is_isolated(self):
        items = fake_injections(12)
        session = _Session(budget=500)
        minimal, converged = _ddmin(
            items, counting(lambda tags: 7 in tags, session), session)
        assert converged
        assert [i.params["tag"] for i in minimal] == [7]

    def test_dependent_pair_survives_together(self):
        items = fake_injections(10)
        session = _Session(budget=500)
        minimal, converged = _ddmin(
            items, counting(lambda tags: {3, 7} <= tags, session), session)
        assert converged
        assert sorted(i.params["tag"] for i in minimal) == [3, 7]

    def test_monotone_predicate_reaches_one_minimal(self):
        # fails whenever >= 3 injections remain: any 3 form a 1-minimal set
        items = fake_injections(9)
        session = _Session(budget=500)
        minimal, converged = _ddmin(
            items, counting(lambda tags: len(tags) >= 3, session), session)
        assert converged
        assert len(minimal) == 3

    def test_budget_exhaustion_returns_best_so_far(self):
        items = fake_injections(16)
        session = _Session(budget=3)
        minimal, converged = _ddmin(
            items, counting(lambda tags: 5 in tags, session), session)
        assert not converged
        assert any(i.params["tag"] == 5 for i in minimal)

    def test_split_covers_all_items_exactly_once(self):
        items = fake_injections(7)
        for granularity in (2, 3, 4, 7):
            chunks = _split(items, granularity)
            flat = [i for chunk in chunks for i in chunk]
            assert flat == items


class TestParamShrinking:
    def test_weaker_variants_cover_every_dimension(self):
        tail = [EdgeRef(1, 2, 0), EdgeRef(2, 3, 0)]
        injection = FaultInjection(
            InjectionMode.CHAOS, ChaosKind.DELAY.value, case_id=0,
            step_index=1, params={"count": 3, "group": ["n1", "n2"],
                                  "heal_after": 2},
            tail=tail)
        variants = _weaker_variants(injection)
        assert len(variants) == 4
        assert [len(v.tail) for v in variants[:1]] == [1]
        assert any(v.params.get("count") == 2 for v in variants)
        assert any(v.params.get("group") == ["n1"] for v in variants)
        assert any(v.params.get("heal_after") == 1 for v in variants)

    def test_minimal_values_have_no_weaker_variants(self):
        injection = FaultInjection(
            InjectionMode.CHAOS, ChaosKind.DELAY.value, case_id=0,
            step_index=1, params={"count": 1, "heal_after": 1})
        assert _weaker_variants(injection) == []

    def test_sweep_weakens_until_fixpoint(self):
        injection = FaultInjection(
            InjectionMode.CHAOS, ChaosKind.DELAY.value, case_id=0,
            step_index=1, params={"src": "n1", "dst": "n2", "count": 3})
        session = _Session(budget=100)

        def fails(items, phase="params"):
            session.replays += 1
            return True  # every weakening still fails -> shrink to count=1

        shrunk, converged = _shrink_params([injection], fails, session)
        assert converged
        assert shrunk[0].params["count"] == 1


@pytest.fixture(scope="module")
def failing_kit():
    """toycache with bug_wrong_max: fault seed '1' over the first 4
    cases yields 1 unattributed divergence (the CLI tutorial's repro)."""
    config = ToyCacheConfig(bug_wrong_max=True)
    spec = build_example_spec()
    mapping = build_toycache_mapping()
    graph = canonicalize(check(spec, max_states=10_000, truncate=True).graph)
    suite = generate_test_cases(graph, por=True, seed=0).truncated(4)
    factory = lambda: make_toycache_cluster(config)
    plan = plan_faults(graph, suite, mapping, "1", factory().node_ids,
                       target="toycache")
    return plan, graph, suite, mapping, factory


class TestShrinkEndToEnd:
    def test_unattributed_failure_proves_fault_independence(self, failing_kit):
        plan, graph, suite, mapping, factory = failing_kit
        result = shrink_plan(plan, graph, suite, mapping, factory,
                             _RUNNER, _FAULTS)
        assert result.fault_independent
        assert result.converged
        assert result.final_count == 0
        assert result.replays <= 3
        assert result.signature == ["inconsistent_state"]
        assert "fault-independent" in result.summary()

    def test_shrink_is_byte_deterministic(self, failing_kit, tmp_path):
        plan, graph, suite, mapping, factory = failing_kit
        logs = []
        for round_no in (1, 2):
            result = shrink_plan(plan, graph, suite, mapping, factory,
                                 _RUNNER, _FAULTS)
            path = tmp_path / f"log{round_no}.jsonl"
            result.write_log(str(path))
            logs.append((result.minimal.to_json(), path.read_bytes()))
        assert logs[0] == logs[1]

    def test_log_records_are_trace_shaped(self, failing_kit):
        plan, graph, suite, mapping, factory = failing_kit
        result = shrink_plan(plan, graph, suite, mapping, factory,
                             _RUNNER, _FAULTS)
        names = [record["name"] for record in result.log]
        assert names[0] == "shrink.start"
        assert names[-1] == "shrink.done"
        assert "shrink.test" in names
        for record in result.log:
            assert set(record) == {"seq", "ts", "kind", "name", "fields"}
            json.dumps(record)  # JSONL-serializable

    def test_non_failing_plan_is_rejected(self, failing_kit):
        plan, graph, suite, mapping, _ = failing_kit
        correct = lambda: make_toycache_cluster(ToyCacheConfig())
        with pytest.raises(ValueError, match="does not fail"):
            shrink_plan(plan, graph, suite, mapping, correct,
                        _RUNNER, _FAULTS)

    def test_tiny_budget_reports_non_convergence(self, failing_kit):
        plan, graph, suite, mapping, factory = failing_kit
        result = shrink_plan(plan, graph, suite, mapping, factory,
                             _RUNNER, _FAULTS, budget=2)
        assert not result.converged
        assert result.replays <= 2
        assert "budget exhausted" in result.summary()

    def test_budget_below_two_is_rejected(self, failing_kit):
        plan, graph, suite, mapping, factory = failing_kit
        with pytest.raises(ValueError, match="budget"):
            shrink_plan(plan, graph, suite, mapping, factory,
                        _RUNNER, _FAULTS, budget=1)
