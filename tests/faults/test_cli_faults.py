"""The `mocket faults` verb and the `--faults` family on `mocket test`.

toycache keeps these fast: a 13-state model whose mapping has no fault
actions, so plans carry only transparent chaos injections — which a
correct implementation must shrug off (heal-on-retry), making exit
codes and triage output easy to pin down.
"""

import json

import pytest

from repro.cli import main
from repro.faults import FaultPlan


class TestFaultsPlan:
    def test_plan_writes_canonical_json(self, tmp_path, capsys):
        out = tmp_path / "plan.json"
        assert main(["faults", "plan", "toycache", "--fault-seed", "5",
                     "--out", str(out)]) == 0
        plan = FaultPlan.load(str(out))
        assert plan.seed == "5"
        assert len(plan) > 0
        # canonical bytes: a second run reproduces the file exactly
        again = tmp_path / "again.json"
        assert main(["faults", "plan", "toycache", "--fault-seed", "5",
                     "--out", str(again)]) == 0
        assert out.read_bytes() == again.read_bytes()

    def test_plan_without_out_prints_json(self, capsys):
        assert main(["faults", "plan", "toycache", "--fault-seed", "5"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["format"] == "mocket-fault-plan/1"


class TestFaultsRunAndReplay:
    def test_run_passes_and_triages_clean(self, capsys):
        assert main(["faults", "run", "toycache", "--fault-seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "fault plan:" in out
        assert "0 unattributed" in out

    def test_replay_reuses_a_saved_plan(self, tmp_path, capsys):
        out = tmp_path / "plan.json"
        assert main(["faults", "plan", "toycache", "--fault-seed", "5",
                     "--out", str(out)]) == 0
        capsys.readouterr()
        assert main(["faults", "replay", "toycache", "--plan",
                     str(out)]) == 0
        assert "0 unattributed" in capsys.readouterr().out

    def test_replay_rejects_a_foreign_plan(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"format": "nope"}))
        with pytest.raises(ValueError, match="not a mocket fault plan"):
            main(["faults", "replay", "toycache", "--plan", str(bogus)])


class TestTestFaultFlags:
    def test_test_with_faults_is_deterministic(self, capsys):
        assert main(["test", "toycache", "--faults",
                     "--fault-seed", "9"]) == 0
        first = capsys.readouterr().out
        assert main(["test", "toycache", "--faults",
                     "--fault-seed", "9"]) == 0
        second = capsys.readouterr().out

        def stable(text):
            return [line for line in text.splitlines()
                    if "wall clock" not in line and " cases, " not in line]

        assert stable(first) == stable(second)
        assert "fault plan:" in first
        assert "fault triage" in first

    def test_chaos_flag_implies_faults(self, capsys):
        assert main(["test", "toycache", "--chaos", "--fault-seed", "9",
                     "--cases", "2"]) == 0
        out = capsys.readouterr().out
        assert "chaos" in out


class TestScenariosVerb:
    def test_bundled_scenarios_match_expectations(self, capsys):
        assert main(["faults", "scenarios"]) == 0
        out = capsys.readouterr().out
        assert "[as expected]" in out
        assert "UNEXPECTED" not in out
        assert "pyxraft-modeled-message-faults" in out
