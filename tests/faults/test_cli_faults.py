"""The `mocket faults` verb and the `--faults` family on `mocket test`.

toycache keeps these fast: a 13-state model whose mapping has no fault
actions, so plans carry only transparent chaos injections — which a
correct implementation must shrug off (heal-on-retry), making exit
codes and triage output easy to pin down.
"""

import json

import pytest

from repro.cli import main
from repro.faults import FaultPlan


class TestFaultsPlan:
    def test_plan_writes_canonical_json(self, tmp_path, capsys):
        out = tmp_path / "plan.json"
        assert main(["faults", "plan", "toycache", "--fault-seed", "5",
                     "--out", str(out)]) == 0
        plan = FaultPlan.load(str(out))
        assert plan.seed == "5"
        assert len(plan) > 0
        # canonical bytes: a second run reproduces the file exactly
        again = tmp_path / "again.json"
        assert main(["faults", "plan", "toycache", "--fault-seed", "5",
                     "--out", str(again)]) == 0
        assert out.read_bytes() == again.read_bytes()

    def test_plan_without_out_prints_json(self, capsys):
        assert main(["faults", "plan", "toycache", "--fault-seed", "5"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["format"] == "mocket-fault-plan/1"


class TestFaultsRunAndReplay:
    def test_run_passes_and_triages_clean(self, capsys):
        assert main(["faults", "run", "toycache", "--fault-seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "fault plan:" in out
        assert "0 unattributed" in out
        # the visited-fingerprint digest that lets a chaos run's results
        # seed a fuzz corpus
        assert "coverage:" in out and "edges visited" in out

    def test_replay_reuses_a_saved_plan(self, tmp_path, capsys):
        out = tmp_path / "plan.json"
        assert main(["faults", "plan", "toycache", "--fault-seed", "5",
                     "--out", str(out)]) == 0
        capsys.readouterr()
        assert main(["faults", "replay", "toycache", "--plan",
                     str(out)]) == 0
        assert "0 unattributed" in capsys.readouterr().out

    def test_replay_rejects_a_foreign_plan(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"format": "nope"}))
        with pytest.raises(ValueError, match="not a mocket fault plan"):
            main(["faults", "replay", "toycache", "--plan", str(bogus)])


class TestTestFaultFlags:
    def test_test_with_faults_is_deterministic(self, capsys):
        assert main(["test", "toycache", "--faults",
                     "--fault-seed", "9"]) == 0
        first = capsys.readouterr().out
        assert main(["test", "toycache", "--faults",
                     "--fault-seed", "9"]) == 0
        second = capsys.readouterr().out

        def stable(text):
            return [line for line in text.splitlines()
                    if "wall clock" not in line and " cases, " not in line]

        assert stable(first) == stable(second)
        assert "fault plan:" in first
        assert "fault triage" in first

    def test_chaos_flag_implies_faults(self, capsys):
        assert main(["test", "toycache", "--chaos", "--fault-seed", "9",
                     "--cases", "2"]) == 0
        out = capsys.readouterr().out
        assert "chaos" in out


class TestMaxFaultsFlag:
    def test_k3_plans_more_and_wider_than_k1(self, capsys):
        assert main(["faults", "plan", "toycache", "--fault-seed", "1",
                     "--chaos"]) == 0
        k1 = capsys.readouterr().out
        assert main(["faults", "plan", "toycache", "--fault-seed", "1",
                     "--chaos", "--max-faults", "3"]) == 0
        k3 = capsys.readouterr().out
        plan1 = json.loads(k1[k1.index("{"):])
        plan3 = json.loads(k3[k3.index("{"):])
        assert len(plan3["injections"]) > len(plan1["injections"])
        assert {i["kind"] for i in plan3["injections"]} > \
            {i["kind"] for i in plan1["injections"]}

    def test_max_faults_zero_is_rejected(self):
        with pytest.raises(ValueError, match="max_faults_per_case"):
            main(["faults", "plan", "toycache", "--max-faults", "0"])


class TestShrinkVerb:
    def failing_plan(self, tmp_path):
        out = tmp_path / "plan.json"
        assert main(["faults", "plan", "toycache", "--fault-seed", "1",
                     "--out", str(out)]) == 0
        return str(out)

    def test_shrink_proves_fault_independence(self, tmp_path, capsys):
        plan = self.failing_plan(tmp_path)
        capsys.readouterr()
        minimal = tmp_path / "minimal.json"
        log = tmp_path / "shrink.jsonl"
        assert main(["faults", "shrink", "toycache", "--bug", "bug_wrong_max",
                     "--plan", plan, "--cases", "4",
                     "--out", str(minimal), "--log", str(log)]) == 0
        out = capsys.readouterr().out
        assert "shrunk 4 -> 0 injections" in out
        assert "fault-independent" in out
        assert json.loads(minimal.read_text())["injections"] == []
        records = [json.loads(line) for line in log.read_text().splitlines()]
        assert records[0]["name"] == "shrink.start"
        assert records[-1]["name"] == "shrink.done"

    def test_shrink_log_feeds_trace_summarize(self, tmp_path, capsys):
        plan = self.failing_plan(tmp_path)
        log = tmp_path / "shrink.jsonl"
        assert main(["faults", "shrink", "toycache", "--bug", "bug_wrong_max",
                     "--plan", plan, "--cases", "4", "--log", str(log)]) == 0
        capsys.readouterr()
        assert main(["trace", "summarize", str(log)]) == 0
        out = capsys.readouterr().out
        assert "shrink: 4 -> 0 injections" in out

    def test_shrink_rejects_a_plan_that_does_not_fail(self, tmp_path):
        plan = self.failing_plan(tmp_path)
        with pytest.raises(SystemExit, match="does not fail"):
            main(["faults", "shrink", "toycache", "--plan", plan,
                  "--cases", "4"])

    def test_test_verb_shrinks_on_failure(self, capsys):
        assert main(["test", "toycache", "--bug", "bug_wrong_max",
                     "--faults", "--fault-seed", "1", "--cases", "4",
                     "--shrink-on-failure"]) == 1
        out = capsys.readouterr().out
        assert "unattributed" in out
        assert "shrunk 4 -> 0 injections" in out

    def test_without_the_flag_no_shrink_runs(self, capsys):
        assert main(["test", "toycache", "--bug", "bug_wrong_max",
                     "--faults", "--fault-seed", "1", "--cases", "4"]) == 1
        assert "shrunk" not in capsys.readouterr().out


class TestScenariosVerb:
    def test_bundled_scenarios_match_expectations(self, capsys):
        assert main(["faults", "scenarios"]) == 0
        out = capsys.readouterr().out
        assert "[as expected]" in out
        assert "UNEXPECTED" not in out
        assert "pyxraft-modeled-message-faults" in out
        assert "minizk-crash-restart" in out

    def test_json_envelope_is_stable_v1(self, capsys):
        assert main(["faults", "scenarios", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["summary"]["failed"] == 0
        assert payload["summary"]["total"] == len(payload["scenarios"])
        names = {row["name"] for row in payload["scenarios"]}
        assert "minizk-crash-restart" in names
        for row in payload["scenarios"]:
            assert set(row) == {"name", "target", "expected", "outcome",
                                "ok", "detail"}
            assert row["ok"] is True
