"""FaultRunner end-to-end: the bundled scenarios pin down every corner
of the nemesis contract (bounded stall, convergence mode, heal-on-retry
transparency, modeled message faults), and triage attributes what they
inject."""

import pytest

from repro.core import RunnerConfig
from repro.core.testbed.report import SuiteResult
from repro.faults import (
    FaultConfig,
    FaultRunner,
    minizk_crash_restart,
    pyxraft_crash_blackout,
    pyxraft_modeled_message_faults,
    pyxraft_partition_transparent,
    raftkv_bounce_leader,
    render_triage,
    triage,
)

_RUNNER = RunnerConfig(match_timeout=1.0, done_timeout=1.0,
                       quiesce_delay=0.05)
_FAULTS = FaultConfig(retries=2, backoff=0.1, convergence_timeout=1.0)


def run_scenario(scenario):
    if scenario.target == "pyxraft":
        from repro.systems.pyxraft import (
            XraftConfig, build_xraft_mapping, make_xraft_cluster,
        )

        config = XraftConfig()
        mapping = build_xraft_mapping(scenario.spec, config)
        factory = (lambda servers=scenario.servers, cfg=config:
                   make_xraft_cluster(servers, cfg))
    elif scenario.target == "minizk":
        from repro.systems.minizk import (
            MiniZkConfig, build_minizk_mapping, make_minizk_cluster,
        )

        config = MiniZkConfig()
        mapping = build_minizk_mapping(scenario.spec, config)
        factory = (lambda servers=scenario.servers, cfg=config:
                   make_minizk_cluster(servers, cfg))
    else:
        from repro.systems.raftkv import (
            RaftKvConfig, build_raftkv_mapping, make_raftkv_cluster,
        )

        config = RaftKvConfig()
        mapping = build_raftkv_mapping(scenario.spec, config)
        factory = (lambda servers=scenario.servers, cfg=config:
                   make_raftkv_cluster(servers, cfg))
    tester = FaultRunner(mapping, scenario.graph, factory, scenario.plan,
                         _RUNNER, _FAULTS)
    return tester.run_case(scenario.case), tester


class TestBundledScenarios:
    def test_bounce_breaks_reconvergence(self):
        scenario = raftkv_bounce_leader()
        result, _ = run_scenario(scenario)
        assert not result.passed
        assert result.divergence.kind.value == "inconsistent_state"
        assert "no re-convergence" in (result.divergence.detail or "")
        assert any("bounce" in s for s in result.injected_faults)

    def test_crash_stalls_within_budget_instead_of_hanging(self):
        scenario = pyxraft_crash_blackout()
        result, _ = run_scenario(scenario)
        assert not result.passed
        assert result.divergence.kind.value == "stalled"
        assert "all faults healed" in (result.divergence.detail or "")
        # the retry budget bounds the wait: 2 retries of the 1s match
        # timeout plus backoff, nowhere near a hang
        assert result.elapsed_seconds < 15

    def test_partition_is_transparent_via_heal_on_retry(self):
        scenario = pyxraft_partition_transparent()
        result, _ = run_scenario(scenario)
        assert result.passed, result.divergence
        assert any("partition" in s for s in result.injected_faults)

    def test_modeled_message_faults_pass_with_exact_checking(self):
        scenario = pyxraft_modeled_message_faults()
        assert scenario.plan.chaos is False
        result, _ = run_scenario(scenario)
        assert result.passed, result.divergence
        action_names = scenario.case.action_names()
        assert "DropMessage" in action_names
        assert "DuplicateMessage" in action_names

    def test_minizk_verified_crash_restart_passes(self):
        # minizk's first verified fault case: Crash/Restart are ZAB spec
        # transitions, so per-step checking stays exact end to end
        scenario = minizk_crash_restart()
        assert scenario.plan.chaos is False
        result, _ = run_scenario(scenario)
        assert result.passed, result.divergence
        action_names = scenario.case.action_names()
        assert "Crash" in action_names
        assert "Restart" in action_names
        assert "BecomeLeading" in action_names


class TestBackoffJitter:
    """Satellite regression: retry jitter draws from a plan-seeded
    stream, never the process-global ``random``."""

    def run_with_jitter(self):
        import random

        scenario = pyxraft_partition_transparent()
        from repro.systems.pyxraft import (
            XraftConfig, build_xraft_mapping, make_xraft_cluster,
        )

        config = XraftConfig()
        mapping = build_xraft_mapping(scenario.spec, config)
        factory = (lambda servers=scenario.servers, cfg=config:
                   make_xraft_cluster(servers, cfg))
        jittery = FaultConfig(retries=2, backoff=0.05,
                              convergence_timeout=1.0, jitter=0.05)
        random.seed(424242)
        before = random.getstate()
        tester = FaultRunner(mapping, scenario.graph, factory, scenario.plan,
                             _RUNNER, jittery)
        result = tester.run_case(scenario.case)
        return result, before == random.getstate()

    def test_replaying_twice_yields_identical_reports(self):
        # the partition forces the heal-on-retry path, so the jittered
        # backoff actually executes on both runs
        first, _ = self.run_with_jitter()
        second, _ = self.run_with_jitter()
        assert first.passed and second.passed
        assert list(first.injected_faults) == list(second.injected_faults)
        assert (first.divergence is None) and (second.divergence is None)

    def test_jitter_never_touches_global_random(self):
        _, untouched = self.run_with_jitter()
        assert untouched


class TestTriage:
    def test_divergence_is_attributed_to_the_injection(self):
        scenario = pyxraft_crash_blackout()
        result, _ = run_scenario(scenario)
        outcome = SuiteResult([result], elapsed_seconds=0.0)
        payload = triage(outcome, scenario.plan)
        assert payload["divergent"] == 1
        assert payload["unattributed"] == 0
        failure = payload["failures"][0]
        assert failure["verdict"] == "fault-induced"
        assert any("crash" in line for line in failure["attributed_to"])

    def test_triage_payload_is_timing_free_and_renders(self):
        scenario = pyxraft_crash_blackout()
        first, _ = run_scenario(scenario)
        second, _ = run_scenario(scenario)
        first_payload = triage(SuiteResult([first], 1.0), scenario.plan)
        second_payload = triage(SuiteResult([second], 2.0), scenario.plan)
        assert first_payload == second_payload
        text = render_triage(first_payload)
        assert "fault-induced" in text

    def test_clean_run_triages_clean(self):
        scenario = pyxraft_partition_transparent()
        result, _ = run_scenario(scenario)
        payload = triage(SuiteResult([result], 0.0), scenario.plan)
        assert payload["divergent"] == 0
        assert payload["unattributed"] == 0


class TestClockInjection:
    """Satellite regression: every fault-runner wait goes through an
    injected clock, so the simulated path can compress backoff and
    convergence windows to zero wall time."""

    def test_default_clock_is_the_wall_clock(self):
        from repro.runtime.clock import WALL_CLOCK

        assert FaultConfig().clock is WALL_CLOCK

    def test_converged_with_virtual_clock_costs_no_wall_time(self):
        import time

        from repro.core.testbed.statecheck import StateChecker
        from repro.runtime.sim import VirtualClock

        class NeverConverges(StateChecker):
            def __init__(self):
                self.polls = 0

            def compare(self, expected):
                self.polls += 1
                return ["mismatch"]

        clock = VirtualClock()
        checker = NeverConverges()
        start = time.monotonic()
        mismatches = checker.converged(None, timeout=1000.0, poll=1.0,
                                       clock=clock)
        wall = time.monotonic() - start
        assert mismatches == ["mismatch"]
        assert clock.now() >= 1000.0          # the wait happened...
        assert wall < 5.0                     # ...in virtual time only
        assert checker.polls == 1001

    def test_virtual_clock_backoff_stream_matches_wall_stream(self):
        # the jitter draw order must not depend on which clock sleeps
        import random

        from repro.runtime.sim import VirtualClock

        def draws(config):
            rng = random.Random("p:1:backoff")
            out = []
            for attempt in range(1, config.retries + 1):
                pause = config.backoff * attempt
                if config.jitter:
                    pause += rng.random() * config.jitter
                out.append(pause)
            return out

        wall = FaultConfig(retries=3, jitter=0.05)
        virtual = FaultConfig(retries=3, jitter=0.05, clock=VirtualClock())
        assert draws(wall) == draws(virtual)
