"""raftkv as a plain distributed system: blocking RPC, KV state machine."""

import time

import pytest

from repro.systems.raftkv import RaftKvConfig, make_raftkv_cluster
from repro.systems.raftkv.node import KvRole, spec_msg_of


def _wait_until(predicate, timeout=3.0, poll=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(poll)
    return False


@pytest.fixture()
def cluster():
    with make_raftkv_cluster(("n1", "n2", "n3")) as c:
        yield c


def _elect(cluster, node_id="n1"):
    node = cluster.node(node_id)
    node.trigger_timeout()
    for peer in node.peers:
        node.solicit_vote(peer)
    assert _wait_until(lambda: node.role is KvRole.LEADER)
    return node


class TestElection:
    def test_blocking_vote_exchange_elects_leader(self, cluster):
        leader = _elect(cluster)
        assert leader.current_term == 1
        assert cluster.node("n2").voted_for == "n1"

    def test_higher_term_response_steps_candidate_down(self, cluster):
        n2 = cluster.node("n2")
        n2.trigger_timeout()
        n2.trigger_timeout()  # n2 at term 2
        n1 = cluster.node("n1")
        n1.trigger_timeout()  # n1 candidate at term 1
        n1.solicit_vote("n2")
        assert _wait_until(lambda: n1.current_term == 2)
        assert n1.role is KvRole.FOLLOWER

    def test_buggy_node_ignores_higher_term_response(self):
        config = RaftKvConfig(bug_drop_higher_term_response=True)
        with make_raftkv_cluster(("n1", "n2", "n3"), config) as cluster:
            n2 = cluster.node("n2")
            n2.trigger_timeout()
            n2.trigger_timeout()
            n1 = cluster.node("n1")
            n1.trigger_timeout()
            n1.solicit_vote("n2")
            time.sleep(0.2)
            assert n1.current_term == 1         # the response was swallowed
            assert n1.role is KvRole.CANDIDATE


class TestReplicationAndKv:
    def test_write_replicates_and_applies(self, cluster):
        leader = _elect(cluster)
        assert leader.client_request(("color", "blue"))
        for peer in leader.peers:
            leader.replicate(peer)
        assert _wait_until(lambda: leader.commit_index == 1)
        leader.advance_commit_index()  # idempotent
        assert leader.get("color") == "blue"
        # followers apply once the leader's commit index propagates
        for peer in leader.peers:
            leader.replicate(peer)
        assert _wait_until(
            lambda: cluster.node("n2").get("color") == "blue", timeout=3.0
        )

    def test_scalar_values_apply_as_identity(self, cluster):
        leader = _elect(cluster)
        leader.client_request(7)
        for peer in leader.peers:
            leader.replicate(peer)
        assert _wait_until(lambda: leader.commit_index == 1)
        assert leader.get(7) == 7

    def test_follower_rejects_gap(self, cluster):
        n2 = cluster.node("n2")
        reply = n2.handle_append_entries_request({
            "type": "AppendEntriesRequest", "term": 1, "prev_log_index": 2,
            "prev_log_term": 1, "entries": [[1, "x"]], "commit_index": 0,
            "src": "n1", "dst": "n2",
        })
        assert reply["success"] is False
        assert n2.log == ()

    def test_correct_truncation_of_conflicts(self, cluster):
        n2 = cluster.node("n2")
        n2.handle_append_entries_request({
            "type": "AppendEntriesRequest", "term": 1, "prev_log_index": 0,
            "prev_log_term": 0, "entries": [[1, "old"]], "commit_index": 0,
            "src": "n3", "dst": "n2",
        })
        n2.handle_append_entries_request({
            "type": "AppendEntriesRequest", "term": 2, "prev_log_index": 0,
            "prev_log_term": 0, "entries": [[2, "new"]], "commit_index": 0,
            "src": "n1", "dst": "n2",
        })
        assert n2.log == ((2, "new"),)

    def test_buggy_append_piles_up(self):
        config = RaftKvConfig(bug_append_no_truncate=True)
        with make_raftkv_cluster(("n1", "n2", "n3"), config) as cluster:
            n2 = cluster.node("n2")
            n2.handle_append_entries_request({
                "type": "AppendEntriesRequest", "term": 1, "prev_log_index": 0,
                "prev_log_term": 0, "entries": [[1, "old"]], "commit_index": 0,
                "src": "n3", "dst": "n2",
            })
            n2.handle_append_entries_request({
                "type": "AppendEntriesRequest", "term": 2, "prev_log_index": 0,
                "prev_log_term": 0, "entries": [[2, "new"]], "commit_index": 0,
                "src": "n1", "dst": "n2",
            })
            assert n2.log == ((1, "old"), (2, "new"))  # the conflict survives


class TestRpcPlumbing:
    def test_rpc_to_dead_peer_times_out(self, cluster):
        n1 = cluster.node("n1")
        n1.RPC_TIMEOUT = 0.1
        cluster.crash_node("n2")
        n1.trigger_timeout()
        start = time.monotonic()
        n1.solicit_vote("n2")  # returns after the timeout, no crash
        assert time.monotonic() - start < 2.0
        assert n1.role is KvRole.CANDIDATE

    def test_spec_msg_of_rejects_unknown(self):
        with pytest.raises(ValueError):
            spec_msg_of({"type": "Nope"})

    def test_persistence_across_restart(self, cluster):
        leader = _elect(cluster)
        leader.client_request("v")
        node = cluster.restart_node("n1")
        assert node.current_term == 1
        assert node.log == ((1, "v"),)
        assert node.role is KvRole.FOLLOWER
