"""minizk as a plain distributed system: FLE settles, epochs agree."""

import time

import pytest

from repro.systems.minizk import MiniZkConfig, ZkState, make_minizk_cluster


def _wait_until(predicate, timeout=3.0, poll=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(poll)
    return False


@pytest.fixture()
def cluster():
    with make_minizk_cluster(("n1", "n2", "n3")) as c:
        yield c


class TestElectionSettles:
    def test_highest_sid_becomes_leader(self, cluster):
        for node in cluster.live_nodes():
            node.trigger_start_election()
        assert _wait_until(lambda: cluster.node("n3").state is ZkState.LEADING)
        assert _wait_until(
            lambda: cluster.node("n1").state is ZkState.FOLLOWING
            and cluster.node("n2").state is ZkState.FOLLOWING
        )
        # With fully concurrent elections the simplified FLE may commit a
        # follower to an intermediate vote (the verified state space allows
        # this too); each follower has settled on *some* leader.
        assert cluster.node("n1").leader is not None
        assert cluster.node("n2").leader is not None

    def test_single_starter_still_settles(self, cluster):
        cluster.node("n3").trigger_start_election()
        assert _wait_until(lambda: cluster.node("n3").state is ZkState.LEADING)

    def test_higher_zxid_wins_over_sid(self, cluster):
        n1 = cluster.node("n1")
        n1.last_zxid = 5
        n1.storage.set("lastZxid", 5)
        for node in cluster.live_nodes():
            node.trigger_start_election()
        assert _wait_until(lambda: n1.state is ZkState.LEADING)

    def test_buggy_rebroadcast_floods_network(self):
        """ZOOKEEPER-1419 standalone: the buggy cluster sends far more
        notifications than the fixed one for the same election."""
        def run(config):
            with make_minizk_cluster(("n1", "n2", "n3", "n4", "n5"), config) as c:
                for node in c.live_nodes():
                    node.trigger_start_election()
                _wait_until(lambda: any(
                    n.state is ZkState.LEADING for n in c.live_nodes()))
                time.sleep(0.3)  # let the storm develop
                return c.network.sent_count

        fixed = run(MiniZkConfig())
        buggy = run(MiniZkConfig(bug_rebroadcast_on_worse_vote=True))
        assert buggy > fixed * 1.5


class TestEpochHandshake:
    def _elect(self, cluster):
        for node in cluster.live_nodes():
            node.trigger_start_election()
        assert _wait_until(lambda: cluster.node("n3").state is ZkState.LEADING)
        assert _wait_until(lambda: all(
            cluster.node(n).state is ZkState.FOLLOWING for n in ("n1", "n2")))
        return cluster.node("n3")

    def test_full_handshake_commits_epoch(self, cluster):
        leader = self._elect(cluster)
        for peer in leader.peers:
            leader.send_leader_info(peer)
        assert _wait_until(lambda: leader.current_epoch == 1)
        assert _wait_until(
            lambda: cluster.node("n1").current_epoch == 1
            and cluster.node("n2").current_epoch == 1
        )

    def test_epochs_are_persistent(self, cluster):
        leader = self._elect(cluster)
        for peer in leader.peers:
            leader.send_leader_info(peer)
        assert _wait_until(lambda: cluster.node("n2").current_epoch == 1)
        node = cluster.restart_node("n2")
        assert node.accepted_epoch == 1
        assert node.current_epoch == 1
        assert node.state is ZkState.LOOKING  # volatile reset


class TestZk1653Standalone:
    def _crash_between_epoch_writes(self, config):
        cluster = make_minizk_cluster(("n1", "n2", "n3"), config)
        cluster.deploy()
        try:
            for node in cluster.live_nodes():
                node.trigger_start_election()
            leader = cluster.node("n3")
            assert _wait_until(lambda: leader.state is ZkState.LEADING)
            assert _wait_until(
                lambda: cluster.node("n2").state is ZkState.FOLLOWING)
            # deliver LEADERINFO by hand so the crash lands between the
            # two epoch writes
            n2 = cluster.node("n2")
            n2.handle_leader_info({"type": "LeaderInfo", "epoch": 1,
                                   "src": "n3", "dst": "n2"})
            assert n2.accepted_epoch == 1 and n2.current_epoch == 0
            cluster.crash_node("n2")
            return cluster, cluster.restart_node("n2")
        except Exception:
            cluster.shutdown()
            raise

    def test_fixed_node_rejoins_election(self):
        cluster, node = self._crash_between_epoch_writes(MiniZkConfig())
        try:
            assert not node.failed
            node.trigger_start_election()
            assert node.round == 1  # election actually started
        finally:
            cluster.shutdown()

    def test_buggy_node_refuses_to_start(self):
        config = MiniZkConfig(bug_epoch_mismatch_abort=True)
        cluster, node = self._crash_between_epoch_writes(config)
        try:
            assert node.failed
            node.trigger_start_election()
            assert node.round == 0  # lookForLeader never ran
        finally:
            cluster.shutdown()
