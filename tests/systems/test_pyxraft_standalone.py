"""pyxraft as a plain distributed system (no Mocket attached).

These tests drive elections and replication through the public node
API with real threads and the in-memory network — the system must
behave like Raft on its own before Mocket ever controls it.
"""

import time

import pytest

from repro.systems.pyxraft import Role, XraftConfig, make_xraft_cluster
from repro.systems.pyxraft.messages import (
    payload_from_spec_msg,
    spec_msg_from_payload,
)


def _wait_until(predicate, timeout=3.0, poll=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(poll)
    return False


@pytest.fixture()
def cluster():
    with make_xraft_cluster(("n1", "n2", "n3")) as c:
        yield c


class TestElection:
    def test_single_candidate_wins(self, cluster):
        n1 = cluster.node("n1")
        n1.trigger_timeout()
        for peer in n1.peers:
            n1.send_request_vote(peer)
        assert _wait_until(lambda: n1.role is Role.LEADER)
        assert n1.current_term == 1
        assert cluster.node("n2").voted_for == "n1"
        assert cluster.node("n3").voted_for == "n1"

    def test_second_candidate_rejected_same_term(self, cluster):
        n1, n2 = cluster.node("n1"), cluster.node("n2")
        n1.trigger_timeout()
        for peer in n1.peers:
            n1.send_request_vote(peer)
        assert _wait_until(lambda: n1.role is Role.LEADER)
        n2.trigger_timeout()  # same term would be 1... n2 moves to term 2
        assert n2.current_term == 2

    def test_votes_are_deduplicated(self, cluster):
        """The fixed implementation tolerates duplicated responses."""
        n1 = cluster.node("n1")
        n1.trigger_timeout()
        n1.handle_request_vote_response(
            {"type": "RequestVoteResponse", "term": 1, "granted": True,
             "src": "n2", "dst": "n1"})
        n1.handle_request_vote_response(
            {"type": "RequestVoteResponse", "term": 1, "granted": True,
             "src": "n2", "dst": "n1"})
        assert n1.votes_granted == frozenset({"n1", "n2"})

    def test_buggy_counter_counts_duplicates(self):
        config = XraftConfig(bug_duplicate_vote_count=True)
        with make_xraft_cluster(("n1", "n2", "n3"), config) as cluster:
            n1 = cluster.node("n1")
            n1.trigger_timeout()
            response = {"type": "RequestVoteResponse", "term": 1,
                        "granted": True, "src": "n2", "dst": "n1"}
            n1.handle_request_vote_response(response)
            n1.handle_request_vote_response(response)
            assert n1.votes_granted == 3  # 1 (self) + 2 duplicates


class TestReplication:
    def _elect(self, cluster):
        n1 = cluster.node("n1")
        n1.trigger_timeout()
        for peer in n1.peers:
            n1.send_request_vote(peer)
        assert _wait_until(lambda: n1.role is Role.LEADER)
        return n1

    def test_client_write_replicates_and_commits(self, cluster):
        n1 = self._elect(cluster)
        assert n1.client_request("hello")
        for peer in n1.peers:
            n1.send_append_entries(peer)
        assert _wait_until(
            lambda: cluster.node("n2").log == ((1, "hello"),)
            and cluster.node("n3").log == ((1, "hello"),)
        )
        assert _wait_until(lambda: n1.commit_index == 1)

    def test_client_write_rejected_on_follower(self, cluster):
        assert cluster.node("n2").client_request("nope") is False

    def test_follower_truncates_conflicts(self, cluster):
        n2 = cluster.node("n2")
        n2.handle_append_entries_request({
            "type": "AppendEntriesRequest", "term": 1, "prev_log_index": 0,
            "prev_log_term": 0, "entries": [[1, "stale"]], "commit_index": 0,
            "src": "n1", "dst": "n2",
        })
        assert n2.log == ((1, "stale"),)
        n2.handle_append_entries_request({
            "type": "AppendEntriesRequest", "term": 2, "prev_log_index": 0,
            "prev_log_term": 0, "entries": [[2, "fresh"]], "commit_index": 0,
            "src": "n3", "dst": "n2",
        })
        assert n2.log == ((2, "fresh"),)

    def test_mismatched_prev_rejected(self, cluster):
        n2 = cluster.node("n2")
        n2.handle_append_entries_request({
            "type": "AppendEntriesRequest", "term": 1, "prev_log_index": 3,
            "prev_log_term": 1, "entries": [[1, "x"]], "commit_index": 0,
            "src": "n1", "dst": "n2",
        })
        assert n2.log == ()


class TestPersistence:
    def test_term_vote_log_survive_restart(self, cluster):
        n1 = cluster.node("n1")
        n1.trigger_timeout()
        for peer in n1.peers:
            n1.send_request_vote(peer)
        assert _wait_until(lambda: n1.role is Role.LEADER)
        n1.client_request("v")
        restarted = cluster.restart_node("n1")
        assert restarted.current_term == 1
        assert restarted.voted_for == "n1"
        assert restarted.log == ((1, "v"),)
        assert restarted.role is Role.FOLLOWER      # volatile reset
        assert restarted.commit_index == 0

    def test_buggy_votedfor_lost_on_restart(self):
        config = XraftConfig(bug_votedfor_not_persisted=True)
        with make_xraft_cluster(("n1", "n2", "n3"), config) as cluster:
            n2 = cluster.node("n2")
            n2.handle_request_vote_request({
                "type": "RequestVoteRequest", "term": 1, "last_log_term": 0,
                "last_log_index": 0, "src": "n1", "dst": "n2",
            })
            assert n2.voted_for == "n1"
            restarted = cluster.restart_node("n2")
            assert restarted.voted_for is None  # the vote never hit the disk

    def test_correct_votedfor_survives_restart(self, cluster):
        n2 = cluster.node("n2")
        n2.handle_request_vote_request({
            "type": "RequestVoteRequest", "term": 1, "last_log_term": 0,
            "last_log_index": 0, "src": "n1", "dst": "n2",
        })
        restarted = cluster.restart_node("n2")
        assert restarted.voted_for == "n1"


class TestVoteFreshness:
    def test_stale_candidate_rejected(self, cluster):
        n2 = cluster.node("n2")
        n2.handle_append_entries_request({
            "type": "AppendEntriesRequest", "term": 1, "prev_log_index": 0,
            "prev_log_term": 0, "entries": [[1, "x"]], "commit_index": 0,
            "src": "n1", "dst": "n2",
        })
        sent = []
        original = n2.network.send
        n2.network.send = lambda src, dst, p: sent.append(p) or original(src, dst, p)
        n2.handle_request_vote_request({
            "type": "RequestVoteRequest", "term": 2, "last_log_term": 0,
            "last_log_index": 0, "src": "n3", "dst": "n2",
        })
        assert sent[-1]["granted"] is False
        assert n2.voted_for is None

    def test_buggy_stale_grant(self):
        config = XraftConfig(bug_stale_vote_grant=True)
        with make_xraft_cluster(("n1", "n2", "n3"), config) as cluster:
            n2 = cluster.node("n2")
            n2.handle_append_entries_request({
                "type": "AppendEntriesRequest", "term": 1, "prev_log_index": 0,
                "prev_log_term": 0, "entries": [[1, "x"]], "commit_index": 0,
                "src": "n1", "dst": "n2",
            })
            sent = []
            original = n2.network.send
            n2.network.send = lambda src, dst, p: sent.append(p) or original(src, dst, p)
            n2.handle_request_vote_request({
                "type": "RequestVoteRequest", "term": 2, "last_log_term": 0,
                "last_log_index": 0, "src": "n3", "dst": "n2",
            })
            assert sent[-1]["granted"] is True      # the forbidden grant
            assert n2.voted_for is None             # ...and it is not recorded


class TestAutonomousTimers:
    def test_timer_driven_election_and_failover(self):
        """With timers armed the cluster elects a leader on its own and
        fails over when the leader dies."""
        config = XraftConfig(election_timeout=0.1)
        with make_xraft_cluster(("n1", "n2", "n3"), config) as cluster:
            assert _wait_until(
                lambda: any(n.role is Role.LEADER for n in cluster.live_nodes()),
                timeout=8.0,
            )
            leader = next(n for n in cluster.live_nodes() if n.role is Role.LEADER)
            cluster.crash_node(leader.node_id)
            assert _wait_until(
                lambda: any(n.role is Role.LEADER for n in cluster.live_nodes()),
                timeout=10.0,
            )
            new_leader = next(n for n in cluster.live_nodes()
                              if n.role is Role.LEADER)
            assert new_leader.node_id != leader.node_id
            assert new_leader.current_term > leader.current_term

    def test_timers_stay_quiet_without_config(self):
        with make_xraft_cluster(("n1", "n2", "n3")) as cluster:
            time.sleep(0.3)
            assert all(n.role is Role.FOLLOWER for n in cluster.live_nodes())


class TestMessageCodec:
    @pytest.mark.parametrize("msg", [
        {"mtype": "RequestVoteRequest", "mterm": 2, "mlastLogTerm": 1,
         "mlastLogIndex": 3, "msource": "n1", "mdest": "n2"},
        {"mtype": "RequestVoteResponse", "mterm": 2, "mvoteGranted": False,
         "msource": "n2", "mdest": "n1"},
        {"mtype": "AppendEntriesRequest", "mterm": 1, "mprevLogIndex": 0,
         "mprevLogTerm": 0, "mentries": ((1, 7),), "mcommitIndex": 0,
         "msource": "n1", "mdest": "n3"},
        {"mtype": "AppendEntriesResponse", "mterm": 1, "msuccess": True,
         "mmatchIndex": 1, "msource": "n3", "mdest": "n1"},
    ])
    def test_roundtrip(self, msg):
        assert spec_msg_from_payload(payload_from_spec_msg(msg)) == msg

    def test_unknown_types_rejected(self):
        with pytest.raises(ValueError):
            payload_from_spec_msg({"mtype": "Nope"})
        with pytest.raises(ValueError):
            spec_msg_from_payload({"type": "Nope"})
