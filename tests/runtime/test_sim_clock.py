"""Unit tests for the virtual clock and the seeded event loop.

The SimScheduler ordering contract (time ascending, FIFO at equal
timestamps, opt-in seeded tie-break) is what every soak replay stands
on, so it is pinned here event by event.
"""

import pytest

from repro.runtime import WALL_CLOCK, Clock, WallClock
from repro.runtime.sim import SimScheduler, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now() == 0.0

    def test_custom_start(self):
        assert VirtualClock(5.0).now() == 5.0

    def test_advance(self):
        clock = VirtualClock()
        assert clock.advance(1.5) == 1.5
        assert clock.now() == 1.5

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-0.1)

    def test_advance_to(self):
        clock = VirtualClock()
        clock.advance_to(3.0)
        assert clock.now() == 3.0

    def test_advance_to_rejects_rewind(self):
        clock = VirtualClock(2.0)
        with pytest.raises(ValueError):
            clock.advance_to(1.0)

    def test_sleep_is_advance(self):
        clock = VirtualClock()
        clock.sleep(0.25)
        assert clock.now() == 0.25

    def test_sleep_zero_and_negative_are_noops(self):
        clock = VirtualClock()
        clock.sleep(0.0)
        clock.sleep(-1.0)
        assert clock.now() == 0.0

    def test_is_a_clock(self):
        assert isinstance(VirtualClock(), Clock)
        assert isinstance(WALL_CLOCK, WallClock)


class TestSchedulerOrdering:
    def test_time_ascending(self):
        sched = SimScheduler("s")
        order = []
        sched.schedule(0.3, order.append, "c")
        sched.schedule(0.1, order.append, "a")
        sched.schedule(0.2, order.append, "b")
        sched.run()
        assert order == ["a", "b", "c"]
        assert sched.now() == pytest.approx(0.3)

    def test_fifo_at_equal_timestamps(self):
        sched = SimScheduler("s")
        order = []
        for tag in "abcde":
            sched.schedule(1.0, order.append, tag)
        sched.run()
        assert order == list("abcde")

    def test_seeded_tiebreak_is_deterministic(self):
        def run_once(seed):
            sched = SimScheduler(seed)
            order = []
            for tag in "abcdefgh":
                sched.schedule(1.0, order.append, tag, jitter=True)
            sched.run()
            return order

        assert run_once("7") == run_once("7")
        # with 8 jittered events some seed must shuffle away from FIFO
        shuffles = [run_once(str(s)) for s in range(8)]
        assert any(order != list("abcdefgh") for order in shuffles)

    def test_tiebreak_independent_of_hashseed_stream(self):
        # string-seeded Random: two schedulers with the same seed draw
        # identical lane streams in one process (the cross-process
        # guarantee is pinned by tests/soak/test_determinism_guard.py)
        a, b = SimScheduler("x"), SimScheduler("x")
        lanes_a = [a.schedule(0.0, lambda: None, jitter=True).lane
                   for _ in range(10)]
        lanes_b = [b.schedule(0.0, lambda: None, jitter=True).lane
                   for _ in range(10)]
        assert lanes_a == lanes_b

    def test_clock_jumps_to_event_time(self):
        sched = SimScheduler()
        seen = []
        sched.schedule(2.5, lambda: seen.append(sched.now()))
        sched.run_next()
        assert seen == [2.5]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            SimScheduler().schedule(-0.1, lambda: None)


class TestSchedulerDispatch:
    def test_cancel(self):
        sched = SimScheduler()
        fired = []
        handle = sched.schedule(0.1, fired.append, "x")
        handle.cancel()
        sched.schedule(0.2, fired.append, "y")
        sched.run()
        assert fired == ["y"]
        assert handle.cancelled

    def test_run_until_dispatches_inclusive_and_advances(self):
        sched = SimScheduler()
        fired = []
        sched.schedule(1.0, fired.append, "a")
        sched.schedule(2.0, fired.append, "b")
        sched.schedule(3.0, fired.append, "c")
        assert sched.run_until(2.0) == 2
        assert fired == ["a", "b"]
        assert sched.now() == 2.0
        assert sched.pending == 1

    def test_run_until_advances_clock_on_empty_queue(self):
        sched = SimScheduler()
        sched.run_until(5.0)
        assert sched.now() == 5.0

    def test_run_for(self):
        sched = SimScheduler()
        sched.run_until(1.0)
        fired = []
        sched.schedule(0.5, fired.append, "x")
        sched.run_for(1.0)
        assert fired == ["x"]
        assert sched.now() == 2.0

    def test_events_may_schedule_events(self):
        sched = SimScheduler()
        order = []

        def outer():
            order.append(("outer", sched.now()))
            sched.schedule(0.5, inner)

        def inner():
            order.append(("inner", sched.now()))

        sched.schedule(1.0, outer)
        sched.run()
        assert order == [("outer", 1.0), ("inner", 1.5)]

    def test_call_soon_runs_at_current_instant(self):
        sched = SimScheduler()
        sched.run_until(2.0)
        fired = []
        sched.call_soon(fired.append, "x")
        assert sched.next_time() == 2.0
        sched.run()
        assert fired == ["x"]
        assert sched.now() == 2.0

    def test_dispatched_counter_and_pending(self):
        sched = SimScheduler()
        for _ in range(3):
            sched.schedule(0.1, lambda: None)
        assert sched.pending == 3
        sched.run()
        assert sched.dispatched == 3
        assert sched.pending == 0
        assert sched.next_time() is None

    def test_run_max_events(self):
        sched = SimScheduler()
        for _ in range(5):
            sched.schedule(0.1, lambda: None)
        assert sched.run(max_events=2) == 2
        assert sched.pending == 3
