"""Unit tests for the simulated network fabric.

SimNetwork keeps the threaded Network's fault vocabulary (partition,
hold, heal, crash-retained mailboxes) but delivers through seeded
virtual-time events; these tests pin the delivery semantics the soak
nemesis relies on.
"""

from repro.runtime.sim import SimNetwork, SimScheduler


def make_net(seed="0", **kwargs):
    sched = SimScheduler(seed)
    net = SimNetwork(sched, seed=seed, **kwargs)
    return sched, net


class TestDelivery:
    def test_send_schedules_delivery_within_latency_bounds(self):
        sched, net = make_net(min_latency=0.001, max_latency=0.010)
        got = []
        net.attach_handler("b", lambda env: got.append(env.payload))
        net.register("a")
        assert net.send("a", "b", {"x": 1})
        assert got == []  # not yet delivered: it is an event
        at = sched.next_time()
        assert 0.001 <= at <= 0.010
        sched.run()
        assert got == [{"x": 1}]
        assert net.delivered_count == 1

    def test_fixed_latency(self):
        sched, net = make_net(min_latency=0.005, max_latency=0.005)
        net.attach_handler("b", lambda env: None)
        net.register("a")
        net.send("a", "b", "hi")
        assert sched.next_time() == 0.005

    def test_latency_stream_is_seeded(self):
        draws = {}
        for run in range(2):
            _sched, net = make_net(seed="lat")
            draws[run] = [net._draw_latency() for _ in range(20)]
        assert draws[0] == draws[1]

    def test_send_to_unregistered_is_dead_letter(self):
        sched, net = make_net()
        net.register("a")
        assert not net.send("a", "ghost", "lost")
        sched.run()
        assert len(net.dead_letters) == 1


class TestFaults:
    def test_partition_holds_and_heal_redelivers(self):
        sched, net = make_net()
        got = []
        net.attach_handler("a", lambda env: None)
        net.attach_handler("b", lambda env: got.append(env.payload))
        net.partition([["a"], ["b"]])
        assert net.send("a", "b", "held-msg")
        sched.run()
        assert got == []  # held, not delivered, not lost
        sched.run_until(1.0)
        assert net.heal() == 1
        sched.run()
        assert got == ["held-msg"]

    def test_heal_latency_measured_from_heal_instant(self):
        sched, net = make_net()
        net.attach_handler("a", lambda env: None)
        net.attach_handler("b", lambda env: None)
        net.partition([["a"], ["b"]])
        net.send("a", "b", "m")
        sched.run_until(5.0)
        net.heal()
        assert 5.0 < sched.next_time() <= 5.0 + net.max_latency

    def test_delay_link_holds_first_n(self):
        sched, net = make_net()
        got = []
        net.attach_handler("a", lambda env: None)
        net.attach_handler("b", lambda env: got.append(env.payload))
        net.delay_link("a", "b", 2)
        for i in range(3):
            net.send("a", "b", i)
        sched.run()
        assert got == [2]  # first two held by the delay budget
        net.heal()
        sched.run()
        assert sorted(got) == [0, 1, 2]


class TestCrashSemantics:
    def test_detach_retains_in_mailbox_until_reattach(self):
        sched, net = make_net()
        first, second = [], []
        net.attach_handler("a", lambda env: None)
        net.attach_handler("b", lambda env: first.append(env.payload))
        net.send("a", "b", "before-crash")
        sched.run()
        assert first == ["before-crash"]

        net.detach_handler("b")
        net.register("b")  # mailbox exists again; no handler yet (down)
        net.send("a", "b", "while-down-1")
        net.send("a", "b", "while-down-2")
        sched.run()
        assert first == ["before-crash"]  # nothing reached the old handler

        drained = net.attach_handler("b",
                                     lambda env: second.append(env.payload))
        assert drained == 2
        sched.run()
        assert second == ["while-down-1", "while-down-2"]
