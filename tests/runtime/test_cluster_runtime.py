"""Unit tests for the pseudo-distributed cluster substrate."""

import threading
import time

import pytest

from repro.runtime import (
    Cluster,
    Network,
    Node,
    NodeCrashed,
    PersistentStore,
    RpcError,
    StorageBackend,
)


class EchoNode(Node):
    """Minimal node: counts started loops, persists a boot counter."""

    def __init__(self, node_id, cluster):
        super().__init__(node_id, cluster)
        self.received = []
        boots = self.storage.get("boots", 0) + 1
        self.storage.set("boots", boots)
        self.boots = boots

    def on_start(self):
        self.network.register(self.node_id)
        self.spawn(self._loop, name=f"{self.node_id}-loop")

    def _loop(self):
        while not self.stopping:
            envelope = self.network.receive(self.node_id, timeout=0.02)
            if envelope is not None:
                self.received.append(envelope.payload)


def make_cluster(n=3):
    ids = [f"n{i}" for i in range(1, n + 1)]
    return Cluster(ids, lambda node_id, cluster: EchoNode(node_id, cluster))


class TestStorage:
    def test_set_get_delete(self):
        store = PersistentStore("n1")
        store.set("k", 1)
        assert store.get("k") == 1
        assert "k" in store
        store.delete("k")
        assert store.get("k", "gone") == "gone"

    def test_write_count(self):
        store = PersistentStore("n1")
        store.set("a", 1)
        store.set("b", 2)
        store.delete("a")
        assert store.write_count == 3

    def test_snapshot_is_a_copy(self):
        store = PersistentStore("n1")
        store.set("k", 1)
        snap = store.snapshot()
        snap["k"] = 99
        assert store.get("k") == 1

    def test_clear(self):
        store = PersistentStore("n1")
        store.set("k", 1)
        store.clear()
        assert store.get("k") is None

    def test_backend_reuses_store(self):
        backend = StorageBackend()
        assert backend.store_for("n1") is backend.store_for("n1")
        assert backend.store_for("n1") is not backend.store_for("n2")

    def test_backend_wipe(self):
        backend = StorageBackend()
        backend.store_for("n1").set("k", 1)
        backend.wipe("n1")
        assert backend.store_for("n1").get("k") is None
        backend.wipe("missing")  # no-op


class TestNetwork:
    def test_send_and_receive(self):
        net = Network()
        net.register("a")
        net.register("b")
        assert net.send("a", "b", {"x": 1})
        envelope = net.receive("b", timeout=0.1)
        assert envelope.src == "a" and envelope.payload == {"x": 1}

    def test_send_to_down_node_is_dead_letter(self):
        net = Network()
        net.register("a")
        assert not net.send("a", "ghost", "hello")
        assert len(net.dead_letters) == 1

    def test_receive_empty_returns_none(self):
        net = Network()
        net.register("a")
        assert net.receive("a") is None
        assert net.receive("ghost", timeout=0.01) is None

    def test_pending_count(self):
        net = Network()
        net.register("a")
        net.send("x", "a", 1)
        net.send("x", "a", 2)
        assert net.pending_count("a") == 2
        assert net.pending_count("ghost") == 0

    def test_unregister_retains_mailbox(self):
        """Mailboxes survive crashes: a restarted node sees the backlog."""
        net = Network()
        net.register("a")
        net.send("x", "a", 1)
        net.unregister("a")
        assert not net.is_registered("a")
        # down, but the mailbox (and its contents) remain for the next
        # incarnation
        assert net.receive("a").payload == 1

    def test_send_to_down_node_is_retained(self):
        net = Network()
        net.register("a")
        net.unregister("a")
        assert not net.send("x", "a", "later")  # not delivered *now*
        net.register("a")
        assert net.receive("a").payload == "later"
        assert not net.dead_letters

    def test_redeliver_puts_message_back(self):
        net = Network()
        net.register("a")
        net.redeliver("a", {"k": 1}, src="b")
        envelope = net.receive("a")
        assert envelope.payload == {"k": 1}
        assert envelope.src == "b"

    def test_redeliver_creates_mailbox_if_missing(self):
        net = Network()
        net.redeliver("ghost", 1)
        assert net.receive("ghost").payload == 1

    def test_rpc_roundtrip(self):
        net = Network()
        net.register("srv", rpc_handler=lambda src, req: {"echo": req, "from": src})
        assert net.rpc("cli", "srv", 42) == {"echo": 42, "from": "cli"}

    def test_rpc_to_down_peer_raises(self):
        net = Network()
        with pytest.raises(RpcError):
            net.rpc("cli", "ghost", 42)

    def test_rpc_handler_error_wrapped(self):
        net = Network()

        def boom(src, req):
            raise ValueError("nope")

        net.register("srv", rpc_handler=boom)
        with pytest.raises(RpcError, match="nope"):
            net.rpc("cli", "srv", 1)


class TestCluster:
    def test_deploy_and_shutdown(self):
        cluster = make_cluster()
        cluster.deploy()
        assert len(cluster.live_nodes()) == 3
        assert cluster.is_up("n1")
        cluster.shutdown()
        assert not cluster.live_nodes()
        assert not cluster.deployed

    def test_double_deploy_raises(self):
        with make_cluster() as cluster:
            with pytest.raises(RuntimeError):
                cluster.deploy()

    def test_duplicate_node_ids_rejected(self):
        with pytest.raises(ValueError):
            Cluster(["a", "a"], lambda i, c: EchoNode(i, c))

    def test_quorum_size(self):
        assert make_cluster(3).quorum_size == 2
        assert make_cluster(5).quorum_size == 3

    def test_message_flow_between_nodes(self):
        with make_cluster() as cluster:
            cluster.network.send("n1", "n2", "ping")
            deadline = time.monotonic() + 2
            node2 = cluster.node("n2")
            while time.monotonic() < deadline and not node2.received:
                time.sleep(0.01)
            assert node2.received == ["ping"]

    def test_crash_node(self):
        with make_cluster() as cluster:
            cluster.crash_node("n2")
            assert not cluster.is_up("n2")
            with pytest.raises(KeyError):
                cluster.node("n2")
            # messages to the dead node are dropped
            assert not cluster.network.send("n1", "n2", "ping")

    def test_crash_unknown_raises(self):
        with make_cluster() as cluster:
            cluster.crash_node("n1")
            with pytest.raises(KeyError):
                cluster.crash_node("n1")

    def test_restart_preserves_storage(self):
        with make_cluster() as cluster:
            first = cluster.node("n1")
            assert first.boots == 1
            restarted = cluster.restart_node("n1")
            assert restarted is not first
            assert restarted.boots == 2  # storage survived
            assert cluster.restart_counts["n1"] == 1

    def test_restart_after_crash(self):
        with make_cluster() as cluster:
            cluster.crash_node("n1")
            node = cluster.restart_node("n1")
            assert node.started
            assert cluster.is_up("n1")

    def test_peers_excludes_self(self):
        with make_cluster() as cluster:
            assert sorted(cluster.node("n1").peers) == ["n2", "n3"]


class TestNodeLifecycle:
    def test_double_start_raises(self):
        with make_cluster() as cluster:
            with pytest.raises(RuntimeError):
                cluster.node("n1").start()

    def test_stop_joins_threads(self):
        with make_cluster() as cluster:
            node = cluster.node("n1")
            threads = list(node._threads)
            node.stop()
            assert all(not t.is_alive() for t in threads)

    def test_check_alive_raises_after_stop(self):
        with make_cluster() as cluster:
            node = cluster.node("n1")
            node.stop()
            with pytest.raises(NodeCrashed):
                node.check_alive()

    def test_wait_or_crash_event_fires(self):
        with make_cluster() as cluster:
            node = cluster.node("n1")
            event = threading.Event()
            event.set()
            assert node.wait_or_crash(event) is True

    def test_wait_or_crash_timeout(self):
        with make_cluster() as cluster:
            node = cluster.node("n1")
            assert node.wait_or_crash(threading.Event(), timeout=0.05) is False

    def test_wait_or_crash_unblocks_on_stop(self):
        with make_cluster() as cluster:
            node = cluster.node("n1")
            event = threading.Event()
            crashed = []

            def waiter():
                try:
                    node.wait_or_crash(event)
                except NodeCrashed:
                    crashed.append(True)

            thread = threading.Thread(target=waiter, daemon=True)
            thread.start()
            time.sleep(0.05)
            node.stop()
            thread.join(timeout=2)
            assert crashed == [True]

    def test_spawn_swallows_node_crashed(self):
        with make_cluster() as cluster:
            node = cluster.node("n1")

            def dies():
                raise NodeCrashed(node.node_id)

            thread = node.spawn(dies)
            thread.join(timeout=2)
            assert not thread.is_alive()
