"""Static guard: no wall-clock reads anywhere on the simulated path.

The whole point of the deterministic simulation runtime is that time
is a number owned by the scheduler; one stray ``time.monotonic()``
makes results machine-dependent.  This guard greps the simulated-path
sources for every wall-clock entry point Python offers and fails on
any hit, so the property survives future edits without anyone having
to remember it.
"""

import os
import re

import pytest

SRC = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", "src", "repro"))

#: every module that may only ever observe virtual time
SIMULATED_PATH = [
    os.path.join(SRC, "runtime", "sim"),
    os.path.join(SRC, "soak"),
    os.path.join(SRC, "systems", "raftkv", "sim.py"),
]

FORBIDDEN = (
    re.compile(r"^\s*import\s+time\b"),
    re.compile(r"^\s*from\s+time\s+import\b"),
    re.compile(r"\btime\.(time|monotonic|sleep|perf_counter|"
               r"process_time|time_ns|monotonic_ns)\b"),
    re.compile(r"^\s*(import|from)\s+datetime\b"),
    re.compile(r"^\s*(import|from)\s+threading\b"),
)


def simulated_sources():
    for entry in SIMULATED_PATH:
        if os.path.isfile(entry):
            yield entry
            continue
        for root, _dirs, files in os.walk(entry):
            for name in sorted(files):
                if name.endswith(".py"):
                    yield os.path.join(root, name)


class TestNoWallClock:
    def test_simulated_path_exists(self):
        sources = list(simulated_sources())
        assert len(sources) >= 7, sources  # sim package + soak + raftkv sim

    def test_no_wallclock_reads_on_simulated_path(self):
        hits = []
        for path in simulated_sources():
            with open(path, encoding="utf-8") as fh:
                for lineno, line in enumerate(fh, 1):
                    for pattern in FORBIDDEN:
                        if pattern.search(line):
                            rel = os.path.relpath(path, SRC)
                            hits.append(f"{rel}:{lineno}: {line.strip()}")
        assert not hits, (
            "wall-clock/thread use on the simulated path:\n"
            + "\n".join(hits))

    def test_virtual_clock_module_never_imports_time(self):
        # belt and braces for the one module everything else leans on
        path = os.path.join(SRC, "runtime", "sim", "clock.py")
        source = open(path, encoding="utf-8").read()
        assert "import time" not in source
