"""The `mocket soak` verb: exit codes, the JSON envelope, schedule
record/replay files, and trace/summarize integration."""

import json

import pytest

from repro.cli import main


def run_soak(extra, capsys):
    code = main(["soak", "raftkv", "--ops", "2000", "--soak-seed", "t",
                 "--shards", "2", "--rate", "400"] + extra)
    return code, capsys.readouterr()


class TestExitCodes:
    def test_clean_soak_exits_zero(self, capsys):
        code, captured = run_soak([], capsys)
        assert code == 0
        assert "soak raftkv: 2 shard(s), 2000 ops" in captured.out
        assert "divergences: none" in captured.out
        assert "simulated ops/sec" in captured.out

    def test_bug_soak_exits_one(self, capsys):
        code, captured = run_soak(["--bug", "bug_skip_apply"], capsys)
        assert code == 1
        assert "fingerprint_mismatch" in captured.out

    def test_bad_target_exits_two(self, capsys):
        assert main(["soak", "toycache", "--ops", "10"]) == 2
        assert "soak:" in capsys.readouterr().err

    def test_bad_ops_exits_two(self, capsys):
        assert main(["soak", "raftkv", "--ops", "0"]) == 2
        assert "ops" in capsys.readouterr().err


class TestJsonEnvelope:
    def test_json_report_shape(self, capsys):
        code, captured = run_soak(["--format", "json"], capsys)
        assert code == 0
        report = json.loads(captured.out)
        assert report["version"] == 1
        assert report["kind"] == "soak"
        assert report["seed"] == "t"
        assert report["shards"] == 2
        assert len(report["shard_reports"]) == 2
        assert report["totals"]["acked"] == 2000
        # canonical artifact: wall-clock and worker count never appear
        assert "workers" not in captured.out
        assert "wall" not in captured.out


class TestScheduleFiles:
    def test_record_then_replay_is_byte_identical(self, capsys, tmp_path):
        sched = str(tmp_path / "schedule.json")
        code, recorded = run_soak(
            ["--faults", "--format", "json", "--schedule-out", sched],
            capsys)
        assert code == 0
        doc = json.loads(open(sched).read())
        assert doc["format"] == "mocket-soak-schedule/1"
        assert doc["faults"] is True
        assert len(doc["events"]) == 2

        code, replayed = run_soak(["--schedule", sched, "--format", "json"],
                                  capsys)
        assert code == 0
        assert replayed.out == recorded.out

    def test_missing_schedule_exits_two(self, capsys, tmp_path):
        missing = str(tmp_path / "nope.json")
        assert main(["soak", "raftkv", "--ops", "10",
                     "--schedule", missing]) == 2
        assert "cannot read schedule" in capsys.readouterr().err

    def test_wrong_format_exits_two(self, capsys, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"format": "something-else"}))
        assert main(["soak", "raftkv", "--ops", "10",
                     "--schedule", str(bogus)]) == 2
        assert "mocket-soak-schedule/1" in capsys.readouterr().err


class TestTraceIntegration:
    def test_trace_records_soak_events_with_sim_field(self, capsys,
                                                      tmp_path):
        trace = str(tmp_path / "trace.jsonl")
        code, _ = run_soak(["--trace", trace], capsys)
        assert code == 0
        names = {}
        sim_stamped = 0
        for line in open(trace, encoding="utf-8"):
            record = json.loads(line)
            names[record["name"]] = names.get(record["name"], 0) + 1
            if "sim" in record.get("fields", {}):
                sim_stamped += 1
        assert names.get("soak.shard") == 2
        assert names.get("soak.done") == 1
        assert names.get("soak.snapshot", 0) >= 2
        assert names.get("soak.run") == 1
        assert sim_stamped >= 2  # snapshots carry virtual timestamps

    def test_summarize_reports_soak_digest(self, capsys, tmp_path):
        trace = str(tmp_path / "trace.jsonl")
        code, _ = run_soak(["--trace", trace], capsys)
        assert code == 0
        code = main(["trace", "summarize", trace])
        captured = capsys.readouterr()
        assert code == 0
        assert "soak:" in captured.out
