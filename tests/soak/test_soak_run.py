"""Functional tests for the soak runner: clean, faulted, and buggy
runs over small op counts, plus the monitor and schedule units.

Everything here runs in-process on the simulated path, so even the
"soak" cases take well under a second of wall time.
"""

import pytest

from repro.soak import (
    SoakConfig,
    SoakMonitor,
    build_fault_schedule,
    build_report,
    render_text,
    run_shard,
    run_soak,
)
from repro.soak.monitor import MAX_RECORDED


def small_config(**kwargs):
    defaults = dict(ops=2000, seed="t", shards=2, workers=1, rate=400.0)
    defaults.update(kwargs)
    return SoakConfig(**defaults)


class TestSoakConfig:
    def test_shard_ops_splits_exactly(self):
        config = SoakConfig(ops=10, shards=3)
        assert config.shard_ops() == [4, 3, 3]
        assert sum(config.shard_ops()) == 10

    def test_shard_seed_is_derived(self):
        config = SoakConfig(seed="s")
        assert config.shard_seed(0) == "s:shard0"
        assert config.shard_seed(3) == "s:shard3"

    def test_rejects_unknown_target(self):
        with pytest.raises(ValueError):
            SoakConfig(target="toycache")

    def test_rejects_unknown_bug(self):
        with pytest.raises(ValueError):
            SoakConfig(bug="bug_nope")

    def test_rejects_schedule_shard_mismatch(self):
        with pytest.raises(ValueError):
            SoakConfig(shards=2, schedule=[[]])


class TestCleanRun:
    def test_every_op_acked_no_divergences(self):
        shards = run_soak(small_config())
        assert len(shards) == 2
        for shard in shards:
            assert shard["divergences"] == {}
            assert shard["submitted"] == shard["ops"]
            assert shard["acked"] == shard["ops"]
            assert shard["fault_schedule"] == []
            assert shard["snapshots"]
        # all three replicas converge to the same fingerprint
        for shard in shards:
            fps = {n["fp"] for n in shard["final"].values()}
            assert len(fps) == 1

    def test_shard_is_deterministic(self):
        a = run_shard(small_config(shards=1, ops=500), 0)
        b = run_shard(small_config(shards=1, ops=500), 0)
        assert a == b

    def test_different_seeds_differ(self):
        # the client key/value stream is seed-derived, so the final
        # state fingerprints cannot collide across seeds
        a = run_shard(small_config(shards=1, ops=500, seed="a"), 0)
        b = run_shard(small_config(shards=1, ops=500, seed="b"), 0)
        assert a["final"]["n1"]["fp"] != b["final"]["n1"]["fp"]


class TestFaultedRun:
    def test_faulted_run_converges_clean(self):
        # rate 50 gives each shard a ~60s-simulated horizon, long
        # enough for the seeded nemesis to land at least one fault
        shards = run_soak(small_config(ops=6000, rate=50.0, faults=True))
        assert any(s["fault_schedule"] for s in shards)
        for shard in shards:
            assert shard["divergences"] == {}, shard["divergence_events"]
            live_fps = {n["fp"] for n in shard["final"].values()
                        if n.get("up")}
            assert len(live_fps) == 1

    def test_replaying_recorded_schedule_is_identical(self):
        config = small_config(ops=6000, rate=50.0, faults=True)
        first = run_soak(config)
        replayed = run_soak(small_config(
            ops=6000, rate=50.0, faults=True,
            schedule=[s["fault_schedule"] for s in first]))
        assert replayed == first


class TestBugRun:
    def test_bug_skip_apply_is_caught_deterministically(self):
        config = small_config(bug="bug_skip_apply")
        shards = run_soak(config)
        assert any("fingerprint_mismatch" in s["divergences"]
                   for s in shards)
        again = run_soak(small_config(bug="bug_skip_apply"))
        assert again == shards


class TestWorkers:
    def test_worker_count_cannot_change_bytes(self):
        import json

        serial = run_soak(small_config(workers=1))
        pooled = run_soak(small_config(workers=2))
        assert (json.dumps(serial, sort_keys=True)
                == json.dumps(pooled, sort_keys=True))


class TestMonitor:
    def test_dual_leader_recorded(self):
        class FakeNode:
            def __init__(self, node_id):
                self.node_id = node_id

        mon = SoakMonitor(10)
        mon.leader_elected(FakeNode("n1"), term=3)
        mon.leader_elected(FakeNode("n2"), term=3)
        assert mon.divergence_counts == {"dual_leader": 1}

    def test_commit_regression_recorded(self):
        class FakeNode:
            node_id = "n1"

        mon = SoakMonitor(10)
        mon.commit_advanced(FakeNode(), old=5, new=3)
        assert mon.divergence_counts == {"commit_regression": 1}

    def test_stall_records_once_per_transition(self):
        mon = SoakMonitor(10)
        mon.check_stall(progressed=False, pending=4,
                        disrupted=False, all_up=True)
        mon.check_stall(progressed=False, pending=4,
                        disrupted=False, all_up=True)
        assert mon.divergence_counts == {"stalled": 1}
        mon.check_stall(progressed=True, pending=0,
                        disrupted=False, all_up=True)
        mon.check_stall(progressed=False, pending=4,
                        disrupted=False, all_up=True)
        assert mon.divergence_counts == {"stalled": 2}

    def test_no_stall_while_disrupted_or_down(self):
        mon = SoakMonitor(10)
        mon.check_stall(progressed=False, pending=4,
                        disrupted=True, all_up=True)
        mon.check_stall(progressed=False, pending=4,
                        disrupted=False, all_up=False)
        assert mon.divergence_counts == {}

    def test_recorded_events_capped_counts_exact(self):
        class FakeNode:
            node_id = "n1"

        mon = SoakMonitor(10)
        for i in range(MAX_RECORDED + 25):
            mon.commit_advanced(FakeNode(), old=i + 1, new=i)
        assert len(mon.divergences) == MAX_RECORDED
        assert mon.divergence_counts["commit_regression"] == MAX_RECORDED + 25


class TestSchedule:
    def test_schedule_is_seed_deterministic(self):
        ids = ("n1", "n2", "n3")
        a = build_fault_schedule("s", 200.0, ids)
        b = build_fault_schedule("s", 200.0, ids)
        assert a == b
        assert a != build_fault_schedule("other", 200.0, ids)

    def test_faults_pair_with_recovery(self):
        events = build_fault_schedule("s", 400.0, ("n1", "n2", "n3"))
        ops = [e["op"] for e in events]
        # heal undoes both partitions and link delays
        assert ops.count("heal") == ops.count("partition") + ops.count("delay")
        assert ops.count("crash") == ops.count("restart")
        times = [e["at"] for e in events]
        assert times == sorted(times)


class TestReport:
    def test_report_never_contains_wall_or_workers(self):
        import json

        config = small_config(ops=400)
        report = build_report(config, run_soak(config))
        blob = json.dumps(report)
        assert "workers" not in blob
        assert "wall" not in blob
        assert report["version"] == 1 and report["kind"] == "soak"

    def test_render_text_clean(self):
        config = small_config(ops=400)
        report = build_report(config, run_soak(config))
        text = render_text(report, wall_seconds=0.5)
        assert "divergences: none" in text
        assert "simulated ops/sec" in text
        assert "x real time" in text

    def test_render_text_divergent(self):
        config = small_config(ops=2000, bug="bug_skip_apply")
        report = build_report(config, run_soak(config))
        text = render_text(report)
        assert "fingerprint_mismatch=" in text
        assert "!!" in text
        assert "wall:" not in text  # no wall line without a measurement
