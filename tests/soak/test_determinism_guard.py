"""Determinism guard: a `mocket soak` report must be byte-identical
for any ``--workers`` count and any ``PYTHONHASHSEED``.

The JSON soak report is the canonical replay artifact — triage
snapshots, divergence events, and final state fingerprints all live in
it — so the acceptance bar is the same as for fuzz corpora and fault
plans: not one byte may move when the interpreter's hash seed or the
runner's parallelism does.  The injected-bug variant proves a *failing*
soak replays byte-identically too, which is what makes a soak
divergence debuggable from ``(seed, schedule)`` alone.
"""

import os
import subprocess
import sys

import pytest

SRC = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", "src"))


def run_soak(hashseed, workers, *extra):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hashseed)
    env["PYTHONPATH"] = SRC
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "soak", "raftkv",
         "--ops", "4000", "--soak-seed", "9", "--shards", "4",
         "--workers", str(workers), "--format", "json", *extra],
        capture_output=True, text=True, env=env, timeout=300)
    return proc


@pytest.mark.slow
class TestSoakDeterminism:
    def test_clean_soak_bytes_identical_across_seeds_and_workers(self):
        reports = {}
        for hashseed in (0, 42):
            for workers in (1, 4):
                proc = run_soak(hashseed, workers)
                assert proc.returncode == 0, proc.stderr
                reports[(hashseed, workers)] = proc.stdout
        assert len(set(reports.values())) == 1, (
            "soak JSON report differs across PYTHONHASHSEED/--workers")

    def test_faulted_bug_soak_replays_byte_identically(self):
        """A soak that *fails* (injected bug, faults on) must still be
        a pure function of (seed, schedule): same divergence events,
        same snapshots, same fingerprints, byte for byte."""
        reports = {}
        for hashseed in (0, 42):
            for workers in (1, 4):
                proc = run_soak(hashseed, workers,
                                "--faults", "--bug", "bug_skip_apply")
                assert proc.returncode == 1, (
                    f"bug run must report divergences\n{proc.stderr}")
                reports[(hashseed, workers)] = proc.stdout
        assert len(set(reports.values())) == 1, (
            "divergent soak output differs across PYTHONHASHSEED/--workers")
        assert "fingerprint_mismatch" in reports[(0, 1)]
