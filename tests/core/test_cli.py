"""Tests for the ``mocket`` command line."""

import pytest

from repro.cli import main


class TestCheck:
    def test_check_example(self, capsys):
        assert main(["check", "example"]) == 0
        out = capsys.readouterr().out
        assert "13 states" in out

    def test_check_dot_dump(self, tmp_path, capsys):
        dot = tmp_path / "space.dot"
        assert main(["check", "example", "--dot", str(dot)]) == 0
        from repro.tlaplus import read_dot

        graph = read_dot(str(dot))
        assert graph.num_states == 13

    def test_unknown_model_exits(self):
        with pytest.raises(SystemExit):
            main(["check", "nope"])


class TestTestgen:
    def test_testgen_example(self, capsys):
        assert main(["testgen", "example", "--show", "1"]) == 0
        out = capsys.readouterr().out
        assert "PathEC:" in out
        assert "PathEC+POR:" in out
        assert "#0:" in out


class TestControlledTest:
    def test_correct_toycache_passes(self, capsys):
        assert main(["test", "toycache"]) == 0
        assert "0 divergent" in capsys.readouterr().out

    def test_buggy_toycache_fails(self, capsys):
        code = main(["test", "toycache", "--bug", "bug_wrong_max",
                     "--stop-on-bug"])
        assert code == 1
        assert "Inconsistent state" in capsys.readouterr().out

    def test_unknown_bug_flag_exits(self):
        with pytest.raises(SystemExit, match="unknown bug"):
            main(["test", "toycache", "--bug", "bug_nope"])

    def test_unknown_target_exits(self):
        with pytest.raises(SystemExit):
            main(["test", "nopesystem"])

    def test_no_por_flag(self, capsys):
        assert main(["test", "toycache", "--no-por", "--cases", "2"]) == 0


class TestBugsCommand:
    def test_replays_all_nine(self, capsys):
        assert main(["bugs"]) == 0
        out = capsys.readouterr().out
        for marker in ("xraft-bug1", "xraft-bug2", "xraft-bug3",
                       "raftkv-bug1", "raftkv-bug2", "zk-1419", "zk-1653",
                       "raft-spec-bug-missing-reply",
                       "raft-spec-bug-update-term"):
            assert marker in out
        assert "NOT DETECTED" not in out
