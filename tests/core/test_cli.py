"""Tests for the ``mocket`` command line."""

import json

import pytest

from repro.cli import main
from repro.obs import METRICS, TRACER, TraceReader


@pytest.fixture(autouse=True)
def clean_obs():
    TRACER.reset()
    METRICS.reset()
    yield
    TRACER.reset()
    METRICS.reset()


class TestCheck:
    def test_check_example(self, capsys):
        assert main(["check", "example"]) == 0
        out = capsys.readouterr().out
        assert "13 states" in out

    def test_check_dot_dump(self, tmp_path, capsys):
        dot = tmp_path / "space.dot"
        assert main(["check", "example", "--dot", str(dot)]) == 0
        from repro.tlaplus import read_dot

        graph = read_dot(str(dot))
        assert graph.num_states == 13

    def test_unknown_model_exits(self):
        with pytest.raises(SystemExit):
            main(["check", "nope"])


class TestTestgen:
    def test_testgen_example(self, capsys):
        assert main(["testgen", "example", "--show", "1"]) == 0
        out = capsys.readouterr().out
        assert "PathEC:" in out
        assert "PathEC+POR:" in out
        assert "#0:" in out


class TestControlledTest:
    def test_correct_toycache_passes(self, capsys):
        assert main(["test", "toycache"]) == 0
        assert "0 divergent" in capsys.readouterr().out

    def test_buggy_toycache_fails(self, capsys):
        code = main(["test", "toycache", "--bug", "bug_wrong_max",
                     "--stop-on-bug"])
        assert code == 1
        assert "Inconsistent state" in capsys.readouterr().out

    def test_unknown_bug_flag_exits(self):
        with pytest.raises(SystemExit, match="unknown bug"):
            main(["test", "toycache", "--bug", "bug_nope"])

    def test_unknown_target_exits(self):
        with pytest.raises(SystemExit):
            main(["test", "nopesystem"])

    def test_no_por_flag(self, capsys):
        assert main(["test", "toycache", "--no-por", "--cases", "2"]) == 0


class TestObservabilityFlags:
    def test_check_metrics_table(self, capsys):
        assert main(["check", "example", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "-- metrics" in out
        assert "checker.states          13" in out
        assert "checker.states_per_sec" in out

    def test_check_trace_writes_jsonl(self, tmp_path, capsys):
        trace = tmp_path / "check.jsonl"
        assert main(["check", "example", "--trace", str(trace)]) == 0
        assert "trace written to" in capsys.readouterr().out
        records = [json.loads(line)
                   for line in trace.read_text().strip().splitlines()]
        names = {record["name"] for record in records}
        assert "checker.run" in names and "checker.bfs_level" in names

    def test_obs_disabled_after_command(self, tmp_path):
        main(["check", "example", "--trace", str(tmp_path / "t.jsonl")])
        assert not TRACER.enabled

    def test_testgen_metrics(self, capsys):
        assert main(["testgen", "example", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "testgen.edge_coverage_pct" in out

    def test_test_trace_and_metrics_round_trip(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        assert main(["test", "toycache", "--trace", str(trace),
                     "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "0 divergent" in out
        assert "divergence.missing_action" in out    # pre-registered at 0
        assert "runner.step_seconds" in out
        timelines = TraceReader.from_file(str(trace)).case_timelines()
        assert len(timelines) == 4
        for line in timelines.values():
            assert line.passed and line.step_count > 0

    def test_system_flag_is_a_target_alias(self, capsys):
        assert main(["test", "--system", "toycache", "--cases", "1"]) == 0
        assert "toycache" in capsys.readouterr().out

    def test_test_without_target_exits(self):
        with pytest.raises(SystemExit, match="name a target"):
            main(["test"])


class TestTraceSummarize:
    def test_summarize_reconstructs_cases(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        assert main(["test", "toycache", "--trace", str(trace)]) == 0
        capsys.readouterr()
        assert main(["trace", "summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "records by name:" in out
        assert "cases: 4 (0 divergent)" in out
        assert "case #0:" in out

    def test_summarize_cases_cap(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        main(["test", "toycache", "--trace", str(trace)])
        capsys.readouterr()
        assert main(["trace", "summarize", str(trace), "--cases", "1"]) == 0
        out = capsys.readouterr().out
        assert "case #0:" in out and "case #1:" not in out

    def test_summarize_missing_file_raises(self):
        with pytest.raises(FileNotFoundError):
            main(["trace", "summarize", "/nonexistent/trace.jsonl"])


class TestBugsCommand:
    def test_replays_all_nine(self, capsys):
        assert main(["bugs"]) == 0
        out = capsys.readouterr().out
        for marker in ("xraft-bug1", "xraft-bug2", "xraft-bug3",
                       "raftkv-bug1", "raftkv-bug2", "zk-1419", "zk-1653",
                       "raft-spec-bug-missing-reply",
                       "raft-spec-bug-update-term"):
            assert marker in out
        assert "NOT DETECTED" not in out
