"""Unit tests for the mapping registry, annotations and message sets."""

import pytest

from repro.core.mapping import (
    FaultKind,
    MappingError,
    MessageCheckMode,
    SpecMapping,
    TriggerKind,
    action_span,
    current_scope,
    get_msg,
    mocket_action,
    mocket_receive,
    record_var,
    traced_field,
)
from repro.core.testbed import MessageSets, UnknownMessage
from repro.tlaplus import (
    ActionKind,
    Specification,
    VarKind,
    bag_add,
    freeze,
    in_flight,
)
from repro.tlaplus.values import EMPTY_BAG, FrozenDict


def _spec():
    spec = Specification("s", constants={"Server": ("n1", "n2")})
    spec.add_variable("role", per_node=True)
    spec.add_variable("msgs", kind=VarKind.MESSAGE)
    spec.add_variable("ctr", kind=VarKind.COUNTER)
    spec.add_variable("aux", kind=VarKind.AUXILIARY)

    @spec.init
    def init(const):
        return {"role": {"n1": "F", "n2": "F"}, "msgs": EMPTY_BAG, "ctr": 0, "aux": 0}

    @spec.action()
    def Act(state, const):
        return None

    @spec.action(params={"m": in_flight("msgs")}, kind=ActionKind.MESSAGE_RECEIVE,
                 msg_param="m", message_var="msgs")
    def Recv(state, const, m):
        return None

    @spec.action(kind=ActionKind.FAULT)
    def Crash(state, const):
        return None

    @spec.action(kind=ActionKind.USER_REQUEST)
    def Write(state, const):
        return None

    return spec


class TestSpecMapping:
    def test_validate_complete_mapping(self):
        mapping = SpecMapping(_spec())
        mapping.map_variable("role", "state")
        mapping.map_action("Act")
        mapping.map_action("Recv")
        mapping.map_crash("Crash")
        mapping.map_user_request("Write", lambda cluster, params, occ: None)
        mapping.validate()

    def test_unmapped_state_variable_fails(self):
        mapping = SpecMapping(_spec())
        mapping.map_action("Act")
        mapping.map_action("Recv")
        mapping.map_crash("Crash")
        mapping.map_user_request("Write", lambda *a: None)
        with pytest.raises(MappingError, match="role"):
            mapping.validate()

    def test_skip_variable_satisfies_validation(self):
        mapping = SpecMapping(_spec())
        mapping.skip_variable("role")
        mapping.map_action("Act")
        mapping.map_action("Recv")
        mapping.map_crash("Crash")
        mapping.map_user_request("Write", lambda *a: None)
        mapping.validate()
        assert mapping.checked_variables() == []

    def test_unmapped_action_fails(self):
        mapping = SpecMapping(_spec())
        mapping.map_variable("role")
        with pytest.raises(MappingError, match="Act"):
            mapping.validate()

    def test_counter_must_not_be_mapped(self):
        mapping = SpecMapping(_spec())
        mapping.map_variable("role")
        mapping.map_variable("ctr")
        mapping.map_action("Act")
        mapping.map_action("Recv")
        mapping.map_crash("Crash")
        mapping.map_user_request("Write", lambda *a: None)
        with pytest.raises(MappingError, match="ctr"):
            mapping.validate()

    def test_fault_mapped_as_spontaneous_fails(self):
        mapping = SpecMapping(_spec())
        mapping.map_variable("role")
        mapping.map_action("Act")
        mapping.map_action("Recv")
        mapping.map_action("Crash")  # wrong: Crash is a fault
        mapping.map_user_request("Write", lambda *a: None)
        with pytest.raises(MappingError, match="Crash"):
            mapping.validate()

    def test_user_request_mapped_as_spontaneous_fails(self):
        mapping = SpecMapping(_spec())
        mapping.map_variable("role")
        mapping.map_action("Act")
        mapping.map_action("Recv")
        mapping.map_crash("Crash")
        mapping.map_action("Write")  # wrong: Write is a user request
        with pytest.raises(MappingError, match="Write"):
            mapping.validate()

    def test_unknown_names_rejected(self):
        mapping = SpecMapping(_spec())
        with pytest.raises(MappingError):
            mapping.map_variable("zzz")
        with pytest.raises(MappingError):
            mapping.map_action("zzz")
        with pytest.raises(MappingError):
            mapping.action_mapping("zzz")

    def test_constant_translation(self):
        mapping = SpecMapping(_spec())
        mapping.map_constant("Leader", 2)
        mapping.map_constant("Follower", 0)
        assert mapping.to_spec_value(2) == "Leader"
        assert mapping.to_spec_value([0, 2]) == ("Follower", "Leader")
        assert mapping.to_spec_value({"a": 2}) == FrozenDict({"a": "Leader"})
        assert mapping.to_spec_value({2, 0}) == frozenset({"Leader", "Follower"})
        assert mapping.to_spec_value("untouched") == "untouched"

    def test_message_variables_listed(self):
        assert SpecMapping(_spec()).message_variables() == ["msgs"]

    def test_fault_kinds_recorded(self):
        mapping = SpecMapping(_spec())
        mapping.map_crash("Crash", node_param="i")
        am = mapping.action_mapping("Crash")
        assert am.trigger is TriggerKind.FAULT
        assert am.fault_kind is FaultKind.CRASH
        assert am.node_param == "i"

    def test_mapping_loc_counts(self):
        mapping = SpecMapping(_spec())
        mapping.map_variable("role")
        mapping.map_constant("Leader", 2)
        mapping.map_action("Act")
        assert mapping.mapping_loc() == 1 + 1 + 2


class TestMessageSets:
    def test_add_remove(self):
        sets = MessageSets(["msgs"])
        sets.add("msgs", {"t": "x"})
        assert sets.as_bag("msgs") == bag_add(EMPTY_BAG, {"t": "x"})
        sets.remove("msgs", {"t": "x"})
        assert sets.as_bag("msgs") == EMPTY_BAG

    def test_remove_unknown_raises(self):
        sets = MessageSets(["msgs"])
        with pytest.raises(UnknownMessage):
            sets.remove("msgs", {"t": "x"})

    def test_unknown_variable_raises(self):
        sets = MessageSets(["msgs"])
        with pytest.raises(KeyError):
            sets.add("nope", 1)

    def test_duplicates_counted(self):
        sets = MessageSets(["msgs"])
        sets.add("msgs", "m")
        sets.add("msgs", "m")
        assert sets.as_bag("msgs")[freeze("m")] == 2

    def test_reset(self):
        sets = MessageSets(["a", "b"])
        sets.add("a", 1)
        sets.reset()
        assert sets.as_bag("a") == EMPTY_BAG
        assert sets.variables() == ["a", "b"]

    def test_snapshot(self):
        sets = MessageSets(["a"])
        sets.add("a", 1)
        snap = sets.snapshot()
        assert snap["a"] == bag_add(EMPTY_BAG, 1)


class FakeCluster:
    mocket_runtime = None


class FakeNode:
    """Just enough node for annotation unit tests (no runtime attached)."""

    def __init__(self):
        self.cluster = FakeCluster()
        self.mocket_shadow = {}
        self.node_id = "n1"

    field = traced_field("specField")

    @mocket_action("Act", params=lambda self, x: {"x": x})
    def act(self, x):
        return x * 2

    @mocket_receive("Recv", "msgs", msg=lambda self, m: {"v": m})
    def recv(self, m):
        return m


class TestAnnotationsStandalone:
    def test_traced_field_updates_shadow(self):
        node = FakeNode()
        node.field = 42
        assert node.field == 42
        assert node.mocket_shadow == {"specField": 42}

    def test_traced_field_read_before_write_raises(self):
        node = FakeNode()
        with pytest.raises(AttributeError, match="specField"):
            _ = node.field

    def test_traced_field_class_access_returns_descriptor(self):
        assert isinstance(FakeNode.field, traced_field)

    def test_record_var(self):
        node = FakeNode()
        record_var(node, "mv", 7)
        assert node.mocket_shadow["mv"] == 7

    def test_decorated_methods_are_transparent_without_runtime(self):
        node = FakeNode()
        assert node.act(3) == 6
        assert node.recv("m") == "m"
        assert node.act.mocket_action_name == "Act"
        assert node.recv.mocket_action_name == "Recv"

    def test_action_span_noop_without_runtime(self):
        node = FakeNode()
        with action_span(node, "Snippet", {"i": "n1"}) as scope:
            assert current_scope() is scope
            assert not scope.dropped
        assert current_scope() is None

    def test_get_msg_outside_scope_without_runtime_is_noop(self):
        node = FakeNode()
        get_msg(node, "msgs", a=1)  # must not raise

    def test_get_msg_inside_scope_records(self):
        node = FakeNode()
        with action_span(node, "Send") as scope:
            get_msg(node, "msgs", a=1, b=2)
        assert scope.sent_messages == [("msgs", {"a": 1, "b": 2})]

    def test_nested_spans_stack(self):
        node = FakeNode()
        with action_span(node, "Outer") as outer:
            with action_span(node, "Inner") as inner:
                assert current_scope() is inner
            assert current_scope() is outer
