"""Suite-level timing reports: SuiteResult.bug_report() and the
per-case phase timings benchmark scripts read instead of re-measuring."""

import json

import pytest

from repro.cli import _RUNNER, _target_kit
from repro.core import ControlledTester, generate_test_cases
from repro.tlaplus import check


@pytest.fixture(scope="module")
def buggy_outcome():
    spec, mapping, cluster_factory = _target_kit("toycache", ["bug_wrong_max"])
    graph = check(spec, max_states=100_000, truncate=True).graph
    suite = generate_test_cases(graph, por=True, seed=0)
    tester = ControlledTester(mapping, graph, cluster_factory, _RUNNER)
    return tester.run_suite(suite, stop_on_divergence=True)


class TestSuiteBugReport:
    def test_report_carries_suite_timing(self, buggy_outcome):
        report = buggy_outcome.bug_report()
        assert report["cases"] == len(buggy_outcome.results)
        assert report["divergent"] == len(buggy_outcome.failures) >= 1
        assert report["elapsed_seconds"] == buggy_outcome.elapsed_seconds > 0
        assert len(report["case_elapsed_seconds"]) == report["cases"]

    def test_report_carries_phase_timing(self, buggy_outcome):
        phases = buggy_outcome.bug_report()["phase_seconds"]
        assert set(phases) == {"deploy", "steps", "check", "teardown"}
        assert phases["deploy"] > 0
        assert phases["steps"] > 0
        # phase totals must be bounded by total wall clock
        assert sum(phases.values()) <= buggy_outcome.elapsed_seconds * 1.01

    def test_report_counts_divergences_by_kind(self, buggy_outcome):
        counts = buggy_outcome.bug_report()["divergence_counts"]
        assert set(counts) == {"inconsistent_state", "missing_action",
                               "unexpected_action", "stalled"}
        assert counts["inconsistent_state"] >= 1

    def test_case_reports_carry_elapsed_and_phases(self, buggy_outcome):
        failing = buggy_outcome.failures[0]
        report = failing.bug_report()
        assert report["elapsed_seconds"] == failing.elapsed_seconds > 0
        assert set(report["phase_seconds"]) == {"deploy", "steps", "check",
                                                "teardown"}

    def test_report_is_json_serializable(self, buggy_outcome):
        json.dumps(buggy_outcome.bug_report())

    def test_passing_suite_reports_empty_failures(self):
        spec, mapping, cluster_factory = _target_kit("toycache", [])
        graph = check(spec, max_states=100_000, truncate=True).graph
        suite = generate_test_cases(graph, por=True, seed=0)
        tester = ControlledTester(mapping, graph, cluster_factory, _RUNNER)
        outcome = tester.run_suite(suite, max_cases=1)
        report = outcome.bug_report()
        assert report["divergent"] == 0 and report["failures"] == []
        assert report["phase_seconds"]["deploy"] > 0
