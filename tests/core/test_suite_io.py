"""Tests for suite save/load and its CLI plumbing."""

import io

import pytest

from repro.cli import main
from repro.core import generate_test_cases
from repro.core.testgen import TestSuite
from repro.specs import build_example_spec
from repro.tlaplus import check


@pytest.fixture(scope="module")
def suite():
    graph = check(build_example_spec()).graph
    return generate_test_cases(graph, por=True)


class TestSuiteRoundtrip:
    def test_file_roundtrip(self, suite, tmp_path):
        path = tmp_path / "suite.json"
        suite.save(str(path))
        loaded = TestSuite.load(str(path))
        assert len(loaded) == len(suite)
        assert loaded.excluded_edges == suite.excluded_edges
        for original, restored in zip(suite, loaded):
            assert restored.labels() == original.labels()
            assert restored.initial_state == original.initial_state
            assert [s.expected_state for s in restored.steps] == \
                [s.expected_state for s in original.steps]

    def test_stream_roundtrip(self, suite):
        buffer = io.StringIO()
        suite.save(buffer)
        buffer.seek(0)
        assert len(TestSuite.load(buffer)) == len(suite)

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError, match="not a mocket test suite"):
            TestSuite.load(str(path))

    def test_loaded_suite_runs(self, suite, tmp_path):
        from repro.core import ControlledTester, RunnerConfig
        from repro.systems.toycache import (
            ToyCacheConfig, build_toycache_mapping, make_toycache_cluster,
        )

        path = tmp_path / "suite.json"
        suite.save(str(path))
        loaded = TestSuite.load(str(path))
        graph = check(build_example_spec()).graph
        tester = ControlledTester(
            build_toycache_mapping(), graph,
            lambda: make_toycache_cluster(ToyCacheConfig()),
            RunnerConfig(match_timeout=1.0, done_timeout=1.0),
        )
        assert tester.run_suite(loaded).passed


class TestCliSuiteFlags:
    def test_testgen_out_then_test_suite(self, tmp_path, capsys):
        path = tmp_path / "suite.json"
        assert main(["testgen", "example", "--out", str(path)]) == 0
        assert path.exists()
        assert main(["test", "toycache", "--suite", str(path)]) == 0
        assert "0 divergent" in capsys.readouterr().out
