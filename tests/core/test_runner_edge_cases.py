"""Testbed edge cases: the divergence machinery beyond the happy paths.

Uses the toy cache system (small, fast) plus purpose-built specs to
drive the runner into its corner cases: initial-state mismatch, unknown
received messages, drop/duplicate plumbing, classification of timeouts,
and suite bookkeeping.
"""

import pytest

from repro.core import (
    ControlledTester,
    DivergenceKind,
    RunnerConfig,
    generate_test_cases,
)
from repro.core.mapping import SpecMapping, mocket_action, traced_field
from repro.core.testgen import label, scenario_case
from repro.runtime import Cluster, Node
from repro.specs import build_example_spec
from repro.systems.toycache import (
    CacheServer,
    ToyCacheConfig,
    build_toycache_mapping,
    make_toycache_cluster,
)
from repro.tlaplus import check

_FAST = RunnerConfig(match_timeout=0.3, done_timeout=0.3, quiesce_delay=0.01)


@pytest.fixture(scope="module")
def example_graph():
    return check(build_example_spec()).graph


@pytest.fixture(scope="module")
def example_suite(example_graph):
    return generate_test_cases(example_graph, por=False)


class BadInitServer(CacheServer):
    """Starts with a wrong initial value for ``msg``."""

    def __init__(self, node_id, cluster, config=None):
        super().__init__(node_id, cluster, config)
        self.msg = "Garbage"


class TestInitialStateCheck:
    def test_wrong_initial_state_reported_before_any_action(self, example_graph,
                                                            example_suite):
        cluster_factory = lambda: Cluster(
            ["server"], lambda nid, c: BadInitServer(nid, c, ToyCacheConfig()))
        tester = ControlledTester(build_toycache_mapping(), example_graph,
                                  cluster_factory, _FAST)
        result = tester.run_case(example_suite[0])
        assert not result.passed
        assert result.divergence.step_index == -1
        assert result.divergence.detail == "initial state mismatch"
        assert result.executed_actions == 0


class TestSuiteBookkeeping:
    def test_stop_on_divergence_halts_early(self, example_graph, example_suite):
        tester = ControlledTester(
            build_toycache_mapping(), example_graph,
            lambda: make_toycache_cluster(ToyCacheConfig(bug_wrong_max=True)),
            _FAST)
        result = tester.run_suite(example_suite, stop_on_divergence=True)
        assert len(result.results) < len(example_suite) or len(example_suite) == 1

    def test_max_cases_respected(self, example_graph, example_suite):
        tester = ControlledTester(build_toycache_mapping(), example_graph,
                                  lambda: make_toycache_cluster(ToyCacheConfig()),
                                  _FAST)
        result = tester.run_suite(example_suite, max_cases=2)
        assert len(result.results) == 2

    def test_elapsed_and_counts_recorded(self, example_graph, example_suite):
        tester = ControlledTester(build_toycache_mapping(), example_graph,
                                  lambda: make_toycache_cluster(ToyCacheConfig()),
                                  _FAST)
        result = tester.run_case(example_suite[0])
        assert result.passed
        assert result.executed_actions == len(example_suite[0])
        assert result.elapsed_seconds > 0

    def test_bug_report_requires_divergence(self, example_graph, example_suite):
        tester = ControlledTester(build_toycache_mapping(), example_graph,
                                  lambda: make_toycache_cluster(ToyCacheConfig()),
                                  _FAST)
        result = tester.run_case(example_suite[0])
        with pytest.raises(ValueError):
            result.bug_report()


class TestValidationAtConstruction:
    def test_incomplete_mapping_rejected(self, example_graph):
        mapping = SpecMapping(build_example_spec())
        from repro.core.mapping import MappingError

        with pytest.raises(MappingError):
            ControlledTester(mapping, example_graph,
                             lambda: make_toycache_cluster(), _FAST)


class TestMissingVsUnexpectedClassification:
    """A same-name/different-params notification at a timeout is an
    unexpected action; silence is a missing action."""

    def _spec_and_system(self, wrong_param):
        from repro.tlaplus import Specification

        spec = Specification("cls", constants={})
        spec.add_variable("x")

        @spec.init
        def init(const):
            return {"x": 0}

        @spec.action(params={"v": lambda s, c: [1, 2]})
        def Put(state, const, v):
            if state.x != 0:
                return None
            return {"x": v}

        class PutNode(Node):
            x = traced_field("x")

            def __init__(self, nid, cluster):
                super().__init__(nid, cluster)
                self.x = 0

            @mocket_action("Put", params=lambda self, v: {"v": v})
            def put(self, v):
                self.x = v

        mapping = SpecMapping(spec)
        mapping.map_variable("x")

        def run_put(cluster, params, occ):
            # a buggy client script that writes the wrong value
            cluster.node("s").put(wrong_param if wrong_param else params["v"])

        if wrong_param == "silent":
            mapping.map_user_request("Put", lambda cluster, params, occ: None)
        else:
            mapping.map_user_request("Put", run_put)
        graph, case = scenario_case(spec, [label("Put", v=1)])
        cluster_factory = lambda: Cluster(["s"], lambda nid, c: PutNode(nid, c))
        return ControlledTester(mapping, graph, cluster_factory, _FAST), case

    def test_different_params_is_unexpected(self):
        tester, case = self._spec_and_system(wrong_param=2)
        result = tester.run_case(case)
        assert not result.passed
        assert result.divergence.kind is DivergenceKind.UNEXPECTED_ACTION
        assert result.divergence.action == "Put"
        assert "offered" in result.divergence.detail

    def test_silence_is_missing(self):
        tester, case = self._spec_and_system(wrong_param="silent")
        result = tester.run_case(case)
        assert not result.passed
        assert result.divergence.kind is DivergenceKind.MISSING_ACTION

    def test_correct_params_pass(self):
        tester, case = self._spec_and_system(wrong_param=None)
        assert tester.run_case(case).passed


class TestUnknownReceivedMessage:
    def _kit(self, received_value):
        from repro.core.mapping import MessageCheckMode, mocket_receive
        from repro.tlaplus import EMPTY_BAG, Specification, VarKind, bag_add, in_flight

        spec = Specification("ghost", constants={})
        spec.add_variable("msgs", kind=VarKind.MESSAGE)
        spec.add_variable("got")

        @spec.init
        def init(const):
            return {"msgs": bag_add(EMPTY_BAG, "real"), "got": None}

        @spec.action(params={"m": in_flight("msgs")},
                     msg_param="m", message_var="msgs")
        def Recv(state, const, m):
            from repro.tlaplus import bag_remove

            return {"msgs": bag_remove(state.msgs, m), "got": m}

        class GhostNode(Node):
            got = traced_field("got")

            def __init__(self, nid, cluster):
                super().__init__(nid, cluster)
                self.got = None

            @mocket_receive("Recv", "msgs", msg=lambda self, m: m)
            def recv(self, m):
                self.got = m

        mapping = SpecMapping(spec, message_check=MessageCheckMode.CONSUME)
        mapping.map_variable("got")
        mapping.map_user_request(
            "Recv",
            lambda cluster, params, occ: cluster.node("s").recv(received_value))
        graph, case = scenario_case(spec, [label("Recv", m="real")])
        tester = ControlledTester(
            mapping, graph, lambda: Cluster(["s"], lambda n, c: GhostNode(n, c)),
            _FAST)
        return tester, case

    def test_mismatching_message_is_unexpected(self):
        """The node offers a different message than scheduled."""
        tester, case = self._kit("ghost")
        result = tester.run_case(case)
        assert not result.passed
        assert result.divergence.kind is DivergenceKind.UNEXPECTED_ACTION

    def test_matching_but_never_sent_message_is_inconsistent(self):
        """The spec's initial bag holds a message the testbed never saw
        sent: consuming it is an inconsistency on the message variable."""
        tester, case = self._kit("real")
        result = tester.run_case(case)
        assert not result.passed
        assert result.divergence.kind is DivergenceKind.INCONSISTENT_STATE
        assert "msgs" in result.divergence.variable_names
        assert "never saw sent" in result.divergence.detail
