"""Unit tests for the action scheduler and the state checker."""

import threading
import time

import pytest

from repro.core.mapping import MessageCheckMode, SpecMapping
from repro.core.testbed import MessageSets, StateChecker, UNREPORTED
from repro.core.testbed.scheduler import ActionScheduler, Notification
from repro.tlaplus import ActionLabel, Specification, State, VarKind
from repro.tlaplus.values import EMPTY_BAG, FrozenDict, bag_add


class TestScheduler:
    def test_submit_then_match(self):
        sched = ActionScheduler()
        sched.submit(Notification("n1", "Act", {"i": "n1"}))
        notif = sched.wait_for_label(ActionLabel("Act", {"i": "n1"}), timeout=0.1)
        assert notif is not None and notif.node_id == "n1"
        # matched notifications leave the waiting set
        assert sched.pending_snapshot() == []

    def test_no_match_times_out(self):
        sched = ActionScheduler()
        sched.submit(Notification("n1", "Act", {"i": "n1"}))
        start = time.monotonic()
        assert sched.wait_for_label(ActionLabel("Act", {"i": "n2"}), timeout=0.05) is None
        assert time.monotonic() - start >= 0.05
        assert len(sched.pending_snapshot()) == 1

    def test_match_arriving_late(self):
        sched = ActionScheduler()

        def submit_later():
            time.sleep(0.05)
            sched.submit(Notification("n2", "Act", {}))

        threading.Thread(target=submit_later, daemon=True).start()
        assert sched.wait_for_label(ActionLabel("Act"), timeout=1.0) is not None

    def test_params_are_translated_to_frozen(self):
        notif = Notification("n1", "Act", {"s": {1, 2}})
        assert notif.params["s"] == frozenset({1, 2})
        assert notif.matches(ActionLabel("Act", {"s": frozenset({2, 1})}))

    def test_enable_sets_directive(self):
        notif = Notification("n1", "Act", {})
        ActionScheduler.enable(notif, "drop")
        assert notif.enable_event.is_set()
        assert notif.directive == "drop"

    def test_pending_with_name(self):
        sched = ActionScheduler()
        sched.submit(Notification("n1", "A", {}))
        sched.submit(Notification("n2", "B", {}))
        assert [n.node_id for n in sched.pending_with_name("A")] == ["n1"]

    def test_discard_node(self):
        sched = ActionScheduler()
        keep = Notification("n1", "A", {})
        drop = Notification("n2", "A", {})
        sched.submit(keep)
        sched.submit(drop)
        sched.discard_node("n2")
        assert sched.pending_snapshot() == [keep]
        assert drop.directive == "abort" and drop.enable_event.is_set()

    def test_abort_all(self):
        sched = ActionScheduler()
        notifs = [Notification("n1", "A", {}), Notification("n2", "B", {})]
        for n in notifs:
            sched.submit(n)
        sched.abort_all()
        assert sched.pending_snapshot() == []
        assert all(n.directive == "abort" and n.enable_event.is_set() for n in notifs)

    def test_recv_msg_frozen(self):
        notif = Notification("n1", "Recv", {}, recv_msg={"t": "x"}, msg_var="msgs")
        assert notif.recv_msg == FrozenDict({"t": "x"})

    def test_fifo_matching_prefers_earliest(self):
        sched = ActionScheduler()
        first = Notification("n1", "A", {})
        second = Notification("n2", "A", {})
        sched.submit(first)
        sched.submit(second)
        assert sched.wait_for_label(ActionLabel("A"), timeout=0.1) is first


def _spec_for_checker():
    spec = Specification("chk", constants={"Server": ("n1", "n2")})
    spec.add_variable("role", per_node=True)
    spec.add_variable("votes", per_node=True)
    spec.add_variable("gmsg")                      # global state variable
    spec.add_variable("msgs", kind=VarKind.MESSAGE)
    spec.add_variable("ctr", kind=VarKind.COUNTER)

    @spec.init
    def init(const):
        return {"role": {"n1": "Follower", "n2": "Follower"}, "gmsg": "Nil",
                "votes": {"n1": frozenset(), "n2": frozenset()},
                "msgs": EMPTY_BAG, "ctr": 0}

    return spec


def _checker(message_check=MessageCheckMode.STRICT, votes_compare=None):
    spec = _spec_for_checker()
    mapping = SpecMapping(spec, message_check=message_check)
    mapping.map_constant("Follower", "F").map_constant("Leader", "L")
    mapping.map_variable("role", "state")
    mapping.map_variable("votes", "votes", compare=votes_compare)
    mapping.map_variable("gmsg", "gmsg")
    shadow = {
        "n1": {"state": "F", "votes": frozenset(), "gmsg": "Nil"},
        "n2": {"state": "F", "votes": frozenset()},
    }
    sets = MessageSets(["msgs"])
    checker = StateChecker(mapping, ["n1", "n2"], shadow, sets)
    return checker, shadow, sets


def _expected(**overrides):
    base = {
        "role": {"n1": "Follower", "n2": "Follower"},
        "votes": {"n1": frozenset(), "n2": frozenset()},
        "gmsg": "Nil",
        "msgs": EMPTY_BAG,
        "ctr": 0,
    }
    base.update(overrides)
    return State(base)


class TestStateChecker:
    def test_matching_state_has_no_divergence(self):
        checker, _, _ = _checker()
        assert checker.compare(_expected()) == []

    def test_constant_translation_applied(self):
        checker, shadow, _ = _checker()
        shadow["n1"]["state"] = "L"
        divs = checker.compare(_expected(role={"n1": "Leader", "n2": "Follower"}))
        assert divs == []

    def test_per_node_mismatch_detected(self):
        checker, shadow, _ = _checker()
        shadow["n2"]["state"] = "L"
        divs = checker.compare(_expected())
        assert [d.variable for d in divs] == ["role"]

    def test_unreported_variable_is_divergence(self):
        checker, shadow, _ = _checker()
        del shadow["n1"]["state"]
        divs = checker.compare(_expected())
        assert [d.variable for d in divs] == ["role"]
        assert UNREPORTED in repr(divs[0].actual)

    def test_global_variable_checked(self):
        checker, shadow, _ = _checker()
        shadow["n1"]["gmsg"] = "other"
        divs = checker.compare(_expected())
        assert [d.variable for d in divs] == ["gmsg"]

    def test_counter_never_checked(self):
        checker, _, _ = _checker()
        assert checker.compare(_expected(ctr=99)) == []

    def test_custom_compare_hook(self):
        # votes is a set in the spec but an int in the implementation
        checker, shadow, _ = _checker(
            votes_compare=lambda spec_value, impl: len(spec_value) == impl
        )
        shadow["n1"]["votes"] = 1
        shadow["n2"]["votes"] = 0
        divs = checker.compare(_expected(votes={"n1": frozenset({"n1"}),
                                                "n2": frozenset()}))
        assert divs == []
        # and a cardinality mismatch is caught
        shadow["n1"]["votes"] = 3
        divs = checker.compare(_expected(votes={"n1": frozenset({"n1"}),
                                                "n2": frozenset()}))
        assert [d.variable for d in divs] == ["votes"]

    def test_strict_message_check(self):
        checker, _, sets = _checker()
        sets.add("msgs", {"t": "x"})
        divs = checker.compare(_expected())
        assert [d.variable for d in divs] == ["msgs"]
        divs = checker.compare(_expected(msgs=bag_add(EMPTY_BAG, {"t": "x"})))
        assert divs == []

    def test_consume_mode_skips_message_check(self):
        checker, _, sets = _checker(message_check=MessageCheckMode.CONSUME)
        sets.add("msgs", {"t": "x"})
        assert checker.compare(_expected()) == []

    def test_spec_subset_of_nodes_ignored(self):
        """If the spec models fewer nodes than the cluster runs, extra
        cluster nodes are ignored for per-node variables."""
        checker, shadow, _ = _checker()
        shadow["n3"] = {"state": "weird"}
        checker.node_ids.append("n3")
        assert checker.compare(_expected()) == []
