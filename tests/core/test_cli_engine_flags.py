"""The engine flags on the command line: --workers/--checkpoint/--resume."""

import pytest

from repro.cli import main
from repro.obs import METRICS, TRACER


@pytest.fixture(autouse=True)
def clean_obs():
    TRACER.reset()
    METRICS.reset()
    yield
    TRACER.reset()
    METRICS.reset()


class TestWorkers:
    def test_check_with_workers(self, capsys):
        assert main(["check", "example", "--workers", "2"]) == 0
        assert "13 states" in capsys.readouterr().out

    def test_testgen_with_workers(self, capsys):
        assert main(["testgen", "example", "--workers", "2"]) == 0
        assert "PathEC+POR:" in capsys.readouterr().out

    def test_test_with_workers(self, capsys):
        assert main(["test", "toycache", "--workers", "2"]) == 0
        assert "0 divergent" in capsys.readouterr().out

    def test_workers_metrics_reported(self, capsys):
        assert main(["check", "example", "--workers", "2", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "engine.workers" in out
        assert "engine.levels" in out


class TestCheckpointResume:
    def test_check_checkpoint_then_resume(self, tmp_path, capsys):
        directory = str(tmp_path / "ck")
        assert main(["check", "example", "--checkpoint", directory]) == 0
        first = capsys.readouterr().out
        assert "checkpoint directory" in first
        assert main(["check", "example", "--checkpoint", directory,
                     "--resume"]) == 0
        assert "13 states" in capsys.readouterr().out

    def test_resume_without_prior_checkpoint_fails(self, tmp_path):
        from repro.engine import CheckpointError

        with pytest.raises(CheckpointError, match="no checkpoint found"):
            main(["check", "example",
                  "--checkpoint", str(tmp_path / "empty"), "--resume"])

    def test_resume_wrong_model_fails(self, tmp_path):
        from repro.engine import CheckpointError

        directory = str(tmp_path / "ck")
        assert main(["check", "example", "--checkpoint", directory]) == 0
        with pytest.raises(CheckpointError, match="is for spec"):
            main(["check", "raftkv", "--checkpoint", directory, "--resume"])
