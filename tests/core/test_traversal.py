"""Tests for the edge-coverage-guided traversal (Algorithm 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.testgen import edge_coverage_paths
from repro.tlaplus import ActionLabel, Specification, State, StateGraph, check


def _graph(edges, initial=(0,), n_states=None):
    """Build a graph from (src, dst, name) triples; states are {'id': i}."""
    graph = StateGraph("t")
    n = n_states or (max(max(s, d) for s, d, _ in edges) + 1 if edges else 1)
    for i in range(n):
        graph.add_state(State({"id": i}), initial=i in initial)
    for src, dst, name in edges:
        graph.add_edge(src, dst, ActionLabel(name))
    return graph


class TestEdgeCoverage:
    def test_single_chain(self):
        graph = _graph([(0, 1, "A"), (1, 2, "B")])
        result = edge_coverage_paths(graph)
        assert len(result.paths) == 1
        assert [e.label.name for e in result.paths[0]] == ["A", "B"]
        assert result.uncovered == set()

    def test_branching_produces_two_paths(self):
        graph = _graph([(0, 1, "A"), (0, 2, "B"), (1, 3, "C"), (2, 3, "D")])
        result = edge_coverage_paths(graph)
        assert len(result.paths) == 2
        assert result.uncovered == set()
        names = sorted(tuple(e.label.name for e in p) for p in result.paths)
        assert names == [("A", "C"), ("B", "D")]

    def test_every_edge_covered(self):
        graph = _graph([
            (0, 1, "A"), (0, 2, "B"), (1, 3, "C"), (2, 3, "D"),
            (3, 4, "E"), (3, 0, "Loop"),
        ])
        result = edge_coverage_paths(graph)
        # Paths share prefixes (Algorithm 1 emits root-to-leaf paths), but
        # each edge is *claimed* once, so within any single path an edge
        # appears at most once and the union covers everything reachable.
        for path in result.paths:
            keys = [e.key() for e in path]
            assert len(keys) == len(set(keys))
        seen = {e.key() for p in result.paths for e in p}
        assert len(seen) == graph.num_edges
        assert result.uncovered == set()

    def test_cycle_is_traversed_once(self):
        graph = _graph([(0, 1, "A"), (1, 0, "Back")])
        result = edge_coverage_paths(graph)
        assert len(result.paths) == 1
        assert [e.label.name for e in result.paths[0]] == ["A", "Back"]

    def test_self_loop(self):
        graph = _graph([(0, 0, "Spin"), (0, 1, "A")])
        result = edge_coverage_paths(graph)
        assert result.uncovered == set()
        seen = [e.key() for p in result.paths for e in p]
        assert len(set(seen)) == 2

    def test_end_states_cut_paths(self):
        graph = _graph([(0, 1, "A"), (1, 2, "B"), (2, 3, "C")])
        result = edge_coverage_paths(graph, end_state_ids={1})
        # the first path ends at state 1; edges B and C are never reached
        assert [e.label.name for e in result.paths[0]] == ["A"]
        assert {key[2].name for key in result.uncovered} == {"B", "C"}

    def test_initial_end_state_does_not_block(self):
        graph = _graph([(0, 1, "A")])
        result = edge_coverage_paths(graph, end_state_ids={0})
        assert len(result.paths) == 1  # empty path is not a test case

    def test_excluded_edges_are_not_targets(self):
        graph = _graph([(0, 1, "A"), (0, 2, "B")])
        excluded = [e for e in graph.edges() if e.label.name == "B"]
        result = edge_coverage_paths(graph, excluded_edges=excluded)
        assert len(result.paths) == 1
        assert result.targets == {e.key() for e in graph.edges() if e.label.name == "A"}
        assert result.uncovered == set()

    def test_max_paths_caps(self):
        graph = _graph([(0, i, f"A{i}") for i in range(1, 6)])
        result = edge_coverage_paths(graph, max_paths=2)
        assert len(result.paths) == 2

    def test_multiple_initial_states(self):
        graph = _graph([(0, 2, "A"), (1, 2, "B")], initial=(0, 1))
        result = edge_coverage_paths(graph)
        assert result.uncovered == set()
        starts = sorted(p[0].src for p in result.paths)
        assert starts == [0, 1]

    def test_unreachable_edges_reported_uncovered(self):
        graph = _graph([(0, 1, "A"), (2, 3, "B")])  # 2 not reachable from 0
        result = edge_coverage_paths(graph)
        assert {key[2].name for key in result.uncovered} == {"B"}

    def test_paths_start_from_initial(self):
        graph = _graph([(0, 1, "A"), (1, 2, "B"), (2, 1, "C")])
        result = edge_coverage_paths(graph)
        for path in result.paths:
            assert path[0].src == 0

    def test_paths_are_contiguous(self):
        graph = _graph([
            (0, 1, "A"), (1, 2, "B"), (2, 0, "C"), (0, 2, "D"), (2, 3, "E"),
        ])
        result = edge_coverage_paths(graph)
        for path in result.paths:
            for prev, cur in zip(path, path[1:]):
                assert prev.dst == cur.src

    def test_example_spec_coverage(self):
        from repro.specs import build_example_spec

        graph = check(build_example_spec()).graph
        result = edge_coverage_paths(graph)
        assert result.uncovered == set()
        covered = {e.key() for p in result.paths for e in p}
        assert covered == {e.key() for e in graph.edges()}


# A small random-DAG-with-back-edges strategy for property testing.
@st.composite
def random_graph(draw):
    n = draw(st.integers(min_value=2, max_value=8))
    edges = []
    k = draw(st.integers(min_value=1, max_value=14))
    for idx in range(k):
        src = draw(st.integers(min_value=0, max_value=n - 1))
        dst = draw(st.integers(min_value=0, max_value=n - 1))
        edges.append((src, dst, f"E{idx}"))
    return _graph(edges, initial=(0,), n_states=n)


class TestTraversalProperties:
    @settings(max_examples=60, deadline=None)
    @given(random_graph())
    def test_property_each_edge_at_most_once_and_reachables_covered(self, graph):
        result = edge_coverage_paths(graph)
        # within a single path, no edge repeats (each edge is claimed once)
        for path in result.paths:
            keys = [e.key() for e in path]
            assert len(keys) == len(set(keys))
        seen = [e.key() for p in result.paths for e in p]
        # every covered edge is a target
        assert set(seen) <= result.targets
        # reachable edges are covered: compute reachability and compare
        reachable = set()
        frontier = [0]
        visited_nodes = {0}
        while frontier:
            node = frontier.pop()
            for edge in graph.out_edges(node):
                reachable.add(edge.key())
                if edge.dst not in visited_nodes:
                    visited_nodes.add(edge.dst)
                    frontier.append(edge.dst)
        assert set(seen) == reachable & result.targets

    @settings(max_examples=60, deadline=None)
    @given(random_graph())
    def test_property_paths_contiguous_from_initial(self, graph):
        result = edge_coverage_paths(graph)
        for path in result.paths:
            assert path[0].src == 0
            for prev, cur in zip(path, path[1:]):
                assert prev.dst == cur.src
