"""POR static fast path guard: with the effect-derived independence
relation plugged in, diamond detection and the generated suites must be
**byte-identical** to the legacy join-verified output — across all
bundled models, testgen seeds, worker counts and hash seeds.  The fast
path is a pure optimisation; any divergence here means the static
certificates changed what POR proves, not just how fast it proves it.

Cost note: suite generation itself (path covering) is independent of
the diamond search, and on the two large graphs (xraft ~5k states, zab
~12k) it dominates wall time.  The guard therefore checks the full
suite bytes on the small models and the excluded-edge sets — the only
POR input to generation — on every model.
"""

import io
import os
import subprocess
import sys
import textwrap

import pytest

import repro
from repro.analysis.effects import analyze_spec
from repro.core import generate_test_cases
from repro.core.testgen.por import diamond_stats, find_diamonds, por_excluded_edges
from repro.engine import ShardedExplorer
from repro.specs import build_example_spec
from repro.specs.raft import RaftSpecOptions, build_raft_spec
from repro.specs.zab import ZabSpecOptions, build_zab_spec
from repro.tlaplus import check

# the five bundled targets: the four `mocket testgen` models plus the
# scaled-up raft used by the determinism guard (richer diamond structure)
MODELS = {
    "example": lambda: build_example_spec(),
    "xraft": lambda: build_raft_spec(RaftSpecOptions(
        max_term=1, max_client_requests=0, candidates=("n1",),
        name="xraft-model")),
    "raftkv": lambda: build_raft_spec(RaftSpecOptions(
        max_term=1, max_client_requests=0, candidates=("n1",),
        enable_drop=False, enable_duplicate=False, name="raftkv-model")),
    "zab": lambda: build_zab_spec(ZabSpecOptions(
        max_elections=1, max_crashes=0, max_restarts=0, starters=("n3",),
        name="zab-model")),
    "raft-guard": lambda: build_raft_spec(RaftSpecOptions(
        servers=("n1", "n2", "n3"), max_term=1, max_client_requests=0,
        enable_restart=True, max_restarts=1,
        enable_drop=False, enable_duplicate=False,
        candidates=("n1",), name="raft-guard")),
}

# small enough that two full generations per seed stay under a second
FAST_MODELS = ("example", "raftkv", "raft-guard")


@pytest.fixture(scope="module")
def explored():
    """{model: (graph, independence)} for every bundled target."""
    out = {}
    for name, build in MODELS.items():
        spec = build()
        out[name] = (check(spec).graph, analyze_spec(spec).independence())
    return out


def _suite_json(graph, seed, independence=None):
    buffer = io.StringIO()
    generate_test_cases(graph, por=True, seed=seed,
                        independence=independence).save(buffer)
    return buffer.getvalue()


@pytest.mark.parametrize("model", sorted(MODELS))
class TestByteIdentity:
    def test_diamond_lists_identical(self, explored, model):
        graph, independence = explored[model]
        legacy = find_diamonds(graph)
        static = find_diamonds(graph, independence=independence)
        assert len(legacy) == len(static)
        for a, b in zip(legacy, static):
            assert (a.origin, a.first_a.key(), a.second_a.key(),
                    a.first_b.key(), a.second_b.key()) == \
                   (b.origin, b.first_a.key(), b.second_a.key(),
                    b.first_b.key(), b.second_b.key())

    @pytest.mark.parametrize("seed", [0, 42])
    def test_excluded_edge_sets_identical(self, explored, model, seed):
        # the excluded set is POR's entire influence on generation
        graph, independence = explored[model]
        assert por_excluded_edges(graph, seed=seed) == \
            por_excluded_edges(graph, seed=seed, independence=independence)

    def test_stats_identical(self, explored, model):
        graph, independence = explored[model]
        assert diamond_stats(graph) == \
            diamond_stats(graph, independence=independence)


@pytest.mark.parametrize("model", FAST_MODELS)
@pytest.mark.parametrize("seed", [0, 42])
def test_suites_byte_identical(explored, model, seed):
    graph, independence = explored[model]
    assert _suite_json(graph, seed) == _suite_json(graph, seed, independence)


class TestStaticPathIsExercised:
    def test_bundled_models_have_certified_pairs(self, explored):
        # if every relation were empty the fast path would be vacuous
        for name in ("xraft", "raftkv", "zab", "raft-guard"):
            assert len(explored[name][1]) > 0, name

    def test_empty_relation_still_matches(self, explored):
        from repro.analysis.effects import IndependenceRelation

        graph, _ = explored["raftkv"]
        empty = IndependenceRelation(frozenset())
        assert _suite_json(graph, 0) == _suite_json(graph, 0, empty)


def test_suites_identical_across_worker_counts():
    spec = MODELS["raftkv"]()
    independence = analyze_spec(spec).independence()
    one = ShardedExplorer(spec, workers=1).run().graph
    four = ShardedExplorer(MODELS["raftkv"](), workers=4).run().graph
    expected = _suite_json(one, 0)
    assert _suite_json(one, 0, independence) == expected
    assert _suite_json(four, 0, independence) == expected


_HASHSEED_SCRIPT = textwrap.dedent("""
    import hashlib, io
    from repro.analysis.effects import analyze_spec
    from repro.core import generate_test_cases
    from repro.specs.raft import RaftSpecOptions, build_raft_spec
    from repro.tlaplus import check

    spec = build_raft_spec(RaftSpecOptions(
        max_term=1, max_client_requests=0, candidates=("n1",),
        enable_drop=False, enable_duplicate=False, name="raftkv-model"))
    graph = check(spec).graph
    for independence in (None, analyze_spec(spec).independence()):
        buffer = io.StringIO()
        generate_test_cases(graph, por=True, seed=0,
                            independence=independence).save(buffer)
        print(hashlib.sha256(buffer.getvalue().encode()).hexdigest())
""")


@pytest.mark.slow
def test_suites_stable_across_hash_seeds():
    digests = set()
    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__)))
    for hash_seed in ("0", "42"):
        env = dict(os.environ, PYTHONHASHSEED=hash_seed, PYTHONPATH=src_dir)
        proc = subprocess.run(
            [sys.executable, "-c", _HASHSEED_SCRIPT],
            capture_output=True, text=True, env=env, check=True)
        digests.update(proc.stdout.split())
    # legacy and fast path, under both hash seeds: one suite
    assert len(digests) == 1
