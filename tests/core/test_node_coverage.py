"""Tests for the node-coverage traversal strategy (Section 4.2.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.testgen import edge_coverage_paths, node_coverage_paths
from repro.tlaplus import ActionLabel, State, StateGraph, check


def _graph(edges, initial=(0,), n_states=None):
    graph = StateGraph("t")
    n = n_states or (max(max(s, d) for s, d, _ in edges) + 1 if edges else 1)
    for i in range(n):
        graph.add_state(State({"id": i}), initial=i in initial)
    for src, dst, name in edges:
        graph.add_edge(src, dst, ActionLabel(name))
    return graph


class TestNodeCoverage:
    def test_single_chain(self):
        graph = _graph([(0, 1, "A"), (1, 2, "B")])
        result = node_coverage_paths(graph)
        assert len(result.paths) == 1
        assert [e.label.name for e in result.paths[0]] == ["A", "B"]
        assert result.uncovered == set()

    def test_parallel_edges_covered_once(self):
        """Two actions between the same states: node coverage takes one —
        the blind spot that makes Mocket prefer edge coverage."""
        graph = _graph([(0, 1, "A"), (0, 1, "B")])
        node_result = node_coverage_paths(graph)
        edge_result = edge_coverage_paths(graph)
        node_actions = {e.label.name for p in node_result.paths for e in p}
        edge_actions = {e.label.name for p in edge_result.paths for e in p}
        assert len(node_actions) == 1
        assert edge_actions == {"A", "B"}

    def test_all_reachable_states_visited(self):
        graph = _graph([
            (0, 1, "A"), (0, 2, "B"), (1, 3, "C"), (2, 4, "D"), (3, 0, "L"),
        ])
        result = node_coverage_paths(graph)
        assert result.uncovered == set()

    def test_unreachable_states_reported(self):
        graph = _graph([(0, 1, "A"), (2, 3, "B")])
        result = node_coverage_paths(graph)
        assert result.uncovered == {(2,), (3,)}

    def test_end_states_cut_paths(self):
        graph = _graph([(0, 1, "A"), (1, 2, "B")])
        result = node_coverage_paths(graph, end_state_ids={1})
        assert [e.label.name for e in result.paths[0]] == ["A"]

    def test_max_paths(self):
        graph = _graph([(0, i, f"A{i}") for i in range(1, 6)])
        result = node_coverage_paths(graph, max_paths=2)
        assert len(result.paths) == 2

    def test_never_more_paths_than_edge_coverage(self):
        from repro.specs import build_example_spec

        graph = check(build_example_spec()).graph
        node_result = node_coverage_paths(graph)
        edge_result = edge_coverage_paths(graph)
        assert len(node_result.paths) <= len(edge_result.paths)
        assert node_result.uncovered == set()

    @settings(max_examples=40, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(0, 6), st.integers(0, 6)),
        min_size=1, max_size=12,
    ))
    def test_property_reachable_nodes_all_covered(self, pairs):
        edges = [(s, d, f"E{i}") for i, (s, d) in enumerate(pairs)]
        graph = _graph(edges, n_states=7)
        result = node_coverage_paths(graph)
        # compute reachability independently
        reachable = {0}
        frontier = [0]
        while frontier:
            node = frontier.pop()
            for edge in graph.out_edges(node):
                if edge.dst not in reachable:
                    reachable.add(edge.dst)
                    frontier.append(edge.dst)
        assert result.covered == {(n,) for n in reachable}
        # within a single path no state repeats (each node claimed once),
        # although paths may share prefixes
        for path in result.paths:
            nodes = [path[0].src] + [e.dst for e in path]
            assert len(nodes) == len(set(nodes))
