"""Tests for partial order reduction, end states and suite generation."""

import pytest

from repro.core.testgen import (
    TestCase,
    diamond_stats,
    edge_coverage_paths,
    find_diamonds,
    generate_test_cases,
    node_ids,
    por_excluded_edges,
    reached_by,
    state_matching,
    terminal_only,
    union,
)
from repro.tlaplus import ActionLabel, State, StateGraph, check


def _graph(edges, initial=(0,), n_states=None):
    graph = StateGraph("t")
    n = n_states or (max(max(s, d) for s, d, _ in edges) + 1 if edges else 1)
    for i in range(n):
        graph.add_state(State({"id": i}), initial=i in initial)
    for src, dst, name in edges:
        graph.add_edge(src, dst, ActionLabel(name))
    return graph


def _diamond_graph():
    """s0 -A-> s1 -B-> s3  and  s0 -B-> s2 -A-> s3."""
    return _graph([(0, 1, "A"), (1, 3, "B"), (0, 2, "B"), (2, 3, "A")])


class TestDiamonds:
    def test_finds_the_diamond(self):
        diamonds = find_diamonds(_diamond_graph())
        assert len(diamonds) == 1
        diamond = diamonds[0]
        assert diamond.origin == 0
        assert diamond.join == 3
        assert {diamond.first_a.label.name, diamond.first_b.label.name} == {"A", "B"}

    def test_no_diamond_when_joins_differ(self):
        graph = _graph([(0, 1, "A"), (1, 3, "B"), (0, 2, "B"), (2, 4, "A")])
        assert find_diamonds(graph) == []

    def test_no_diamond_for_same_label(self):
        # A(i=1)/A(i=1) pairs are skipped; distinct params form a diamond
        graph = StateGraph("t")
        for i in range(4):
            graph.add_state(State({"id": i}), initial=i == 0)
        graph.add_edge(0, 1, ActionLabel("A", {"i": 1}))
        graph.add_edge(1, 3, ActionLabel("A", {"i": 2}))
        graph.add_edge(0, 2, ActionLabel("A", {"i": 2}))
        graph.add_edge(2, 3, ActionLabel("A", {"i": 1}))
        assert len(find_diamonds(graph)) == 1

    def test_no_diamond_on_shared_destination(self):
        graph = _graph([(0, 1, "A"), (0, 1, "B")])
        assert find_diamonds(graph) == []

    def test_excludes_one_second_hop(self):
        graph = _diamond_graph()
        dropped = por_excluded_edges(graph, seed=1)
        assert len(dropped) == 1
        (edge,) = dropped
        assert edge.src in (1, 2) and edge.dst == 3

    def test_deterministic_given_seed(self):
        graph = _diamond_graph()
        assert {e.key() for e in por_excluded_edges(graph, seed=5)} == {
            e.key() for e in por_excluded_edges(graph, seed=5)
        }

    def test_traversal_with_por_covers_remaining(self):
        graph = _diamond_graph()
        dropped = por_excluded_edges(graph, seed=0)
        result = edge_coverage_paths(graph, excluded_edges=dropped)
        assert result.uncovered == set()
        # exactly one interleaving reaches the join state via 2 hops
        two_hoppers = [p for p in result.paths if len(p) == 2]
        assert len(two_hoppers) == 1

    def test_chained_diamonds_keep_one_order_each(self):
        # two independent diamonds: s0..s3 and s3..s6
        graph = _graph([
            (0, 1, "A"), (1, 3, "B"), (0, 2, "B"), (2, 3, "A"),
            (3, 4, "C"), (4, 6, "D"), (3, 5, "D"), (5, 6, "C"),
        ])
        dropped = por_excluded_edges(graph, seed=3)
        assert len(dropped) == 2
        result = edge_coverage_paths(graph, excluded_edges=dropped)
        assert result.uncovered == set()

    def test_stats(self):
        stats = diamond_stats(_diamond_graph())
        assert stats == {"diamonds": 1, "excluded_edges": 1}


class TestPorProperties:
    """Hypothesis: POR's exclusions are sound on arbitrary graphs."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @settings(max_examples=60, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5), st.sampled_from("ABC")),
        min_size=1, max_size=14,
    ))
    def test_property_por_keeps_one_interleaving_per_diamond(self, triples):
        graph = _graph([(s, d, n) for s, d, n in triples], n_states=6)
        dropped = {e.key() for e in por_excluded_edges(graph, seed=1)}
        for diamond in find_diamonds(graph):
            a, b = diamond.second_a.key(), diamond.second_b.key()
            # never both interleavings dropped
            assert not (a in dropped and b in dropped)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5), st.sampled_from("ABC")),
        min_size=1, max_size=14,
    ), st.integers(0, 100))
    def test_property_exclusions_are_second_hops(self, triples, seed):
        graph = _graph([(s, d, n) for s, d, n in triples], n_states=6)
        dropped = por_excluded_edges(graph, seed=seed)
        second_hops = set()
        for diamond in find_diamonds(graph):
            second_hops.add(diamond.second_a.key())
            second_hops.add(diamond.second_b.key())
        assert {e.key() for e in dropped} <= second_hops

    @settings(max_examples=40, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5), st.sampled_from("AB")),
        min_size=1, max_size=12,
    ), st.integers(0, 50))
    def test_property_traversal_with_por_stays_sound(self, triples, seed):
        graph = _graph([(s, d, n) for s, d, n in triples], n_states=6)
        dropped = por_excluded_edges(graph, seed=seed)
        result = edge_coverage_paths(graph, excluded_edges=dropped)
        dropped_keys = {e.key() for e in dropped}
        for path in result.paths:
            assert path[0].src == 0
            for edge in path:
                assert edge.key() not in dropped_keys


class TestEndStateSpecs:
    def test_reached_by(self):
        graph = _graph([(0, 1, "BecomeLeader"), (1, 2, "Other")])
        assert reached_by("BecomeLeader")(graph) == {1}

    def test_state_matching(self):
        graph = _graph([(0, 1, "A")])
        assert state_matching(lambda s: s.id == 1)(graph) == {1}

    def test_terminal_only(self):
        graph = _graph([(0, 1, "A")])
        assert terminal_only()(graph) == {1}

    def test_node_ids_filters_out_of_range(self):
        graph = _graph([(0, 1, "A")])
        assert node_ids([1, 99])(graph) == {1}

    def test_union(self):
        graph = _graph([(0, 1, "A"), (1, 2, "B")])
        combined = union(reached_by("A"), terminal_only())
        assert combined(graph) == {1, 2}


class TestTestCase:
    def test_from_edges_builds_expected_states(self):
        graph = _graph([(0, 1, "A"), (1, 2, "B")])
        path = [graph.out_edges(0)[0], graph.out_edges(1)[0]]
        case = TestCase.from_edges(7, graph, path)
        assert case.case_id == 7
        assert case.initial_state.id == 0
        assert [s.expected_state.id for s in case.steps] == [1, 2]
        assert case.final_id == 2
        assert case.action_names() == ["A", "B"]
        assert len(case) == 2

    def test_from_edges_requires_initial_start(self):
        graph = _graph([(0, 1, "A"), (1, 2, "B")])
        with pytest.raises(ValueError):
            TestCase.from_edges(0, graph, [graph.out_edges(1)[0]])

    def test_from_edges_requires_contiguity(self):
        graph = _graph([(0, 1, "A"), (0, 2, "B"), (2, 3, "C")])
        bad = [graph.out_edges(0)[0], graph.out_edges(2)[0]]
        with pytest.raises(ValueError):
            TestCase.from_edges(0, graph, bad)

    def test_from_edges_rejects_empty(self):
        graph = _graph([(0, 1, "A")])
        with pytest.raises(ValueError):
            TestCase.from_edges(0, graph, [])

    def test_describe(self):
        graph = _graph([(0, 1, "A")])
        case = TestCase.from_edges(0, graph, graph.out_edges(0))
        assert case.describe() == "s0 -> A() -> s1"

    def test_jsonable_roundtrip(self):
        import json

        graph = _graph([(0, 1, "A"), (1, 2, "B")])
        case = TestCase.from_edges(3, graph, [graph.out_edges(0)[0], graph.out_edges(1)[0]])
        payload = json.loads(json.dumps(case.to_jsonable()))
        restored = TestCase.from_jsonable(payload)
        assert restored.case_id == 3
        assert restored.labels() == case.labels()
        assert [s.expected_state for s in restored.steps] == [
            s.expected_state for s in case.steps
        ]


class TestGenerateTestCases:
    def test_example_spec_suite(self):
        from repro.specs import build_example_spec

        graph = check(build_example_spec()).graph
        suite_ec = generate_test_cases(graph, por=False)
        suite_por = generate_test_cases(graph, por=True)
        assert len(suite_ec) >= 1
        assert suite_ec.total_actions() >= graph.num_edges
        # POR never increases the suite size
        assert len(suite_por) <= len(suite_ec)
        assert suite_ec.uncovered_edges == 0

    def test_cases_numbered_sequentially(self):
        graph = _graph([(0, 1, "A"), (0, 2, "B")])
        suite = generate_test_cases(graph)
        assert [case.case_id for case in suite] == list(range(len(suite)))

    def test_max_cases(self):
        graph = _graph([(0, i, f"A{i}") for i in range(1, 6)])
        suite = generate_test_cases(graph, max_cases=3)
        assert len(suite) == 3

    def test_end_states_respected(self):
        graph = _graph([(0, 1, "Elect"), (1, 2, "After")])
        suite = generate_test_cases(graph, end_states=reached_by("Elect"), por=False)
        assert all(case.action_names() == ["Elect"] for case in suite)

    def test_suite_stats_and_helpers(self):
        graph = _diamond_graph()
        suite = generate_test_cases(graph, por=True, seed=0)
        stats = suite.stats()
        assert stats["excluded_edges"] == 1
        assert suite.covered_action_names() == {"A", "B"}
        assert suite[0] is suite.cases[0]
