"""Truncation accounting: refused successors are not explored edges.

Regression tests for an over-count in the ``truncate=True`` path: a
successor refused by the state budget used to bump ``edges_explored``
even though no edge (and no state) was added to the graph.
"""

from repro.obs import TRACER
from repro.specs import build_example_spec
from repro.tlaplus import check


class TestTruncationCounts:
    def test_edges_explored_matches_graph(self):
        result = check(build_example_spec(), max_states=5, truncate=True)
        assert not result.complete
        assert result.edges_explored == result.graph.num_edges

    def test_refused_successors_are_counted_separately(self):
        result = check(build_example_spec(), max_states=5, truncate=True)
        assert result.refused_successors > 0
        assert result.graph.num_states == 5

    def test_complete_run_refuses_nothing(self):
        result = check(build_example_spec())
        assert result.complete
        assert result.refused_successors == 0
        assert result.edges_explored == result.graph.num_edges

    def test_truncated_event_emitted_once(self):
        TRACER.reset()
        TRACER.configure(enabled=True)
        try:
            result = check(build_example_spec(), max_states=5, truncate=True)
            events = TRACER.events("checker.truncated")
            assert len(events) == 1
            assert events[0].fields["states"] == 5
            assert events[0].fields["max_states"] == 5
            assert events[0].fields["level"] >= 1
            assert not result.complete
        finally:
            TRACER.disable()
            TRACER.reset()

    def test_no_truncated_event_on_complete_run(self):
        TRACER.reset()
        TRACER.configure(enabled=True)
        try:
            check(build_example_spec())
            assert TRACER.events("checker.truncated") == []
        finally:
            TRACER.disable()
            TRACER.reset()
