"""Tests for simulation mode and deadlock detection."""

import pytest

from repro.tlaplus import Specification, check, simulate


def _counter_spec(limit=3, with_reset=True, violation_at=None):
    spec = Specification("sim", constants={"Limit": limit})
    spec.add_variable("n")

    @spec.init
    def init(const):
        return {"n": 0}

    @spec.action()
    def Incr(state, const):
        if state.n >= const["Limit"]:
            return None
        return {"n": state.n + 1}

    if with_reset:
        @spec.action()
        def Reset(state, const):
            if state.n == 0:
                return None
            return {"n": 0}

    if violation_at is not None:
        @spec.invariant()
        def Bounded(state, const):
            return state.n < violation_at

    return spec


class TestDeadlockDetection:
    def test_dead_end_reported(self):
        result = check(_counter_spec(limit=2, with_reset=False))
        (deadlock,) = result.deadlocks()
        assert result.graph.state_of(deadlock).n == 2

    def test_live_spec_has_no_deadlocks(self):
        result = check(_counter_spec(limit=2, with_reset=True))
        assert result.deadlocks() == []

    def test_example_spec_never_deadlocks(self):
        from repro.specs import build_example_spec

        assert check(build_example_spec()).deadlocks() == []


class TestSimulation:
    def test_collects_requested_traces(self):
        result = simulate(_counter_spec(), traces=5, depth=10, seed=1)
        assert result.ok
        assert len(result.traces) == 5
        assert result.states_sampled >= 5

    def test_traces_start_at_init(self):
        result = simulate(_counter_spec(), traces=3, depth=5)
        for trace in result.traces:
            label, state = trace[0]
            assert label is None and state.n == 0

    def test_traces_are_legal_behaviours(self):
        spec = _counter_spec()
        result = simulate(spec, traces=4, depth=12, seed=7)
        for trace in result.traces:
            for (_, before), (label, after) in zip(trace, trace[1:]):
                decl = spec.actions[label.name]
                assert spec.apply(decl, before, dict(label.params)) == after

    def test_deterministic_given_seed(self):
        a = simulate(_counter_spec(), traces=4, depth=10, seed=3)
        b = simulate(_counter_spec(), traces=4, depth=10, seed=3)
        assert [[s for _, s in t] for t in a.traces] == \
            [[s for _, s in t] for t in b.traces]
        c = simulate(_counter_spec(), traces=4, depth=10, seed=4)
        assert [[s for _, s in t] for t in a.traces] != \
            [[s for _, s in t] for t in c.traces]

    def test_violation_stops_simulation(self):
        result = simulate(_counter_spec(violation_at=2), traces=10, depth=10,
                          seed=0)
        assert not result.ok
        assert result.violation.invariant_name == "Bounded"
        assert result.violation.state.n == 2
        # the violating trace is a real counterexample prefix
        labels = [label for label, _ in result.violation.trace]
        assert labels[0] is None

    def test_dead_end_truncates_trace(self):
        result = simulate(_counter_spec(limit=1, with_reset=False),
                          traces=1, depth=50)
        assert len(result.traces[0]) == 2  # init + one Incr

    def test_raft_simulation_upholds_invariants(self):
        """Simulation scales to models whose full space we never enumerate."""
        from repro.specs.raft import RaftSpecOptions, build_raft_spec

        spec = build_raft_spec(RaftSpecOptions(
            max_term=2, max_client_requests=2, name="raft-sim",
        ))
        result = simulate(spec, traces=5, depth=40, seed=11)
        assert result.ok
