"""Tests for the model checker, the state graph and DOT round-trips."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tlaplus import (
    ActionLabel,
    CheckingBudgetExceeded,
    DotParseError,
    Specification,
    State,
    StateGraph,
    check,
    parse_dot,
    read_dot,
    to_dot,
    write_dot,
)
from repro.tlaplus.dot import decode_value, encode_value
from repro.tlaplus.values import FrozenDict, freeze


def _counter_spec(limit=3):
    spec = Specification("counter", constants={"Limit": limit})
    spec.add_variable("n")

    @spec.init
    def init(const):
        return {"n": 0}

    @spec.action()
    def Incr(state, const):
        if state.n >= const["Limit"]:
            return None
        return {"n": state.n + 1}

    @spec.action()
    def Reset(state, const):
        if state.n == 0:
            return None
        return {"n": 0}

    return spec


class TestModelChecker:
    def test_counter_space(self):
        result = check(_counter_spec(limit=3))
        assert result.ok and result.complete
        # states: n = 0..3; edges: 3 Incr + 3 Reset
        assert result.graph.num_states == 4
        assert result.graph.num_edges == 6
        assert result.diameter == 3

    def test_initial_state_marked(self):
        result = check(_counter_spec())
        assert result.graph.initial_ids == [0]
        assert result.graph.state_of(0).n == 0

    def test_invariant_violation_has_trace(self):
        spec = _counter_spec(limit=5)

        @spec.invariant()
        def Small(state, const):
            return state.n < 2

        result = check(spec)
        assert not result.ok
        violation = result.violation
        assert violation.invariant_name == "Small"
        assert violation.state.n == 2
        labels = [label for label, _ in violation.trace]
        assert labels == [None, ActionLabel("Incr"), ActionLabel("Incr")]

    def test_violation_in_initial_state(self):
        spec = _counter_spec()

        @spec.invariant()
        def Impossible(state, const):
            return False

        result = check(spec)
        assert not result.ok
        assert len(result.violation.trace) == 1

    def test_continue_after_violation(self):
        spec = _counter_spec(limit=3)

        @spec.invariant()
        def Small(state, const):
            return state.n < 2

        result = check(spec, stop_on_violation=False)
        assert not result.ok
        assert result.graph.num_states == 4  # exploration still completed

    def test_state_budget_raises(self):
        with pytest.raises(CheckingBudgetExceeded):
            check(_counter_spec(limit=100), max_states=10)

    def test_state_budget_truncates(self):
        result = check(_counter_spec(limit=100), max_states=10, truncate=True)
        assert not result.complete
        assert result.graph.num_states == 10

    def test_deterministic_discovery_order(self):
        g1 = check(_counter_spec()).graph
        g2 = check(_counter_spec()).graph
        assert [s.as_dict() for _, s in g1.states()] == [s.as_dict() for _, s in g2.states()]

    def test_example_spec_matches_figure2(self):
        from repro.specs import build_example_spec

        result = check(build_example_spec(data=(1, 2)))
        assert result.ok and result.complete
        assert result.graph.num_states == 13


class TestStateGraph:
    def _small_graph(self):
        graph = StateGraph("g")
        a = graph.add_state(State({"n": 0}), initial=True)
        b = graph.add_state(State({"n": 1}))
        graph.add_edge(a, b, ActionLabel("Incr"))
        graph.add_edge(b, a, ActionLabel("Reset"))
        return graph, a, b

    def test_interning_deduplicates(self):
        graph = StateGraph()
        first = graph.add_state(State({"n": 0}))
        second = graph.add_state(State({"n": 0}))
        assert first == second
        assert graph.num_states == 1

    def test_duplicate_edge_is_noop(self):
        graph, a, b = self._small_graph()
        assert graph.add_edge(a, b, ActionLabel("Incr")) is None
        assert graph.num_edges == 2

    def test_parallel_edges_with_distinct_labels(self):
        graph, a, b = self._small_graph()
        assert graph.add_edge(a, b, ActionLabel("Jump")) is not None
        assert len(graph.out_edges(a)) == 2

    def test_queries(self):
        graph, a, b = self._small_graph()
        assert graph.successors(a) == [b]
        assert [e.src for e in graph.in_edges(a)] == [b]
        assert graph.enabled_labels(a) == [ActionLabel("Incr")]
        assert graph.edge_between(a, b, ActionLabel("Incr")) is not None
        assert graph.edge_between(a, b, ActionLabel("Nope")) is None
        assert graph.action_names() == {"Incr", "Reset"}
        assert graph.terminal_ids() == []

    def test_terminal_states(self):
        graph = StateGraph()
        a = graph.add_state(State({"n": 0}), initial=True)
        b = graph.add_state(State({"n": 1}))
        graph.add_edge(a, b, ActionLabel("Go"))
        assert graph.terminal_ids() == [b]

    def test_stats(self):
        graph, _, _ = self._small_graph()
        assert graph.stats() == {
            "states": 2, "edges": 2, "initial": 1, "terminal": 0, "actions": 2,
        }

    def test_to_networkx(self):
        graph, a, b = self._small_graph()
        nxg = graph.to_networkx()
        assert nxg.number_of_nodes() == 2
        assert nxg.number_of_edges() == 2
        assert nxg.nodes[a]["initial"] is True


class TestDot:
    def test_encode_decode_scalars(self):
        for value in [1, "x", None, True, -3]:
            assert decode_value(encode_value(freeze(value))) == value

    def test_encode_decode_containers(self):
        value = freeze({"bag": {("a", 1): 2}, "set": {1, 2}, "seq": [1, [2, 3]]})
        assert decode_value(encode_value(value)) == value

    def test_decode_garbage_raises(self):
        with pytest.raises(DotParseError):
            decode_value("not a literal [")

    def test_roundtrip_counter(self):
        graph = check(_counter_spec()).graph
        parsed = parse_dot(to_dot(graph))
        assert parsed.num_states == graph.num_states
        assert parsed.num_edges == graph.num_edges
        assert parsed.initial_ids == graph.initial_ids
        for node_id, state in graph.states():
            assert parsed.state_of(node_id) == state
        assert {e.key() for e in parsed.edges()} == {e.key() for e in graph.edges()}

    def test_roundtrip_example_spec(self):
        from repro.specs import build_example_spec

        graph = check(build_example_spec()).graph
        parsed = parse_dot(to_dot(graph))
        assert parsed.num_states == 13
        assert {e.key() for e in parsed.edges()} == {e.key() for e in graph.edges()}

    def test_file_roundtrip(self, tmp_path):
        graph = check(_counter_spec()).graph
        path = tmp_path / "space.dot"
        write_dot(graph, str(path))
        parsed = read_dot(str(path))
        assert parsed.num_states == graph.num_states

    def test_stream_roundtrip(self):
        graph = check(_counter_spec()).graph
        buffer = io.StringIO()
        write_dot(graph, buffer)
        buffer.seek(0)
        assert read_dot(buffer).num_edges == graph.num_edges

    def test_quotes_in_values_survive(self):
        graph = StateGraph('tricky "name"')
        graph.add_state(State({"s": 'he said "hi"'}), initial=True)
        parsed = parse_dot(to_dot(graph))
        assert parsed.spec_name == 'tricky "name"'
        assert parsed.state_of(0).s == 'he said "hi"'

    def test_parse_rejects_bad_header(self):
        with pytest.raises(DotParseError):
            parse_dot("graph {}\n")

    def test_parse_rejects_unknown_line(self):
        graph = check(_counter_spec(limit=1)).graph
        text = to_dot(graph).replace("}", "junk line\n}")
        with pytest.raises(DotParseError):
            parse_dot(text)

    def test_parse_rejects_dangling_edge(self):
        text = 'digraph "g" {\n  0 -> 1 [label="A" params="(\'$dict\', ())"];\n}\n'
        with pytest.raises(DotParseError):
            parse_dot(text)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=8))
    def test_property_roundtrip_any_counter_limit(self, limit):
        graph = check(_counter_spec(limit=limit)).graph
        parsed = parse_dot(to_dot(graph))
        assert parsed.num_states == graph.num_states
        assert {e.key() for e in parsed.edges()} == {e.key() for e in graph.edges()}
