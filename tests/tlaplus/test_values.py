"""Unit and property tests for immutable values and bag algebra."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tlaplus.values import (
    EMPTY_BAG,
    FrozenDict,
    bag_add,
    bag_contains,
    bag_count,
    bag_from_iterable,
    bag_items,
    bag_remove,
    bag_size,
    freeze,
    is_bag,
    thaw,
)


class TestFrozenDict:
    def test_mapping_interface(self):
        fd = FrozenDict({"a": 1, "b": 2})
        assert fd["a"] == 1
        assert len(fd) == 2
        assert set(fd) == {"a", "b"}
        assert "a" in fd
        assert fd.get("c", 9) == 9

    def test_is_hashable_and_order_insensitive(self):
        assert hash(FrozenDict(a=1, b=2)) == hash(FrozenDict(b=2, a=1))
        assert FrozenDict(a=1, b=2) == FrozenDict(b=2, a=1)

    def test_equals_plain_dict(self):
        assert FrozenDict(a=1) == {"a": 1}
        assert FrozenDict(a=1) != {"a": 2}

    def test_set_returns_new_instance(self):
        fd = FrozenDict(a=1)
        fd2 = fd.set("b", 2)
        assert fd == {"a": 1}
        assert fd2 == {"a": 1, "b": 2}

    def test_set_freezes_value(self):
        fd = FrozenDict().set("k", {"x": [1, 2]})
        assert isinstance(fd["k"], FrozenDict)
        assert fd["k"]["x"] == (1, 2)

    def test_update_many(self):
        fd = FrozenDict(a=1, b=2).update({"b": 3, "c": 4})
        assert fd == {"a": 1, "b": 3, "c": 4}

    def test_remove(self):
        fd = FrozenDict(a=1, b=2)
        assert fd.remove("a") == {"b": 2}
        assert fd.remove("missing") is fd

    def test_apply(self):
        fd = FrozenDict(n=1).apply("n", lambda v: v + 1)
        assert fd["n"] == 2

    def test_apply_missing_key_raises(self):
        with pytest.raises(KeyError):
            FrozenDict().apply("n", lambda v: v)

    def test_mutation_is_impossible(self):
        fd = FrozenDict(a=1)
        with pytest.raises(TypeError):
            fd["a"] = 2  # type: ignore[index]

    def test_repr_is_sorted_and_stable(self):
        assert repr(FrozenDict(b=2, a=1)) == repr(FrozenDict(a=1, b=2))


class TestFreezeThaw:
    def test_freeze_dict(self):
        frozen = freeze({"a": [1, {2}]})
        assert isinstance(frozen, FrozenDict)
        assert frozen["a"] == (1, frozenset({2}))

    def test_freeze_idempotent(self):
        value = freeze({"a": [1, 2]})
        assert freeze(value) is value

    def test_freeze_unhashable_leaf_raises(self):
        class Unhashable:
            __hash__ = None

        with pytest.raises(TypeError):
            freeze(Unhashable())

    def test_thaw_inverse(self):
        original = {"a": [1, 2], "b": {"c": {3}}}
        assert thaw(freeze(original)) == original

    @given(
        st.recursive(
            st.one_of(st.integers(), st.text(max_size=5), st.booleans(), st.none()),
            lambda children: st.one_of(
                st.lists(children, max_size=3),
                st.dictionaries(st.text(max_size=3), children, max_size=3),
            ),
            max_leaves=10,
        )
    )
    def test_property_thaw_freeze_roundtrip(self, value):
        assert thaw(freeze(value)) == value

    @given(st.dictionaries(st.text(max_size=4), st.integers(), max_size=5))
    def test_property_frozen_dicts_hash_consistently(self, data):
        a, b = freeze(data), freeze(dict(reversed(list(data.items()))))
        assert a == b
        assert hash(a) == hash(b)


class TestBags:
    def test_empty_bag(self):
        assert bag_size(EMPTY_BAG) == 0
        assert is_bag(EMPTY_BAG)

    def test_add_and_count(self):
        bag = bag_add(bag_add(EMPTY_BAG, "m"), "m")
        assert bag_count(bag, "m") == 2
        assert bag_size(bag) == 2
        assert bag_contains(bag, "m")

    def test_remove_decrements(self):
        bag = bag_add(EMPTY_BAG, "m", count=2)
        bag = bag_remove(bag, "m")
        assert bag_count(bag, "m") == 1

    def test_remove_last_copy_drops_key(self):
        bag = bag_remove(bag_add(EMPTY_BAG, "m"), "m")
        assert bag == EMPTY_BAG

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            bag_remove(EMPTY_BAG, "m")

    def test_add_invalid_count_raises(self):
        with pytest.raises(ValueError):
            bag_add(EMPTY_BAG, "m", count=0)
        with pytest.raises(ValueError):
            bag_remove(bag_add(EMPTY_BAG, "m"), "m", count=0)

    def test_bag_elements_are_frozen(self):
        bag = bag_add(EMPTY_BAG, {"type": "vote"})
        assert bag_contains(bag, {"type": "vote"})

    def test_bag_items_respects_multiplicity(self):
        bag = bag_add(bag_add(EMPTY_BAG, "a", count=2), "b")
        assert sorted(bag_items(bag)) == ["a", "a", "b"]

    def test_bag_from_iterable(self):
        bag = bag_from_iterable(["x", "x", "y"])
        assert bag_count(bag, "x") == 2
        assert bag_count(bag, "y") == 1

    def test_is_bag_rejects_bad_counts(self):
        assert not is_bag(FrozenDict({"m": 0}))
        assert not is_bag(FrozenDict({"m": "two"}))
        assert not is_bag("not a dict")

    @given(st.lists(st.sampled_from(["a", "b", "c"]), max_size=20))
    def test_property_bag_size_matches_list_length(self, elements):
        assert bag_size(bag_from_iterable(elements)) == len(elements)

    @given(
        st.lists(st.sampled_from(["a", "b"]), min_size=1, max_size=10),
        st.sampled_from(["a", "b"]),
    )
    def test_property_add_then_remove_is_identity(self, elements, extra):
        bag = bag_from_iterable(elements)
        assert bag_remove(bag_add(bag, extra), extra) == bag
