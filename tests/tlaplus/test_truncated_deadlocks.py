"""The deadlocks() footgun: truncated runs must not silently report
frontier states as deadlocks."""

import warnings

import pytest

from repro.specs import build_example_spec
from repro.tlaplus import TruncatedExplorationWarning, check


class TestTruncatedDeadlocks:
    def test_truncated_run_warns(self):
        result = check(build_example_spec(), max_states=5, truncate=True)
        assert not result.complete
        with pytest.warns(TruncatedExplorationWarning,
                          match="truncated exploration"):
            result.deadlocks()

    def test_truncated_run_strict_raises(self):
        result = check(build_example_spec(), max_states=5, truncate=True)
        with pytest.raises(ValueError, match="truncated exploration"):
            result.deadlocks(strict=True)

    def test_complete_run_stays_silent(self):
        result = check(build_example_spec())
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert result.deadlocks() == []
            assert result.deadlocks(strict=True) == []

    def test_warned_value_is_still_returned(self):
        # warn-don't-break: existing callers still get the terminal ids
        result = check(build_example_spec(), max_states=5, truncate=True)
        with pytest.warns(TruncatedExplorationWarning):
            ids = result.deadlocks()
        assert ids == result.graph.terminal_ids()
