"""Unit tests for State, ActionLabel and the Specification DSL."""

import pytest

from repro.tlaplus import (
    ActionError,
    ActionKind,
    ActionLabel,
    SpecError,
    Specification,
    State,
    VarKind,
    bag_add,
    bag_from_iterable,
    from_constant,
    in_flight,
)
from repro.tlaplus.values import EMPTY_BAG


class TestState:
    def test_attribute_access(self):
        state = State({"n": 1, "roles": {"a": "Leader"}})
        assert state.n == 1
        assert state.roles["a"] == "Leader"

    def test_values_are_frozen(self):
        state = State({"log": [1, 2]})
        assert state.log == (1, 2)

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            State({"n": 1}).missing

    def test_getitem_and_contains(self):
        state = State({"n": 1})
        assert state["n"] == 1
        assert "n" in state
        assert "m" not in state
        assert state.get("m", 7) == 7

    def test_with_updates_is_functional(self):
        state = State({"n": 1, "m": 2})
        state2 = state.with_updates({"n": 10})
        assert state.n == 1
        assert state2.n == 10
        assert state2.m == 2  # UNCHANGED

    def test_with_updates_unknown_variable_raises(self):
        with pytest.raises(KeyError):
            State({"n": 1}).with_updates({"zz": 0})

    def test_empty_update_returns_self(self):
        state = State({"n": 1})
        assert state.with_updates({}) is state

    def test_structural_equality_and_hash(self):
        a = State({"n": 1, "s": {1, 2}})
        b = State({"s": {2, 1}, "n": 1})
        assert a == b
        assert hash(a) == hash(b)
        assert a.fingerprint() == b.fingerprint()

    def test_as_dict_thaws(self):
        state = State({"log": [1], "s": {2}})
        assert state.as_dict() == {"log": [1], "s": {2}}

    def test_variables_sorted(self):
        assert State({"b": 1, "a": 2}).variables() == ("a", "b")


class TestActionLabel:
    def test_equality(self):
        assert ActionLabel("A", {"i": 1}) == ActionLabel("A", {"i": 1})
        assert ActionLabel("A", {"i": 1}) != ActionLabel("A", {"i": 2})
        assert ActionLabel("A") != ActionLabel("B")

    def test_hashable(self):
        labels = {ActionLabel("A", {"i": 1}), ActionLabel("A", {"i": 1})}
        assert len(labels) == 1

    def test_immutable(self):
        label = ActionLabel("A")
        with pytest.raises(AttributeError):
            label.name = "B"

    def test_repr_includes_params(self):
        assert repr(ActionLabel("A", {"i": "n1"})) == "A(i='n1')"
        assert repr(ActionLabel("A")) == "A()"


def _counter_spec(limit=2):
    spec = Specification("counter", constants={"Limit": limit})
    spec.add_variable("n")

    @spec.init
    def init(const):
        return {"n": 0}

    @spec.action()
    def Incr(state, const):
        if state.n >= const["Limit"]:
            return None
        return {"n": state.n + 1}

    return spec


class TestSpecification:
    def test_initial_states(self):
        (state,) = _counter_spec().initial_states()
        assert state.n == 0

    def test_init_disjunction(self):
        spec = Specification("multi")
        spec.add_variable("n")

        @spec.init
        def init(const):
            return [{"n": 0}, {"n": 5}]

        assert [s.n for s in spec.initial_states()] == [0, 5]

    def test_init_missing_variable_raises(self):
        spec = Specification("bad")
        spec.add_variable("n")
        spec.add_variable("m")

        @spec.init
        def init(const):
            return {"n": 0}

        with pytest.raises(SpecError):
            spec.initial_states()

    def test_init_extra_variable_raises(self):
        spec = Specification("bad")
        spec.add_variable("n")

        @spec.init
        def init(const):
            return {"n": 0, "zz": 1}

        with pytest.raises(SpecError):
            spec.initial_states()

    def test_missing_init_raises(self):
        spec = Specification("noinit")
        spec.add_variable("n")
        with pytest.raises(SpecError):
            spec.initial_states()

    def test_duplicate_declarations_raise(self):
        spec = _counter_spec()
        with pytest.raises(SpecError):
            spec.add_variable("n")
        with pytest.raises(SpecError):

            @spec.action()
            def Incr(state, const):
                return None

    def test_enabled_enumerates_next(self):
        spec = _counter_spec(limit=1)
        (init_state,) = spec.initial_states()
        transitions = list(spec.enabled(init_state))
        assert len(transitions) == 1
        label, successor = transitions[0]
        assert label == ActionLabel("Incr")
        assert successor.n == 1
        # at the limit Incr is disabled
        assert list(spec.enabled(successor)) == []

    def test_action_assigning_undeclared_variable_raises(self):
        spec = Specification("bad")
        spec.add_variable("n")

        @spec.init
        def init(const):
            return {"n": 0}

        @spec.action()
        def Broken(state, const):
            return {"zz": 1}

        (state,) = spec.initial_states()
        with pytest.raises(ActionError):
            list(spec.enabled(state))

    def test_action_exception_is_wrapped(self):
        spec = Specification("boom")
        spec.add_variable("n")

        @spec.init
        def init(const):
            return {"n": 0}

        @spec.action()
        def Boom(state, const):
            raise RuntimeError("kaboom")

        (state,) = spec.initial_states()
        with pytest.raises(ActionError, match="Boom"):
            list(spec.enabled(state))

    def test_parameter_domains_from_constants(self):
        spec = Specification("param", constants={"Server": ("n1", "n2")})
        spec.add_variable("last")

        @spec.init
        def init(const):
            return {"last": None}

        @spec.action(params={"i": from_constant("Server")})
        def Touch(state, const, i):
            return {"last": i}

        (state,) = spec.initial_states()
        labels = sorted(repr(label) for label, _ in spec.enabled(state))
        assert labels == ["Touch(i='n1')", "Touch(i='n2')"]

    def test_in_flight_domain_deduplicates_bag(self):
        spec = Specification("msgs")
        spec.add_variable("messages", kind=VarKind.MESSAGE)

        @spec.init
        def init(const):
            return {"messages": bag_add(bag_from_iterable(["m1"]), "m1")}

        @spec.action(
            params={"m": in_flight("messages")},
            kind=ActionKind.MESSAGE_RECEIVE,
            msg_param="m",
            message_var="messages",
        )
        def Receive(state, const, m):
            return {}

        (state,) = spec.initial_states()
        # "m1" is duplicated in the bag but yields a single binding.
        assert len(list(spec.enabled(state))) == 1

    def test_msg_param_must_be_declared(self):
        spec = Specification("bad")
        spec.add_variable("messages", kind=VarKind.MESSAGE)
        with pytest.raises(SpecError):

            @spec.action(kind=ActionKind.MESSAGE_RECEIVE, msg_param="m",
                         message_var="messages")
            def Receive(state, const):
                return {}

    def test_message_var_must_exist(self):
        spec = Specification("bad")
        with pytest.raises(SpecError):

            @spec.action(params={"m": in_flight("nope")}, msg_param="m",
                         message_var="nope")
            def Receive(state, const, m):
                return {}

    def test_invariants(self):
        spec = _counter_spec(limit=3)

        @spec.invariant()
        def Bounded(state, const):
            return state.n <= 2

        good = State({"n": 2})
        bad = State({"n": 3})
        assert spec.check_invariants(good) is None
        assert spec.check_invariants(bad) == "Bounded"

    def test_kind_introspection(self):
        spec = Specification("kinds")
        spec.add_variable("s", kind=VarKind.STATE)
        spec.add_variable("msgs", kind=VarKind.MESSAGE)
        spec.add_variable("cnt", kind=VarKind.COUNTER)
        assert spec.variables_of_kind(VarKind.MESSAGE) == ["msgs"]
        assert spec.variables_of_kind(VarKind.COUNTER) == ["cnt"]

        @spec.init
        def init(const):
            return {"s": 0, "msgs": EMPTY_BAG, "cnt": 0}

        @spec.action(kind=ActionKind.FAULT)
        def Crash(state, const):
            return None

        assert spec.actions_of_kind(ActionKind.FAULT) == ["Crash"]
        assert spec.actions_of_kind(ActionKind.USER_REQUEST) == []
