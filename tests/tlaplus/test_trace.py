"""Tests for counterexample trace formatting."""

from repro.tlaplus import (
    Specification,
    State,
    check,
    diff_states,
    format_trace,
    format_violation,
)
from repro.tlaplus.state import ActionLabel


def _violating_spec():
    spec = Specification("boom", constants={"Limit": 5})
    spec.add_variable("n")
    spec.add_variable("quiet")

    @spec.init
    def init(const):
        return {"n": 0, "quiet": "yes"}

    @spec.action()
    def Incr(state, const):
        if state.n >= const["Limit"]:
            return None
        return {"n": state.n + 1}

    @spec.invariant()
    def Small(state, const):
        return state.n < 2

    return spec


class TestDiffStates:
    def test_initial_diff_is_full_state(self):
        state = State({"a": 1, "b": 2})
        assert diff_states(None, state) == {"a": 1, "b": 2}

    def test_only_changes_reported(self):
        before = State({"a": 1, "b": 2})
        after = State({"a": 1, "b": 3})
        assert diff_states(before, after) == {"b": 3}

    def test_no_change_is_empty(self):
        state = State({"a": 1})
        assert diff_states(state, State({"a": 1})) == {}


class TestFormatTrace:
    def test_numbered_steps_with_actions(self):
        result = check(_violating_spec())
        text = format_trace(result.violation.trace)
        assert "State 1: Initial state" in text
        assert "State 2: Incr()" in text
        assert "State 3: Incr()" in text

    def test_initial_state_printed_in_full(self):
        result = check(_violating_spec())
        text = format_trace(result.violation.trace)
        assert "/\\ quiet = 'yes'" in text

    def test_later_steps_show_only_changes(self):
        result = check(_violating_spec())
        text = format_trace(result.violation.trace)
        # 'quiet' never changes, so it appears exactly once (initial state)
        assert text.count("quiet") == 1

    def test_full_states_mode(self):
        result = check(_violating_spec())
        text = format_trace(result.violation.trace, full_states=True)
        assert text.count("quiet") == 3

    def test_format_violation_headline(self):
        result = check(_violating_spec())
        text = format_violation(result.violation)
        assert text.startswith("Invariant Small is violated.")
        assert "State 3" in text
