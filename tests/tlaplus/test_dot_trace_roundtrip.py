"""DOT multiset roundtrips and trace rendering on real model output.

``parse_dot`` may renumber nodes relative to the exporter, so the
roundtrip contract is *multiset* equality: the same states and the same
(src state, label, dst state) transitions, regardless of ids.
"""

from collections import Counter

from repro.engine import graphs_equivalent
from repro.specs import build_example_spec
from repro.specs.raft import RaftSpecOptions, build_raft_spec
from repro.tlaplus import check
from repro.tlaplus.dot import encode_value, parse_dot, to_dot
from repro.tlaplus.trace import diff_states, format_trace, format_violation
from repro.tlaplus.state import ActionLabel, State


def _node_multiset(graph):
    return Counter(encode_value(state._vars) for _, state in graph.states())


def _edge_multiset(graph):
    return Counter(
        (encode_value(graph.state_of(edge.src)._vars),
         edge.label.name, encode_value(edge.label.params),
         encode_value(graph.state_of(edge.dst)._vars))
        for edge in graph.edges()
    )


def _initial_multiset(graph):
    return Counter(encode_value(graph.state_of(node_id)._vars)
                   for node_id in graph.initial_ids)


class TestDotMultisetRoundtrip:
    def test_example_model(self):
        graph = check(build_example_spec()).graph
        parsed = parse_dot(to_dot(graph))
        assert _node_multiset(parsed) == _node_multiset(graph)
        assert _edge_multiset(parsed) == _edge_multiset(graph)
        assert _initial_multiset(parsed) == _initial_multiset(graph)

    def test_raft_model(self):
        spec = build_raft_spec(RaftSpecOptions(
            servers=("n1", "n2", "n3"), max_term=1, max_client_requests=0,
            enable_restart=False, enable_drop=False, enable_duplicate=False,
            candidates=("n1",), name="raft-dot-roundtrip",
        ))
        graph = check(spec).graph
        parsed = parse_dot(to_dot(graph))
        assert parsed.num_states == graph.num_states
        assert parsed.num_edges == graph.num_edges
        assert _node_multiset(parsed) == _node_multiset(graph)
        assert _edge_multiset(parsed) == _edge_multiset(graph)

    def test_roundtrip_is_canonically_equivalent(self):
        graph = check(build_example_spec()).graph
        assert graphs_equivalent(graph, parse_dot(to_dot(graph)))

    def test_double_roundtrip_is_stable(self):
        graph = check(build_example_spec()).graph
        once = parse_dot(to_dot(graph))
        twice = parse_dot(to_dot(once))
        assert to_dot(once) == to_dot(twice)


class TestTraceRendering:
    def _violating_trace(self):
        from repro.tlaplus.spec import Specification, VarKind

        spec = Specification("boom", constants={})
        spec.add_variable("n", kind=VarKind.STATE)

        @spec.init
        def init(const):
            return {"n": 0}

        @spec.action()
        def Incr(state, const):
            return None if state.n >= 3 else {"n": state.n + 1}

        @spec.invariant()
        def Small(state, const):
            return state.n < 2

        return check(spec).violation

    def test_checker_violation_formats(self):
        violation = self._violating_trace()
        text = format_violation(violation)
        assert "Invariant Small is violated." in text
        assert "State 1: Initial state" in text
        assert text.count("Incr") == 2   # two steps to reach n=2

    def test_format_trace_shows_only_changes_by_default(self):
        trace = [
            (None, State({"a": 1, "b": 2})),
            (ActionLabel("Step", {}), State({"a": 1, "b": 3})),
        ]
        text = format_trace(trace)
        lines = text.splitlines()
        # initial state in full, second step only the changed variable
        assert "  /\\ a = 1" in lines
        assert lines.count("  /\\ b = 3") == 1
        assert sum("a = 1" in line for line in lines) == 1

    def test_format_trace_full_states(self):
        trace = [
            (None, State({"a": 1, "b": 2})),
            (ActionLabel("Step", {}), State({"a": 1, "b": 3})),
        ]
        text = format_trace(trace, full_states=True)
        assert sum("a = 1" in line for line in text.splitlines()) == 2

    def test_diff_states_with_containers(self):
        before = State({"bag": frozenset(("x",)), "n": 0})
        after = State({"bag": frozenset(("x", "y")), "n": 0})
        changed = diff_states(before, after)
        assert set(changed) == {"bag"}
