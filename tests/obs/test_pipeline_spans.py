"""End-to-end span sequences through the instrumented pipeline."""

import pytest

from repro.core import ControlledTester, DivergenceKind, RunnerConfig
from repro.core.testgen import generate_test_cases
from repro.obs import METRICS, TRACER, TraceReader
from repro.specs import build_example_spec
from repro.systems.raftkv import build_raftkv_mapping, make_raftkv_cluster
from repro.systems.raftkv.scenarios import raftkv_bug1
from repro.tlaplus import check

_RUNNER = RunnerConfig(match_timeout=1.0, done_timeout=1.0, quiesce_delay=0.05)


class TestCheckerSpans:
    def test_checker_emits_run_span_and_levels(self):
        TRACER.configure(enabled=True)
        result = check(build_example_spec())
        (run_span,) = TRACER.events("checker.run")
        assert run_span.kind == "span"
        assert run_span.fields["states"] == result.states_explored == 13
        assert run_span.fields["complete"] is True
        levels = TRACER.events("checker.bfs_level")
        assert [e.fields["level"] for e in levels] == [1, 2, 3, 4, 5]
        snap = METRICS.snapshot()
        assert snap["checker.states"] == 13
        assert snap["checker.edges"] == 18
        assert snap["checker.states_per_sec"] > 0


class TestTestgenSpans:
    def test_generate_emits_cases_and_coverage(self):
        graph = check(build_example_spec()).graph
        TRACER.configure(enabled=True)
        suite = generate_test_cases(graph, por=True, seed=0)
        emitted = TRACER.events("testgen.case_emitted")
        assert len(emitted) == len(suite)
        assert [e.fields["case"] for e in emitted] == list(range(len(suite)))
        (gen,) = TRACER.events("testgen.generate")
        assert gen.fields["cases"] == len(suite)
        assert METRICS.snapshot()["testgen.edge_coverage_pct"] == 100.0
        # the nested traversal + por spans are present exactly once
        assert len(TRACER.events("testgen.traversal")) == 1
        assert len(TRACER.events("por.reduce")) == 1


class TestDivergentRaftkvCase:
    """The known-divergent raftkv-bug1 case must leave the expected
    span sequence behind (the satellite's acceptance scenario)."""

    @pytest.fixture(scope="class")
    def outcome(self):
        scenario = raftkv_bug1()
        tester = ControlledTester(
            build_raftkv_mapping(scenario.spec, scenario.buggy_config),
            scenario.graph,
            lambda: make_raftkv_cluster(scenario.servers,
                                        scenario.buggy_config),
            _RUNNER,
        )
        TRACER.reset()
        METRICS.reset()
        TRACER.configure(enabled=True)
        result = tester.run_case(scenario.case)
        TRACER.disable()
        events = TRACER.events()
        snapshot = METRICS.snapshot()
        TRACER.reset()
        METRICS.reset()
        return scenario, result, events, snapshot

    def test_case_diverges(self, outcome):
        scenario, result, _, _ = outcome
        assert not result.passed
        assert result.divergence.kind.value == scenario.expected_kind

    def test_case_span_carries_outcome(self, outcome):
        scenario, result, events, _ = outcome
        (case_span,) = [e for e in events if e.name == "runner.case"]
        assert case_span.fields["case"] == scenario.case.case_id
        assert case_span.fields["outcome"] == result.divergence.kind.value
        assert case_span.fields["executed"] == result.executed_actions

    def test_step_span_sequence(self, outcome):
        scenario, result, events, _ = outcome
        steps = [e for e in events if e.name == "runner.step"]
        # every executed step plus the step that diverged
        assert len(steps) == result.executed_actions + 1
        assert [e.fields["step"] for e in steps] == list(range(len(steps)))
        assert all(e.fields["outcome"] == "ok" for e in steps[:-1])
        assert steps[-1].fields["outcome"] == result.divergence.kind.value
        expected_actions = [s.label.name
                            for s in scenario.case.steps[: len(steps)]]
        assert [e.fields["action"] for e in steps] == expected_actions

    def test_divergence_event_and_metric(self, outcome):
        _, result, events, snapshot = outcome
        (div,) = [e for e in events if e.name == "runner.divergence"]
        assert div.fields["kind"] == result.divergence.kind.value
        kind = result.divergence.kind.value
        assert snapshot[f"divergence.{kind}"] == 1

    def test_supporting_events_present(self, outcome):
        _, result, events, snapshot = outcome
        names = {e.name for e in events}
        assert "scheduler.notification" in names
        assert "statecheck.compare" in names
        assert snapshot["statecheck.compares"] >= result.executed_actions

    def test_reader_reconstructs_the_timeline(self, outcome):
        scenario, result, events, _ = outcome
        timelines = TraceReader(events).case_timelines()
        line = timelines[scenario.case.case_id]
        assert line.step_count == result.executed_actions + 1
        assert line.outcome == result.divergence.kind.value
        assert [s.index for s in line.steps] == list(range(line.step_count))


class TestFaultSpans:
    def test_restart_fault_emits_injection_event(self):
        # the default raftkv model's verified space includes Restart
        # actions; run a case containing one and expect fault.injected
        from repro.cli import _target_kit

        spec, mapping, cluster_factory = _target_kit("raftkv", [])
        graph = check(spec, max_states=100_000, truncate=True).graph
        suite = generate_test_cases(graph, por=True, seed=0)
        with_fault = [case for case in suite
                      if any(s.label.name == "Restart" for s in case.steps)]
        assert with_fault, "the raftkv model should generate Restart cases"
        tester = ControlledTester(mapping, graph, cluster_factory, _RUNNER)
        TRACER.configure(enabled=True)
        result = tester.run_case(with_fault[0])
        assert result.passed, result.divergence
        faults = TRACER.events("fault.injected")
        assert faults and faults[0].fields["action"] == "Restart"
