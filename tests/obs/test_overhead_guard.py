"""Slow guard: the obs layer's disabled fast path must stay cheap.

Invokes benchmarks/check_overhead.py (the CI benchmark guard) as a
library: the Figure-2 example check with tracing disabled must be
within 5% of an uninstrumented seed-replica baseline, and a disabled
emit/span call must cost well under a microsecond.
"""

import os
import sys

import pytest

BENCH_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "benchmarks")
sys.path.insert(0, os.path.abspath(BENCH_DIR))

import check_overhead  # noqa: E402  (benchmarks/ is not a package)


@pytest.mark.slow
class TestOverheadGuard:
    def test_disabled_tracing_overhead_under_threshold(self):
        # a single round can exceed the margin under machine load; the
        # guard claim holds if any of three rounds stays within 5%
        overheads = []
        for _ in range(3):
            results = check_overhead.measure(iterations=40, samples=9)
            overheads.append(results["disabled_overhead_pct"])
            if overheads[-1] <= 5.0:
                break
        assert min(overheads) <= 5.0, overheads

    def test_disabled_calls_are_submicrosecond(self):
        results = check_overhead.measure(iterations=5, samples=2)
        assert results["disabled_emit_ns"] < 1000.0
        assert results["disabled_span_ns"] < 1000.0

    def test_guard_script_main_passes(self, capsys):
        # exercises the pass path / report format only, so run with few
        # iterations and a loose threshold; the 5% claim itself is
        # checked above at full sample counts
        assert check_overhead.main(["--iterations", "20", "--samples", "5",
                                    "--threshold", "25"]) == 0
        out = capsys.readouterr().out
        assert "OK: disabled-tracing overhead" in out

    def test_guard_script_fails_on_impossible_threshold(self, capsys):
        # a negative threshold cannot be met: the failure path must trip
        assert check_overhead.main(
            ["--iterations", "5", "--samples", "2", "--threshold", "-100"]
        ) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_seed_replica_matches_instrumented_checker(self):
        from repro.specs import build_example_spec
        from repro.tlaplus import check, to_dot

        replica = check_overhead._seed_check(build_example_spec(data=(1, 2)))
        instrumented = check(build_example_spec(data=(1, 2))).graph
        assert to_dot(replica) == to_dot(instrumented)
