"""Shared fixtures: every obs test leaves the global tracer/metrics
exactly as it found them (disabled and empty)."""

import pytest

from repro.obs import METRICS, TRACER


@pytest.fixture(autouse=True)
def clean_obs():
    TRACER.reset()
    METRICS.reset()
    yield
    TRACER.reset()
    METRICS.reset()
