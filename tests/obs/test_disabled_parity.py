"""With tracing disabled (the default), the instrumented pipeline must
behave byte-identically to the seed: same checker counts, same suite
outcomes, and zero records emitted."""

from repro.cli import _RUNNER, _target_kit
from repro.core import ControlledTester, generate_test_cases
from repro.obs import METRICS, TRACER
from repro.specs import build_example_spec
from repro.tlaplus import check, to_dot


class TestCheckerParity:
    def test_seed_counts_and_no_records(self):
        assert not TRACER.enabled
        result = check(build_example_spec(data=(1, 2)))
        # the seed's Figure-2 numbers, exactly
        assert result.states_explored == 13
        assert result.edges_explored == 18
        assert result.diameter == 5
        assert result.complete and result.ok
        assert TRACER.emitted == 0
        assert METRICS.snapshot() == {}

    def test_two_disabled_runs_are_byte_identical(self):
        first = check(build_example_spec(data=(1, 2)))
        second = check(build_example_spec(data=(1, 2)))
        assert to_dot(first.graph) == to_dot(second.graph)

    def test_disabled_matches_enabled_run_output(self):
        disabled = check(build_example_spec(data=(1, 2)))
        TRACER.configure(enabled=True)
        enabled = check(build_example_spec(data=(1, 2)))
        TRACER.disable()
        # instrumentation observes; it must never change the artifact
        assert to_dot(disabled.graph) == to_dot(enabled.graph)
        assert disabled.diameter == enabled.diameter
        assert disabled.complete == enabled.complete


class TestSuiteParity:
    def test_toycache_suite_outcomes_unchanged(self):
        assert not TRACER.enabled
        spec, mapping, cluster_factory = _target_kit("toycache", [])
        graph = check(spec, max_states=100_000, truncate=True).graph
        suite = generate_test_cases(graph, por=True, seed=0)
        tester = ControlledTester(mapping, graph, cluster_factory, _RUNNER)
        outcome = tester.run_suite(suite)
        # the seed's toycache result: 4 cases, all passing
        assert len(outcome.results) == 4
        assert outcome.passed
        assert [r.executed_actions for r in outcome.results] == \
            [len(r.case) for r in outcome.results]
        assert TRACER.emitted == 0
        assert METRICS.snapshot() == {}
