"""Tracer unit tests: fast path, ring buffer, ordering, JSONL sink."""

import json
import threading

import pytest

from repro.obs import NULL_SPAN, TRACER, TraceEvent
from repro.obs.tracer import jsonable
from repro.tlaplus.values import FrozenDict, freeze


class TestDisabledFastPath:
    def test_disabled_by_default(self):
        assert TRACER.enabled is False

    def test_disabled_emit_records_nothing(self):
        TRACER.emit("x", a=1)
        assert TRACER.events() == []
        assert TRACER.emitted == 0

    def test_disabled_span_is_the_shared_noop(self):
        span = TRACER.span("x", a=1)
        assert span is NULL_SPAN
        with span as active:
            active.add(b=2)     # must be accepted and ignored
        assert TRACER.events() == []

    def test_field_named_name_is_allowed(self):
        # emit()'s own parameter is positional-only, so instrumented code
        # may carry a field literally called "name"
        TRACER.configure(enabled=True)
        TRACER.emit("scheduler.notification", name="Request", node="n1")
        (event,) = TRACER.events()
        assert event.fields["name"] == "Request"


class TestRecording:
    def test_event_and_span_records(self):
        TRACER.configure(enabled=True)
        TRACER.emit("alpha", x=1)
        with TRACER.span("beta", y=2) as span:
            span.add(z=3)
        alpha, beta = TRACER.events()
        assert (alpha.kind, alpha.name, alpha.fields) == ("event", "alpha", {"x": 1})
        assert beta.kind == "span" and beta.fields == {"y": 2, "z": 3}
        assert beta.dur >= 0

    def test_timestamps_strictly_increase(self):
        TRACER.configure(enabled=True)
        for i in range(100):
            TRACER.emit("tick", i=i)
        events = TRACER.events()
        assert [e.seq for e in events] == list(range(100))
        for prev, cur in zip(events, events[1:]):
            assert cur.ts > prev.ts

    def test_ring_buffer_overflow_keeps_newest(self):
        TRACER.configure(enabled=True, capacity=10)
        for i in range(25):
            TRACER.emit("tick", i=i)
        events = TRACER.events()
        assert len(events) == 10
        assert [e.fields["i"] for e in events] == list(range(15, 25))
        assert TRACER.emitted == 25
        assert TRACER.dropped == 15

    def test_filter_by_name(self):
        TRACER.configure(enabled=True)
        TRACER.emit("a")
        TRACER.emit("b")
        TRACER.emit("a")
        assert len(TRACER.events("a")) == 2

    def test_emit_is_thread_safe(self):
        TRACER.configure(enabled=True)

        def worker(tid):
            for i in range(200):
                TRACER.emit("tick", tid=tid, i=i)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        events = TRACER.events()
        assert len(events) == 800
        assert [e.seq for e in events] == sorted(e.seq for e in events)


class TestSink:
    def test_jsonl_sink_one_record_per_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        TRACER.configure(enabled=True, sink=str(path))
        TRACER.emit("alpha", x=1)
        with TRACER.span("beta"):
            pass
        TRACER.disable()        # closes (and flushes) the sink
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["name"] == "alpha" and first["fields"] == {"x": 1}
        assert json.loads(lines[1])["kind"] == "span"

    def test_reset_clears_buffer_and_sequence(self, tmp_path):
        TRACER.configure(enabled=True)
        TRACER.emit("x")
        TRACER.reset()
        assert TRACER.events() == [] and TRACER.emitted == 0
        TRACER.configure(enabled=True)
        TRACER.emit("y")
        assert TRACER.events()[0].seq == 0


class TestJsonable:
    def test_spec_domain_values_serialize(self):
        value = FrozenDict({"bag": freeze({"k": (1, 2)}),
                            "s": frozenset({3, 1})})
        out = jsonable(value)
        assert out == {"bag": {"k": [1, 2]}, "s": [1, 3]}
        json.dumps(out)         # must be JSON-clean

    def test_unserializable_falls_back_to_repr(self):
        class Odd:
            def __repr__(self):
                return "<odd>"

        assert jsonable(Odd()) == "<odd>"


class TestRoundTrip:
    def test_event_dict_round_trip(self):
        event = TraceEvent(3, 1.25, "span", "runner.step", 0.5, {"case": 1})
        clone = TraceEvent.from_dict(json.loads(json.dumps(event.to_dict())))
        assert (clone.seq, clone.ts, clone.kind, clone.name, clone.dur,
                clone.fields) == (3, 1.25, "span", "runner.step", 0.5,
                                  {"case": 1})
