"""Metrics registry tests: instruments, snapshot determinism, rendering."""

from repro.obs import METRICS, MetricsRegistry


class TestInstruments:
    def test_counter(self):
        registry = MetricsRegistry()
        registry.inc("hits")
        registry.inc("hits", 4)
        assert registry.counter("hits").value == 5

    def test_gauge_set_and_max(self):
        registry = MetricsRegistry()
        registry.set_gauge("depth", 3)
        registry.gauge("depth").max(7)
        registry.gauge("depth").max(2)      # lower value keeps the peak
        assert registry.gauge("depth").value == 7

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        for value in (1.0, 3.0, 2.0):
            registry.observe("lat", value)
        summary = registry.histogram("lat").snapshot()
        assert summary == {"count": 3, "sum": 6.0, "min": 1.0, "max": 3.0,
                           "mean": 2.0}

    def test_timer_context_manager(self):
        registry = MetricsRegistry()
        with registry.time("block"):
            pass
        snap = registry.histogram("block").snapshot()
        assert snap["count"] == 1 and snap["min"] >= 0


class TestSnapshot:
    def test_snapshot_is_deterministic(self):
        def populate(registry):
            registry.inc("z.counter", 2)
            registry.set_gauge("a.gauge", 1.5)
            registry.observe("m.hist", 4.0)

        first, second = MetricsRegistry(), MetricsRegistry()
        populate(first)
        populate(second)
        assert first.snapshot() == second.snapshot()
        assert list(first.snapshot()) == sorted(first.snapshot())

    def test_snapshot_shapes(self):
        registry = MetricsRegistry()
        registry.inc("c")
        registry.set_gauge("g", 2)
        registry.observe("h", 1.0)
        snap = registry.snapshot()
        assert snap["c"] == 1
        assert snap["g"] == 2
        assert snap["h"]["count"] == 1

    def test_reset(self):
        registry = MetricsRegistry()
        registry.inc("c")
        registry.reset()
        assert registry.snapshot() == {}


class TestRender:
    def test_render_empty(self):
        assert MetricsRegistry().render() == "(no metrics recorded)"

    def test_render_aligns_names(self):
        registry = MetricsRegistry()
        registry.inc("short")
        registry.set_gauge("a.much.longer.metric", 1.0)
        lines = registry.render().splitlines()
        assert len(lines) == 2
        # one column of names, aligned on the longest
        assert lines[0].startswith("a.much.longer.metric  ")
        assert lines[1].startswith("short                 ")

    def test_global_registry_exists(self):
        METRICS.inc("smoke")
        assert METRICS.snapshot()["smoke"] == 1
