"""TraceReader tests: JSONL round-trip and timeline reconstruction."""

import pytest

from repro.obs import TRACER, TraceReader


def write_fake_run(sink_path):
    """Emit a small, realistic two-case run through the real tracer."""
    TRACER.configure(enabled=True, sink=str(sink_path))
    with TRACER.span("runner.suite", cases=2):
        with TRACER.span("runner.case", case=0, actions=2) as case_span:
            with TRACER.span("runner.step", case=0, step=0,
                             action="Request", outcome="ok"):
                TRACER.emit("scheduler.notification", name="Request", node="n1")
            with TRACER.span("runner.step", case=0, step=1,
                             action="Respond", outcome="ok"):
                pass
            case_span.add(outcome="pass", executed=2)
        with TRACER.span("runner.case", case=1, actions=2) as case_span:
            with TRACER.span("runner.step", case=1, step=0,
                             action="Request", outcome="missing_action"):
                pass
            TRACER.emit("runner.divergence", case=1, kind="missing_action",
                        step=0, action="Request")
            case_span.add(outcome="missing_action", executed=0)
    TRACER.disable()


class TestRoundTrip:
    def test_jsonl_round_trip_matches_buffer(self, tmp_path):
        path = tmp_path / "run.jsonl"
        write_fake_run(path)
        buffered = TRACER.events()
        reader = TraceReader.from_file(str(path))
        assert len(reader) == len(buffered)
        for loaded, original in zip(reader.events, buffered):
            assert loaded.seq == original.seq
            assert loaded.name == original.name
            assert loaded.kind == original.kind
            assert loaded.ts == pytest.approx(original.ts, abs=1e-9)

    def test_bad_line_reports_path_and_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"seq": 0, "ts": 0.1, "name": "x"}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            TraceReader.from_file(str(path)).events

    def test_from_file_is_lazy_and_streams(self, tmp_path):
        path = tmp_path / "run.jsonl"
        write_fake_run(path)
        reader = TraceReader.from_file(str(path))
        assert reader._events is None          # no I/O until consumed
        streamed = list(reader.iter_events())
        assert reader._events is None          # streaming did not materialize
        assert [e.seq for e in streamed] == sorted(e.seq for e in streamed)
        assert len(reader.events) == len(streamed)   # now materialized
        assert reader._events is not None


class TestTimelines:
    def test_case_timelines(self, tmp_path):
        path = tmp_path / "run.jsonl"
        write_fake_run(path)
        timelines = TraceReader.from_file(str(path)).case_timelines()
        assert sorted(timelines) == [0, 1]
        passing = timelines[0]
        assert passing.step_count == 2
        assert [s.action for s in passing.steps] == ["Request", "Respond"]
        assert passing.passed and passing.outcome == "pass"
        failing = timelines[1]
        assert failing.step_count == 1
        assert not failing.passed and failing.outcome == "missing_action"
        assert failing.steps[0].outcome == "missing_action"

    def test_names_and_duration(self, tmp_path):
        path = tmp_path / "run.jsonl"
        write_fake_run(path)
        reader = TraceReader.from_file(str(path))
        counts = reader.names()
        assert counts["runner.case"] == 2
        assert counts["runner.step"] == 3
        assert reader.duration() > 0

    def test_summarize_text(self, tmp_path):
        path = tmp_path / "run.jsonl"
        write_fake_run(path)
        text = TraceReader.from_file(str(path)).summarize()
        assert "cases: 2 (1 divergent)" in text
        assert "case #0: 2 steps, pass" in text
        assert "case #1: 1 steps, missing_action" in text
        assert "[0] Request" in text

    def test_summarize_caps_cases(self, tmp_path):
        path = tmp_path / "run.jsonl"
        write_fake_run(path)
        text = TraceReader.from_file(str(path)).summarize(max_cases=1)
        assert "case #0" in text and "case #1" not in text
        assert "1 more cases" in text

    def test_empty_trace(self):
        reader = TraceReader([])
        assert reader.case_timelines() == {}
        assert reader.duration() == 0.0
        assert "0 records" in reader.summarize()
