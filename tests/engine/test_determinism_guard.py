"""Determinism guard (the engine's core contract, pinned as a test):

for real models — raft and zab — and multiple testgen seeds, a parallel
exploration must yield the *same canonical graph* and the *same suite
JSON* as the serial one.  A regression here silently invalidates every
downstream artifact (suites, replays, bug reports), so these tests are
deliberately end-to-end.
"""

import io

import pytest

from repro.core import generate_test_cases
from repro.engine import ShardedExplorer, canonical_signature, graphs_equivalent
from repro.specs.raft import RaftSpecOptions, build_raft_spec
from repro.specs.zab import ZabSpecOptions, build_zab_spec
from repro.tlaplus import check
from repro.tlaplus.dot import to_dot

# scaled-down models (seconds, not minutes, per exploration)
RAFT_OPTS = dict(
    servers=("n1", "n2", "n3"), max_term=1, max_client_requests=0,
    enable_restart=True, max_restarts=1,
    enable_drop=False, enable_duplicate=False,
    candidates=("n1",), name="raft-guard",
)
ZAB_OPTS = dict(
    servers=("n1", "n2"), max_elections=2, max_crashes=0, max_restarts=0,
    starters=("n1",), name="zab-guard",
)


def _build(model):
    if model == "raft":
        return build_raft_spec(RaftSpecOptions(**RAFT_OPTS))
    return build_zab_spec(ZabSpecOptions(**ZAB_OPTS))


@pytest.fixture(scope="module")
def explorations():
    """(serial graph, workers=1 graph, workers=4 graph) per model."""
    out = {}
    for model in ("raft", "zab"):
        spec = _build(model)
        out[model] = (
            check(spec).graph,
            ShardedExplorer(spec, workers=1).run().graph,
            ShardedExplorer(spec, workers=4).run().graph,
        )
    return out


def _suite_json(graph, seed):
    buffer = io.StringIO()
    generate_test_cases(graph, por=True, seed=seed).save(buffer)
    return buffer.getvalue()


@pytest.mark.parametrize("model", ["raft", "zab"])
class TestDeterminismGuard:
    def test_parallel_graph_is_bit_identical_to_workers_1(self, explorations,
                                                          model):
        _, one, four = explorations[model]
        assert to_dot(one) == to_dot(four)

    def test_parallel_graph_matches_serial_canonically(self, explorations,
                                                       model):
        serial, _, four = explorations[model]
        assert canonical_signature(serial) == canonical_signature(four)
        assert graphs_equivalent(serial, four)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_testgen_suites_identical_across_worker_counts(self, explorations,
                                                           model, seed):
        _, one, four = explorations[model]
        assert _suite_json(one, seed) == _suite_json(four, seed)
