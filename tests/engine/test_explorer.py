"""The sharded explorer: parity with the serial checker, budgets,
violations, checkpoints and resume."""

import json

import pytest

from repro.engine import (
    CheckpointStore,
    EngineError,
    ShardedExplorer,
    explore,
    graphs_equivalent,
)
from repro.specs import build_example_spec
from repro.tlaplus import check
from repro.tlaplus.checker import ModelChecker
from repro.tlaplus.dot import to_dot
from repro.tlaplus.errors import CheckingBudgetExceeded
from repro.tlaplus.spec import Specification, VarKind


def _counter_spec(limit=6, bad=None):
    """A two-branch counter; ``bad`` marks one value as a violation."""
    spec = Specification("counter", constants={"Limit": limit, "Bad": bad})
    spec.add_variable("n", kind=VarKind.STATE)
    spec.add_variable("tag", kind=VarKind.AUXILIARY)

    @spec.init
    def init(const):
        return {"n": 0, "tag": "even"}

    @spec.action()
    def Incr(state, const):
        if state.n >= const["Limit"]:
            return None
        return {"n": state.n + 1, "tag": "even" if state.n % 2 else "odd"}

    @spec.action()
    def Reset(state, const):
        if state.n == 0:
            return None
        return {"n": 0, "tag": "even"}

    @spec.invariant()
    def NotBad(state, const):
        return const["Bad"] is None or state.n != const["Bad"]

    return spec


class TestParity:
    def test_matches_serial_checker(self):
        spec = build_example_spec()
        serial = ModelChecker(spec).run()
        parallel = ShardedExplorer(spec, workers=2).run()
        assert parallel.states_explored == serial.states_explored
        assert parallel.edges_explored == serial.edges_explored
        assert parallel.diameter == serial.diameter
        assert parallel.complete
        assert graphs_equivalent(serial.graph, parallel.graph)

    def test_worker_count_is_invisible(self):
        spec = build_example_spec()
        dots = {to_dot(ShardedExplorer(spec, workers=w).run().graph)
                for w in (1, 2, 3)}
        # bit-identical graphs, not merely equivalent ones
        assert len(dots) == 1

    def test_check_dispatches_on_workers(self):
        spec = build_example_spec()
        serial = check(spec)
        parallel = check(spec, workers=2)
        assert graphs_equivalent(serial.graph, parallel.graph)

    def test_explore_convenience(self):
        result = explore(build_example_spec(), workers=2)
        assert result.ok and result.complete

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError, match="workers"):
            ShardedExplorer(build_example_spec(), workers=0)


class TestViolations:
    def test_violation_found_and_traced(self):
        spec = _counter_spec(limit=6, bad=4)
        result = ShardedExplorer(spec, workers=2).run()
        assert not result.ok
        assert result.violation.invariant_name == "NotBad"
        label, final = result.violation.trace[-1]
        assert final.n == 4
        # the trace starts at Init and each step is a real transition
        first_label, first_state = result.violation.trace[0]
        assert first_label is None and first_state.n == 0

    def test_same_invariant_as_serial(self):
        spec = _counter_spec(limit=6, bad=3)
        serial = ModelChecker(spec).run()
        parallel = ShardedExplorer(spec, workers=3).run()
        assert serial.violation.invariant_name == \
            parallel.violation.invariant_name
        assert not parallel.complete

    def test_continue_after_violation(self):
        spec = _counter_spec(limit=6, bad=3)
        result = ShardedExplorer(spec, workers=2,
                                 stop_on_violation=False).run()
        assert not result.ok
        assert result.complete
        # full space: n in 0..6
        assert result.states_explored == 7


class TestBudgets:
    def test_budget_raises_without_truncate(self):
        spec = _counter_spec(limit=50)
        with pytest.raises(CheckingBudgetExceeded):
            ShardedExplorer(spec, workers=2, max_states=10).run()

    def test_budget_truncates_at_level_granularity(self):
        spec = _counter_spec(limit=50)
        result = ShardedExplorer(spec, workers=2, max_states=10,
                                 truncate=True).run()
        assert not result.complete
        # the whole crossing level is kept, so >= the budget
        assert result.states_explored >= 10
        assert result.states_explored < 51

    def test_exact_fit_is_complete(self):
        spec = _counter_spec(limit=6)   # exactly 7 states
        result = ShardedExplorer(spec, workers=2, max_states=7,
                                 truncate=True).run()
        assert result.complete
        assert result.states_explored == 7


class TestCheckpointResume:
    def test_resume_after_truncation_reaches_full_graph(self, tmp_path):
        spec = _counter_spec(limit=30)
        full = ShardedExplorer(spec, workers=2).run()
        store = CheckpointStore(tmp_path / "ck")
        partial = ShardedExplorer(spec, workers=2, max_states=8,
                                  truncate=True, checkpoint=store).run()
        assert not partial.complete
        resumed = ShardedExplorer(spec, workers=2, checkpoint=store,
                                  resume=True).run()
        assert resumed.complete
        assert graphs_equivalent(full.graph, resumed.graph)

    def test_resume_of_complete_checkpoint_short_circuits(self, tmp_path):
        spec = _counter_spec(limit=10)
        store = CheckpointStore(tmp_path / "ck")
        full = ShardedExplorer(spec, checkpoint=store).run()
        assert full.complete
        # a fresh spec whose actions blow up: resume must not explore
        poisoned = _counter_spec(limit=10)

        def boom(*args, **kwargs):
            raise AssertionError("resume re-explored a complete checkpoint")

        poisoned.enabled = boom
        resumed = ShardedExplorer(poisoned, checkpoint=store,
                                  resume=True).run()
        assert resumed.complete
        assert graphs_equivalent(full.graph, resumed.graph)

    def test_resume_requires_store(self):
        with pytest.raises(ValueError, match="resume"):
            ShardedExplorer(build_example_spec(), resume=True)

    def test_checkpoint_path_accepted_as_string(self, tmp_path):
        directory = str(tmp_path / "ck")
        result = ShardedExplorer(build_example_spec(),
                                 checkpoint=directory).run()
        assert result.complete
        assert CheckpointStore(directory).exists()

    def test_final_snapshot_is_marked_complete(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck")
        ShardedExplorer(build_example_spec(), checkpoint=store).run()
        assert store.load("example")["complete"] is True

    def test_corrupted_fingerprint_is_detected(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck")
        ShardedExplorer(build_example_spec(), checkpoint=store).run()
        payload = store.load()
        payload["states"][0][0] ^= 1   # flip one fingerprint bit
        store.save(payload)
        with pytest.raises(EngineError, match="integrity"):
            ShardedExplorer(build_example_spec(), checkpoint=store,
                            resume=True).run()

    def test_history_records_progress(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck")
        ShardedExplorer(_counter_spec(limit=12), checkpoint=store).run()
        with open(store.history_path, encoding="utf-8") as handle:
            lines = [json.loads(line) for line in handle]
        assert len(lines) >= 2
        states = [line["states"] for line in lines]
        assert states == sorted(states)
        assert lines[-1]["complete"] is True
