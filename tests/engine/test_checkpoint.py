"""Checkpoint store: atomic snapshots, validation, history."""

import json
import os

import pytest

from repro.engine import CheckpointError, CheckpointStore


def _payload(**overrides):
    base = {
        "spec": "demo",
        "level": 3,
        "complete": False,
        "states": [[1, "s"], [2, "t"]],
        "frontier": [2],
        "stats": {"elapsed_seconds": 0.5},
    }
    base.update(overrides)
    return base


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck")
        store.save(_payload())
        loaded = store.load("demo")
        assert loaded["level"] == 3
        assert loaded["states"] == [[1, "s"], [2, "t"]]
        assert loaded["format"] == "mocket-checkpoint/1"

    def test_save_replaces_previous(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck")
        store.save(_payload(level=1))
        store.save(_payload(level=2))
        assert store.load()["level"] == 2

    def test_no_temp_files_left_behind(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck")
        store.save(_payload())
        leftovers = [name for name in os.listdir(store.directory)
                     if name.endswith(".tmp")]
        assert leftovers == []

    def test_history_appends_one_line_per_save(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck")
        for level in range(4):
            store.save(_payload(level=level))
        with open(store.history_path, encoding="utf-8") as handle:
            lines = [json.loads(line) for line in handle]
        assert [line["level"] for line in lines] == [0, 1, 2, 3]
        assert lines[-1]["states"] == 2


class TestValidation:
    def test_missing_checkpoint(self, tmp_path):
        store = CheckpointStore(tmp_path / "nope")
        assert not store.exists()
        with pytest.raises(CheckpointError, match="no checkpoint found"):
            store.load()

    def test_corrupt_json(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck")
        os.makedirs(store.directory)
        with open(store.path, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        with pytest.raises(CheckpointError, match="unreadable"):
            store.load()

    def test_wrong_format(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck")
        os.makedirs(store.directory)
        with open(store.path, "w", encoding="utf-8") as handle:
            json.dump({"format": "something-else/9"}, handle)
        with pytest.raises(CheckpointError, match="not a mocket-checkpoint/1"):
            store.load()

    def test_spec_mismatch(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck")
        store.save(_payload(spec="raft"))
        with pytest.raises(CheckpointError, match="is for spec 'raft'"):
            store.load("zab")

    def test_spec_match_not_required_when_unnamed(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck")
        store.save(_payload(spec="raft"))
        assert store.load()["spec"] == "raft"
