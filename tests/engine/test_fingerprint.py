"""Stable fingerprints: equality, order-independence, cross-process."""

import os
import subprocess
import sys

import pytest

from repro.engine import (
    canonical_state,
    canonical_value,
    encode_canonical,
    fingerprint_label,
    fingerprint_state,
    fingerprint_value,
    shard_of,
)
from repro.tlaplus.state import ActionLabel, State
from repro.tlaplus.values import FrozenDict


class TestEncoding:
    def test_equal_values_encode_identically(self):
        assert encode_canonical((1, "a", None)) == encode_canonical((1, "a", None))

    def test_dict_insertion_order_does_not_leak(self):
        forward = FrozenDict({"a": 1, "b": 2, "c": 3})
        backward = FrozenDict({"c": 3, "b": 2, "a": 1})
        assert encode_canonical(forward) == encode_canonical(backward)

    def test_set_order_does_not_leak(self):
        assert encode_canonical(frozenset(("x", "y", "z"))) == \
            encode_canonical(frozenset(("z", "x", "y")))

    def test_bool_is_not_int(self):
        # bool is a subclass of int; the encoding must still distinguish
        assert encode_canonical(True) != encode_canonical(1)
        assert encode_canonical(False) != encode_canonical(0)

    def test_container_kinds_are_tagged(self):
        assert encode_canonical((1, 2)) != encode_canonical(frozenset((1, 2)))

    def test_injective_on_nesting(self):
        assert encode_canonical(((1,), 2)) != encode_canonical((1, (2,)))

    def test_unfreezable_value_raises(self):
        with pytest.raises(TypeError, match="canonically encode"):
            encode_canonical([1, 2])


class TestFingerprint:
    def test_equal_states_same_fingerprint(self):
        a = State({"n": 1, "log": ("x",)})
        b = State({"log": ("x",), "n": 1})
        assert fingerprint_state(a) == fingerprint_state(b)

    def test_distinct_states_differ(self):
        assert fingerprint_state(State({"n": 1})) != \
            fingerprint_state(State({"n": 2}))

    def test_is_unsigned_64_bit(self):
        fp = fingerprint_value(("some", "value", 42))
        assert 0 <= fp < 2 ** 64

    def test_label_fingerprint_covers_params(self):
        a = ActionLabel("Send", {"src": "n1"})
        b = ActionLabel("Send", {"src": "n2"})
        assert fingerprint_label(a) != fingerprint_label(b)

    def test_stable_across_hash_seeds(self):
        # Python's hash() is per-process randomized; fingerprints must not be
        value = fingerprint_state(State({"votes": frozenset(("n1", "n2")),
                                         "term": 3}))
        script = (
            "from repro.engine import fingerprint_state\n"
            "from repro.tlaplus.state import State\n"
            "print(fingerprint_state(State({'votes': frozenset(('n1', 'n2')),"
            " 'term': 3})))\n"
        )
        env = dict(os.environ, PYTHONHASHSEED="12345",
                   PYTHONPATH=os.pathsep.join(sys.path))
        output = subprocess.run([sys.executable, "-c", script], env=env,
                                capture_output=True, text=True, check=True)
        assert int(output.stdout.strip()) == value

    def test_shard_of_partitions_completely(self):
        for fp in (0, 1, 17, 2 ** 64 - 1):
            assert 0 <= shard_of(fp, 4) < 4
        assert shard_of(9, 3) == 0


class TestCanonicalValue:
    def test_equal_dicts_iterate_identically_after_canonicalization(self):
        forward = FrozenDict({"b": 2, "a": 1})
        backward = FrozenDict({"a": 1, "b": 2})
        assert list(canonical_value(forward)) == list(canonical_value(backward))

    def test_equal_sets_repr_identically_after_canonicalization(self):
        # set layout (and hence repr/iteration) depends on insertion
        # order through collision probing; canonical insertion removes it
        permutations = [("n1", "n3"), ("n3", "n1")]
        reprs = {repr(canonical_value(frozenset(p))) for p in permutations}
        assert len(reprs) == 1

    def test_canonical_state_preserves_equality(self):
        state = State({"m": FrozenDict({"k": frozenset((3, 1, 2))}), "n": 1})
        assert canonical_state(state) == state
        assert fingerprint_state(canonical_state(state)) == \
            fingerprint_state(state)

    def test_scalars_pass_through(self):
        assert canonical_value("x") == "x"
        assert canonical_value(7) == 7
        assert canonical_value(None) is None
