"""Parallel suite execution: same results as serial, any worker count."""

import pytest

from repro.core import ControlledTester, RunnerConfig, generate_test_cases
from repro.engine import run_suite_parallel
from repro.specs import build_example_spec
from repro.systems.toycache import (
    ToyCacheConfig,
    build_toycache_mapping,
    make_toycache_cluster,
)
from repro.tlaplus import check

_CONFIG = RunnerConfig(match_timeout=1.0, done_timeout=1.0, quiesce_delay=0.02)


def _kit(**bug_flags):
    spec = build_example_spec()
    graph = check(spec).graph
    config = ToyCacheConfig(**bug_flags)
    tester = ControlledTester(build_toycache_mapping(), graph,
                              lambda: make_toycache_cluster(config), _CONFIG)
    suite = generate_test_cases(graph, por=False)
    return tester, suite


def _shape(outcome):
    return [(r.case.case_id, r.passed) for r in outcome.results]


class TestParallelSuite:
    def test_matches_serial_on_clean_target(self):
        tester, suite = _kit()
        serial = tester.run_suite(suite)
        parallel = run_suite_parallel(tester, suite, workers=3)
        assert _shape(parallel) == _shape(serial)
        assert parallel.passed

    def test_results_merged_in_case_order(self):
        tester, suite = _kit()
        outcome = run_suite_parallel(tester, suite, workers=2)
        ids = [r.case.case_id for r in outcome.results]
        assert ids == sorted(ids)
        assert len(ids) == len(suite)

    def test_divergences_match_serial(self):
        tester, suite = _kit(bug_wrong_max=True)
        serial = tester.run_suite(suite)
        parallel = run_suite_parallel(tester, suite, workers=3)
        assert _shape(parallel) == _shape(serial)
        assert [r.divergence.kind for r in parallel.failures] == \
            [r.divergence.kind for r in serial.failures]

    def test_stop_on_divergence_truncates_like_serial(self):
        tester, suite = _kit(bug_wrong_max=True)
        serial = tester.run_suite(suite, stop_on_divergence=True)
        parallel = run_suite_parallel(tester, suite, workers=3,
                                      stop_on_divergence=True)
        assert _shape(parallel) == _shape(serial)
        assert not parallel.results[-1].passed

    def test_max_cases(self):
        tester, suite = _kit()
        outcome = run_suite_parallel(tester, suite, workers=2, max_cases=2)
        assert len(outcome.results) == 2

    def test_single_worker_uses_serial_path(self):
        tester, suite = _kit()
        outcome = run_suite_parallel(tester, suite, workers=1)
        assert len(outcome.results) == len(suite)
        assert outcome.passed

    def test_workers_must_be_positive(self):
        tester, suite = _kit()
        with pytest.raises(ValueError, match="workers"):
            run_suite_parallel(tester, suite, workers=0)

    def test_run_suite_takes_workers(self):
        # the runner-level entry point dispatches to the executor
        tester, suite = _kit()
        outcome = tester.run_suite(suite, workers=2)
        assert outcome.passed
        assert len(outcome.results) == len(suite)
