"""Canonical renumbering: discovery order must not matter."""

from repro.engine import canonical_signature, canonicalize, graphs_equivalent
from repro.specs import build_example_spec
from repro.tlaplus import check
from repro.tlaplus.dot import to_dot
from repro.tlaplus.graph import StateGraph
from repro.tlaplus.state import ActionLabel, State


def _diamond(order):
    """A 4-state diamond built with states added in ``order``."""
    states = {name: State({"v": name}) for name in "abcd"}
    graph = StateGraph("diamond")
    ids = {}
    for name in order:
        ids[name] = graph.add_state(states[name], initial=(name == "a"))
    graph.add_edge(ids["a"], ids["b"], ActionLabel("Left", {}))
    graph.add_edge(ids["a"], ids["c"], ActionLabel("Right", {}))
    graph.add_edge(ids["b"], ids["d"], ActionLabel("Join", {}))
    graph.add_edge(ids["c"], ids["d"], ActionLabel("Join", {}))
    return graph


class TestCanonicalize:
    def test_insertion_order_is_erased(self):
        one = _diamond("abcd")
        two = _diamond("dcba")
        assert to_dot(canonicalize(one)) == to_dot(canonicalize(two))

    def test_preserves_content(self):
        graph = _diamond("abcd")
        canonical = canonicalize(graph)
        assert canonical.num_states == graph.num_states
        assert canonical.num_edges == graph.num_edges
        assert {s._vars["v"] for _, s in canonical.states()} == set("abcd")
        assert len(canonical.initial_ids) == 1

    def test_idempotent(self):
        graph = canonicalize(_diamond("cbda"))
        assert to_dot(canonicalize(graph)) == to_dot(graph)

    def test_unreachable_states_kept_last(self):
        graph = _diamond("abcd")
        orphan = graph.add_state(State({"v": "zz"}))
        canonical = canonicalize(graph)
        assert canonical.num_states == 5
        # the orphan sorts after the reachable component
        assert canonical.state_of(4)._vars["v"] == "zz"
        assert orphan is not None

    def test_checker_graph_roundtrip(self):
        graph = check(build_example_spec()).graph
        assert graphs_equivalent(graph, canonicalize(graph))


class TestSignatures:
    def test_signature_ignores_discovery_order(self):
        assert canonical_signature(_diamond("abcd")) == \
            canonical_signature(_diamond("dbca"))

    def test_signature_sees_label_differences(self):
        one = _diamond("abcd")
        two = _diamond("abcd")
        two.add_edge(0, 0, ActionLabel("Loop", {}))
        assert canonical_signature(one) != canonical_signature(two)

    def test_equivalence_rejects_different_graphs(self):
        one = _diamond("abcd")
        two = _diamond("abcd")
        two.add_state(State({"v": "extra"}))
        assert not graphs_equivalent(one, two)
