"""Table 2 end-to-end: all nine bugs, with the paper's divergence kinds.

Every scenario schedule is verified against the specification (the
expected states are computed, not hand-written); the correct
implementation passes it, and the seeded bug produces exactly the
divergence kind Table 2 reports.
"""

import pytest

from repro.core import ControlledTester, DivergenceKind, RunnerConfig
from repro.systems.minizk import (
    MiniZkConfig,
    build_minizk_mapping,
    make_minizk_cluster,
)
from repro.systems.minizk.scenarios import zk_bug_1419, zk_bug_1653
from repro.systems.pyxraft import (
    XraftConfig,
    build_xraft_mapping,
    make_xraft_cluster,
)
from repro.systems.pyxraft.scenarios import xraft_bug1, xraft_bug2, xraft_bug3
from repro.systems.raftkv import (
    RaftKvConfig,
    build_raftkv_mapping,
    make_raftkv_cluster,
)
from repro.systems.raftkv.scenarios import (
    raft_spec_bug_missing_reply,
    raft_spec_bug_update_term,
    raftkv_bug1,
    raftkv_bug2,
)

_CONFIG = RunnerConfig(match_timeout=1.0, done_timeout=1.0, quiesce_delay=0.05)


def _xraft_tester(scenario, config):
    return ControlledTester(
        build_xraft_mapping(scenario.spec, config), scenario.graph,
        lambda: make_xraft_cluster(scenario.servers, config), _CONFIG,
    )


def _raftkv_tester(scenario, config):
    return ControlledTester(
        build_raftkv_mapping(scenario.spec, config), scenario.graph,
        lambda: make_raftkv_cluster(scenario.servers, config), _CONFIG,
    )


def _minizk_tester(scenario, config):
    return ControlledTester(
        build_minizk_mapping(scenario.spec, config), scenario.graph,
        lambda: make_minizk_cluster(scenario.servers, config), _CONFIG,
    )


class TestXraftBugs:
    def test_bug1_duplicate_vote_counted_twice(self):
        scenario = xraft_bug1()
        assert len(scenario.case) == 6  # Table 2: 6 actions
        assert _xraft_tester(scenario, XraftConfig()).run_case(scenario.case).passed
        result = _xraft_tester(scenario, scenario.buggy_config).run_case(scenario.case)
        assert not result.passed
        assert result.divergence.kind is DivergenceKind.INCONSISTENT_STATE
        assert "votesGranted" in result.divergence.variable_names

    def test_bug2_restart_forgets_vote(self):
        scenario = xraft_bug2()
        assert len(scenario.case) == 9  # Table 2: 9 actions
        assert _xraft_tester(scenario, XraftConfig()).run_case(scenario.case).passed
        result = _xraft_tester(scenario, scenario.buggy_config).run_case(scenario.case)
        assert not result.passed
        assert result.divergence.kind is DivergenceKind.INCONSISTENT_STATE
        assert "votedFor" in result.divergence.variable_names
        # the divergence is observed right after the Restart fault
        assert scenario.case.steps[result.divergence.step_index].label.name == "Restart"

    def test_bug3_stale_candidate_collects_votes(self):
        scenario = xraft_bug3()
        assert len(scenario.case) == 15  # deep case (paper: 19 actions)
        assert _xraft_tester(scenario, XraftConfig()).run_case(scenario.case).passed
        result = _xraft_tester(scenario, scenario.buggy_config).run_case(scenario.case)
        assert not result.passed
        assert result.divergence.kind is DivergenceKind.UNEXPECTED_ACTION
        assert result.divergence.action == "HandleRequestVoteResponse"

    def test_bug_reports_carry_the_schedule(self):
        scenario = xraft_bug1()
        result = _xraft_tester(scenario, scenario.buggy_config).run_case(scenario.case)
        report = result.bug_report()
        assert report["kind"] == "inconsistent_state"
        assert "DuplicateMessage" in report["schedule"]


class TestRaftKvBugs:
    def test_bug1_dropped_higher_term_response(self):
        scenario = raftkv_bug1()
        assert _raftkv_tester(scenario, RaftKvConfig()).run_case(scenario.case).passed
        result = _raftkv_tester(scenario, scenario.buggy_config).run_case(scenario.case)
        assert not result.passed
        assert result.divergence.kind is DivergenceKind.MISSING_ACTION
        assert result.divergence.action == "HandleRequestVoteResponse"

    def test_bug2_conflicting_entries_not_truncated(self):
        scenario = raftkv_bug2()
        assert _raftkv_tester(scenario, RaftKvConfig()).run_case(scenario.case).passed
        result = _raftkv_tester(scenario, scenario.buggy_config).run_case(scenario.case)
        assert not result.passed
        assert result.divergence.kind is DivergenceKind.INCONSISTENT_STATE
        assert "log" in result.divergence.variable_names


class TestRaftSpecBugs:
    """The fixed implementation against the official (buggy) spec."""

    def test_standalone_update_term_is_missing_action(self):
        scenario = raft_spec_bug_update_term()
        result = _raftkv_tester(scenario, scenario.buggy_config).run_case(scenario.case)
        assert not result.passed
        assert result.divergence.kind is DivergenceKind.MISSING_ACTION
        assert result.divergence.action == "UpdateTerm"

    def test_missing_reply_branch_diverges_on_messages(self):
        scenario = raft_spec_bug_missing_reply()
        result = _raftkv_tester(scenario, scenario.buggy_config).run_case(scenario.case)
        assert not result.passed
        assert result.divergence.kind is DivergenceKind.INCONSISTENT_STATE
        assert "messages" in result.divergence.variable_names
        # the divergence is at the Figure 11 branch: the candidate's
        # AppendEntries handling
        step = scenario.case.steps[result.divergence.step_index]
        assert step.label.name == "HandleAppendEntriesRequest"

    def test_fixed_spec_accepts_the_same_behaviour(self):
        """With the spec bugs fixed, the same election + step-down flow
        passes — the inconsistency really is the spec's fault."""
        from repro.core.testgen import label, scenario_case
        from repro.specs.raft import RaftSpecOptions, build_raft_spec

        spec = build_raft_spec(RaftSpecOptions(
            servers=("n1", "n2", "n3"), max_term=1, max_client_requests=0,
            enable_restart=False, enable_drop=False, enable_duplicate=False,
            candidates=("n1", "n2"), spec_bugs=False, name="raft-fixed-spec",
        ))
        schedule = [
            label("Timeout", i="n1"),
            label("Timeout", i="n2"),
            label("RequestVote", i="n2", j="n3"),
            label("HandleRequestVoteRequest",
                  m={"mtype": "RequestVoteRequest", "mterm": 1,
                     "mlastLogTerm": 0, "mlastLogIndex": 0,
                     "msource": "n2", "mdest": "n3"}),
            label("HandleRequestVoteResponse",
                  m={"mtype": "RequestVoteResponse", "mterm": 1,
                     "mvoteGranted": True, "msource": "n3", "mdest": "n2"}),
            label("BecomeLeader", i="n2"),
            label("AppendEntries", i="n2", j="n1"),
            label("HandleAppendEntriesRequest",
                  m={"mtype": "AppendEntriesRequest", "mterm": 1,
                     "mprevLogIndex": 0, "mprevLogTerm": 0, "mentries": (),
                     "mcommitIndex": 0, "msource": "n2", "mdest": "n1"}),
        ]
        graph, case = scenario_case(spec, schedule)
        config = RaftKvConfig()
        tester = ControlledTester(
            build_raftkv_mapping(spec, config), graph,
            lambda: make_raftkv_cluster(("n1", "n2", "n3"), config), _CONFIG,
        )
        assert tester.run_case(case).passed


class TestZooKeeperBugs:
    def test_zk1419_election_never_settles(self):
        scenario = zk_bug_1419()
        assert _minizk_tester(scenario, MiniZkConfig()).run_case(scenario.case).passed
        result = _minizk_tester(scenario, scenario.buggy_config).run_case(scenario.case)
        assert not result.passed
        assert result.divergence.kind is DivergenceKind.UNEXPECTED_ACTION
        assert result.divergence.action == "HandleVote"

    def test_zk1653_inconsistent_epoch_blocks_startup(self):
        scenario = zk_bug_1653()
        assert _minizk_tester(scenario, MiniZkConfig()).run_case(scenario.case).passed
        result = _minizk_tester(scenario, scenario.buggy_config).run_case(scenario.case)
        assert not result.passed
        assert result.divergence.kind is DivergenceKind.MISSING_ACTION
        assert result.divergence.action == "StartElection"

    def test_zk1653_detected_after_the_restart(self):
        scenario = zk_bug_1653()
        result = _minizk_tester(scenario, scenario.buggy_config).run_case(scenario.case)
        names = [s.label.name for s in scenario.case.steps]
        assert names.index("Restart") < result.divergence.step_index
