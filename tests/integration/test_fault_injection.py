"""Explicit fault-injection scenarios: the drop switch and the
duplicate re-injection path (Section 4.1.2's overridden actions)."""

import pytest

from repro.core import ControlledTester, RunnerConfig
from repro.core.testgen import label, scenario_case
from repro.specs.raft import FOLLOWER, NIL, RaftSpecOptions, build_raft_spec
from repro.systems.pyxraft import (
    XraftConfig,
    build_xraft_mapping,
    make_xraft_cluster,
)

_CONFIG = RunnerConfig(match_timeout=1.0, done_timeout=1.0, quiesce_delay=0.05)


def _rv_request(src, dst, term):
    return {"mtype": "RequestVoteRequest", "mterm": term, "mlastLogTerm": 0,
            "mlastLogIndex": 0, "msource": src, "mdest": dst}


def _spec(**kwargs):
    defaults = dict(servers=("n1", "n2", "n3"), max_term=1,
                    max_client_requests=0, enable_restart=True,
                    enable_drop=True, enable_duplicate=True,
                    candidates=("n1",), name="fault-scenarios")
    defaults.update(kwargs)
    return build_raft_spec(RaftSpecOptions(**defaults))


def _run(spec, schedule):
    graph, case = scenario_case(spec, schedule)
    config = XraftConfig()
    tester = ControlledTester(build_xraft_mapping(spec, config), graph,
                              lambda: make_xraft_cluster(("n1", "n2", "n3"),
                                                         config),
                              _CONFIG)
    return tester.run_case(case), case


class TestDropSwitch:
    def test_dropped_request_never_mutates_the_receiver(self):
        """The drop switch skips the handler body: after DropMessage the
        receiver's votedFor is untouched and a later resend succeeds."""
        spec = _spec()
        result, case = _run(spec, [
            label("Timeout", i="n1"),
            label("RequestVote", i="n1", j="n2"),
            label("DropMessage", m=_rv_request("n1", "n2", 1)),
            # after the loss the candidate re-solicits and wins the vote
            label("RequestVote", i="n1", j="n2"),
            label("HandleRequestVoteRequest", m=_rv_request("n1", "n2", 1)),
        ])
        assert result.passed, result.divergence
        # the drop step's verified state has the vote still unset
        drop_state = case.steps[2].expected_state
        assert drop_state.votedFor["n2"] == NIL
        assert case.final_state.votedFor["n2"] == "n1"

    def test_dropped_message_leaves_the_bag(self):
        spec = _spec()
        result, case = _run(spec, [
            label("Timeout", i="n1"),
            label("RequestVote", i="n1", j="n2"),
            label("DropMessage", m=_rv_request("n1", "n2", 1)),
        ])
        assert result.passed, result.divergence
        assert case.final_state.messages == {}


class TestDuplicateReinjection:
    def test_duplicate_is_handled_twice_idempotently(self):
        """A duplicated request flows through the normal receive path
        twice; the fixed implementation stays consistent with the spec's
        idempotent handling."""
        spec = _spec()
        request = _rv_request("n1", "n2", 1)
        result, case = _run(spec, [
            label("Timeout", i="n1"),
            label("RequestVote", i="n1", j="n2"),
            label("DuplicateMessage", m=request),
            label("HandleRequestVoteRequest", m=request),
            label("HandleRequestVoteRequest", m=request),
        ])
        assert result.passed, result.divergence
        # both copies consumed; both granted replies in flight
        final = case.final_state
        response = {"mtype": "RequestVoteResponse", "mterm": 1,
                    "mvoteGranted": True, "msource": "n2", "mdest": "n1"}
        from repro.tlaplus import bag_count

        assert bag_count(final.messages, request) == 0
        assert bag_count(final.messages, response) == 2


class TestCrashRestartScripts:
    def test_restart_step_checks_recovered_state(self):
        spec = _spec()
        result, case = _run(spec, [
            label("Timeout", i="n1"),
            label("Restart", i="n1"),
        ])
        assert result.passed, result.divergence
        final = case.final_state
        assert final.state["n1"] == FOLLOWER
        assert final.currentTerm["n1"] == 1   # persisted through the restart
        assert final.votedFor["n1"] == "n1"
