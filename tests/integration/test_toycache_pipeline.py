"""End-to-end Mocket pipeline on the Figure 1 toy system.

Model-check the spec, generate test cases, run controlled testing:
the correct implementation passes every case; each seeded bug is
detected with its characteristic divergence kind.
"""

import pytest

from repro.core import (
    ControlledTester,
    DivergenceKind,
    RunnerConfig,
    generate_test_cases,
)
from repro.specs import build_example_spec
from repro.systems.toycache import (
    ToyCacheConfig,
    build_toycache_mapping,
    make_toycache_cluster,
)
from repro.tlaplus import check


@pytest.fixture(scope="module")
def graph():
    return check(build_example_spec(data=(1, 2))).graph


@pytest.fixture(scope="module")
def suite(graph):
    return generate_test_cases(graph, por=False)


def _tester(graph, config: ToyCacheConfig) -> ControlledTester:
    return ControlledTester(
        build_toycache_mapping(),
        graph,
        lambda: make_toycache_cluster(config),
        RunnerConfig(match_timeout=1.0, done_timeout=1.0, quiesce_delay=0.02),
    )


class TestCorrectImplementation:
    def test_every_case_passes(self, graph, suite):
        tester = _tester(graph, ToyCacheConfig())
        result = tester.run_suite(suite)
        assert result.passed, [r.divergence for r in result.failures]
        assert len(result.results) == len(suite)

    def test_with_por_also_passes(self, graph):
        suite = generate_test_cases(graph, por=True)
        tester = _tester(graph, ToyCacheConfig())
        assert tester.run_suite(suite).passed


class TestSeededBugs:
    def test_wrong_max_is_inconsistent_state(self, graph, suite):
        tester = _tester(graph, ToyCacheConfig(bug_wrong_max=True))
        result = tester.run_suite(suite, stop_on_divergence=True)
        divergence = result.first_divergence()
        assert divergence is not None
        assert divergence.kind is DivergenceKind.INCONSISTENT_STATE
        assert "msg" in divergence.variable_names

    def test_forget_respond_is_missing_action(self, graph, suite):
        tester = _tester(graph, ToyCacheConfig(bug_forget_respond=True))
        result = tester.run_suite(suite, stop_on_divergence=True)
        divergence = result.first_divergence()
        assert divergence is not None
        assert divergence.kind is DivergenceKind.MISSING_ACTION
        assert divergence.action == "Respond"

    def test_double_respond_is_unexpected_action(self, graph, suite):
        tester = _tester(graph, ToyCacheConfig(bug_double_respond=True))
        result = tester.run_suite(suite, stop_on_divergence=True)
        divergence = result.first_divergence()
        assert divergence is not None
        assert divergence.kind is DivergenceKind.UNEXPECTED_ACTION
        assert divergence.action == "Respond"

    def test_bug_report_payload(self, graph, suite):
        tester = _tester(graph, ToyCacheConfig(bug_wrong_max=True))
        result = tester.run_suite(suite, stop_on_divergence=True)
        failing = result.failures[0]
        report = failing.bug_report()
        assert report["kind"] == "inconsistent_state"
        assert "schedule" in report and report["actions_in_case"] >= 1


class TestStandaloneMode:
    def test_system_runs_without_mocket(self):
        """Instrumentation must be a no-op outside controlled testing."""
        from repro.specs.example import MAX, NOT_MAX

        with make_toycache_cluster(ToyCacheConfig()) as cluster:
            server = cluster.node("server")
            server.request(2)
            _wait_until(lambda: server.msg == MAX)
            server.request(1)
            _wait_until(lambda: server.msg == NOT_MAX)
            assert server.cache == frozenset({1, 2})


def _wait_until(predicate, timeout=2.0, poll=0.005):
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(poll)
    raise AssertionError("condition not reached in time")
