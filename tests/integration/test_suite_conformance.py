"""Suite-based conformance: generated test suites against correct systems.

These are the paper's steady-state runs: model-check a model, generate
the EC+POR suite, drive the (correct) implementation through it — no
divergence may be reported.  They also demonstrate suite-based *bug
finding* (the paper's mode of discovery) for a shallow bug.
"""

import pytest

from repro.core import (
    ControlledTester,
    DivergenceKind,
    RunnerConfig,
    generate_test_cases,
)
from repro.specs.raft import RaftSpecOptions, build_raft_spec
from repro.specs.zab import ZabSpecOptions, build_zab_spec
from repro.systems.minizk import (
    MiniZkConfig,
    build_minizk_mapping,
    make_minizk_cluster,
)
from repro.systems.pyxraft import (
    XraftConfig,
    build_xraft_mapping,
    make_xraft_cluster,
)
from repro.systems.raftkv import (
    RaftKvConfig,
    build_raftkv_mapping,
    make_raftkv_cluster,
)
from repro.tlaplus import check

_CONFIG = RunnerConfig(match_timeout=1.0, done_timeout=1.0, quiesce_delay=0.02)


@pytest.fixture(scope="module")
def election_model():
    """A complete single-candidate election model (104 states)."""
    spec = build_raft_spec(RaftSpecOptions(
        servers=("n1", "n2", "n3"), max_term=1, max_client_requests=0,
        enable_restart=False, enable_drop=False, enable_duplicate=False,
        candidates=("n1",), name="election",
    ))
    graph = check(spec).graph
    return spec, graph


@pytest.fixture(scope="module")
def fault_model():
    """The election model plus restart/drop/duplicate faults."""
    spec = build_raft_spec(RaftSpecOptions(
        servers=("n1", "n2", "n3"), max_term=1, max_client_requests=0,
        enable_restart=True, enable_drop=True, enable_duplicate=True,
        max_restarts=1, max_drops=1, max_duplicates=1,
        candidates=("n1",), name="election-faults",
    ))
    graph = check(spec).graph
    return spec, graph


class TestXraftConformance:
    def test_full_election_suite_passes(self, election_model):
        spec, graph = election_model
        suite = generate_test_cases(graph, por=True)
        config = XraftConfig()
        tester = ControlledTester(build_xraft_mapping(spec, config), graph,
                                  lambda: make_xraft_cluster(("n1", "n2", "n3"), config),
                                  _CONFIG)
        result = tester.run_suite(suite)
        assert result.passed, [r.divergence for r in result.failures][:3]
        assert len(result.results) == len(suite)

    def test_fault_suite_sample_passes(self, fault_model):
        spec, graph = fault_model
        suite = generate_test_cases(graph, por=True)
        config = XraftConfig()
        tester = ControlledTester(build_xraft_mapping(spec, config), graph,
                                  lambda: make_xraft_cluster(("n1", "n2", "n3"), config),
                                  _CONFIG)
        result = tester.run_suite(suite, max_cases=40)
        assert result.passed, [r.divergence for r in result.failures][:3]

    def test_suite_finds_duplicate_vote_bug(self, fault_model):
        """The paper's discovery mode: run generated cases until one
        diverges.  The duplicate-vote bug (Xraft #1) falls out of the
        fault suite without any scenario guidance."""
        spec, graph = fault_model
        suite = generate_test_cases(graph, por=True)
        config = XraftConfig(bug_duplicate_vote_count=True)
        tester = ControlledTester(build_xraft_mapping(spec, config), graph,
                                  lambda: make_xraft_cluster(("n1", "n2", "n3"), config),
                                  _CONFIG)
        result = tester.run_suite(suite, stop_on_divergence=True, max_cases=400)
        divergence = result.first_divergence()
        assert divergence is not None
        assert divergence.kind is DivergenceKind.INCONSISTENT_STATE
        assert "votesGranted" in divergence.variable_names

    def test_suite_finds_votedfor_persistence_bug(self, fault_model):
        spec, graph = fault_model
        suite = generate_test_cases(graph, por=True)
        config = XraftConfig(bug_votedfor_not_persisted=True)
        tester = ControlledTester(build_xraft_mapping(spec, config), graph,
                                  lambda: make_xraft_cluster(("n1", "n2", "n3"), config),
                                  _CONFIG)
        result = tester.run_suite(suite, stop_on_divergence=True, max_cases=400)
        divergence = result.first_divergence()
        assert divergence is not None
        assert divergence.kind is DivergenceKind.INCONSISTENT_STATE
        assert "votedFor" in divergence.variable_names


class TestRaftKvConformance:
    def test_full_election_suite_passes(self, election_model):
        spec_src, graph_src = election_model
        spec = build_raft_spec(RaftSpecOptions(
            servers=("n1", "n2", "n3"), max_term=1, max_client_requests=0,
            enable_restart=False, enable_drop=False, enable_duplicate=False,
            candidates=("n1",), name="election",
        ))
        graph = check(spec).graph
        suite = generate_test_cases(graph, por=True)
        config = RaftKvConfig()
        tester = ControlledTester(build_raftkv_mapping(spec, config), graph,
                                  lambda: make_raftkv_cluster(("n1", "n2", "n3"), config),
                                  _CONFIG)
        result = tester.run_suite(suite)
        assert result.passed, [r.divergence for r in result.failures][:3]


class TestMiniZkConformance:
    def test_election_suite_sample_passes(self):
        spec = build_zab_spec(ZabSpecOptions(
            servers=("n1", "n2", "n3"), max_elections=1,
            max_crashes=0, max_restarts=0, starters=("n3",), name="zab-elect",
        ))
        graph = check(spec, max_states=30000).graph
        suite = generate_test_cases(graph, por=True)
        assert len(suite) >= 1
        config = MiniZkConfig()
        tester = ControlledTester(build_minizk_mapping(spec, config), graph,
                                  lambda: make_minizk_cluster(("n1", "n2", "n3"), config),
                                  _CONFIG)
        result = tester.run_suite(suite, max_cases=40)
        assert result.passed, [r.divergence for r in result.failures][:3]
