"""Smoke tests: every example script runs to completion.

Examples are part of the public deliverable; a refactor that breaks one
should fail the suite, not the reader.
"""

import pathlib
import subprocess
import sys

import pytest

_EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def _run(name: str, timeout: float = 240.0) -> str:
    result = subprocess.run(
        [sys.executable, str(_EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = _run("quickstart.py")
        assert "13 states" in out
        assert "Inconsistent state for variable msg" in out
        assert "Missing action Respond" in out
        assert "Unexpected action Respond" in out

    def test_raftkv_store(self):
        out = _run("raftkv_store.py")
        assert "n1 is leader" in out
        assert "durable log intact after restart" in out

    def test_spec_bug_demo(self):
        out = _run("spec_bug_demo.py")
        assert "Missing action UpdateTerm" in out
        assert "Inconsistent state for variable messages" in out

    def test_zookeeper_election(self):
        out = _run("zookeeper_election.py", timeout=360.0)
        assert "cases conform" in out
        assert "Unexpected action HandleVote" in out
        assert "Missing action StartElection" in out

    def test_raft_bug_hunt(self):
        out = _run("raft_bug_hunt.py", timeout=360.0)
        assert "Inconsistent state for variable votesGranted" in out
        assert "Unexpected action HandleRequestVoteResponse" in out
        assert "bug found after" in out
