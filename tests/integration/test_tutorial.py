"""docs/TUTORIAL.md is executable documentation: every fenced ``bash``
block is run here, in order, in one scratch directory, and the printed
output must match the expected output under the wildcard rules the
tutorial states (``...`` inside a line matches anything on that line; a
line that is only ``...`` matches any run of lines).
"""

import re
import shlex
from pathlib import Path

import pytest

from repro.cli import main
from repro.engine import fork_available

TUTORIAL = Path(__file__).resolve().parents[2] / "docs" / "TUTORIAL.md"


def parse_blocks(text):
    """Yield (command_argv, expected_lines) pairs from ``bash`` fences."""
    steps = []
    for block in re.findall(r"```bash\n(.*?)```", text, re.DOTALL):
        for line in block.splitlines():
            if line.startswith("$ "):
                argv = shlex.split(line[2:])
                assert argv[0] == "mocket", f"non-mocket command: {line}"
                steps.append((argv[1:], []))
            elif line.strip():
                assert steps, f"output before any command: {line!r}"
                steps[-1][1].append(line)
    return steps


def match_lines(expected, actual):
    """Match with per-line ``...`` wildcards and ``...`` skip-lines."""

    def line_pattern(raw):
        return re.compile(re.escape(raw).replace(r"\.\.\.", ".*") + r"\Z")

    memo = {}

    def go(i, j):
        key = (i, j)
        if key not in memo:
            if i == len(expected):
                memo[key] = j == len(actual)
            elif expected[i].strip() == "...":
                memo[key] = any(go(i + 1, k)
                                for k in range(j, len(actual) + 1))
            else:
                memo[key] = bool(
                    j < len(actual)
                    and line_pattern(expected[i]).match(actual[j])
                    and go(i + 1, j + 1))
        return memo[key]

    return go(0, 0)


@pytest.mark.skipif(not fork_available(),
                    reason="the tutorial uses --workers 2")
def test_tutorial_blocks_run_verbatim(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    steps = parse_blocks(TUTORIAL.read_text())
    assert len(steps) >= 5, "tutorial lost its command blocks"
    for argv, expected in steps:
        code = main(argv)
        out = capsys.readouterr().out
        assert code == 0, f"mocket {' '.join(argv)} exited {code}:\n{out}"
        actual = out.splitlines()
        while actual and not actual[-1].strip():
            actual.pop()
        assert match_lines(expected, actual), (
            "output mismatch for: mocket %s\n--- expected ---\n%s\n"
            "--- actual ---\n%s" % (" ".join(argv), "\n".join(expected),
                                    "\n".join(actual)))


def test_tutorial_mentions_every_pipeline_stage():
    text = TUTORIAL.read_text()
    for verb in ("mocket check", "mocket testgen", "mocket test",
                 "mocket lint", "mocket analyze", "mocket trace summarize",
                 "--faults", "--fault-seed", "--workers"):
        assert verb in text, f"tutorial no longer covers {verb}"
