"""Suite-based discovery of the official-spec bugs (the paper's mode).

Instead of replaying investigator-written schedules, generate the
EC+POR suite from the *official* (``spec_bugs=True``) Raft model and run
it against the fixed raftkv until cases diverge — both specification
bugs surface on their own, as they did for the paper's authors.
"""

import pytest

from repro.core import (
    ControlledTester,
    DivergenceKind,
    RunnerConfig,
    generate_test_cases,
)
from repro.specs.raft import RaftSpecOptions, build_raft_spec
from repro.systems.raftkv import (
    RaftKvConfig,
    build_raftkv_mapping,
    make_raftkv_cluster,
)
from repro.tlaplus import check

_CONFIG = RunnerConfig(match_timeout=0.6, done_timeout=0.6, quiesce_delay=0.02)


@pytest.fixture(scope="module")
def official_model():
    spec = build_raft_spec(RaftSpecOptions(
        servers=("n1", "n2", "n3"), max_term=1, max_client_requests=0,
        enable_restart=False, enable_drop=False, enable_duplicate=False,
        candidates=("n1",), spec_bugs=True, name="raft-official",
    ))
    return spec, check(spec, max_states=60000).graph


def _tester(spec, graph, config):
    return ControlledTester(
        build_raftkv_mapping(spec, config), graph,
        lambda: make_raftkv_cluster(("n1", "n2", "n3"), config), _CONFIG,
    )


class TestOfficialSpecSuiteDiscovery:
    def test_divergences_surface_from_plain_suite_runs(self, official_model):
        """Running generated cases against the fixed implementation
        reports inconsistencies — all of them traced to the two spec
        bugs, never to the implementation."""
        spec, graph = official_model
        suite = generate_test_cases(graph, por=True)
        tester = _tester(spec, graph, RaftKvConfig())
        outcome = tester.run_suite(suite, max_cases=40)
        kinds = {d.divergence.kind for d in outcome.failures}
        subjects = set()
        for failing in outcome.failures:
            divergence = failing.divergence
            if divergence.kind is DivergenceKind.MISSING_ACTION:
                subjects.add(divergence.action)
            else:
                subjects.update(divergence.variable_names)
        assert outcome.failures, "the spec bugs must surface"
        # the missing-UpdateTerm signature appears (Figure 10)
        assert "UpdateTerm" in subjects

    def test_snippet_mapping_cannot_absorb_figure10(self, official_model):
        """Even mapping UpdateTerm to the handlers' term-update snippet
        cannot make the official spec testable: the implementation
        evaluates the term condition at message arrival, the spec at
        schedule time, so suites still diverge (missing handlers whose
        thread is parked at an unscheduled UpdateTerm, stale UpdateTerm
        offers).  The divergences change shape but never disappear —
        the hallmark of a specification bug."""
        spec, graph = official_model
        suite = generate_test_cases(graph, por=True)
        config = RaftKvConfig(instrument_update_term=True)
        tester = _tester(spec, graph, config)
        outcome = tester.run_suite(suite, max_cases=60)
        assert outcome.failures
        # ...while plenty of cases (those whose schedules happen to agree
        # with the paired update+handle structure) still pass
        assert any(r.passed for r in outcome.results)

    def test_fixed_model_fixed_impl_conform(self):
        """Control: the same implementation against the fixed model."""
        spec = build_raft_spec(RaftSpecOptions(
            servers=("n1", "n2", "n3"), max_term=1, max_client_requests=0,
            enable_restart=False, enable_drop=False, enable_duplicate=False,
            candidates=("n1",), spec_bugs=False, name="raft-fixed",
        ))
        graph = check(spec).graph
        suite = generate_test_cases(graph, por=True)
        tester = _tester(spec, graph, RaftKvConfig())
        outcome = tester.run_suite(suite, max_cases=40)
        assert outcome.passed, [r.divergence for r in outcome.failures][:3]
