"""The `mocket fuzz` verb: exit codes, the JSON envelope, corpus
directories on disk, and trace/summarize integration."""

import json

import pytest

from repro.cli import main
from repro.obs.reader import TraceReader


def run_fuzz(extra, capsys):
    code = main(["fuzz", "toycache", "--budget", "2", "--cases", "2",
                 "--fuzz-seed", "5"] + extra)
    return code, capsys.readouterr()


class TestExitCodes:
    def test_clean_campaign_exits_zero(self, capsys):
        code, captured = run_fuzz([], capsys)
        assert code == 0
        assert "fuzzing toycache (guided): budget 2" in captured.out
        assert "coverage:" in captured.out
        assert "corpus (in-memory):" in captured.out

    def test_bug_found_exits_one(self, capsys):
        code, captured = run_fuzz(["--bug", "bug_wrong_max"], capsys)
        assert code == 1
        assert "bug dv-" in captured.out

    def test_budget_below_one_exits_two(self, capsys):
        assert main(["fuzz", "toycache", "--budget", "0",
                     "--cases", "2"]) == 2
        assert "budget" in capsys.readouterr().err

    def test_missing_seed_plan_exits_two(self, capsys, tmp_path):
        missing = str(tmp_path / "nope.json")
        assert main(["fuzz", "toycache", "--budget", "1", "--cases", "2",
                     "--seed-plan", missing]) == 2
        assert "no such seed plan" in capsys.readouterr().err


class TestCorpusDirectory:
    def test_corpus_lands_on_disk_and_resumes(self, capsys, tmp_path):
        corpus = str(tmp_path / "corpus")
        code, captured = run_fuzz(["--corpus", corpus], capsys)
        assert code == 0
        assert f"corpus at {corpus}:" in captured.out
        index = json.loads((tmp_path / "corpus" / "corpus.json")
                           .read_text())
        assert index["format"] == "mocket-fuzz-corpus/1"
        assert index["runs"] == 2
        # resuming continues the same stream with the same settings
        code, captured = run_fuzz(["--corpus", corpus], capsys)
        assert code == 0
        assert "run   2" in captured.out

    def test_meta_mismatch_exits_two(self, capsys, tmp_path):
        corpus = str(tmp_path / "corpus")
        assert run_fuzz(["--corpus", corpus], capsys)[0] == 0
        assert main(["fuzz", "toycache", "--budget", "1", "--cases", "2",
                     "--fuzz-seed", "9", "--corpus", corpus]) == 2
        assert "fuzz_seed" in capsys.readouterr().err


class TestJsonEnvelope:
    def test_json_format_is_a_stable_v1_envelope(self, capsys):
        code, captured = run_fuzz(["--format", "json"], capsys)
        assert code == 0
        payload = json.loads(captured.out)
        assert payload["version"] == 1
        assert payload["target"] == "toycache"
        assert payload["guided"] is True
        assert payload["runs"] == payload["budget"] == 2
        assert len(payload["trajectory"]) == 2
        coverage = payload["coverage"]
        assert 0 < coverage["states"] <= coverage["graph_states"]
        assert 0 < coverage["edges"] <= coverage["graph_edges"]
        assert payload["bugs"] == {}

    def test_unguided_arm_is_marked(self, capsys):
        code, captured = run_fuzz(["--unguided", "--format", "json"],
                                  capsys)
        assert code == 0
        payload = json.loads(captured.out)
        assert payload["guided"] is False
        assert payload["entries"] == 0


class TestObservability:
    def test_trace_summarize_reports_fuzz_and_coverage(self, capsys,
                                                       tmp_path):
        trace = str(tmp_path / "trace.jsonl")
        code, _captured = run_fuzz(["--trace", trace], capsys)
        assert code == 0
        digest = TraceReader.from_file(trace).summarize()
        assert "fuzz: 2 runs (guided)" in digest
        assert "coverage:" in digest and "edges visited" in digest

    def test_trace_summarize_json_carries_coverage_and_fuzz(
            self, capsys, tmp_path):
        trace = str(tmp_path / "trace.jsonl")
        code, _captured = run_fuzz(["--trace", trace], capsys)
        assert code == 0
        assert main(["trace", "summarize", trace,
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        coverage = payload["coverage"]
        assert 0 < coverage["states"] <= coverage["graph_states"]
        assert 0 < coverage["edges"] <= coverage["graph_edges"]
        fuzz = payload["fuzz"]
        assert fuzz["runs"] == 2
        assert fuzz["guided"] is True
        assert fuzz["target"] == "toycache"
