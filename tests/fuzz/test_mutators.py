"""Schedule mutators: every emitted mutation is legal, the
strengthen/weaken pair round-trips, and the stream is deterministic."""

import random

import pytest

from repro.core import generate_test_cases
from repro.engine import canonicalize
from repro.faults import FaultInjection, InjectionMode, plan_faults
from repro.faults.legality import plan_violations
from repro.faults.shrink import _weaker_variants
from repro.fuzz import GraphIndex, MUTATORS, Mutator, stronger_variants
from repro.specs.raft import RaftSpecOptions, build_raft_spec
from repro.systems.pyxraft import XraftConfig, build_xraft_mapping
from repro.tlaplus import check

NODE_IDS = ["n1", "n2", "n3"]


@pytest.fixture(scope="module")
def kit():
    """A raft kit whose graph has verified fault edges to splice."""
    spec = build_raft_spec(RaftSpecOptions(
        servers=tuple(NODE_IDS), max_term=1, max_client_requests=0,
        enable_restart=True, max_restarts=1,
        enable_drop=True, max_drops=1,
        enable_duplicate=True, max_duplicates=1,
        candidates=("n1",), name="mutator-guard",
    ))
    mapping = build_xraft_mapping(spec, XraftConfig())
    graph = canonicalize(check(spec, max_states=50_000,
                               truncate=True).graph)
    suite = generate_test_cases(graph, por=True, seed=0, max_cases=6)
    return mapping, graph, suite


def make_mutator(kit, **kwargs):
    mapping, graph, suite = kit
    index = GraphIndex(graph)
    return Mutator(graph, index, suite, mapping, NODE_IDS, **kwargs), suite


class TestMutationLegality:
    def test_long_mutation_chains_stay_legal(self, kit):
        mapping, graph, suite = kit
        mutator, suite = make_mutator(kit, chaos=True, max_faults=2)
        plan = plan_faults(graph, suite, mapping, "1", NODE_IDS,
                           chaos=True, max_faults_per_case=2)
        rng = random.Random("chain")
        ops_seen = set()
        for _ in range(40):
            op, candidate = mutator.mutate(plan, rng, set(), set())
            if candidate is None:
                continue
            ops_seen.add(op)
            assert plan_violations(candidate, suite, graph=graph,
                                   node_ids=NODE_IDS,
                                   max_faults_per_case=2) == [], op
            plan = candidate
        assert len(ops_seen) >= 3, f"mutation chain too monotone: {ops_seen}"

    def test_k1_budget_survives_mutation(self, kit):
        mapping, graph, suite = kit
        mutator, suite = make_mutator(kit, chaos=False, max_faults=1)
        plan = plan_faults(graph, suite, mapping, "2", NODE_IDS)
        rng = random.Random("k1")
        for _ in range(25):
            _op, candidate = mutator.mutate(plan, rng, set(), set())
            if candidate is None:
                continue
            assert plan_violations(candidate, suite, graph=graph,
                                   node_ids=NODE_IDS,
                                   max_faults_per_case=1) == []
            plan = candidate

    def test_mutation_stream_is_deterministic(self, kit):
        mapping, graph, suite = kit
        plan = plan_faults(graph, suite, mapping, "1", NODE_IDS)

        def stream():
            mutator, _ = make_mutator(kit)
            rng = random.Random("det")
            out = []
            current = plan
            for _ in range(10):
                op, candidate = mutator.mutate(current, rng, set(), set())
                out.append((op, candidate.to_json()
                            if candidate is not None else None))
                if candidate is not None:
                    current = candidate
            return out

        assert stream() == stream()

    def test_splice_modeled_targets_real_fault_edges(self, kit):
        mapping, graph, suite = kit
        mutator, suite = make_mutator(kit)
        plan = plan_faults(graph, suite, mapping, "1",
                           NODE_IDS).subset([])
        rng = random.Random("splice")
        spliced = None
        for _ in range(30):
            candidate = mutator._splice_modeled(plan, rng, set(), set())
            if candidate is not None:
                spliced = candidate
                break
        assert spliced is not None
        injection = spliced.injections[-1]
        assert injection.mode is InjectionMode.MODELED
        assert injection.edge.label.name in mutator.fault_names
        assert plan_violations(spliced, suite, graph=graph,
                               node_ids=NODE_IDS) == []

    def test_extend_tail_prefers_uncovered_edges(self, kit):
        mapping, graph, suite = kit
        mutator, suite = make_mutator(kit)
        index = mutator.index
        plan = plan_faults(graph, suite, mapping, "1", NODE_IDS)
        modeled = next(i for i in plan.injections
                       if i.mode is InjectionMode.MODELED)
        end = modeled.tail[-1].dst if modeled.tail else modeled.edge.dst
        pool = [e for e in graph.out_edges(end)
                if e.label.name not in mutator.fault_names]
        if len(pool) < 2:
            pytest.skip("needs a branching tail end under this seed")
        uncovered_target = pool[-1]
        covered = {index.edge_fp(e) for e in pool
                   if e is not uncovered_target}
        base = plan.subset([modeled])
        grown = mutator._extend_tail(base, random.Random("tail"), covered)
        assert grown is not None
        new_edge = grown.injections[0].tail[-1]
        assert (new_edge.src, new_edge.dst) == (uncovered_target.src,
                                                uncovered_target.dst)


class TestStrengthenWeakenRoundTrip:
    def injection(self, **params):
        return FaultInjection(InjectionMode.CHAOS, "delay", 0, 1,
                              params=params)

    def test_count_round_trips(self):
        base = self.injection(src="n1", dst="n2", count=2)
        stronger = [v for v in stronger_variants(base, NODE_IDS)
                    if v.params.get("count") == 3]
        assert stronger
        back = [v for v in _weaker_variants(stronger[0])
                if v.params.get("count") == 2]
        assert back and back[0].params == base.params

    def test_heal_after_round_trips(self):
        base = FaultInjection(InjectionMode.CHAOS, "link_cut", 0, 1,
                              params={"src": "n1", "dst": "n2",
                                      "heal_after": 1})
        stronger = [v for v in stronger_variants(base, NODE_IDS)
                    if v.params.get("heal_after") == 2]
        assert stronger
        back = [v for v in _weaker_variants(stronger[0])
                if v.params.get("heal_after") == 1]
        assert back and back[0].params == base.params

    def test_group_growth_leaves_one_node_outside(self):
        base = FaultInjection(InjectionMode.CHAOS, "partial_partition",
                              0, 1, params={"group": ["n1"]})
        grown = stronger_variants(base, NODE_IDS)
        assert grown
        for variant in grown:
            assert len(variant.params["group"]) < len(NODE_IDS)
        # a full-cluster group must never be produced
        full = FaultInjection(InjectionMode.CHAOS, "partial_partition",
                              0, 1, params={"group": ["n1", "n2"]})
        assert stronger_variants(full, NODE_IDS) == []

    def test_strengthening_is_bounded(self):
        base = self.injection(src="n1", dst="n2", count=4)
        assert not any(v.params.get("count", 0) > 4
                       for v in stronger_variants(base, NODE_IDS))


class TestWeights:
    def test_coverage_seeking_ops_carry_heavier_dice(self):
        weights = dict(MUTATORS)
        assert weights["splice_modeled"] > weights["drop"]
        assert weights["extend_tail"] > weights["weaken"]
