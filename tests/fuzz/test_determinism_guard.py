"""Determinism guard: a `mocket fuzz` corpus must be byte-identical
for any ``--workers`` count and any ``PYTHONHASHSEED``.

Corpora are exchangeable artifacts (CI caches them, campaigns resume
them), so the acceptance bar is the same as for fault plans and
canonical graphs: the corpus index, every kept plan file, and the JSON
report must not move when the interpreter's hash seed or the runner's
parallelism does.
"""

import json
import os
import subprocess
import sys

import pytest

SRC = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", "src"))


def run_fuzz(corpus_dir, hashseed, workers):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hashseed)
    env["PYTHONPATH"] = SRC
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "fuzz", "toycache",
         "--budget", "3", "--cases", "2", "--fuzz-seed", "5",
         "--corpus", str(corpus_dir), "--workers", str(workers),
         "--format", "json"],
        capture_output=True, text=True, env=env, timeout=300)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def corpus_bytes(corpus_dir):
    """{relative path: bytes} for every file in the corpus."""
    snapshot = {}
    for root, _dirs, files in os.walk(corpus_dir):
        for name in sorted(files):
            path = os.path.join(root, name)
            rel = os.path.relpath(path, corpus_dir)
            snapshot[rel] = open(path, "rb").read()
    return snapshot


@pytest.mark.slow
class TestFuzzDeterminism:
    def test_corpus_bytes_identical_across_seeds_and_workers(
            self, tmp_path):
        corpora = {}
        reports = {}
        for hashseed in (0, 42):
            for workers in (1, 4):
                corpus_dir = tmp_path / f"corpus-{hashseed}-{workers}"
                reports[(hashseed, workers)] = run_fuzz(
                    corpus_dir, hashseed, workers)
                corpora[(hashseed, workers)] = corpus_bytes(corpus_dir)
        baseline = corpora[(0, 1)]
        assert baseline, "campaign must persist a corpus"
        assert "corpus.json" in baseline
        for key, snapshot in corpora.items():
            assert snapshot == baseline, (
                f"corpus bytes differ at PYTHONHASHSEED={key[0]} "
                f"--workers={key[1]}")
        assert len(set(reports.values())) == 1, (
            "fuzz JSON report differs across PYTHONHASHSEED/--workers")

    def test_resume_equals_one_shot(self, tmp_path):
        """Budget 3 in one campaign == budget 1 then budget 2."""
        one_shot = tmp_path / "one-shot"
        run_fuzz(one_shot, 0, 1)

        split = tmp_path / "split"
        env = dict(os.environ, PYTHONHASHSEED="0", PYTHONPATH=SRC)
        for budget in ("1", "2"):
            proc = subprocess.run(
                [sys.executable, "-m", "repro.cli", "fuzz", "toycache",
                 "--budget", budget, "--cases", "2", "--fuzz-seed", "5",
                 "--corpus", str(split)],
                capture_output=True, text=True, env=env, timeout=300)
            assert proc.returncode == 0, proc.stderr
        assert corpus_bytes(split) == corpus_bytes(one_shot)
        index = json.loads((split / "corpus.json").read_text())
        assert index["runs"] == 3
