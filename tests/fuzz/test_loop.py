"""The budgeted fuzz campaign loop against a live toy cluster:
trajectory accounting, novelty-gated corpus growth, the unguided
control arm, seed-plan import, and stable bug identities."""

import pytest

from repro.faults import FaultInjection, plan_faults
from repro.fuzz import FuzzError, GraphIndex, fuzz_campaign

from .conftest import FAST


def campaign(toykit, **kwargs):
    mapping, cluster_factory, graph, suite = toykit
    defaults = dict(budget=4, fuzz_seed="5",
                    runner_config=FAST, target="toycache")
    defaults.update(kwargs)
    return fuzz_campaign(graph, suite, mapping, cluster_factory,
                         cluster_factory().node_ids, **defaults)


class TestGuidedCampaign:
    @pytest.fixture(scope="class")
    def result(self, toykit):
        return campaign(toykit)

    def test_trajectory_covers_the_whole_budget(self, result):
        assert len(result.trajectory) == result.budget == 4
        assert [r["run"] for r in result.trajectory] == [0, 1, 2, 3]
        assert result.corpus.runs == 4

    def test_coverage_stays_inside_the_graph(self, toykit, result):
        _mapping, _factory, graph, _suite = toykit
        index = GraphIndex(graph)
        assert set(result.corpus.state_hits) <= index.all_states
        assert set(result.corpus.edge_hits) <= index.all_edges
        assert 0 < result.distinct_states <= result.graph_states
        assert 0 < result.distinct_edges <= result.graph_edges

    def test_entries_are_kept_only_on_novelty(self, result):
        kept = {r["kept"] for r in result.trajectory if r["kept"] is not None}
        assert len(result.corpus.entries) == len(kept)
        for record in result.trajectory:
            if record["kept"] is not None:
                assert record["new_states"] or record["new_edges"]

    def test_first_runs_come_from_the_seeded_planner(self, result):
        assert result.trajectory[0]["op"] == "seed"
        assert result.trajectory[0]["parent"] is None

    def test_running_totals_are_monotone(self, result):
        states = [r["states"] for r in result.trajectory]
        edges = [r["edges"] for r in result.trajectory]
        assert states == sorted(states)
        assert edges == sorted(edges)


class TestControlArm:
    def test_unguided_counts_coverage_but_keeps_nothing(self, toykit):
        result = campaign(toykit, budget=2, guided=False)
        assert not result.guided
        assert result.corpus.entries == []
        assert result.distinct_states > 0
        assert all(r["op"] == "unguided" for r in result.trajectory)
        assert all(r["kept"] is None for r in result.trajectory)


class TestSeedPlans:
    def test_imported_plans_run_before_generated_ones(self, toykit):
        mapping, cluster_factory, graph, suite = toykit
        plan = plan_faults(graph, suite, mapping, "9",
                           cluster_factory().node_ids)
        result = campaign(toykit, budget=2, seed_plans=[plan])
        assert result.trajectory[0]["op"] == "import"
        assert result.trajectory[1]["op"] == "seed"

    def test_illegal_seed_plan_is_rejected_up_front(self, toykit):
        mapping, cluster_factory, graph, suite = toykit
        plan = plan_faults(graph, suite, mapping, "9",
                           cluster_factory().node_ids)
        victim = plan.injections[0]
        orphaned = plan.subset([FaultInjection(
            victim.mode, victim.kind, 10_000, victim.step_index,
            params=victim.params, derived_case_id=victim.derived_case_id,
            edge=victim.edge, tail=victim.tail)])
        with pytest.raises(FuzzError, match="not legal"):
            campaign(toykit, budget=1, seed_plans=[orphaned])


class TestBudget:
    def test_budget_must_be_positive(self, toykit):
        with pytest.raises(FuzzError, match="budget"):
            campaign(toykit, budget=0)


class TestBugs:
    def test_buggy_target_yields_stable_graph_anchored_ids(
            self, buggy_toykit):
        first = campaign(buggy_toykit, budget=2)
        assert first.bugs, "bug_wrong_max must diverge under faults"
        for bug_id, bug in first.bugs.items():
            assert bug_id.startswith("dv-")
            assert bug["kind"]
            assert bug["headline"]
        second = campaign(buggy_toykit, budget=2)
        assert set(second.bugs) == set(first.bugs)
