"""Stable graph-anchored divergence ids: independent of case numbering,
anchored to the last verified state, rendered only for unattributed
failures."""

from repro.core.testbed.report import (
    Divergence,
    DivergenceKind,
    SuiteResult,
    TestCaseResult,
)
from repro.core.testgen.testcase import TestCase
from repro.engine.fingerprint import fingerprint_state
from repro.faults import FaultPlan, divergence_id
from repro.faults.triage import render_triage, triage


def case_of(suite, minimum_steps=2):
    return next(c for c in suite if len(c.steps) >= minimum_steps)


def diverge(kind=DivergenceKind.INCONSISTENT_STATE, step=1, action="get"):
    return Divergence(kind, step, action=action)


class TestDivergenceId:
    def test_id_ignores_case_numbering(self, toykit):
        _mapping, _factory, _graph, suite = toykit
        case = case_of(suite)
        renumbered = TestCase(case.case_id + 500, case.initial_state,
                              case.steps, case.initial_id)
        divergence = diverge()
        assert (divergence_id(case, divergence)
                == divergence_id(renumbered, divergence))

    def test_id_shape_is_dv_hex16(self, toykit):
        _mapping, _factory, _graph, suite = toykit
        stable_id, anchor = divergence_id(case_of(suite), diverge())
        assert stable_id.startswith("dv-")
        assert len(stable_id) == 3 + 16
        int(stable_id[3:], 16)  # must be hex
        assert isinstance(anchor, int)

    def test_anchor_is_last_verified_state(self, toykit):
        _mapping, _factory, _graph, suite = toykit
        case = case_of(suite)
        _, at_start = divergence_id(case, diverge(step=-1))
        assert at_start == fingerprint_state(case.initial_state)
        _, beyond_end = divergence_id(
            case, diverge(step=len(case.steps) + 3))
        assert beyond_end == fingerprint_state(case.final_state)
        _, mid = divergence_id(case, diverge(step=1))
        assert mid == fingerprint_state(case.steps[0].expected_state)

    def test_kind_action_and_anchor_all_separate_ids(self, toykit):
        _mapping, _factory, _graph, suite = toykit
        case = case_of(suite)
        base = divergence_id(case, diverge())[0]
        other_kind = divergence_id(
            case, diverge(kind=DivergenceKind.STALLED))[0]
        other_action = divergence_id(case, diverge(action="set"))[0]
        assert len({base, other_kind, other_action}) == 3


class TestTriagePayloadIds:
    def outcome_with_failure(self, suite):
        case = case_of(suite)
        failing = TestCaseResult(case, diverge(), 1, 0.1)
        return SuiteResult([failing], 0.1), case

    def test_unattributed_failures_carry_ids(self, toykit):
        _mapping, _factory, _graph, suite = toykit
        outcome, case = self.outcome_with_failure(suite)
        payload = triage(outcome, FaultPlan("0", []))
        failure = payload["failures"][0]
        assert failure["verdict"] == "unattributed"
        assert failure["id"] == divergence_id(case, diverge())[0]

    def test_render_shows_id_only_when_unattributed(self, toykit):
        _mapping, _factory, _graph, suite = toykit
        outcome, case = self.outcome_with_failure(suite)
        payload = triage(outcome, FaultPlan("0", []))
        assert "id: dv-" in render_triage(payload)
        attributed = dict(payload)
        attributed["failures"] = [
            dict(payload["failures"][0], verdict="fault-induced",
                 attributed_to=["chaos partition"])]
        attributed["unattributed"] = 0
        assert "id: dv-" not in render_triage(attributed)

    def test_graph_argument_adds_a_coverage_block(self, toykit):
        _mapping, _factory, graph, suite = toykit
        outcome, _case = self.outcome_with_failure(suite)
        payload = triage(outcome, FaultPlan("0", []), graph=graph)
        coverage = payload["coverage"]
        assert coverage["graph_states"] == graph.num_states
        assert coverage["graph_edges"] == graph.num_edges
        assert 0 < len(coverage["states"]) <= graph.num_states
        rendered = render_triage(payload)
        assert "coverage:" in rendered and "edges visited" in rendered
