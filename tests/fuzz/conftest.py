"""Shared fixtures for the fuzz-subsystem tests: one canonical
toycache kit (cheap to explore, real clusters to run) per session."""

import pytest

from repro.cli import _spec_independence, _target_kit
from repro.core import RunnerConfig, generate_test_cases
from repro.engine import canonicalize
from repro.tlaplus import check

#: fast timeouts — toycache acts settle in milliseconds
FAST = RunnerConfig(match_timeout=1.0, done_timeout=1.0, quiesce_delay=0.05)


@pytest.fixture(scope="session")
def toykit():
    """(mapping, cluster_factory, graph, suite) for clean toycache."""
    spec, mapping, cluster_factory = _target_kit("toycache", None)
    graph = canonicalize(check(spec, max_states=2000, truncate=True).graph)
    suite = generate_test_cases(graph, por=True, seed=0,
                                independence=_spec_independence(spec))
    return mapping, cluster_factory, graph, suite


@pytest.fixture(scope="session")
def buggy_toykit():
    """Same kit with the bug_wrong_max implementation bug seeded."""
    spec, mapping, cluster_factory = _target_kit("toycache",
                                                 ["bug_wrong_max"])
    graph = canonicalize(check(spec, max_states=2000, truncate=True).graph)
    suite = generate_test_cases(graph, por=True, seed=0,
                                independence=_spec_independence(spec))
    return mapping, cluster_factory, graph, suite
