"""The on-disk corpus: canonical bytes, exact reopen, meta validation,
plan dedup, the bug table, and seed-selection energy."""

import json
import random

import pytest

from repro.faults import plan_faults
from repro.fuzz import Corpus, CorpusEntry, Coverage, FuzzError
from repro.fuzz.corpus import plan_digest
from repro.fuzz.energy import entry_energy, pick_entry

META = {"target": "toycache", "fuzz_seed": "1", "graph": "sig"}


def make_plan(toykit, seed="1"):
    mapping, cluster_factory, graph, suite = toykit
    return plan_faults(graph, suite, mapping, seed,
                       cluster_factory().node_ids)


def feed(corpus, plan, states=(1, 2), edges=(10,), divergences=()):
    coverage = Coverage(states=states, edges=edges)
    entry = corpus.add_entry(plan, "seed", None, coverage,
                             len(states), len(edges), list(divergences))
    corpus.observe(coverage)
    corpus.runs += 1
    return entry


class TestCorpusPersistence:
    def test_save_and_reopen_restores_everything(self, toykit, tmp_path):
        root = str(tmp_path / "corpus")
        corpus = Corpus.open_or_create(root, META)
        plan = make_plan(toykit)
        feed(corpus, plan, divergences=["dv-1"])
        corpus.record_bug("dv-1", entry=0, kind="inconsistent_state",
                          case_id=0, anchor=123, headline="boom")
        corpus.save()

        clone = Corpus.open_or_create(root, META)
        assert clone.runs == corpus.runs
        assert clone.state_hits == corpus.state_hits
        assert clone.edge_hits == corpus.edge_hits
        assert clone.bugs == corpus.bugs
        assert len(clone.entries) == 1
        entry = clone.entries[0]
        assert entry.plan.to_json() == plan.to_json()
        assert entry.coverage.states == {1, 2}
        assert entry.divergences == ["dv-1"]
        assert clone.seen_plan(plan)

    def test_save_is_byte_stable(self, toykit, tmp_path):
        root = str(tmp_path / "corpus")
        corpus = Corpus.open_or_create(root, META)
        feed(corpus, make_plan(toykit))
        corpus.save()
        first = (tmp_path / "corpus" / "corpus.json").read_bytes()
        Corpus.open_or_create(root, META).save()
        assert (tmp_path / "corpus" / "corpus.json").read_bytes() == first

    def test_reopen_with_mismatched_meta_is_an_error(self, toykit,
                                                     tmp_path):
        root = str(tmp_path / "corpus")
        Corpus.open_or_create(root, META).save()
        other = dict(META, fuzz_seed="9")
        with pytest.raises(FuzzError, match="fuzz_seed"):
            Corpus.open_or_create(root, other)

    def test_reopen_foreign_json_is_an_error(self, tmp_path):
        root = tmp_path / "corpus"
        root.mkdir()
        (root / "corpus.json").write_text('{"format": "something-else"}')
        with pytest.raises(FuzzError, match="not a mocket fuzz corpus"):
            Corpus.open_or_create(str(root), META)

    def test_rootless_corpus_never_touches_disk(self, toykit):
        corpus = Corpus.open_or_create(None, META)
        feed(corpus, make_plan(toykit))
        corpus.save()  # must be a no-op, not a crash
        assert corpus.root is None

    def test_index_is_canonical_json(self, toykit, tmp_path):
        root = str(tmp_path / "corpus")
        corpus = Corpus.open_or_create(root, META)
        feed(corpus, make_plan(toykit))
        corpus.save()
        raw = (tmp_path / "corpus" / "corpus.json").read_text()
        payload = json.loads(raw)
        assert raw == json.dumps(payload, sort_keys=True, indent=2) + "\n"
        assert payload["format"] == "mocket-fuzz-corpus/1"


class TestDedupAndBugs:
    def test_seen_plan_uses_canonical_digest(self, toykit):
        corpus = Corpus.open_or_create(None, META)
        plan = make_plan(toykit)
        assert not corpus.seen_plan(plan)
        feed(corpus, plan)
        assert corpus.seen_plan(plan)
        assert not corpus.seen_plan(make_plan(toykit, seed="2"))

    def test_plan_digest_is_stable_and_content_sensitive(self, toykit):
        plan = make_plan(toykit)
        assert plan_digest(plan) == plan_digest(plan)
        assert plan_digest(plan) != plan_digest(make_plan(toykit, "2"))

    def test_record_bug_dedups_by_stable_id(self):
        corpus = Corpus.open_or_create(None, META)
        assert corpus.record_bug("dv-a", entry=None, kind="k", case_id=0,
                                 anchor=7, headline="h")
        assert not corpus.record_bug("dv-a", entry=None, kind="k",
                                     case_id=0, anchor=7, headline="h")
        assert len(corpus.bugs) == 1

    def test_bug_anchor_fps_roundtrip_hex(self):
        corpus = Corpus.open_or_create(None, META)
        corpus.record_bug("dv-a", entry=None, kind="k", case_id=0,
                          anchor=0xDEAD, headline="h")
        corpus.record_bug("dv-b", entry=None, kind="k", case_id=1,
                          anchor=None, headline="h")
        assert corpus.bug_anchor_fps() == {0xDEAD}


class TestEnergy:
    def entry(self, states, edges, divergences=()):
        return CorpusEntry(0, 0, "seed", None, plan=None, digest="x",
                           coverage=Coverage(states=states, edges=edges),
                           new_states=len(states), new_edges=len(edges),
                           divergences=list(divergences))

    def test_rare_coverage_outranks_common(self):
        hits = {1: 100, 2: 1}
        rare = self.entry(states=(2,), edges=())
        common = self.entry(states=(1,), edges=())
        assert (entry_energy(rare, hits, {}, set())
                > entry_energy(common, hits, {}, set()))

    def test_divergent_entries_are_doubled(self):
        plain = self.entry(states=(1,), edges=())
        spicy = self.entry(states=(1,), edges=(), divergences=["dv-a"])
        assert (entry_energy(spicy, {}, {}, set())
                == 2 * entry_energy(plain, {}, {}, set()))

    def test_bug_anchor_overlap_is_doubled(self):
        entry = self.entry(states=(5,), edges=())
        base = entry_energy(entry, {}, {}, set())
        assert entry_energy(entry, {}, {}, {5}) == 2 * base
        assert entry_energy(entry, {}, {}, {6}) == base

    def test_pick_entry_is_deterministic_and_total(self):
        entries = [self.entry(states=(i,), edges=()) for i in range(5)]
        picks = [pick_entry(entries, {}, {}, set(), random.Random("s"))
                 for _ in range(3)]
        assert len({id(p) for p in picks}) == 1
        assert pick_entry([], {}, {}, set(), random.Random("s")) is None
