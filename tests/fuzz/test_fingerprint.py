"""Coverage fingerprinting: content-anchored state/edge fps, case and
run coverage extraction, and the graph fingerprint index."""

from repro.core.testbed.report import SuiteResult, TestCaseResult
from repro.core.testgen.testcase import TestCase
from repro.engine.fingerprint import fingerprint_state
from repro.fuzz import (
    Coverage,
    GraphIndex,
    case_coverage,
    edge_fingerprint,
    format_fp,
    run_coverage,
)


class TestGraphIndex:
    def test_population_matches_graph_size(self, toykit):
        _mapping, _factory, graph, _suite = toykit
        index = GraphIndex(graph)
        assert len(index.state_fps) == graph.num_states
        assert len(index.edge_fp_by_index) == graph.num_edges
        assert index.num_states == graph.num_states
        assert index.num_edges == graph.num_edges

    def test_state_fp_is_content_anchored(self, toykit):
        _mapping, _factory, graph, _suite = toykit
        index = GraphIndex(graph)
        for node_id, state in graph.states():
            assert index.state_fp_of(node_id) == fingerprint_state(state)

    def test_edge_fp_matches_manual_fingerprint(self, toykit):
        _mapping, _factory, graph, _suite = toykit
        index = GraphIndex(graph)
        edge = next(iter(graph.edges()))
        expected = edge_fingerprint(
            fingerprint_state(graph.state_of(edge.src)), edge.label,
            fingerprint_state(graph.state_of(edge.dst)))
        assert index.edge_fp(edge) == expected

    def test_uncovered_out_edges_shrinks_with_coverage(self, toykit):
        _mapping, _factory, graph, _suite = toykit
        index = GraphIndex(graph)
        node_id = next(nid for nid, _ in graph.states()
                       if graph.out_edges(nid))
        everything = index.uncovered_out_edges(node_id, set())
        assert everything
        first_fp = index.edge_fp(everything[0])
        fewer = index.uncovered_out_edges(node_id, {first_fp})
        assert len(fewer) == len(everything) - 1


class TestCaseCoverage:
    def test_case_coverage_lies_inside_the_graph(self, toykit):
        _mapping, _factory, graph, suite = toykit
        index = GraphIndex(graph)
        for case in suite:
            coverage = case_coverage(case, index=index)
            assert coverage.states <= index.all_states
            assert coverage.edges <= index.all_edges
            assert len(coverage.edges) >= 1

    def test_executed_prefix_is_monotone(self, toykit):
        _mapping, _factory, graph, suite = toykit
        case = suite.cases[0]
        full = case_coverage(case)
        prefix = case_coverage(case, executed=1)
        assert prefix.states <= full.states
        assert prefix.edges <= full.edges
        assert len(prefix.edges) == 1

    def test_zero_executed_still_counts_the_initial_state(self, toykit):
        _mapping, _factory, _graph, suite = toykit
        case = suite.cases[0]
        coverage = case_coverage(case, executed=0)
        assert coverage.states == {fingerprint_state(case.initial_state)}
        assert not coverage.edges

    def test_coverage_ignores_case_numbering(self, toykit):
        _mapping, _factory, _graph, suite = toykit
        case = suite.cases[0]
        renumbered = TestCase(case.case_id + 71, case.initial_state,
                              case.steps, case.initial_id)
        original = case_coverage(case)
        moved = case_coverage(renumbered)
        assert original.states == moved.states
        assert original.edges == moved.edges


class TestRunCoverage:
    def test_divergent_case_contributes_only_its_prefix(self, toykit):
        _mapping, _factory, graph, suite = toykit
        case = suite.cases[0]
        full = SuiteResult(
            [TestCaseResult(case, None, len(case.steps), 0.1)], 0.1)
        partial = SuiteResult([TestCaseResult(case, None, 1, 0.1)], 0.1)
        assert len(run_coverage(partial).edges) == 1
        assert run_coverage(partial).edges <= run_coverage(full).edges

    def test_union_over_cases(self, toykit):
        _mapping, _factory, graph, suite = toykit
        results = [TestCaseResult(case, None, len(case.steps), 0.1)
                   for case in suite.cases[:2]]
        union = run_coverage(SuiteResult(results, 0.2))
        per_case = Coverage()
        for case in suite.cases[:2]:
            per_case.update(case_coverage(case))
        assert union.states == per_case.states
        assert union.edges == per_case.edges


class TestCoverageSerialization:
    def test_roundtrip_is_exact(self):
        coverage = Coverage(states=(3, 2 ** 63 + 5), edges=(17,))
        clone = Coverage.from_jsonable(coverage.to_jsonable())
        assert clone.states == coverage.states
        assert clone.edges == coverage.edges

    def test_serialized_form_is_sorted_fixed_width_hex(self):
        payload = Coverage(states=(255, 1), edges=()).to_jsonable()
        assert payload["states"] == [format_fp(1), format_fp(255)]
        assert all(len(fp) == 16 for fp in payload["states"])

    def test_new_against_reports_only_novel_fps(self):
        coverage = Coverage(states=(1, 2), edges=(10, 11))
        new_states, new_edges = coverage.new_against({1: 3}, {10: 1})
        assert new_states == {2}
        assert new_edges == {11}
