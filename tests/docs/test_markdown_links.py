"""Every intra-repo relative link in the markdown docs must resolve.

A dead relative link is a docs regression: the CI docs job runs this
module explicitly (alongside the tier-1 matrix) so renames and moved
files fail fast instead of rotting silently.
"""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]

SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "node_modules"}

# [text](target) — also matches image links; reference-style links are
# not used in this repo.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

EXTERNAL = ("http://", "https://", "mailto:")


def markdown_files():
    files = []
    for path in sorted(REPO.rglob("*.md")):
        if not SKIP_DIRS.intersection(p.name for p in path.parents):
            files.append(path)
    return files


def relative_targets(path):
    for match in LINK.finditer(path.read_text(encoding="utf-8")):
        target = match.group(1)
        if target.startswith(EXTERNAL) or target.startswith("#"):
            continue
        yield target.split("#", 1)[0]


def test_repo_has_docs_to_check():
    names = {p.name for p in markdown_files()}
    assert {"README.md", "INDEX.md", "TUTORIAL.md", "FAULTS.md"} <= names


@pytest.mark.parametrize("md", markdown_files(), ids=lambda p: str(p.relative_to(REPO)))
def test_relative_links_resolve(md):
    dead = [target for target in relative_targets(md)
            if not (md.parent / target).exists()]
    assert not dead, f"dead relative links in {md.relative_to(REPO)}: {dead}"
