"""Shared fixtures: deterministic graph walks rendered as obs JSONL logs.

Conformance tests need logs that are *known* to be spec behaviours (and
seeded corruptions thereof).  Rather than spinning up clusters, we walk
the canonical state graph directly — every walk is a real behaviour by
construction — and render the steps in the ``runner.step`` shape the
tracer sink writes.
"""

import json

import pytest

from repro.engine import canonicalize
from repro.obs.tracer import jsonable
from repro.tlaplus import check


def canonical_graph(spec, max_states=100_000):
    return canonicalize(check(spec, max_states=max_states,
                              truncate=True).graph)


def walk(graph, session, steps, salt=0):
    """One deterministic behaviour: a list of ActionLabels.

    ``salt`` varies the (deterministic) edge choice so different
    sessions exercise different paths.
    """
    labels = []
    current = graph.initial_ids[session % len(graph.initial_ids)]
    for index in range(steps):
        edges = sorted(graph.out_edges(current),
                       key=lambda e: (e.label.name, e.dst))
        if not edges:
            break
        edge = edges[(index * 7 + session * 3 + salt) % len(edges)]
        labels.append(edge.label)
        current = edge.dst
    return labels


def step_record(seq, case, step, label, params=None):
    """One ``runner.step`` record, as the tracer sink writes it."""
    fields = {"case": case, "step": step, "action": label.name,
              "outcome": "ok",
              "params": params if params is not None else jsonable(label.params)}
    return {"seq": seq, "ts": float(seq), "kind": "span",
            "name": "runner.step", "dur": 0.001, "fields": fields}


def write_walk_log(path, graph, sessions=3, steps=6):
    """Render ``sessions`` graph walks as an obs JSONL log; returns the
    per-line records for tests that corrupt a specific line."""
    records = []
    seq = 0
    for session in range(sessions):
        for index, label in enumerate(walk(graph, session, steps)):
            records.append(step_record(seq, session, index, label))
            seq += 1
    path.write_text(
        "".join(json.dumps(r, sort_keys=True) + "\n" for r in records))
    return records


@pytest.fixture(scope="session")
def example_graph():
    from repro.specs import build_example_spec

    return canonical_graph(build_example_spec())
