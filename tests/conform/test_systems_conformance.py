"""Conformance accept/reject fixtures for every bundled target.

For each of the five bundled targets (four systems with event-bound
mappings plus the bare example model) we render deterministic graph
walks as obs JSONL logs and assert:

* a valid behaviour log conforms,
* a log with one corrupted action diverges at exactly that line,
* a truncated log (partial observation of an unfinished run) conforms.
"""

import json

import pytest

from repro.cli import _build_model, _target_kit
from repro.conform import ConformanceMonitor, conform_log

from .conftest import canonical_graph, write_walk_log

TARGETS = ("toycache", "pyxraft", "raftkv", "minizk", "example")


def target_kit(name):
    """(canonical graph, mapping-or-None) for one conform target.

    The xraft/zab models run to 5k/12k states; a truncated prefix keeps
    per-test monitor construction fast while still exercising real
    multi-thousand-edge graphs (walks and conformance use the *same*
    truncated graph, so every walk stays a valid behaviour of it).
    """
    if name == "example":
        return canonical_graph(_build_model("example")), None
    spec, mapping, _factory = _target_kit(name, None)
    return canonical_graph(spec, max_states=1200), mapping


@pytest.fixture(scope="module")
def kits():
    return {name: target_kit(name) for name in TARGETS}


@pytest.mark.parametrize("name", TARGETS)
class TestBundledTargets:
    def test_valid_log_conforms(self, kits, tmp_path, name):
        graph, mapping = kits[name]
        path = tmp_path / f"{name}.jsonl"
        write_walk_log(path, graph, sessions=3, steps=6)
        report = conform_log(graph, mapping, str(path))
        assert report.ok, report.first_divergence
        assert report.sessions == 3

    def test_corrupted_action_diverges_at_that_line(self, kits, tmp_path,
                                                    name):
        graph, mapping = kits[name]
        path = tmp_path / f"{name}-bad.jsonl"
        records = write_walk_log(path, graph, sessions=2, steps=6)
        # corrupt one mid-log step to an action that cannot fire there
        victim = len(records) // 2
        records[victim]["fields"]["action"] = "NoSuchConformAction"
        path.write_text("".join(json.dumps(r, sort_keys=True) + "\n"
                                for r in records))
        report = conform_log(graph, mapping, str(path))
        assert not report.ok
        div = report.first_divergence
        assert div.line == victim + 1
        assert div.reason == "unbound-event"
        # only the corrupted session diverges; the other still checks out
        assert report.diverged_sessions == 1 and report.sessions == 2

    def test_truncated_log_conforms(self, kits, tmp_path, name):
        graph, mapping = kits[name]
        path = tmp_path / f"{name}-trunc.jsonl"
        records = write_walk_log(path, graph, sessions=2, steps=6)
        # cut the log mid-session: a prefix of a behaviour must conform
        cut = records[: len(records) - len(records) // 3]
        path.write_text("".join(json.dumps(r, sort_keys=True) + "\n"
                                for r in cut))
        report = conform_log(graph, mapping, str(path))
        assert report.ok, report.first_divergence

    def test_wrong_param_diverges(self, kits, tmp_path, name):
        graph, mapping = kits[name]
        path = tmp_path / f"{name}-param.jsonl"
        records = write_walk_log(path, graph, sessions=1, steps=6)
        # corrupt the *parameters* of a step whose action has some:
        # same action name, impossible binding
        victim = None
        for index, record in enumerate(records):
            if record["fields"]["params"]:
                victim = index
                break
        if victim is None:
            pytest.skip(f"{name}: no parametrized actions in the walk")
        records[victim]["fields"]["params"] = {"__bogus__": "not-a-binding",
                                               **{k: "bogus-value" for k in
                                                  records[victim]["fields"]
                                                  ["params"]}}
        path.write_text("".join(json.dumps(r, sort_keys=True) + "\n"
                                for r in records))
        report = conform_log(graph, mapping, str(path))
        assert not report.ok
        assert report.first_divergence.line == victim + 1
        assert report.first_divergence.reason == "no-transition"


class TestEventBindings:
    @pytest.mark.parametrize("name", ("toycache", "pyxraft", "raftkv",
                                      "minizk"))
    def test_bundled_mappings_bind_every_action(self, name):
        _spec, mapping, _factory = _target_kit(name, None)
        assert mapping.events, f"{name} mapping has no event bindings"
        assert mapping.bound_actions() == set(mapping.spec.actions)
