"""The conformance monitor: frontier-set walk, partial observation,
epsilon closure, session resets, bounded memory and near-miss ranking."""

import pytest

from repro.conform import (
    ConformanceMonitor,
    ConformanceOptions,
    LogEvent,
    conform_log,
)
from repro.core.mapping import SpecMapping
from repro.specs import build_example_spec
from repro.tlaplus import Specification, check

from .conftest import canonical_graph, walk, write_walk_log


def chain_spec(length=6):
    """A linear spec: Tick advances n by 1 up to ``length``."""
    spec = Specification("chain", constants={"Len": length})
    spec.add_variable("n")

    @spec.init
    def init(const):
        return {"n": 0}

    @spec.action()
    def Tick(state, const):
        if state.n >= const["Len"]:
            return None
        return {"n": state.n + 1}

    return spec


def forked_spec():
    """Two initial choices observable only later: Pick(side) then Step.

    With Pick unobservable, a Step event keeps *both* branches in the
    frontier until a Finish(side=...) event discriminates them.
    """
    spec = Specification("forked")
    spec.add_variable("side")
    spec.add_variable("n")

    @spec.init
    def init(const):
        return {"side": "?", "n": 0}

    @spec.action(params={"side": lambda state, const: ["l", "r"]})
    def Pick(state, const, side):
        if state.side != "?":
            return None
        return {"side": side, "n": 0}

    @spec.action()
    def Step(state, const):
        if state.side == "?" or state.n >= 2:
            return None
        return {"n": state.n + 1}

    @spec.action(params={"side": lambda state, const: ["l", "r"]})
    def Finish(state, const, side):
        if state.side != side or state.n < 2:
            return None
        return {"n": 3}

    return spec


def events(*names_params, session="s"):
    out = []
    for line, item in enumerate(names_params, start=1):
        name, params = item if isinstance(item, tuple) else (item, {})
        out.append(LogEvent(line, name, params, session=session))
    return out


class TestWalk:
    def test_valid_behaviour_conforms(self, example_graph):
        labels = walk(example_graph, 0, 8)
        from repro.obs.tracer import jsonable

        evs = [LogEvent(i + 1, l.name, jsonable(l.params), session=0)
               for i, l in enumerate(labels)]
        report = ConformanceMonitor(example_graph).run(iter(evs))
        assert report.ok and report.verdict == "conforms"
        assert report.events == report.matched == 8
        assert report.sessions == 1

    def test_wrong_action_diverges_at_exact_line(self, example_graph):
        evs = events(("Request", {"data": 1}), "Respond", "Respond")
        report = ConformanceMonitor(example_graph).run(iter(evs))
        assert not report.ok
        div = report.first_divergence
        assert div.line == 3 and div.reason == "no-transition"
        assert div.action == "Respond"

    def test_wrong_param_diverges_with_rank0_near_miss(self, example_graph):
        evs = events(("Request", {"data": 99}))
        report = ConformanceMonitor(example_graph).run(iter(evs))
        div = report.first_divergence
        assert div is not None and div.line == 1
        rank0 = [m for m in div.near_misses if m.rank == 0]
        assert rank0, "same-action param mismatches must rank first"
        assert rank0[0].action == "Request"
        assert any("data" in mm for mm in rank0[0].mismatches)
        # rank 0 candidates sort before rank 1
        ranks = [m.rank for m in div.near_misses]
        assert ranks == sorted(ranks)

    def test_partial_observation_keeps_all_candidates(self):
        graph = canonical_graph(forked_spec())
        monitor = ConformanceMonitor(graph)
        # Pick without its side parameter: both branches stay live
        monitor.feed(LogEvent(1, "Pick", {}, session="s"))
        assert len(monitor.frontier) == 2
        monitor.feed(LogEvent(2, "Step", {}, session="s"))
        monitor.feed(LogEvent(3, "Step", {}, session="s"))
        # the Finish parameter finally discriminates
        monitor.feed(LogEvent(4, "Finish", {"side": "l"}, session="s"))
        assert len(monitor.frontier) == 1
        report = monitor.finish()
        assert report.ok and report.frontier_peak == 2

    def test_epsilon_closure_over_unbound_actions(self):
        # bind only Step/Finish: Pick becomes unobservable and the walk
        # must take it silently before the first Step
        spec = forked_spec()
        graph = canonical_graph(spec)
        mapping = (SpecMapping(spec).bind_event("Step").bind_event("Finish"))
        monitor = ConformanceMonitor(graph, mapping)
        report = monitor.run(iter(events(
            "Step", "Step", ("Finish", {"side": "r"}))))
        assert report.ok, report.first_divergence

    def test_unbound_event_diverges_by_default(self, example_graph):
        report = ConformanceMonitor(example_graph).run(
            iter(events("NoSuchAction")))
        assert report.first_divergence.reason == "unbound-event"

    def test_ignore_unknown_skips_instead(self, example_graph):
        options = ConformanceOptions(ignore_unknown=True)
        report = ConformanceMonitor(example_graph, options=options).run(
            iter(events("NoSuchAction", ("Request", {"data": 1}))))
        assert report.ok
        assert report.skipped_unknown == 1 and report.matched == 1


class TestSessions:
    def test_each_session_restarts_from_initial(self, example_graph):
        evs = (events(("Request", {"data": 1}), "Respond", session="a")
               + events(("Request", {"data": 2}), "Respond", session="b"))
        report = ConformanceMonitor(example_graph).run(iter(evs))
        assert report.ok and report.sessions == 2

    def test_diverged_session_drains_without_masking_later_ones(
            self, example_graph):
        evs = (events("Respond", ("Request", {"data": 1}), session="bad")
               + events(("Request", {"data": 1}), "Respond", session="good"))
        report = ConformanceMonitor(example_graph).run(iter(evs))
        assert not report.ok
        assert report.first_divergence.line == 1
        assert report.sessions == 2 and report.diverged_sessions == 1
        # events after the divergence in the same session are not counted
        # as matched, but the next session is checked in full
        assert report.matched == 2

    def test_truncated_log_still_conforms(self, example_graph):
        # a prefix of a behaviour is itself a partial observation: the
        # monitor must accept a log that stops mid-session
        labels = walk(example_graph, 0, 8)[:3]
        from repro.obs.tracer import jsonable

        evs = [LogEvent(i + 1, l.name, jsonable(l.params), session=0)
               for i, l in enumerate(labels)]
        report = ConformanceMonitor(example_graph).run(iter(evs))
        assert report.ok and report.matched == 3


class TestBoundedMemory:
    def test_frontier_cap_spills_deterministically(self):
        graph = canonical_graph(forked_spec())
        options = ConformanceOptions(max_frontier=1)
        monitor = ConformanceMonitor(graph, options=options)
        monitor.feed(LogEvent(1, "Pick", {}, session="s"))
        # both branches matched but only the lowest canonical id is kept
        assert len(monitor.frontier) == 1
        assert monitor.frontier == {min(monitor.frontier)}
        report = monitor.finish()
        assert report.bounded and report.spilled == 1
        assert report.frontier_peak == 1

    def test_spill_keeps_conforms_sound(self):
        # the kept branch can still explain the rest of the log, so the
        # verdict stays "conforms" even in bounded mode
        graph = canonical_graph(forked_spec())
        options = ConformanceOptions(max_frontier=1)
        monitor = ConformanceMonitor(graph, options=options)
        monitor.feed(LogEvent(1, "Pick", {}, session="s"))
        kept_side = None
        for sid in monitor.frontier:
            kept_side = graph.state_of(sid).side
        for line, name in ((2, "Step"), (3, "Step")):
            assert monitor.feed(LogEvent(line, name, {}, session="s"))
        assert monitor.feed(
            LogEvent(4, "Finish", {"side": kept_side}, session="s"))
        report = monitor.finish()
        assert report.ok and report.bounded

    def test_divergence_under_spill_is_flagged_bounded(self):
        # the dropped branch would have explained the log: the verdict
        # is a divergence, but `bounded` warns it may be a false alarm
        graph = canonical_graph(forked_spec())
        options = ConformanceOptions(max_frontier=1)
        monitor = ConformanceMonitor(graph, options=options)
        monitor.feed(LogEvent(1, "Pick", {}, session="s"))
        kept_side = next(graph.state_of(sid).side for sid in monitor.frontier)
        other = "r" if kept_side == "l" else "l"
        monitor.feed(LogEvent(2, "Step", {}, session="s"))
        monitor.feed(LogEvent(3, "Step", {}, session="s"))
        monitor.feed(LogEvent(4, "Finish", {"side": other}, session="s"))
        report = monitor.finish()
        assert not report.ok and report.bounded and report.spilled == 1

    def test_long_log_constant_frontier(self):
        graph = canonical_graph(chain_spec(length=200))
        evs = (LogEvent(i + 1, "Tick", {}, session="s") for i in range(200))
        report = ConformanceMonitor(graph).run(evs)
        assert report.ok and report.frontier_peak == 1


class TestConformLog:
    def test_streams_from_file(self, tmp_path, example_graph):
        path = tmp_path / "walk.jsonl"
        write_walk_log(path, example_graph, sessions=2, steps=6)
        report = conform_log(example_graph, None, str(path))
        assert report.ok and report.sessions == 2
        assert report.log == str(path) and report.adapter == "obs"

    def test_report_roundtrips_as_json(self, tmp_path, example_graph):
        import json

        path = tmp_path / "walk.jsonl"
        write_walk_log(path, example_graph, sessions=1, steps=4)
        report = conform_log(example_graph, None, str(path))
        payload = json.loads(report.to_json())
        assert payload["version"] == 1
        assert payload["verdict"] == "conforms"
        assert payload["first_divergence"] is None
