"""Determinism guard: `mocket conform` output must be byte-identical
for any ``--workers`` count and any ``PYTHONHASHSEED``.

The verdict and first-divergence line are consumed by CI gates and
bug-report digests, so they are pinned the same way fault plans and
canonical graphs are: subprocess runs under different hash seeds and
worker counts must produce identical stdout (text *and* JSON forms).
"""

import json
import os
import subprocess
import sys

import pytest

SRC = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", "src"))


def run_conform(log, hashseed, workers, fmt="json"):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hashseed)
    env["PYTHONPATH"] = SRC
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "conform", str(log),
         "--spec", "raftkv", "--format", fmt, "--workers", str(workers)],
        capture_output=True, text=True, env=env, timeout=240)
    assert proc.returncode in (0, 1), proc.stderr
    return proc.returncode, proc.stdout


@pytest.fixture(scope="module")
def raftkv_logs(tmp_path_factory):
    """One conforming and one seeded-divergent raftkv log."""
    from repro.cli import _target_kit

    from .conftest import canonical_graph, write_walk_log

    spec, _mapping, _factory = _target_kit("raftkv", None)
    graph = canonical_graph(spec)
    base = tmp_path_factory.mktemp("conform-determinism")
    good = base / "good.jsonl"
    records = write_walk_log(good, graph, sessions=3, steps=8)
    bad = base / "bad.jsonl"
    victim = len(records) // 2
    records[victim]["fields"]["action"] = "ClientRequestInjected"
    bad.write_text("".join(json.dumps(r, sort_keys=True) + "\n"
                           for r in records))
    return good, bad, victim + 1


@pytest.mark.slow
class TestConformDeterminism:
    def test_verdict_bytes_identical_across_seeds_and_workers(
            self, raftkv_logs):
        good, _bad, _line = raftkv_logs
        outputs = {}
        for hashseed in (0, 42):
            for workers in (1, 4):
                code, out = run_conform(good, hashseed, workers)
                assert code == 0, out
                outputs[(hashseed, workers)] = out
        assert len(set(outputs.values())) == 1, (
            "conform JSON differs across PYTHONHASHSEED/--workers")

    def test_divergence_line_identical_across_seeds_and_workers(
            self, raftkv_logs):
        _good, bad, line = raftkv_logs
        outputs = {}
        for hashseed in (0, 42):
            for workers in (1, 4):
                code, out = run_conform(bad, hashseed, workers)
                assert code == 1, out
                payload = json.loads(out)
                assert payload["first_divergence"]["line"] == line
                outputs[(hashseed, workers)] = out
        assert len(set(outputs.values())) == 1, (
            "divergence report differs across PYTHONHASHSEED/--workers")

    def test_text_report_identical_too(self, raftkv_logs):
        _good, bad, _line = raftkv_logs
        first = run_conform(bad, 0, 1, fmt="text")
        second = run_conform(bad, 42, 4, fmt="text")
        assert first == second
