"""Slow guard: conformance replay throughput and exact divergence
localization, exercised through the CI benchmark script.

The full CI bench replays a 1M-event raftkv log; here a scaled-down run
pins the same claims — streaming replay conforms, throughput has a
floor, the seeded corruption is localized to the exact line — without
the multi-minute log generation.
"""

import json
import os
import sys

import pytest

BENCH_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "benchmarks")
sys.path.insert(0, os.path.abspath(BENCH_DIR))

import conform_bench  # noqa: E402  (benchmarks/ is not a package)


@pytest.mark.slow
class TestConformBenchGuard:
    def test_bench_script_exits_clean(self, tmp_path, capsys):
        out = tmp_path / "BENCH_conform.json"
        # 60k events keeps the guard under ~10s; the floor scales down
        # because per-run fixed costs (graph build) amortize less
        assert conform_bench.main(["--events", "60000", "--floor", "20000",
                                   "--out", str(out)]) == 0
        assert "record written" in capsys.readouterr().out
        record = json.loads(out.read_text())
        assert record["bench"] == "conform"
        assert record["replay"]["verdict"] == "conforms"
        assert record["replay"]["events"] == 60000
        assert (record["localize"]["first_divergence_line"]
                == record["localize"]["seeded_line"] == 30000)

    def test_bounded_memory_frontier_stays_small(self, tmp_path):
        # the raftkv walk log never needs a frontier anywhere near the
        # cap: peak compatible-state count is the real memory bound
        graph = conform_bench.build_graph()
        log = tmp_path / "walk.jsonl"
        conform_bench.generate_log(graph, str(log), 5000)
        run = conform_bench.replay(graph, str(log))
        assert run["verdict"] == "conforms"
        assert run["spilled"] == 0
        assert run["frontier_peak"] <= 16

    def test_seeded_corruption_is_localized_exactly(self, tmp_path):
        graph = conform_bench.build_graph()
        log = tmp_path / "bad.jsonl"
        seeded = conform_bench.generate_log(graph, str(log), 5000,
                                            corrupt_at=1234)
        assert seeded == 1234
        run = conform_bench.replay(graph, str(log))
        assert run["verdict"] == "diverged"
        assert run["first_divergence_line"] == 1234
