"""``mocket conform`` and the conform additions to ``trace summarize``."""

import json

import pytest

from repro.cli import main

from .conftest import write_walk_log


@pytest.fixture()
def toycache_log(tmp_path):
    from repro.cli import _target_kit

    from .conftest import canonical_graph

    spec, _mapping, _factory = _target_kit("toycache", None)
    graph = canonical_graph(spec)
    path = tmp_path / "walk.jsonl"
    records = write_walk_log(path, graph, sessions=2, steps=6)
    return path, records


class TestConformCommand:
    def test_conforming_log_exits_zero(self, toycache_log, capsys):
        path, _records = toycache_log
        assert main(["conform", str(path), "--spec", "toycache"]) == 0
        out = capsys.readouterr().out
        assert "conformance: conforms" in out
        assert "2 sessions" in out

    def test_diverging_log_exits_one_with_line(self, toycache_log, capsys):
        path, records = toycache_log
        victim = len(records) // 2
        records[victim]["fields"]["action"] = "Bogus"
        path.write_text("".join(json.dumps(r, sort_keys=True) + "\n"
                                for r in records))
        assert main(["conform", str(path), "--spec", "toycache"]) == 1
        out = capsys.readouterr().out
        assert f"first divergence at line {victim + 1}" in out

    def test_json_envelope(self, toycache_log, capsys):
        path, _records = toycache_log
        assert main(["conform", str(path), "--spec", "toycache",
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["verdict"] == "conforms"
        assert payload["adapter"] == "obs"

    def test_bare_model_target(self, tmp_path, capsys):
        from .conftest import canonical_graph
        from repro.cli import _build_model

        graph = canonical_graph(_build_model("example"))
        path = tmp_path / "walk.jsonl"
        write_walk_log(path, graph, sessions=1, steps=4)
        assert main(["conform", str(path), "--spec", "example"]) == 0

    def test_stream_mode_reports_progress(self, toycache_log, capsys):
        path, _records = toycache_log
        assert main(["conform", str(path), "--spec", "toycache",
                     "--stream", "--progress", "5"]) == 0
        err = capsys.readouterr().err
        assert "... 5 events" in err and "frontier" in err

    def test_missing_log_exits_two(self, capsys):
        assert main(["conform", "/nonexistent/x.jsonl",
                     "--spec", "toycache"]) == 2
        assert "no such log" in capsys.readouterr().err

    def test_unknown_adapter_exits_two(self, toycache_log, capsys):
        path, _records = toycache_log
        assert main(["conform", str(path), "--spec", "toycache",
                     "--adapter", "nope"]) == 2
        assert "unknown log adapter" in capsys.readouterr().err

    def test_unknown_target_rejected(self, toycache_log):
        path, _records = toycache_log
        with pytest.raises(SystemExit, match="unknown conform target"):
            main(["conform", str(path), "--spec", "nosuch"])

    def test_malformed_log_exits_two(self, tmp_path, capsys):
        path = tmp_path / "garbage.jsonl"
        path.write_text("not json at all\n")
        assert main(["conform", str(path), "--spec", "toycache"]) == 2
        assert "garbage.jsonl:1" in capsys.readouterr().err

    def test_jsonl_adapter_end_to_end(self, tmp_path, capsys):
        # a foreign log: plain {"action": ...} lines against the bare
        # example model
        path = tmp_path / "foreign.jsonl"
        path.write_text(
            '{"action": "Request", "params": {"data": 1}, "session": 1}\n'
            '{"action": "Respond", "session": 1}\n')
        assert main(["conform", str(path), "--spec", "example",
                     "--adapter", "jsonl"]) == 0


class TestConformObsIntegration:
    def test_trace_records_conform_events(self, toycache_log, tmp_path,
                                          capsys):
        path, _records = toycache_log
        trace = tmp_path / "conform-trace.jsonl"
        assert main(["conform", str(path), "--spec", "toycache",
                     "--trace", str(trace), "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "conform.matched" in out and "conform.events" in out
        names = set()
        with open(trace) as handle:
            for line in handle:
                names.add(json.loads(line)["name"])
        assert {"conform.match", "conform.done"} <= names

    def test_summarize_digests_conform_run(self, toycache_log, tmp_path,
                                           capsys):
        path, records = toycache_log
        victim = len(records) // 2
        records[victim]["fields"]["action"] = "Bogus"
        path.write_text("".join(json.dumps(r, sort_keys=True) + "\n"
                                for r in records))
        trace = tmp_path / "conform-trace.jsonl"
        assert main(["conform", str(path), "--spec", "toycache",
                     "--trace", str(trace)]) == 1
        capsys.readouterr()
        assert main(["trace", "summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "conformance: diverged" in out
        assert f"first divergence at line {victim + 1}" in out


class TestSummarizeJson:
    def test_summary_envelope(self, tmp_path, capsys):
        # record a real testbed trace, then summarize it as JSON
        trace = tmp_path / "run.jsonl"
        assert main(["test", "toycache", "--cases", "2",
                     "--trace", str(trace)]) == 0
        capsys.readouterr()
        assert main(["trace", "summarize", str(trace),
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["records"] > 0
        assert payload["cases"]["total"] == 2
        assert payload["cases"]["divergent"] == 0
        shown = payload["cases"]["shown"]
        assert len(shown) == 2
        assert all(step["outcome"] == "ok"
                   for case in shown for step in case["steps"])
        # steps recorded since the conform subsystem landed carry params
        reader_steps = [s for case in shown for s in case["steps"]]
        assert reader_steps

    def test_summary_json_caps_cases(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        assert main(["test", "toycache", "--cases", "3",
                     "--trace", str(trace)]) == 0
        capsys.readouterr()
        assert main(["trace", "summarize", str(trace), "--cases", "1",
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cases"]["total"] == 3
        assert len(payload["cases"]["shown"]) == 1

    def test_recorded_steps_carry_params(self, tmp_path):
        # the runner now logs the full action binding, which is what
        # lets `mocket conform` discriminate parametrized transitions
        trace = tmp_path / "run.jsonl"
        assert main(["test", "toycache", "--cases", "1",
                     "--trace", str(trace)]) == 0
        with open(trace) as handle:
            steps = [json.loads(line) for line in handle
                     if '"runner.step"' in line]
        assert steps
        assert all("params" in s["fields"] for s in steps)
        assert any(s["fields"]["params"] for s in steps)
