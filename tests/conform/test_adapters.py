"""Log adapters: streaming parse, error tagging, the registry."""

import io

import pytest

from repro.conform import (
    ActionJsonlAdapter,
    LogAdapter,
    LogEvent,
    ObsJsonlAdapter,
    adapter_names,
    get_adapter,
    register_adapter,
)


class TestObsAdapter:
    def test_keeps_only_runner_steps(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            '{"name": "runner.case", "fields": {"case": 0}}\n'
            '{"name": "runner.step", "fields": {"case": 0, "action": "A",'
            ' "params": {"k": 1}}}\n'
            '{"name": "scheduler.notification", "fields": {}}\n'
            '{"name": "runner.step", "fields": {"case": 0, "action": "B"}}\n')
        events = list(ObsJsonlAdapter().read(str(path)))
        assert [e.name for e in events] == ["A", "B"]
        assert events[0].params == {"k": 1}
        assert events[0].session == 0
        assert events[0].line == 2 and events[1].line == 4

    def test_step_without_action_is_skipped(self):
        handle = io.StringIO('{"name": "runner.step", "fields": {}}\n')
        assert list(ObsJsonlAdapter().read(handle)) == []

    def test_bad_json_reports_label_and_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"name": "runner.step"}\nnot json\n')
        with pytest.raises(ValueError, match=r"bad\.jsonl:2: not a 'obs'"):
            list(ObsJsonlAdapter().read(str(path)))

    def test_blank_lines_skipped_but_numbering_kept(self):
        handle = io.StringIO(
            '\n\n{"name": "runner.step", "fields": {"action": "A"}}\n')
        events = list(ObsJsonlAdapter().read(handle))
        assert len(events) == 1 and events[0].line == 3


class TestActionJsonlAdapter:
    def test_minimal_foreign_schema(self):
        handle = io.StringIO(
            '{"action": "Vote", "params": {"n": "n1"}, "session": 7}\n'
            '{"event": "Commit", "case": 8}\n')
        events = list(ActionJsonlAdapter().read(handle))
        assert [(e.name, e.session) for e in events] == [("Vote", 7),
                                                         ("Commit", 8)]
        assert events[0].params == {"n": "n1"}

    def test_record_without_action_raises(self):
        handle = io.StringIO('{"params": {}}\n')
        with pytest.raises(ValueError, match="no 'action' key"):
            list(ActionJsonlAdapter().read(handle))


class TestRegistry:
    def test_bundled_adapters_registered(self):
        assert adapter_names() == ("jsonl", "obs")
        assert isinstance(get_adapter("obs"), ObsJsonlAdapter)
        assert isinstance(get_adapter("jsonl"), ActionJsonlAdapter)

    def test_unknown_adapter(self):
        with pytest.raises(ValueError, match="unknown log adapter 'nope'"):
            get_adapter("nope")

    def test_custom_adapter_plugs_in(self):
        class SpaceAdapter(LogAdapter):
            name = "space-test"

            def parse(self, line_no, line):
                action, _, rest = line.partition(" ")
                return LogEvent(line_no, action, session=rest or None)

        register_adapter(SpaceAdapter)
        try:
            events = list(get_adapter("space-test").read(
                io.StringIO("Vote s1\nCommit s1\n")))
            assert [e.name for e in events] == ["Vote", "Commit"]
            with pytest.raises(ValueError, match="duplicate adapter"):
                register_adapter(SpaceAdapter)
        finally:
            from repro.conform import adapters

            adapters._ADAPTERS.pop("space-test", None)

    def test_nameless_adapter_rejected(self):
        class Nameless(LogAdapter):
            pass

        with pytest.raises(ValueError, match="has no name"):
            register_adapter(Nameless)
