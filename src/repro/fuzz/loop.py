"""The fuzz campaign: a budgeted execute → fingerprint → mutate loop.

Each iteration of :func:`fuzz_campaign` executes one
``mocket-fault-plan/1`` schedule through the real
:class:`~repro.faults.runner.FaultRunner`, fingerprints the verified
states/edges the run visited (:func:`~repro.fuzz.fingerprint.run_coverage`),
triages the outcome, and feeds the corpus:

* a schedule is **kept** only if it visited a fingerprint the corpus
  has never seen, or surfaced a new (deduplicated, stably-identified)
  unattributed bug,
* the next schedule is bred from an energy-picked corpus entry via one
  legality-checked mutation (:mod:`repro.fuzz.mutators`), with seed
  selection biased toward past divergences and bug-anchor states.

Determinism: every random decision of run ``i`` draws from
``random.Random(f"{fuzz_seed}:run{i}")`` — string-seeded, so
independent of ``PYTHONHASHSEED`` — and nothing else; the runner's own
nemesis randomness is plan-seeded exactly as in ``mocket faults``.
The global run counter persists in the corpus, so resuming a corpus
with more budget continues the same stream: fuzzing with budget 6
equals budget 3 twice.  Worker counts cannot perturb anything either
— the parallel executor merges case results in case order, and
coverage reads only case content + executed-step counts.

``guided=False`` runs the control arm the benchmark compares against:
the same budget of runs, but every schedule drawn fresh from the
plain seeded planner stream with no coverage feedback — exactly what
``mocket faults run`` does today, measured on the same yardstick.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..core.mapping.registry import SpecMapping
from ..core.testbed.runner import RunnerConfig
from ..core.testgen.testcase import TestSuite
from ..faults.legality import plan_violations
from ..faults.plan import FaultPlan
from ..faults.planner import apply_plan, plan_faults
from ..faults.runner import FaultConfig, FaultRunner
from ..faults.triage import divergence_id, triage
from ..obs import METRICS, TRACER
from ..tlaplus.graph import StateGraph
from .corpus import Corpus, FuzzError
from .energy import pick_entry
from .fingerprint import GraphIndex, run_coverage
from .mutators import Mutator

__all__ = ["FuzzResult", "fuzz_campaign"]

#: generated seed schedules at the head of a fresh campaign
SEED_SCHEDULES = 2


class FuzzResult:
    """Outcome of one campaign: the corpus plus its trajectory."""

    def __init__(self, corpus: Corpus, trajectory: List[Dict[str, Any]],
                 graph_states: int, graph_edges: int, budget: int,
                 guided: bool):
        self.corpus = corpus
        self.trajectory = trajectory
        self.graph_states = graph_states
        self.graph_edges = graph_edges
        self.budget = budget
        self.guided = guided

    @property
    def bugs(self) -> Dict[str, Dict[str, Any]]:
        return self.corpus.bugs

    @property
    def distinct_states(self) -> int:
        return self.corpus.distinct_states()

    @property
    def distinct_edges(self) -> int:
        return self.corpus.distinct_edges()


def fuzz_campaign(
    graph: StateGraph,
    suite: TestSuite,
    mapping: SpecMapping,
    cluster_factory: Callable,
    node_ids: Sequence[str],
    *,
    budget: int,
    fuzz_seed: str,
    corpus_dir: Optional[str] = None,
    target: str = "",
    chaos: bool = False,
    max_faults: int = 1,
    workers: int = 1,
    guided: bool = True,
    seed_plans: Sequence[FaultPlan] = (),
    runner_config: Optional[RunnerConfig] = None,
    fault_config: Optional[FaultConfig] = None,
    on_run: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> FuzzResult:
    """Run ``budget`` schedule executions and return the fed corpus.

    ``suite`` must already be truncated to the base cases the campaign
    should perturb, and ``graph`` must be the *canonicalized* graph the
    suite was generated from.  ``seed_plans`` are imported (executed
    and, if novel, kept) before any generated schedule — the bridge
    from ``mocket faults run`` payloads into a corpus.
    """
    if budget < 1:
        raise FuzzError(f"fuzz budget must be >= 1, got {budget}")
    fuzz_seed = str(fuzz_seed)
    index = GraphIndex(graph)
    from ..engine import canonical_signature

    meta = {
        "target": target,
        "fuzz_seed": fuzz_seed,
        "chaos": chaos,
        "max_faults": max_faults,
        "guided": guided,
        "cases": sorted(case.case_id for case in suite),
        "graph": canonical_signature(graph),
        "nodes": sorted(node_ids),
    }
    corpus = Corpus.open_or_create(corpus_dir, meta)
    mutator = Mutator(graph, index, suite, mapping, node_ids, chaos=chaos,
                      max_faults=max_faults)
    imported = list(seed_plans)
    for position, plan in enumerate(imported):
        problems = plan_violations(plan, suite, graph=graph,
                                   node_ids=node_ids)
        if problems:
            raise FuzzError(f"seed plan #{position} is not legal for "
                            f"this suite: {problems[0]}")

    trajectory: List[Dict[str, Any]] = []
    with TRACER.span("fuzz.campaign", target=target, budget=budget,
                     guided=guided):
        for offset in range(budget):
            run_index = corpus.runs
            rng = random.Random(f"{fuzz_seed}:run{run_index}")
            op, parent_id, plan = _next_schedule(
                run_index, rng, imported, corpus, mutator, graph, suite,
                mapping, node_ids, fuzz_seed, chaos, max_faults, target,
                guided)
            record = _execute(plan, op, parent_id, run_index, graph, suite,
                              mapping, cluster_factory, corpus, index,
                              workers, runner_config, fault_config, guided)
            trajectory.append(record)
            if on_run is not None:
                on_run(record)
    corpus.save()
    if TRACER.enabled:
        TRACER.emit("fuzz.done", runs=corpus.runs,
                    entries=len(corpus.entries),
                    states=corpus.distinct_states(),
                    graph_states=index.num_states,
                    edges=corpus.distinct_edges(),
                    graph_edges=index.num_edges,
                    bugs=len(corpus.bugs), guided=guided, target=target)
    return FuzzResult(corpus, trajectory, index.num_states,
                      index.num_edges, budget, guided)


def _next_schedule(run_index: int, rng: random.Random,
                   imported: List[FaultPlan], corpus: Corpus,
                   mutator: Mutator, graph, suite, mapping, node_ids,
                   fuzz_seed: str, chaos: bool, max_faults: int,
                   target: str, guided: bool):
    """(op, parent_entry_id, plan) for the next run of the campaign."""
    def planned(salt: str) -> FaultPlan:
        return plan_faults(graph, suite, mapping, f"{fuzz_seed}/{salt}",
                           node_ids, chaos=chaos, target=target,
                           max_faults_per_case=max_faults)

    if not guided:
        # control arm: a plain seeded stream, no feedback
        return "unguided", None, planned(f"unguided{run_index}")
    if run_index < len(imported):
        return "import", None, imported[run_index]
    generated = run_index - len(imported)
    if generated < SEED_SCHEDULES or not corpus.entries:
        return "seed", None, planned(f"seed{generated}")
    parent = pick_entry(corpus.entries, corpus.state_hits,
                        corpus.edge_hits, corpus.bug_anchor_fps(), rng)
    op, candidate = mutator.mutate(parent.plan, rng,
                                   set(corpus.edge_hits),
                                   corpus.bug_anchor_fps())
    if candidate is None:
        # no legal mutation found in budgeted attempts: rerun the
        # parent (still deterministic; its rarity decays via the hit
        # counts, so the wheel moves on next round)
        return "rerun", parent.entry_id, parent.plan
    return op, parent.entry_id, candidate


def _execute(plan: FaultPlan, op: str, parent_id: Optional[int],
             run_index: int, graph, suite, mapping, cluster_factory,
             corpus: Corpus, index: GraphIndex, workers: int,
             runner_config, fault_config, guided: bool) -> Dict[str, Any]:
    """Run one schedule, account its coverage, update the corpus."""
    full = apply_plan(suite, graph, plan)
    runner = FaultRunner(mapping, graph, cluster_factory, plan,
                         runner_config, fault_config)
    outcome = runner.run_suite(full, workers=workers)
    payload = triage(outcome, plan)
    coverage = run_coverage(outcome, index)
    new_states, new_edges = corpus.novelty(coverage)

    failure_ids: List[str] = []
    new_bugs: List[str] = []
    for result, failure in zip(outcome.failures, payload["failures"]):
        failure_ids.append(failure["id"])
        if failure["verdict"] != "unattributed":
            continue
        _stable, anchor = divergence_id(result.case, result.divergence)
        if corpus.record_bug(failure["id"], entry=None,
                             kind=failure["kind"],
                             case_id=failure["case_id"], anchor=anchor,
                             headline=failure["headline"]):
            new_bugs.append(failure["id"])

    kept = None
    if guided and (new_states or new_edges or new_bugs) \
            and not corpus.seen_plan(plan):
        kept = corpus.add_entry(plan, op, parent_id, coverage,
                                len(new_states), len(new_edges),
                                sorted(set(failure_ids)))
        for bug_id in new_bugs:
            corpus.bugs[bug_id]["entry"] = kept.entry_id
    corpus.observe(coverage)
    corpus.runs = run_index + 1

    record = {
        "run": run_index,
        "op": op,
        "parent": parent_id,
        "injections": len(plan.injections),
        "kept": kept.entry_id if kept is not None else None,
        "new_states": len(new_states),
        "new_edges": len(new_edges),
        "states": corpus.distinct_states(),
        "edges": corpus.distinct_edges(),
        "divergent": payload["divergent"],
        "unattributed": payload["unattributed"],
        "new_bugs": new_bugs,
        "bugs": len(corpus.bugs),
    }
    if TRACER.enabled:
        TRACER.emit("fuzz.run", **record)
        METRICS.counter("fuzz.runs").inc()
        METRICS.counter("fuzz.new_states").inc(len(new_states))
        METRICS.counter("fuzz.new_edges").inc(len(new_edges))
        if kept is not None:
            METRICS.counter("fuzz.kept").inc()
        for bug_id in new_bugs:
            TRACER.emit("fuzz.bug", id=bug_id, run=run_index,
                        kind=corpus.bugs[bug_id]["kind"],
                        case=corpus.bugs[bug_id]["case_id"])
            METRICS.counter("fuzz.bugs").inc()
    return record
