"""``repro.fuzz`` — model-guided fuzzing of fault schedules.

Closes the coverage-feedback loop over the nemesis layer (Gulcan /
Majumdar / Ozkan, "Model-guided Fuzzing of Distributed Systems"): run a
``mocket-fault-plan/1`` schedule, fingerprint which verified
states/edges of the canonical graph the run visited, keep the schedule
in an on-disk corpus only if it reached new coverage, and breed the
next schedule by mutating an energy-picked corpus entry — biased toward
rarely-hit graph regions and the neighbourhood of past unattributed
divergences.  ``mocket fuzz <target> --budget N --corpus DIR`` is the
front end; see docs/FUZZING.md.

The whole loop is deterministic: one ``--fuzz-seed`` stream drives
seed selection and mutation, coverage is content-anchored blake2b
fingerprinting, and the corpus serialization is canonical — the same
seed yields byte-identical corpora across ``--workers`` counts and
``PYTHONHASHSEED`` values.
"""

from .corpus import CORPUS_FORMAT, Corpus, CorpusEntry, FuzzError
from .energy import entry_energy, pick_entry
from .fingerprint import (
    Coverage,
    GraphIndex,
    case_coverage,
    edge_fingerprint,
    format_fp,
    run_coverage,
)
from .loop import FuzzResult, fuzz_campaign
from .mutators import MUTATORS, Mutator, mutate_plan, stronger_variants
from .report import fuzz_dict, render_fuzz_json, render_fuzz_text

__all__ = [
    "CORPUS_FORMAT",
    "FuzzError",
    "Corpus",
    "CorpusEntry",
    "Coverage",
    "GraphIndex",
    "case_coverage",
    "run_coverage",
    "edge_fingerprint",
    "format_fp",
    "entry_energy",
    "pick_entry",
    "MUTATORS",
    "Mutator",
    "mutate_plan",
    "stronger_variants",
    "FuzzResult",
    "fuzz_campaign",
    "fuzz_dict",
    "render_fuzz_json",
    "render_fuzz_text",
]
