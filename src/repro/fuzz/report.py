"""Rendering fuzz campaign results (text + stable JSON v1 envelope)."""

from __future__ import annotations

import json
from typing import Any, Dict, List

from .loop import FuzzResult

__all__ = ["render_fuzz_text", "render_fuzz_json", "fuzz_dict"]

#: JSON envelope version for ``mocket fuzz --format json``.
FUZZ_VERSION = 1


def fuzz_dict(result: FuzzResult) -> Dict[str, Any]:
    """The stable v1 envelope for ``mocket fuzz --format json``."""
    corpus = result.corpus
    return {
        "version": FUZZ_VERSION,
        "target": corpus.meta.get("target", ""),
        "fuzz_seed": corpus.meta.get("fuzz_seed", ""),
        "guided": result.guided,
        "budget": result.budget,
        "runs": corpus.runs,
        "entries": len(corpus.entries),
        "coverage": {
            "states": result.distinct_states,
            "graph_states": result.graph_states,
            "edges": result.distinct_edges,
            "graph_edges": result.graph_edges,
        },
        "bugs": {bug_id: dict(corpus.bugs[bug_id])
                 for bug_id in sorted(corpus.bugs)},
        "trajectory": [dict(record) for record in result.trajectory],
    }


def render_fuzz_json(result: FuzzResult) -> str:
    return json.dumps(fuzz_dict(result), indent=2, sort_keys=True)


def render_fuzz_text(result: FuzzResult, verbose: bool = True) -> str:
    """Human-readable campaign report.

    ``verbose`` adds one line per executed run — readable for tutorial
    budgets, droppable for long campaigns.
    """
    corpus = result.corpus
    lines: List[str] = []
    if verbose:
        for record in result.trajectory:
            gain = []
            if record["new_states"]:
                gain.append(f"+{record['new_states']} states")
            if record["new_edges"]:
                gain.append(f"+{record['new_edges']} edges")
            if record["new_bugs"]:
                gain.append(f"+{len(record['new_bugs'])} bug(s)")
            kept = (f"kept #{record['kept']}" if record["kept"] is not None
                    else "discarded")
            lines.append(f"  run {record['run']:>3} {record['op']:<15} "
                         f"{record['injections']:>2} injections  "
                         f"{', '.join(gain) or 'no new coverage'}  "
                         f"[{kept}]")
    lines.append(f"coverage: {result.distinct_states} of "
                 f"{result.graph_states} states, "
                 f"{result.distinct_edges} of {result.graph_edges} "
                 f"edges visited")
    where = f" at {corpus.root}" if corpus.root else " (in-memory)"
    lines.append(f"corpus{where}: {len(corpus.entries)} entries, "
                 f"{corpus.runs} total runs, {len(corpus.bugs)} bug(s)")
    for bug_id in sorted(corpus.bugs):
        info = corpus.bugs[bug_id]
        lines.append(f"  bug {bug_id} [{info['kind']}] case "
                     f"#{info['case_id']}: {info['headline']}")
    return "\n".join(lines)
