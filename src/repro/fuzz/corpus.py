"""The on-disk fuzz corpus (``mocket-fuzz-corpus/1``).

A corpus directory holds every schedule that ever reached new coverage:

* ``corpus.json`` — the index: campaign metadata, per-entry coverage
  records, global fingerprint hit counts, and the deduplicated bug
  table keyed by stable triage divergence ids,
* ``plans/NNNN.json`` — one canonical ``mocket-fault-plan/1`` file per
  kept entry.

Everything written is canonical (sorted keys, fixed indentation, no
timestamps, fingerprints as fixed-width hex), so a corpus built with
the same ``--fuzz-seed`` is **byte-identical** across ``--workers``
counts and ``PYTHONHASHSEED`` values — the determinism guard in
``tests/fuzz`` diffs the raw files.

A corpus is resumable: reopening it with more budget continues the
campaign deterministically (per-run randomness is salted with the
global run counter, which the index persists).  Reopening with
mismatched metadata (different target, seed, suite shape or graph)
raises :class:`FuzzError` — coverage feedback against the wrong graph
would be meaningless.
"""

from __future__ import annotations

import json
import os
from hashlib import blake2b
from typing import Any, Dict, List, Optional

from ..faults.plan import FaultPlan
from .fingerprint import Coverage, format_fp

__all__ = ["CORPUS_FORMAT", "FuzzError", "CorpusEntry", "Corpus"]

CORPUS_FORMAT = "mocket-fuzz-corpus/1"


class FuzzError(RuntimeError):
    """A corpus/campaign configuration error (CLI exit code 2)."""


def plan_digest(plan: FaultPlan) -> str:
    """Stable digest of a plan's canonical JSON — the dedup key."""
    return blake2b(plan.to_json().encode("utf-8"),
                   digest_size=8).hexdigest()


class CorpusEntry:
    """One kept schedule and the coverage that earned it a slot."""

    __slots__ = ("entry_id", "run", "op", "parent", "plan", "digest",
                 "coverage", "new_states", "new_edges", "divergences")

    def __init__(self, entry_id: int, run: int, op: str,
                 parent: Optional[int], plan: FaultPlan, digest: str,
                 coverage: Coverage, new_states: int, new_edges: int,
                 divergences: List[str]):
        self.entry_id = entry_id
        self.run = run              # global run counter when kept
        self.op = op                # "seed", "import", or a mutator name
        self.parent = parent        # entry id this was mutated from
        self.plan = plan
        self.digest = digest
        self.coverage = coverage
        self.new_states = new_states
        self.new_edges = new_edges
        self.divergences = list(divergences)

    def plan_filename(self) -> str:
        return f"plans/{self.entry_id:04d}.json"

    def to_jsonable(self) -> Dict[str, Any]:
        payload = {
            "id": self.entry_id,
            "run": self.run,
            "op": self.op,
            "parent": self.parent,
            "plan": self.plan_filename(),
            "digest": self.digest,
            "new_states": self.new_states,
            "new_edges": self.new_edges,
            "divergences": sorted(self.divergences),
        }
        payload.update(self.coverage.to_jsonable())
        return payload

    @classmethod
    def from_jsonable(cls, payload: Dict[str, Any],
                      plan: FaultPlan) -> "CorpusEntry":
        return cls(payload["id"], payload["run"], payload["op"],
                   payload["parent"], plan, payload["digest"],
                   Coverage.from_jsonable(payload),
                   payload["new_states"], payload["new_edges"],
                   list(payload["divergences"]))


class Corpus:
    """The corpus index plus its plan files; in-memory when rootless."""

    def __init__(self, root: Optional[str], meta: Dict[str, Any]):
        self.root = root
        self.meta = dict(meta)
        self.runs = 0               # total schedule executions so far
        self.entries: List[CorpusEntry] = []
        self.state_hits: Dict[int, int] = {}
        self.edge_hits: Dict[int, int] = {}
        self.bugs: Dict[str, Dict[str, Any]] = {}
        self._digests: Dict[str, int] = {}

    # -- opening ---------------------------------------------------------------
    @classmethod
    def open_or_create(cls, root: Optional[str],
                       meta: Dict[str, Any]) -> "Corpus":
        """Open an existing corpus (validating ``meta``) or start fresh."""
        if root is None:
            return cls(None, meta)
        index_path = os.path.join(root, "corpus.json")
        if not os.path.exists(index_path):
            return cls(root, meta)
        with open(index_path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if payload.get("format") != CORPUS_FORMAT:
            raise FuzzError(f"{index_path}: not a mocket fuzz corpus "
                            f"(format {payload.get('format')!r})")
        stored = payload.get("meta", {})
        mismatched = sorted(key for key in set(meta) | set(stored)
                            if meta.get(key) != stored.get(key))
        if mismatched:
            detail = ", ".join(
                f"{key}: corpus has {stored.get(key)!r}, "
                f"campaign wants {meta.get(key)!r}" for key in mismatched)
            raise FuzzError(f"corpus at {root} does not match this "
                            f"campaign ({detail})")
        corpus = cls(root, stored)
        corpus.runs = payload["runs"]
        corpus.state_hits = {int(fp, 16): count for fp, count
                             in payload["state_hits"].items()}
        corpus.edge_hits = {int(fp, 16): count for fp, count
                            in payload["edge_hits"].items()}
        corpus.bugs = dict(payload["bugs"])
        for raw in payload["entries"]:
            plan = FaultPlan.load(os.path.join(root, raw["plan"]))
            entry = CorpusEntry.from_jsonable(raw, plan)
            corpus.entries.append(entry)
            corpus._digests[entry.digest] = entry.entry_id
        return corpus

    # -- feedback accounting ---------------------------------------------------
    def novelty(self, coverage: Coverage):
        """Fingerprints in ``coverage`` the corpus has never seen."""
        return coverage.new_against(self.state_hits, self.edge_hits)

    def observe(self, coverage: Coverage) -> None:
        """Count one run's visits into the global hit tables."""
        for fp in coverage.states:
            self.state_hits[fp] = self.state_hits.get(fp, 0) + 1
        for fp in coverage.edges:
            self.edge_hits[fp] = self.edge_hits.get(fp, 0) + 1

    def seen_plan(self, plan: FaultPlan) -> bool:
        return plan_digest(plan) in self._digests

    def add_entry(self, plan: FaultPlan, op: str, parent: Optional[int],
                  coverage: Coverage, new_states: int, new_edges: int,
                  divergences: List[str]) -> CorpusEntry:
        entry = CorpusEntry(len(self.entries), self.runs, op, parent, plan,
                            plan_digest(plan), coverage, new_states,
                            new_edges, divergences)
        self.entries.append(entry)
        self._digests[entry.digest] = entry.entry_id
        return entry

    def record_bug(self, bug_id: str, *, entry: Optional[int], kind: str,
                   case_id: int, anchor: Optional[int],
                   headline: str) -> bool:
        """Register a deduplicated bug; True when it is new."""
        if bug_id in self.bugs:
            return False
        self.bugs[bug_id] = {
            "run": self.runs,
            "entry": entry,
            "kind": kind,
            "case_id": case_id,
            "anchor": format_fp(anchor) if anchor is not None else None,
            "headline": headline,
        }
        return True

    def bug_anchor_fps(self):
        """State fingerprints near past bugs — the seed-selection bias."""
        return {int(info["anchor"], 16) for info in self.bugs.values()
                if info.get("anchor")}

    # -- totals ----------------------------------------------------------------
    def distinct_states(self) -> int:
        return len(self.state_hits)

    def distinct_edges(self) -> int:
        return len(self.edge_hits)

    # -- persistence -----------------------------------------------------------
    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "format": CORPUS_FORMAT,
            "meta": self.meta,
            "runs": self.runs,
            "entries": [entry.to_jsonable() for entry in self.entries],
            "state_hits": {format_fp(fp): count for fp, count
                           in sorted(self.state_hits.items())},
            "edge_hits": {format_fp(fp): count for fp, count
                          in sorted(self.edge_hits.items())},
            "bugs": {bug_id: self.bugs[bug_id]
                     for bug_id in sorted(self.bugs)},
        }

    def save(self) -> None:
        """Write the index + every plan file (canonical bytes)."""
        if self.root is None:
            return
        os.makedirs(os.path.join(self.root, "plans"), exist_ok=True)
        for entry in self.entries:
            path = os.path.join(self.root, entry.plan_filename())
            if not os.path.exists(path):
                entry.plan.save(path)
        index = json.dumps(self.to_jsonable(), sort_keys=True,
                           indent=2) + "\n"
        with open(os.path.join(self.root, "corpus.json"), "w",
                  encoding="utf-8") as handle:
            handle.write(index)

    def __repr__(self) -> str:
        return (f"Corpus({len(self.entries)} entries, {self.runs} runs, "
                f"{len(self.bugs)} bugs)")
