"""Seed selection: which corpus entry breeds the next schedule?

AFL-style *energy*: an entry is worth mutating in proportion to how
rare the coverage it holds is.  Each fingerprint contributes the
reciprocal of its global hit count, normalized by entry size, so a
schedule that is the only one reaching some corner of the graph keeps
getting picked long after the common paths are saturated.  Two biases
ride on top, per the fuzzer's brief:

* entries whose run *diverged* (any failure, attributed or not) are
  doubled — fault-adjacent schedules breed interesting children,
* entries whose coverage touches the anchor state of a known bug
  (an unattributed triage failure, see
  :func:`repro.faults.triage.divergence_id`) are doubled again — the
  neighbourhood of a past bug is where its siblings live.

Selection is a deterministic seeded roulette wheel: same corpus, same
rng stream, same pick — on any machine, any ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Sequence, Set

from .corpus import CorpusEntry

__all__ = ["entry_energy", "pick_entry"]


def entry_energy(entry: CorpusEntry, state_hits: Dict[int, int],
                 edge_hits: Dict[int, int],
                 bug_anchors: Set[int]) -> float:
    """Rarity-weighted energy of one corpus entry (> 0)."""
    rarity = 0.0
    for fp in entry.coverage.states:
        rarity += 1.0 / max(1, state_hits.get(fp, 1))
    for fp in entry.coverage.edges:
        rarity += 1.0 / max(1, edge_hits.get(fp, 1))
    size = max(1, len(entry.coverage))
    energy = rarity / size
    if entry.divergences:
        energy *= 2.0
    if bug_anchors and entry.coverage.states & bug_anchors:
        energy *= 2.0
    return max(energy, 1e-9)


def pick_entry(entries: Sequence[CorpusEntry], state_hits: Dict[int, int],
               edge_hits: Dict[int, int], bug_anchors: Set[int],
               rng: random.Random) -> Optional[CorpusEntry]:
    """Roulette-wheel pick over entry energies; None on an empty corpus."""
    if not entries:
        return None
    energies = [entry_energy(entry, state_hits, edge_hits, bug_anchors)
                for entry in entries]
    total = sum(energies)
    roll = rng.random() * total
    for entry, energy in zip(entries, energies):
        roll -= energy
        if roll < 0:
            return entry
    return entries[-1]  # float edge: roll == total
