"""Coverage fingerprinting: which verified states/edges did a run visit?

The fuzzer's feedback signal is *graph coverage*: every executed test
step confirms the implementation reached one verified state of the
canonical graph via one verified edge.  Both are identified by the
engine's stable blake2b FP64 fingerprints
(:mod:`repro.engine.fingerprint`), so coverage sets are content-anchored
— independent of node numbering, exploration order, worker count and
``PYTHONHASHSEED`` — and comparable across runs, corpora and even
re-explored graphs.

* a **state fingerprint** is ``fingerprint_state(state)``,
* an **edge fingerprint** is ``fingerprint_value((src_fp, action,
  params, dst_fp))`` — injective over (endpoint contents, label).

:func:`case_coverage` reads coverage straight off a
:class:`~repro.core.testgen.testcase.TestCase` and the number of steps
that actually executed, so it needs no graph access and works for
derived (fault-spliced) cases too.  :class:`GraphIndex` precomputes the
canonical graph's full fingerprint population for denominators and for
the mutators' "which edges are still uncovered" queries.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from ..core.testbed.report import SuiteResult
from ..core.testgen.testcase import TestCase
from ..engine.fingerprint import fingerprint_state, fingerprint_value
from ..tlaplus.graph import Edge, StateGraph
from ..tlaplus.state import State

__all__ = ["GraphIndex", "Coverage", "case_coverage", "run_coverage",
           "edge_fingerprint", "format_fp"]


def format_fp(fp: int) -> str:
    """Fixed-width lowercase hex — the serialized fingerprint form."""
    return f"{fp:016x}"


def edge_fingerprint(src_fp: int, label, dst_fp: int) -> int:
    """Stable fingerprint of one verified transition."""
    return fingerprint_value((src_fp, label.name, label.params, dst_fp))


class Coverage:
    """A set of visited state and edge fingerprints."""

    __slots__ = ("states", "edges")

    def __init__(self, states: Optional[Iterable[int]] = None,
                 edges: Optional[Iterable[int]] = None):
        self.states: Set[int] = set(states or ())
        self.edges: Set[int] = set(edges or ())

    def update(self, other: "Coverage") -> None:
        self.states |= other.states
        self.edges |= other.edges

    def __len__(self) -> int:
        return len(self.states) + len(self.edges)

    def new_against(self, seen_states: Iterable[int],
                    seen_edges: Iterable[int]) -> Tuple[Set[int], Set[int]]:
        """Fingerprints in this coverage but not in the seen sets."""
        return (self.states - set(seen_states),
                self.edges - set(seen_edges))

    def to_jsonable(self) -> Dict[str, list]:
        return {"states": sorted(format_fp(fp) for fp in self.states),
                "edges": sorted(format_fp(fp) for fp in self.edges)}

    @classmethod
    def from_jsonable(cls, payload: Dict[str, list]) -> "Coverage":
        return cls(states=(int(fp, 16) for fp in payload["states"]),
                   edges=(int(fp, 16) for fp in payload["edges"]))

    def __repr__(self) -> str:
        return f"Coverage({len(self.states)} states, {len(self.edges)} edges)"


class GraphIndex:
    """Fingerprint view of a canonical state graph.

    Precomputes every state and edge fingerprint once; mutators query
    it for uncovered regions, reports for denominators.  State
    fingerprints are cached by the (interned) ``State`` objects the
    graph holds, so fingerprinting a suite over the same graph is
    amortized O(1) per step.
    """

    def __init__(self, graph: StateGraph):
        self.graph = graph
        self._state_fp_cache: Dict[State, int] = {}
        self.state_fps = [self.state_fp(state)
                          for _, state in graph.states()]
        self.edge_fp_by_index: Dict[int, int] = {}
        for edge in graph.edges():
            self.edge_fp_by_index[edge.index] = self.edge_fp(edge)
        self.all_states: Set[int] = set(self.state_fps)
        self.all_edges: Set[int] = set(self.edge_fp_by_index.values())

    @property
    def num_states(self) -> int:
        return self.graph.num_states

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    def state_fp(self, state: State) -> int:
        fp = self._state_fp_cache.get(state)
        if fp is None:
            fp = self._state_fp_cache[state] = fingerprint_state(state)
        return fp

    def state_fp_of(self, node_id: int) -> int:
        return self.state_fps[node_id]

    def edge_fp(self, edge: Edge) -> int:
        cached = self.edge_fp_by_index.get(edge.index)
        if cached is not None:
            return cached
        return edge_fingerprint(self.state_fp(self.graph.state_of(edge.src)),
                                edge.label,
                                self.state_fp(self.graph.state_of(edge.dst)))

    def uncovered_out_edges(self, node_id: int,
                            covered_edges: Set[int]) -> list:
        """Outgoing edges of ``node_id`` whose fingerprint is uncovered."""
        return [edge for edge in self.graph.out_edges(node_id)
                if self.edge_fp(edge) not in covered_edges]


def case_coverage(case: TestCase, executed: Optional[int] = None,
                  index: Optional[GraphIndex] = None) -> Coverage:
    """Coverage of one case: the initial state plus the first
    ``executed`` confirmed steps (default: all of them).

    Content-anchored: works for hand-built cases without graph
    provenance, and for derived fault-splice cases alike.  Pass a
    :class:`GraphIndex` to share its state-fingerprint cache.
    """
    fp_of = index.state_fp if index is not None else fingerprint_state
    previous = fp_of(case.initial_state)
    coverage = Coverage(states=(previous,))
    steps = case.steps if executed is None else case.steps[:executed]
    for step in steps:
        dst = fp_of(step.expected_state)
        coverage.edges.add(edge_fingerprint(previous, step.label, dst))
        coverage.states.add(dst)
        previous = dst
    return coverage


def run_coverage(outcome: SuiteResult,
                 index: Optional[GraphIndex] = None) -> Coverage:
    """Union coverage of a suite run, honouring how far each case got.

    A divergent case contributes only its confirmed prefix (the
    divergent step's destination state was never verified to hold).
    """
    total = Coverage()
    for result in outcome.results:
        total.update(case_coverage(result.case, result.executed_actions,
                                   index))
    return total
