"""Schedule mutation: the shrink vocabulary run in reverse, plus splices.

The shrinker (:mod:`repro.faults.shrink`) minimizes plans by dropping
injections and weakening their parameters.  The fuzzer needs the whole
dial: it **weakens** and **drops** to escape over-constrained
schedules, **strengthens** (the weakening dimensions inverted: larger
delay counts, later heals, wider partition groups), **transposes**
chaos injections to new step boundaries, and — the model-guided part —
**splices** new injections aimed at uncovered regions of the canonical
graph: a modeled splice targets a verified fault edge whose fingerprint
the corpus has never visited, and a spliced tail prefers uncovered
continuations.

Every mutation is legality-checked with
:func:`repro.faults.legality.plan_violations` before it is returned, so
the planner's k-budget rules (one disruptive window, one
partition-family injection per case) survive arbitrarily long mutation
chains.  All randomness comes from the caller's seeded stream.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Set, Tuple

from ..core.mapping.kinds import TriggerKind
from ..core.mapping.registry import SpecMapping
from ..core.testgen.testcase import TestCase, TestSuite
from ..faults.kinds import ChaosKind, DISRUPTIVE_KINDS, InjectionMode
from ..faults.legality import plan_violations
from ..faults.plan import EdgeRef, FaultInjection, FaultPlan
from ..faults.planner import _extra_params
from ..faults.shrink import _weaker_variants
from ..tlaplus.graph import StateGraph
from .fingerprint import GraphIndex, case_coverage

__all__ = ["MUTATORS", "Mutator", "mutate_plan", "stronger_variants"]

#: (name, weight) — coverage-seeking ops carry the heavier dice
MUTATORS: Tuple[Tuple[str, int], ...] = (
    ("splice_modeled", 3),
    ("extend_tail", 3),
    ("splice_chaos", 2),
    ("strengthen", 2),
    ("transpose", 2),
    ("weaken", 1),
    ("drop", 1),
)

_BENIGN = (ChaosKind.PARTITION, ChaosKind.REORDER, ChaosKind.LINK_CUT,
           ChaosKind.DELAY, ChaosKind.PARTIAL_PARTITION)
_DISRUPTIVE = (ChaosKind.BOUNCE, ChaosKind.CRASH, ChaosKind.CORRUPT)


class Mutator:
    """Bound mutation context: one campaign's graph/suite/coverage view."""

    def __init__(self, graph: StateGraph, index: GraphIndex,
                 suite: TestSuite, mapping: SpecMapping,
                 node_ids: Sequence[str], *, chaos: bool = False,
                 max_faults: int = 1):
        self.graph = graph
        self.index = index
        self.suite = suite
        self.mapping = mapping
        self.node_ids = list(node_ids)
        self.chaos = chaos
        self.max_faults = max_faults
        self.fault_names = {
            name for name, action in mapping.actions.items()
            if action.trigger is TriggerKind.FAULT}
        # state fingerprints along each base case's path, for bug bias
        self._case_states = {
            case.case_id: case_coverage(case, index=index).states
            for case in suite}

    # -- entry point -----------------------------------------------------------
    def mutate(self, plan: FaultPlan, rng: random.Random,
               covered_edges: Set[int],
               bias_anchors: Set[int] = frozenset(),
               attempts: int = 8) -> Tuple[str, Optional[FaultPlan]]:
        """One legal mutation of ``plan``, or ``("noop", None)``.

        Draws an op from the weighted table, applies it, and keeps the
        result only if it passes the full legality check; bounded
        retries keep the stream deterministic even when an op has no
        legal move (e.g. modeled splices on a spec without fault
        actions).
        """
        for _ in range(attempts):
            op = self._pick_op(rng)
            candidate = self._apply(op, plan, rng, covered_edges,
                                    bias_anchors)
            if candidate is None:
                continue
            if plan_violations(candidate, self.suite, graph=self.graph,
                               node_ids=self.node_ids,
                               max_faults_per_case=self.max_faults):
                continue
            return op, candidate
        return "noop", None

    def _pick_op(self, rng: random.Random) -> str:
        total = sum(weight for _, weight in MUTATORS)
        roll = rng.randrange(total)
        for name, weight in MUTATORS:
            roll -= weight
            if roll < 0:
                return name
        return MUTATORS[-1][0]  # pragma: no cover - roll < total always

    def _apply(self, op: str, plan: FaultPlan, rng: random.Random,
               covered_edges: Set[int],
               bias_anchors: Set[int]) -> Optional[FaultPlan]:
        if op == "drop":
            return self._drop(plan, rng)
        if op == "transpose":
            return self._transpose(plan, rng)
        if op == "weaken":
            return self._weaken(plan, rng)
        if op == "strengthen":
            return self._strengthen(plan, rng)
        if op == "extend_tail":
            return self._extend_tail(plan, rng, covered_edges)
        if op == "splice_modeled":
            return self._splice_modeled(plan, rng, covered_edges,
                                        bias_anchors)
        return self._splice_chaos(plan, rng, bias_anchors)

    # -- the shrink vocabulary, both directions --------------------------------
    def _drop(self, plan: FaultPlan,
              rng: random.Random) -> Optional[FaultPlan]:
        if not plan.injections:
            return None
        victim = rng.randrange(len(plan.injections))
        return plan.subset([injection for position, injection
                            in enumerate(plan.injections)
                            if position != victim])

    def _weaken(self, plan: FaultPlan,
                rng: random.Random) -> Optional[FaultPlan]:
        choices = [(position, variants) for position, injection
                   in enumerate(plan.injections)
                   for variants in [_weaker_variants(injection)] if variants]
        if not choices:
            return None
        position, variants = choices[rng.randrange(len(choices))]
        return self._replace_at(plan, position,
                                variants[rng.randrange(len(variants))])

    def _strengthen(self, plan: FaultPlan,
                    rng: random.Random) -> Optional[FaultPlan]:
        choices = [(position, variants) for position, injection
                   in enumerate(plan.injections)
                   for variants in [stronger_variants(injection,
                                                      self.node_ids)]
                   if variants]
        if not choices:
            return None
        position, variants = choices[rng.randrange(len(choices))]
        return self._replace_at(plan, position,
                                variants[rng.randrange(len(variants))])

    def _transpose(self, plan: FaultPlan,
                   rng: random.Random) -> Optional[FaultPlan]:
        """Move one chaos injection to a different legal step boundary."""
        by_id = {case.case_id: case for case in self.suite}
        chaos = [(position, injection) for position, injection
                 in enumerate(plan.injections)
                 if injection.mode is InjectionMode.CHAOS
                 and injection.case_id in by_id]
        if not chaos:
            return None
        position, injection = chaos[rng.randrange(len(chaos))]
        case = by_id[injection.case_id]
        if len(case.steps) < 2:
            return None
        top = (len(case.steps) if injection.disruptive
               else len(case.steps) - 1)
        step = rng.randrange(1, top + 1)
        moved = FaultInjection(injection.mode, injection.kind,
                               injection.case_id, step,
                               params=injection.params)
        return self._replace_at(plan, position, moved)

    # -- model-guided splices --------------------------------------------------
    def _extend_tail(self, plan: FaultPlan, rng: random.Random,
                     covered_edges: Set[int]) -> Optional[FaultPlan]:
        """Grow a modeled splice's tail one verified edge, preferring an
        uncovered continuation (non-fault edges only: the k-budget is
        spent on the spliced fault chain, not its tail)."""
        modeled = [(position, injection) for position, injection
                   in enumerate(plan.injections)
                   if injection.mode is InjectionMode.MODELED]
        if not modeled:
            return None
        position, injection = modeled[rng.randrange(len(modeled))]
        end = injection.tail[-1].dst if injection.tail else injection.edge.dst
        pool = [edge for edge in self.graph.out_edges(end)
                if edge.label.name not in self.fault_names]
        if not pool:
            return None
        uncovered = [edge for edge in pool
                     if self.index.edge_fp(edge) not in covered_edges]
        pick_from = uncovered or pool
        edge = pick_from[rng.randrange(len(pick_from))]
        grown = injection.replace(tail=list(injection.tail)
                                  + [EdgeRef(edge.src, edge.dst, edge.label)])
        return self._replace_at(plan, position, grown)

    def _splice_modeled(self, plan: FaultPlan, rng: random.Random,
                        covered_edges: Set[int],
                        bias_anchors: Set[int]) -> Optional[FaultPlan]:
        """Splice a fresh verified fault edge, aimed at uncovered ones."""
        candidates: List[Tuple[TestCase, int, object, bool]] = []
        for case in self.suite:
            source_ids = [step.src_id for step in case.steps] + [case.final_id]
            if any(sid < 0 for sid in source_ids):
                continue
            for splice_at, sid in enumerate(source_ids):
                for edge in self.graph.out_edges(sid):
                    if edge.label.name not in self.fault_names:
                        continue
                    fresh = self.index.edge_fp(edge) not in covered_edges
                    candidates.append((case, splice_at, edge, fresh))
        if not candidates:
            return None
        pool = self._prefer(candidates, bias_anchors, rng)
        case, splice_at, edge, _fresh = pool[rng.randrange(len(pool))]
        tail = self._guided_tail(edge.dst, rng, covered_edges)
        splice = FaultInjection(
            InjectionMode.MODELED,
            self.mapping.actions[edge.label.name].fault_kind.value,
            case.case_id, splice_at,
            derived_case_id=self._next_case_id(plan),
            edge=EdgeRef(edge.src, edge.dst, edge.label),
            tail=[EdgeRef(e.src, e.dst, e.label) for e in tail])
        return plan.subset(list(plan.injections) + [splice])

    def _splice_chaos(self, plan: FaultPlan, rng: random.Random,
                      bias_anchors: Set[int]) -> Optional[FaultPlan]:
        """Add one chaos injection to a case with k-budget headroom."""
        usage = {}
        partition_used = set()
        disruptive_used = set()
        for injection in plan.injections:
            if injection.mode is not InjectionMode.CHAOS:
                continue
            usage[injection.case_id] = usage.get(injection.case_id, 0) + 1
            kind = ChaosKind(injection.kind)
            if kind in (ChaosKind.PARTITION, ChaosKind.PARTIAL_PARTITION):
                partition_used.add(injection.case_id)
            if kind in DISRUPTIVE_KINDS:
                disruptive_used.add(injection.case_id)
        eligible = [(case, False) for case in self.suite
                    if len(case.steps) >= 2
                    and usage.get(case.case_id, 0) < self.max_faults]
        if not eligible:
            return None
        with_bias = [(case, bool(self._case_states.get(case.case_id,
                                                       set())
                                 & bias_anchors))
                     for case, _ in eligible]
        pool = ([pair for pair in with_bias if pair[1]]
                or with_bias)
        case, _ = pool[rng.randrange(len(pool))]
        kinds = [kind for kind in _BENIGN
                 if not (kind in (ChaosKind.PARTITION,
                                  ChaosKind.PARTIAL_PARTITION)
                         and case.case_id in partition_used)
                 and not (kind is not ChaosKind.REORDER
                          and len(self.node_ids) < 2)]
        if self.chaos and case.case_id not in disruptive_used:
            kinds.extend(_DISRUPTIVE)
        if not kinds:
            return None
        kind = kinds[rng.randrange(len(kinds))]
        if kind in DISRUPTIVE_KINDS:
            step = rng.randrange(1, len(case.steps) + 1)
            params = {"node": self.node_ids[rng.randrange(
                len(self.node_ids))]}
        else:
            step = rng.randrange(1, len(case.steps))
            if kind is ChaosKind.PARTITION:
                params = {"isolate": self.node_ids[rng.randrange(
                    len(self.node_ids))]}
            else:
                params = _extra_params(kind, self.node_ids, rng)
        splice = FaultInjection(InjectionMode.CHAOS, kind.value,
                                case.case_id, step, params=params)
        return plan.subset(list(plan.injections) + [splice])

    # -- helpers ---------------------------------------------------------------
    def _prefer(self, candidates, bias_anchors: Set[int],
                rng: random.Random):
        """Filter to uncovered-edge candidates, then to bug-biased cases
        — each filter only applies when it leaves something to pick."""
        fresh = [c for c in candidates if c[3]]
        pool = fresh or candidates
        if bias_anchors:
            biased = [c for c in pool
                      if self._case_states.get(c[0].case_id, set())
                      & bias_anchors]
            pool = biased or pool
        return pool

    def _guided_tail(self, start: int, rng: random.Random,
                     covered_edges: Set[int], length: int = 2) -> List:
        """A short verified continuation preferring uncovered non-fault
        edges — the coverage-seeking analogue of the planner's tail."""
        tail = []
        current = start
        for _ in range(length):
            outgoing = self.graph.out_edges(current)
            benign = [e for e in outgoing
                      if e.label.name not in self.fault_names] or outgoing
            if not benign:
                break
            uncovered = [e for e in benign
                         if self.index.edge_fp(e) not in covered_edges]
            pool = uncovered or benign
            edge = pool[rng.randrange(len(pool))]
            tail.append(edge)
            current = edge.dst
        return tail

    def _next_case_id(self, plan: FaultPlan) -> int:
        top = max((case.case_id for case in self.suite), default=-1)
        for injection in plan.modeled():
            if injection.derived_case_id is not None:
                top = max(top, injection.derived_case_id)
        return top + 1

    @staticmethod
    def _replace_at(plan: FaultPlan, position: int,
                    injection: FaultInjection) -> FaultPlan:
        injections = list(plan.injections)
        injections[position] = injection
        return plan.subset(injections)


def stronger_variants(injection: FaultInjection,
                      node_ids: Sequence[str]) -> List[FaultInjection]:
    """The shrink weakening dimensions inverted, bounded so repeated
    strengthening cannot run away: longer delays, later heals, wider
    partition groups (always leaving one node outside)."""
    variants: List[FaultInjection] = []
    params = injection.params
    count = params.get("count")
    if isinstance(count, int) and count < 4:
        variants.append(injection.replace(
            params={**params, "count": count + 1}))
    heal_after = params.get("heal_after")
    if isinstance(heal_after, int) and heal_after < 3:
        variants.append(injection.replace(
            params={**params, "heal_after": heal_after + 1}))
    group = params.get("group")
    if isinstance(group, (list, tuple)):
        outside = sorted(set(node_ids) - set(group))
        if len(outside) > 1:  # keep one node outside the partition
            variants.append(injection.replace(
                params={**params, "group": sorted(list(group)
                                                  + [outside[0]])}))
    return variants


def mutate_plan(plan: FaultPlan, rng: random.Random, *, graph: StateGraph,
                index: GraphIndex, suite: TestSuite, mapping: SpecMapping,
                node_ids: Sequence[str], covered_edges: Set[int],
                chaos: bool = False, max_faults: int = 1,
                bias_anchors: Set[int] = frozenset(),
                attempts: int = 8) -> Tuple[str, Optional[FaultPlan]]:
    """One-shot convenience wrapper around :class:`Mutator`."""
    mutator = Mutator(graph, index, suite, mapping, node_ids, chaos=chaos,
                      max_faults=max_faults)
    return mutator.mutate(plan, rng, covered_edges, bias_anchors,
                          attempts=attempts)
