"""Reload a JSONL trace and reconstruct per-case action timelines.

The runner emits one ``runner.case`` span per test case and one
``runner.step`` span per executed action, each carrying the case id,
step index, action name and outcome.  :class:`TraceReader` groups those
records back into :class:`CaseTimeline` objects — the structured input
a divergence replayer (or a human) needs to see what actually ran, in
what order, and how long each step took.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

from .tracer import TraceEvent

__all__ = ["StepRecord", "FaultRecord", "CaseTimeline", "TraceReader"]


class StepRecord:
    """One executed action inside a case timeline."""

    __slots__ = ("index", "action", "ts", "dur", "outcome")

    def __init__(self, index: int, action: str, ts: float,
                 dur: Optional[float], outcome: str):
        self.index = index
        self.action = action
        self.ts = ts
        self.dur = dur
        self.outcome = outcome      # "ok" or a DivergenceKind value

    def __repr__(self) -> str:
        dur = f"{self.dur:.6f}s" if self.dur is not None else "?"
        return f"StepRecord(#{self.index} {self.action} {dur} {self.outcome})"


class FaultRecord:
    """One nemesis event (``fault.inject`` / ``fault.heal``) in a case."""

    __slots__ = ("kind", "step", "ts", "detail")

    def __init__(self, kind: str, step: Optional[int], ts: float, detail: str):
        self.kind = kind            # a ChaosKind value, or "heal"
        self.step = step            # step boundary it fired at (None for heal)
        self.ts = ts
        self.detail = detail

    def __repr__(self) -> str:
        at = f"@{self.step}" if self.step is not None else ""
        return f"FaultRecord({self.kind}{at} {self.detail})"


class CaseTimeline:
    """The reconstructed timeline of one test case."""

    def __init__(self, case_id: int):
        self.case_id = case_id
        self.steps: List[StepRecord] = []
        self.faults: List[FaultRecord] = []
        self.outcome: str = "unknown"   # "pass" or a DivergenceKind value
        self.ts: Optional[float] = None
        self.dur: Optional[float] = None

    @property
    def step_count(self) -> int:
        return len(self.steps)

    @property
    def passed(self) -> bool:
        return self.outcome == "pass"

    def describe(self) -> str:
        actions = " -> ".join(step.action for step in self.steps) or "(no steps)"
        return f"#{self.case_id}: {actions} [{self.outcome}]"

    def __repr__(self) -> str:
        return (f"CaseTimeline(#{self.case_id}, {self.step_count} steps, "
                f"{self.outcome})")


class TraceReader:
    """Parsed trace plus timeline reconstruction and summaries."""

    def __init__(self, events: Iterable[TraceEvent]):
        self.events: List[TraceEvent] = sorted(events, key=lambda e: e.seq)

    @classmethod
    def from_file(cls, path: str) -> "TraceReader":
        """Load a JSONL trace written by the tracer's sink."""
        events = []
        with open(path, "r", encoding="utf-8") as handle:
            for line_no, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ValueError(
                        f"{path}:{line_no}: not a JSONL trace record: {exc}"
                    ) from exc
                events.append(TraceEvent.from_dict(record))
        return cls(events)

    # -- queries --------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def by_name(self, name: str) -> List[TraceEvent]:
        return [event for event in self.events if event.name == name]

    def names(self) -> Dict[str, int]:
        """Record count per event name (sorted for determinism)."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.name] = counts.get(event.name, 0) + 1
        return dict(sorted(counts.items()))

    def duration(self) -> float:
        """Wall-clock distance between the first and last record."""
        if not self.events:
            return 0.0
        start = min(event.ts for event in self.events)
        end = max(event.ts + (event.dur or 0.0) for event in self.events)
        return end - start

    # -- reconstruction -------------------------------------------------------
    def case_timelines(self) -> Dict[int, CaseTimeline]:
        """Rebuild per-case action timelines from runner spans.

        Returns ``{case_id: CaseTimeline}`` in first-seen order.  Step
        records are ordered by step index; a case whose ``runner.case``
        span never appeared (trace truncated mid-case) still gets a
        timeline, with outcome ``"unknown"``.
        """
        timelines: Dict[int, CaseTimeline] = {}

        def timeline(case_id: int) -> CaseTimeline:
            if case_id not in timelines:
                timelines[case_id] = CaseTimeline(case_id)
            return timelines[case_id]

        for event in self.events:
            fields = event.fields
            if event.name == "runner.step" and "case" in fields:
                timeline(fields["case"]).steps.append(StepRecord(
                    index=fields.get("step", -1),
                    action=fields.get("action", "?"),
                    ts=event.ts,
                    dur=event.dur,
                    outcome=fields.get("outcome", "ok"),
                ))
            elif event.name == "fault.inject" and "case" in fields:
                params = fields.get("params") or {}
                detail = ", ".join(f"{k}={v}" for k, v in sorted(params.items()))
                timeline(fields["case"]).faults.append(FaultRecord(
                    kind=fields.get("kind", "?"),
                    step=fields.get("step"),
                    ts=event.ts,
                    detail=detail,
                ))
            elif event.name == "fault.heal" and "case" in fields:
                timeline(fields["case"]).faults.append(FaultRecord(
                    kind="heal",
                    step=None,
                    ts=event.ts,
                    detail=f"released {fields.get('released', 0)} messages",
                ))
            elif event.name == "runner.case" and "case" in fields:
                line = timeline(fields["case"])
                line.outcome = fields.get("outcome", "unknown")
                line.ts = event.ts
                line.dur = event.dur
        for line in timelines.values():
            line.steps.sort(key=lambda step: (step.index, step.ts))
        return timelines

    def shrink_summary(self) -> Optional[str]:
        """One-line digest of a shrink run recorded in this trace.

        ``mocket faults shrink --log`` writes ``shrink.*`` records; the
        final ``shrink.done`` carries the whole outcome.  Returns
        ``None`` when the trace holds no completed shrink run.
        """
        done = self.by_name("shrink.done")
        if not done:
            return None
        fields = done[-1].fields
        tag = (" (fault-independent)"
               if fields.get("fault_independent") else "")
        status = "" if fields.get("converged", True) else " [budget exhausted]"
        signature = ", ".join(fields.get("signature", ())) or "?"
        return (f"shrink: {fields.get('initial', '?')} -> "
                f"{fields.get('final', '?')} injections in "
                f"{fields.get('replays', '?')} replays{status}; "
                f"reproduces: {signature}{tag}")

    # -- human output ---------------------------------------------------------
    def summarize(self, max_cases: Optional[int] = None) -> str:
        """A text report: totals, per-name counts, per-case timelines."""
        lines: List[str] = [
            f"trace: {len(self.events)} records over {self.duration():.3f}s"
        ]
        counts = self.names()
        if counts:
            lines.append("records by name:")
            width = max(len(name) for name in counts)
            for name, count in counts.items():
                lines.append(f"  {name.ljust(width)}  {count}")
        shrink = self.shrink_summary()
        if shrink:
            lines.append(shrink)
        timelines = self.case_timelines()
        if timelines:
            divergent = sum(1 for line in timelines.values() if not line.passed)
            lines.append(f"cases: {len(timelines)} ({divergent} divergent)")
            shown = list(timelines.values())
            if max_cases is not None:
                shown = shown[:max_cases]
            for line in shown:
                dur = f", {line.dur:.3f}s" if line.dur is not None else ""
                injected = (f", {len(line.faults)} fault events"
                            if line.faults else "")
                lines.append(f"  case #{line.case_id}: {line.step_count} steps, "
                             f"{line.outcome}{dur}{injected}")
                for step in line.steps:
                    dur = f"{step.dur:.6f}s" if step.dur is not None else "?"
                    lines.append(f"    [{step.index}] {step.action}  {dur}  "
                                 f"{step.outcome}")
                for fault in line.faults:
                    at = (f"before step {fault.step}"
                          if fault.step is not None else "on retry/teardown")
                    lines.append(f"    !! {fault.kind} {at}"
                                 f"{'  ' + fault.detail if fault.detail else ''}")
            if max_cases is not None and len(timelines) > max_cases:
                lines.append(f"  ... {len(timelines) - max_cases} more cases")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"TraceReader({len(self.events)} records)"
