"""Reload a JSONL trace and reconstruct per-case action timelines.

The runner emits one ``runner.case`` span per test case and one
``runner.step`` span per executed action, each carrying the case id,
step index, action name and outcome.  :class:`TraceReader` groups those
records back into :class:`CaseTimeline` objects — the structured input
a divergence replayer (or a human) needs to see what actually ran, in
what order, and how long each step took.

Reading is *lazy*: :meth:`TraceReader.from_file` opens nothing until the
trace is consumed, and :meth:`TraceReader.iter_events` streams records
one line at a time (the sink writes records under a lock with an
incrementing ``seq``, so file order **is** seq order — no sort pass
needed).  Both :meth:`summarize` and ``mocket conform`` ride this path,
so multi-gigabyte traces never have to fit in memory; accessing
:attr:`events` materializes the list for callers that need random
access.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, Iterator, List, Optional

from .tracer import TraceEvent

__all__ = ["StepRecord", "FaultRecord", "CaseTimeline", "TraceReader"]

#: JSON envelope version for ``mocket trace summarize --format json``.
SUMMARY_VERSION = 1


class StepRecord:
    """One executed action inside a case timeline."""

    __slots__ = ("index", "action", "ts", "dur", "outcome")

    def __init__(self, index: int, action: str, ts: float,
                 dur: Optional[float], outcome: str):
        self.index = index
        self.action = action
        self.ts = ts
        self.dur = dur
        self.outcome = outcome      # "ok" or a DivergenceKind value

    def __repr__(self) -> str:
        dur = f"{self.dur:.6f}s" if self.dur is not None else "?"
        return f"StepRecord(#{self.index} {self.action} {dur} {self.outcome})"


class FaultRecord:
    """One nemesis event (``fault.inject`` / ``fault.heal``) in a case."""

    __slots__ = ("kind", "step", "ts", "detail")

    def __init__(self, kind: str, step: Optional[int], ts: float, detail: str):
        self.kind = kind            # a ChaosKind value, or "heal"
        self.step = step            # step boundary it fired at (None for heal)
        self.ts = ts
        self.detail = detail

    def __repr__(self) -> str:
        at = f"@{self.step}" if self.step is not None else ""
        return f"FaultRecord({self.kind}{at} {self.detail})"


class CaseTimeline:
    """The reconstructed timeline of one test case."""

    def __init__(self, case_id: int):
        self.case_id = case_id
        self.steps: List[StepRecord] = []
        self.faults: List[FaultRecord] = []
        self.outcome: str = "unknown"   # "pass" or a DivergenceKind value
        self.ts: Optional[float] = None
        self.dur: Optional[float] = None

    @property
    def step_count(self) -> int:
        return len(self.steps)

    @property
    def passed(self) -> bool:
        return self.outcome == "pass"

    def describe(self) -> str:
        actions = " -> ".join(step.action for step in self.steps) or "(no steps)"
        return f"#{self.case_id}: {actions} [{self.outcome}]"

    def __repr__(self) -> str:
        return (f"CaseTimeline(#{self.case_id}, {self.step_count} steps, "
                f"{self.outcome})")


def _apply(timelines: Dict[int, CaseTimeline], event: TraceEvent,
           keep: Optional[set] = None) -> None:
    """Fold one record into the timeline map (shared by the eager
    :meth:`TraceReader.case_timelines` and the streaming summarizer).

    ``keep`` bounds detail reconstruction: case ids outside it only get
    an (empty) timeline with outcome tracking, not per-step records.
    """
    if event.name not in ("runner.step", "fault.inject", "fault.heal",
                          "runner.case"):
        return
    fields = event.fields
    case_id = fields.get("case")
    if case_id is None:
        return
    timeline = timelines.get(case_id)
    if timeline is None:
        timeline = timelines[case_id] = CaseTimeline(case_id)
    detailed = keep is None or case_id in keep
    if event.name == "runner.step":
        if detailed:
            timeline.steps.append(StepRecord(
                index=fields.get("step", -1),
                action=fields.get("action", "?"),
                ts=event.ts,
                dur=event.dur,
                outcome=fields.get("outcome", "ok"),
            ))
    elif event.name == "fault.inject":
        if detailed:
            params = fields.get("params") or {}
            detail = ", ".join(f"{k}={v}" for k, v in sorted(params.items()))
            timeline.faults.append(FaultRecord(
                kind=fields.get("kind", "?"),
                step=fields.get("step"),
                ts=event.ts,
                detail=detail,
            ))
    elif event.name == "fault.heal":
        if detailed:
            timeline.faults.append(FaultRecord(
                kind="heal",
                step=None,
                ts=event.ts,
                detail=f"released {fields.get('released', 0)} messages",
            ))
    elif event.name == "runner.case":
        timeline.outcome = fields.get("outcome", "unknown")
        timeline.ts = event.ts
        timeline.dur = event.dur


class TraceReader:
    """Parsed trace plus timeline reconstruction and summaries."""

    def __init__(self, events: Optional[Iterable[TraceEvent]] = None,
                 path: Optional[str] = None):
        self._path = path
        self._events: Optional[List[TraceEvent]] = (
            None if events is None else sorted(events, key=lambda e: e.seq))
        if self._events is None and path is None:
            self._events = []

    @classmethod
    def from_file(cls, path: str) -> "TraceReader":
        """Attach to a JSONL trace written by the tracer's sink.

        Lazy: no I/O happens until the trace is consumed — iterate
        :meth:`iter_events` for a constant-memory streaming pass, or
        touch :attr:`events` to materialize the whole list.
        """
        return cls(path=path)

    # -- streaming ------------------------------------------------------------
    def iter_events(self) -> Iterator[TraceEvent]:
        """Stream records in seq order without materializing the trace.

        The sink appends records under a lock with an incrementing
        ``seq``, so file order is already seq order.  Malformed lines
        raise ``ValueError`` tagged with path and line number.
        """
        if self._events is not None:
            yield from self._events
            return
        with open(self._path, "r", encoding="utf-8") as handle:
            for line_no, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ValueError(
                        f"{self._path}:{line_no}: not a JSONL trace record: "
                        f"{exc}") from exc
                yield TraceEvent.from_dict(record)

    @property
    def events(self) -> List[TraceEvent]:
        """The full record list (materializes a lazy reader on first use)."""
        if self._events is None:
            self._events = sorted(self.iter_events(), key=lambda e: e.seq)
        return self._events

    # -- queries --------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def by_name(self, name: str) -> List[TraceEvent]:
        return [event for event in self.iter_events() if event.name == name]

    def names(self) -> Dict[str, int]:
        """Record count per event name (sorted for determinism)."""
        counts: Dict[str, int] = {}
        for event in self.iter_events():
            counts[event.name] = counts.get(event.name, 0) + 1
        return dict(sorted(counts.items()))

    def duration(self) -> float:
        """Wall-clock distance between the first and last record."""
        start = end = None
        for event in self.iter_events():
            stop = event.ts + (event.dur or 0.0)
            start = event.ts if start is None else min(start, event.ts)
            end = stop if end is None else max(end, stop)
        return 0.0 if start is None else end - start

    # -- reconstruction -------------------------------------------------------
    def case_timelines(self) -> Dict[int, CaseTimeline]:
        """Rebuild per-case action timelines from runner spans.

        Returns ``{case_id: CaseTimeline}`` in first-seen order.  Step
        records are ordered by step index; a case whose ``runner.case``
        span never appeared (trace truncated mid-case) still gets a
        timeline, with outcome ``"unknown"``.
        """
        timelines: Dict[int, CaseTimeline] = {}
        for event in self.iter_events():
            _apply(timelines, event)
        for timeline in timelines.values():
            timeline.steps.sort(key=lambda step: (step.index, step.ts))
        return timelines

    @staticmethod
    def _shrink_line(fields: Dict[str, Any]) -> str:
        tag = (" (fault-independent)"
               if fields.get("fault_independent") else "")
        status = "" if fields.get("converged", True) else " [budget exhausted]"
        signature = ", ".join(fields.get("signature", ())) or "?"
        return (f"shrink: {fields.get('initial', '?')} -> "
                f"{fields.get('final', '?')} injections in "
                f"{fields.get('replays', '?')} replays{status}; "
                f"reproduces: {signature}{tag}")

    @staticmethod
    def _conform_line(fields: Dict[str, Any]) -> str:
        line = (f"conformance: {fields.get('verdict', '?')} "
                f"({fields.get('events', '?')} events, "
                f"{fields.get('sessions', '?')} sessions, "
                f"spec {fields.get('spec', '?')})")
        if fields.get("line") is not None:
            line += (f"; first divergence at line {fields['line']} "
                     f"({fields.get('action', '?')!r})")
        return line

    @staticmethod
    def _coverage_line(coverage: Dict[str, Any]) -> str:
        states_total = coverage.get("graph_states")
        edges_total = coverage.get("graph_edges")
        of_states = f" of {states_total}" if states_total is not None else ""
        of_edges = f" of {edges_total}" if edges_total is not None else ""
        return (f"coverage: {coverage['states']}{of_states} states, "
                f"{coverage['edges']}{of_edges} edges visited")

    @staticmethod
    def _soak_line(fields: Dict[str, Any]) -> str:
        div = fields.get("divergences") or {}
        kinds = (", ".join(f"{k}={v}" for k, v in sorted(div.items()))
                 if div else "none")
        return (f"soak: {fields.get('acked', '?')} of "
                f"{fields.get('submitted', '?')} ops acked over "
                f"{fields.get('sim_time', '?')}s simulated "
                f"({fields.get('shards', '?')} shard(s), "
                f"seed {fields.get('seed', '?')!r}); divergences: {kinds}")

    @staticmethod
    def _fuzz_line(fields: Dict[str, Any]) -> str:
        arm = "guided" if fields.get("guided", True) else "unguided"
        return (f"fuzz: {fields.get('runs', '?')} runs ({arm}), "
                f"{fields.get('entries', '?')} corpus entries, "
                f"{fields.get('states', '?')} of "
                f"{fields.get('graph_states', '?')} states, "
                f"{fields.get('edges', '?')} of "
                f"{fields.get('graph_edges', '?')} edges, "
                f"{fields.get('bugs', '?')} bug(s)")

    def shrink_summary(self) -> Optional[str]:
        """One-line digest of a shrink run recorded in this trace.

        ``mocket faults shrink --log`` writes ``shrink.*`` records; the
        final ``shrink.done`` carries the whole outcome.  Returns
        ``None`` when the trace holds no completed shrink run.
        """
        done = self.by_name("shrink.done")
        return self._shrink_line(done[-1].fields) if done else None

    def conform_summary(self) -> Optional[str]:
        """One-line digest of a conformance run recorded in this trace.

        ``mocket conform --trace`` writes ``conform.*`` records; the
        final ``conform.done`` carries the verdict.  Returns ``None``
        when the trace holds no completed conformance run.
        """
        done = self.by_name("conform.done")
        return self._conform_line(done[-1].fields) if done else None

    # -- summaries ------------------------------------------------------------
    def _scan(self, max_cases: Optional[int] = None) -> Dict[str, Any]:
        """One streaming pass gathering everything a summary needs.

        Per-step detail is only reconstructed for the first
        ``max_cases`` distinct cases; later cases still contribute to
        the totals and outcome counts, so memory stays proportional to
        the number of *cases shown*, not the number of records.
        """
        records = 0
        start = end = None
        counts: Dict[str, int] = {}
        shrink_fields = conform_fields = fuzz_fields = None
        soak_fields = None
        graph_states = graph_edges = None
        state_fps: set = set()
        edge_fps: set = set()
        timelines: Dict[int, CaseTimeline] = {}
        keep: Optional[set] = set() if max_cases is not None else None
        for event in self.iter_events():
            records += 1
            stop = event.ts + (event.dur or 0.0)
            start = event.ts if start is None else min(start, event.ts)
            end = stop if end is None else max(end, stop)
            counts[event.name] = counts.get(event.name, 0) + 1
            if event.name == "shrink.done":
                shrink_fields = event.fields
            elif event.name == "conform.done":
                conform_fields = event.fields
            elif event.name == "fuzz.done":
                fuzz_fields = event.fields
            elif event.name == "soak.done":
                soak_fields = event.fields
            elif event.name == "runner.suite":
                if event.fields.get("graph_states") is not None:
                    graph_states = event.fields["graph_states"]
                    graph_edges = event.fields.get("graph_edges")
            if event.name == "runner.step":
                fields = event.fields
                if "edge_fp" in fields:
                    state_fps.add(fields["src_fp"])
                    state_fps.add(fields["dst_fp"])
                    edge_fps.add(fields["edge_fp"])
            if keep is not None and event.name in (
                    "runner.step", "fault.inject", "fault.heal",
                    "runner.case"):
                case_id = event.fields.get("case")
                if case_id is not None and case_id not in keep:
                    if len(keep) < max_cases:
                        keep.add(case_id)
            _apply(timelines, event, keep)
        for timeline in timelines.values():
            timeline.steps.sort(key=lambda step: (step.index, step.ts))
        coverage = None
        if state_fps or edge_fps:
            coverage = {
                "states": len(state_fps),
                "edges": len(edge_fps),
                "graph_states": graph_states,
                "graph_edges": graph_edges,
            }
        return {
            "records": records,
            "duration": 0.0 if start is None else end - start,
            "names": dict(sorted(counts.items())),
            "timelines": timelines,
            "shown": (len(timelines) if max_cases is None
                      else min(max_cases, len(timelines))),
            "shrink": shrink_fields,
            "conform": conform_fields,
            "coverage": coverage,
            "fuzz": fuzz_fields,
            "soak": soak_fields,
        }

    def summary_dict(self, max_cases: Optional[int] = None) -> Dict[str, Any]:
        """The stable v1 JSON envelope for ``trace summarize --format json``."""
        scan = self._scan(max_cases)
        timelines = scan["timelines"]
        shown = list(timelines.values())[: scan["shown"]]
        return {
            "version": SUMMARY_VERSION,
            "records": scan["records"],
            "duration": round(scan["duration"], 6),
            "names": scan["names"],
            "cases": {
                "total": len(timelines),
                "divergent": sum(1 for t in timelines.values() if not t.passed),
                "shown": [
                    {
                        "case": t.case_id,
                        "outcome": t.outcome,
                        "steps": [
                            {"index": s.index, "action": s.action,
                             "outcome": s.outcome}
                            for s in t.steps
                        ],
                        "faults": [
                            {"kind": f.kind, "step": f.step, "detail": f.detail}
                            for f in t.faults
                        ],
                    }
                    for t in shown
                ],
            },
            "shrink": (self._shrink_line(scan["shrink"])
                       if scan["shrink"] else None),
            "conformance": dict(scan["conform"]) if scan["conform"] else None,
            "coverage": (dict(scan["coverage"])
                         if scan["coverage"] else None),
            "fuzz": dict(scan["fuzz"]) if scan["fuzz"] else None,
            "soak": dict(scan["soak"]) if scan["soak"] else None,
        }

    # -- human output ---------------------------------------------------------
    def summarize(self, max_cases: Optional[int] = None) -> str:
        """A text report: totals, per-name counts, per-case timelines.

        Single streaming pass — safe on traces far larger than memory.
        """
        scan = self._scan(max_cases)
        lines: List[str] = [
            f"trace: {scan['records']} records over {scan['duration']:.3f}s"
        ]
        counts = scan["names"]
        if counts:
            lines.append("records by name:")
            width = max(len(name) for name in counts)
            for name, count in counts.items():
                lines.append(f"  {name.ljust(width)}  {count}")
        if scan["shrink"]:
            lines.append(self._shrink_line(scan["shrink"]))
        if scan["conform"]:
            lines.append(self._conform_line(scan["conform"]))
        if scan["coverage"]:
            lines.append(self._coverage_line(scan["coverage"]))
        if scan["fuzz"]:
            lines.append(self._fuzz_line(scan["fuzz"]))
        if scan["soak"]:
            lines.append(self._soak_line(scan["soak"]))
        timelines = scan["timelines"]
        if timelines:
            divergent = sum(1 for t in timelines.values() if not t.passed)
            lines.append(f"cases: {len(timelines)} ({divergent} divergent)")
            shown = list(timelines.values())[: scan["shown"]]
            for timeline in shown:
                dur = (f", {timeline.dur:.3f}s"
                       if timeline.dur is not None else "")
                injected = (f", {len(timeline.faults)} fault events"
                            if timeline.faults else "")
                lines.append(f"  case #{timeline.case_id}: "
                             f"{timeline.step_count} steps, "
                             f"{timeline.outcome}{dur}{injected}")
                for step in timeline.steps:
                    dur = f"{step.dur:.6f}s" if step.dur is not None else "?"
                    lines.append(f"    [{step.index}] {step.action}  {dur}  "
                                 f"{step.outcome}")
                for fault in timeline.faults:
                    at = (f"before step {fault.step}"
                          if fault.step is not None else "on retry/teardown")
                    lines.append(f"    !! {fault.kind} {at}"
                                 f"{'  ' + fault.detail if fault.detail else ''}")
            if len(timelines) > scan["shown"]:
                lines.append(f"  ... {len(timelines) - scan['shown']} "
                             f"more cases")
        return "\n".join(lines)

    def __repr__(self) -> str:
        if self._events is None:
            return f"TraceReader(lazy, {self._path!r})"
        return f"TraceReader({len(self._events)} records)"
