"""Structured tracing: typed, monotonically-timestamped event records.

Every record is either an instantaneous *event* or a *span* (a timed
region emitted once, at exit, with its start timestamp and duration).
Records carry a process-wide sequence number and a timestamp from the
monotonic clock, so a reloaded trace can always be totally ordered even
when span records are written out of timestamp order (a parent span is
emitted after its children).

The tracer is disabled by default.  ``emit``/``span`` return immediately
after a single attribute test, and ``span`` hands back a shared no-op
context manager, so instrumented hot paths pay well under a microsecond
per disabled call.  Call sites on the hottest loops additionally guard
with ``if TRACER.enabled:`` to skip building the field dict at all.

Event names in use across the pipeline (see docs/OBSERVABILITY.md):

``checker.run`` ``checker.bfs_level`` ``testgen.generate``
``testgen.traversal`` ``testgen.case_emitted`` ``por.reduce``
``por.pruned`` ``scheduler.notification`` ``runner.suite``
``runner.case`` ``runner.step`` ``statecheck.compare``
``fault.injected`` ``runner.divergence`` ``soak.run`` ``soak.snapshot``
``soak.shard`` ``soak.divergence`` ``soak.done``
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional

__all__ = [
    "NULL_SPAN",
    "TRACER",
    "TraceEvent",
    "Tracer",
    "configure",
    "disable",
    "emit",
    "is_enabled",
    "reset",
    "span",
]

DEFAULT_CAPACITY = 65536


def jsonable(value: Any) -> Any:
    """Best-effort conversion of a field value to a JSON-friendly form.

    Spec-domain values (FrozenDict, frozenset, tuples, bags) appear in
    trace fields; anything JSON cannot carry natively falls back to its
    ``repr`` so a trace is always serializable.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, (set, frozenset)):
        try:
            return sorted(jsonable(v) for v in value)
        except TypeError:
            return sorted((jsonable(v) for v in value), key=repr)
    # Mapping-likes (FrozenDict) expose items(); everything else -> repr.
    items = getattr(value, "items", None)
    if callable(items):
        try:
            return {str(k): jsonable(v) for k, v in items()}
        except Exception:
            pass
    return repr(value)


class TraceEvent:
    """One trace record: an instantaneous event or a completed span."""

    __slots__ = ("seq", "ts", "kind", "name", "dur", "fields")

    def __init__(self, seq: int, ts: float, kind: str, name: str,
                 dur: Optional[float], fields: Dict[str, Any]):
        self.seq = seq          # process-wide, strictly increasing
        self.ts = ts            # seconds since the tracer's epoch (monotonic)
        self.kind = kind        # "event" | "span"
        self.name = name
        self.dur = dur          # span duration in seconds; None for events
        self.fields = fields

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "seq": self.seq,
            "ts": round(self.ts, 9),
            "kind": self.kind,
            "name": self.name,
        }
        if self.dur is not None:
            record["dur"] = round(self.dur, 9)
        if self.fields:
            record["fields"] = {k: jsonable(v) for k, v in self.fields.items()}
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "TraceEvent":
        return cls(
            seq=record["seq"],
            ts=record["ts"],
            kind=record.get("kind", "event"),
            name=record["name"],
            dur=record.get("dur"),
            fields=record.get("fields", {}),
        )

    def __repr__(self) -> str:
        dur = f", dur={self.dur:.6f}s" if self.dur is not None else ""
        return f"TraceEvent(#{self.seq} {self.name}{dur} {self.fields!r})"


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def add(self, **fields: Any) -> None:
        pass


NULL_SPAN = _NullSpan()


class Span:
    """A timed region; emits one ``span`` record when the block exits."""

    __slots__ = ("_tracer", "name", "fields", "start")

    def __init__(self, tracer: "Tracer", name: str, fields: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.fields = fields
        self.start = 0.0

    def add(self, **fields: Any) -> None:
        """Attach fields discovered while the span is open (e.g. outcome)."""
        self.fields.update(fields)

    def __enter__(self) -> "Span":
        self.start = self._tracer._now()
        return self

    def __exit__(self, *exc) -> bool:
        end = self._tracer._now()
        self._tracer._record("span", self.name, self.fields,
                             ts=self.start, dur=end - self.start)
        return False


class Tracer:
    """Process-wide trace collector: ring buffer + optional JSONL sink."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self.enabled = False           # the fast-path guard; a plain attribute
        self.capacity = capacity
        self._default_capacity = capacity
        self._buffer: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0
        self._emitted = 0              # total records ever emitted
        self._epoch = time.monotonic()
        self._last_ts = 0.0
        self._sink = None              # open file object, or None
        self._sink_path: Optional[str] = None
        self._sim_clock = None         # VirtualClock during simulated runs

    # -- configuration --------------------------------------------------------
    def set_sim_clock(self, clock: Optional[Any]) -> None:
        """Stamp records with simulated time while ``clock`` is set.

        The simulation harness (:mod:`repro.runtime.sim`) installs its
        :class:`VirtualClock` here for the duration of an in-process
        run; every record then carries a ``sim`` field alongside the
        wall ``ts``, so a trace can be read on either timeline.  Pass
        ``None`` to detach.
        """
        self._sim_clock = clock
    def configure(self, enabled: bool = True, sink: Optional[str] = None,
                  capacity: Optional[int] = None) -> None:
        """Enable (or re-arm) tracing; ``sink`` is a JSONL file path."""
        with self._lock:
            if capacity is not None and capacity != self.capacity:
                self.capacity = capacity
                self._buffer = deque(self._buffer, maxlen=capacity)
            self._close_sink_locked()
            if sink is not None:
                self._sink = open(sink, "w", encoding="utf-8")
                self._sink_path = sink
            self.enabled = enabled

    def disable(self) -> None:
        """Stop tracing and close the sink (buffer contents are kept)."""
        with self._lock:
            self.enabled = False
            self._close_sink_locked()

    def reset(self) -> None:
        """Disable, drop all buffered records and restart the clock.

        Also restores the construction-time ring capacity, so a
        ``configure(capacity=...)`` in one run cannot leak into the next.
        """
        with self._lock:
            self.enabled = False
            self._close_sink_locked()
            if self.capacity != self._default_capacity:
                self.capacity = self._default_capacity
                self._buffer = deque(maxlen=self.capacity)
            self._buffer.clear()
            self._seq = 0
            self._emitted = 0
            self._epoch = time.monotonic()
            self._last_ts = 0.0
            self._sim_clock = None

    def _close_sink_locked(self) -> None:
        if self._sink is not None:
            self._sink.close()
            self._sink = None
            self._sink_path = None

    @property
    def sink_path(self) -> Optional[str]:
        return self._sink_path

    # -- recording ------------------------------------------------------------
    def _now(self) -> float:
        return time.monotonic() - self._epoch

    def emit(self, name: str, /, **fields: Any) -> None:
        """Record an instantaneous event (no-op while disabled).

        ``name`` is positional-only so a field may itself be called
        ``name`` (e.g. scheduler notifications).
        """
        if not self.enabled:
            return
        self._record("event", name, fields)

    def span(self, name: str, /, **fields: Any):
        """A context manager timing a region (shared no-op while disabled)."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, fields)

    def _record(self, kind: str, name: str, fields: Dict[str, Any],
                ts: Optional[float] = None, dur: Optional[float] = None) -> None:
        with self._lock:
            if not self.enabled:       # disabled while a span was open
                return
            now = self._now() if ts is None else ts
            # the monotonic clock can tick coarsely; force strict order
            if now <= self._last_ts:
                now = self._last_ts + 1e-9
            self._last_ts = now
            if self._sim_clock is not None and "sim" not in fields:
                fields = dict(fields)
                fields["sim"] = round(self._sim_clock.now(), 9)
            event = TraceEvent(self._seq, now, kind, name, dur, fields)
            self._seq += 1
            self._emitted += 1
            self._buffer.append(event)
            if self._sink is not None:
                self._sink.write(json.dumps(event.to_dict(), sort_keys=True))
                self._sink.write("\n")

    # -- inspection -----------------------------------------------------------
    def events(self, name: Optional[str] = None) -> List[TraceEvent]:
        """Buffered records (oldest first), optionally filtered by name."""
        with self._lock:
            records = list(self._buffer)
        if name is not None:
            records = [e for e in records if e.name == name]
        return records

    @property
    def emitted(self) -> int:
        """Total records emitted since the last reset."""
        return self._emitted

    @property
    def dropped(self) -> int:
        """Records pushed out of the ring buffer by newer ones."""
        with self._lock:
            return self._emitted - len(self._buffer)

    def flush(self) -> None:
        with self._lock:
            if self._sink is not None:
                self._sink.flush()

    def __repr__(self) -> str:
        status = "enabled" if self.enabled else "disabled"
        return (f"Tracer({status}, {len(self._buffer)}/{self.capacity} "
                f"buffered, sink={self._sink_path!r})")


#: The process-wide tracer every instrumented call site talks to.
TRACER = Tracer()


# -- module-level conveniences (delegate to the global tracer) ----------------
def configure(enabled: bool = True, sink: Optional[str] = None,
              capacity: Optional[int] = None) -> None:
    TRACER.configure(enabled=enabled, sink=sink, capacity=capacity)


def disable() -> None:
    TRACER.disable()


def reset() -> None:
    TRACER.reset()


def is_enabled() -> bool:
    return TRACER.enabled


def emit(name: str, /, **fields: Any) -> None:
    TRACER.emit(name, **fields)


def span(name: str, /, **fields: Any):
    return TRACER.span(name, **fields)
