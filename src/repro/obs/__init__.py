"""Observability: structured tracing, metrics and trace reloading.

Zero-dependency instrumentation substrate threaded through every layer
of the pipeline (checker, testgen, POR, scheduler, state checker,
runner).  Three pillars:

* :mod:`repro.obs.tracer` — a process-wide :class:`Tracer` emitting
  typed, monotonically-timestamped event/span records to an in-memory
  ring buffer and optionally a JSONL sink.  Disabled by default with a
  no-op fast path, so the hot paths of the checker cost nothing extra
  when nobody is watching.
* :mod:`repro.obs.metrics` — a registry of counters, gauges and
  histogram timers (states/sec, frontier size, edge-coverage %, queue
  wait, per-step wall time, divergence counts), snapshotable as a dict
  and renderable as a text table.
* :mod:`repro.obs.reader` — :class:`TraceReader` reloads a JSONL trace
  and reconstructs the per-case action timeline (the input a
  flaky-divergence replayer needs).

Instrumented call sites guard on ``TRACER.enabled`` (a plain attribute
load) so the disabled path stays under a microsecond per call.
"""

from .metrics import METRICS, Counter, Gauge, Histogram, MetricsRegistry
from .reader import CaseTimeline, StepRecord, TraceReader
from .tracer import (
    NULL_SPAN,
    TRACER,
    TraceEvent,
    Tracer,
    configure,
    disable,
    emit,
    is_enabled,
    reset,
    span,
)

__all__ = [
    "CaseTimeline",
    "Counter",
    "Gauge",
    "Histogram",
    "METRICS",
    "MetricsRegistry",
    "NULL_SPAN",
    "StepRecord",
    "TRACER",
    "TraceEvent",
    "TraceReader",
    "Tracer",
    "configure",
    "disable",
    "emit",
    "is_enabled",
    "reset",
    "span",
]
