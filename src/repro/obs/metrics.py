"""Lightweight metrics: counters, gauges and histogram timers.

A flat, name-keyed registry.  Instruments are created lazily on first
use and are cheap enough to update from instrumented hot paths (a lock
acquire plus an add).  Metric *collection* follows the tracer's enabled
flag at the call sites — the registry itself is always live so tests
and benches can use it directly.

Snapshots are deterministic: plain dicts with sorted keys and stable
value shapes, so two runs over the same workload produce comparable
(and diffable) snapshots modulo timing-valued instruments.

Metric names in use across the pipeline (see docs/OBSERVABILITY.md):

``checker.states`` ``checker.edges`` ``checker.states_per_sec``
``checker.frontier_peak`` ``checker.diameter``
``checker.refused_successors`` ``testgen.cases``
``testgen.actions`` ``testgen.edge_coverage_pct``
``por.pruned_edges`` ``scheduler.notifications``
``scheduler.queue_wait_seconds`` ``runner.cases`` ``runner.steps``
``runner.step_seconds`` ``statecheck.compares``
``statecheck.mismatches`` ``divergence.<kind>`` ``fault.injected``

The parallel engine (docs/ENGINE.md) adds:

``engine.workers`` ``engine.levels`` ``engine.states``
``engine.edges`` ``engine.states_per_sec`` ``engine.shard_max``
``engine.shard_balance`` ``engine.worker_utilization``
``engine.executor_workers`` ``engine.cases_per_sec``
``engine.executor_utilization``
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "METRICS"]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Any = 0

    def set(self, value: Any) -> None:
        self.value = value

    def max(self, value: Any) -> None:
        """Keep the high-water mark (e.g. peak frontier size)."""
        if value > self.value:
            self.value = value

    def snapshot(self) -> Any:
        return self.value


class Histogram:
    """Summary statistics over observed samples (timers, sizes)."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Name-keyed instruments with deterministic snapshots."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument access (create-or-get) ------------------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter()
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge()
            return instrument

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram()
            return instrument

    # -- one-shot conveniences -------------------------------------------------
    def inc(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: Any) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def time(self, name: str):
        """Context manager observing the block's wall time in ``name``."""
        return _Timer(self, name)

    # -- output ---------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """All instruments as one dict with sorted keys.

        Counters and gauges map to their value; histograms to a
        ``{count,sum,min,max,mean}`` dict.
        """
        with self._lock:
            out: Dict[str, Any] = {}
            for name in sorted(self._counters):
                out[name] = self._counters[name].snapshot()
            for name in sorted(self._gauges):
                out[name] = self._gauges[name].snapshot()
            for name in sorted(self._histograms):
                out[name] = self._histograms[name].snapshot()
            return dict(sorted(out.items()))

    def render(self) -> str:
        """The snapshot as an aligned text table."""
        rows: List[Tuple[str, str]] = []
        for name, value in self.snapshot().items():
            if isinstance(value, dict):      # histogram summary
                rendered = (f"count={value['count']} sum={value['sum']:.6f} "
                            f"min={value['min']:.6f} max={value['max']:.6f} "
                            f"mean={value['mean']:.6f}")
            elif isinstance(value, float):
                rendered = f"{value:.6f}"
            else:
                rendered = str(value)
            rows.append((name, rendered))
        if not rows:
            return "(no metrics recorded)"
        width = max(len(name) for name, _ in rows)
        return "\n".join(f"{name.ljust(width)}  {rendered}"
                         for name, rendered in rows)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


class _Timer:
    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: MetricsRegistry, name: str):
        self._registry = registry
        self._name = name

    def __enter__(self) -> "_Timer":
        import time

        self._start = time.monotonic()
        return self

    def __exit__(self, *exc) -> bool:
        import time

        self._registry.observe(self._name, time.monotonic() - self._start)
        return False


#: The process-wide registry every instrumented call site talks to.
METRICS = MetricsRegistry()
