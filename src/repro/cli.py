"""``mocket`` — the command-line front end.

Subcommands mirror the pipeline stages:

* ``mocket check MODEL``   — model-check a built-in model, optionally
  dumping the state-space graph as DOT (TLC's ``-dump dot``),
* ``mocket testgen MODEL`` — generate test cases (EC / EC+POR stats),
* ``mocket test TARGET``   — controlled testing of a system under test
  against its model, with optional seeded bugs and, via ``--faults`` /
  ``--fault-seed`` / ``--chaos``, seeded fault injection with triage
  (see docs/FAULTS.md),
* ``mocket faults``        — the nemesis front end: ``plan`` writes a
  seeded fault plan, ``run`` plans + executes, ``replay`` re-executes a
  saved plan, ``shrink`` minimizes a failing plan to a minimal repro,
  ``scenarios`` replays the bundled chaos scenarios (``--format json``
  for the stable v1 envelope),
* ``mocket fuzz TARGET``   — coverage-guided fuzzing of fault
  schedules: execute ``--budget N`` schedules, fingerprint the verified
  states/edges each run visits, keep coverage-novel schedules in the
  ``--corpus DIR``, and breed the next schedule from an energy-picked
  corpus entry (``--unguided`` for the feedback-free control arm,
  ``--format json`` for the stable v1 envelope; see docs/FUZZING.md),
* ``mocket soak TARGET``   — soak-scale workload on the deterministic
  simulation runtime: ``--ops N`` open-loop client operations over
  seeded simulation shards (virtual clock, one event loop per shard),
  optional seeded fault schedule (``--faults``), periodic triage
  snapshots and invariant monitoring; reports are byte-identical for
  any ``--workers`` and any ``PYTHONHASHSEED``, and a failing run
  replays exactly from ``(seed, schedule)`` (``--schedule-out`` /
  ``--schedule``; see docs/RUNTIME.md),
* ``mocket bugs``          — replay all nine Table 2 bug scenarios,
* ``mocket lint TARGET``   — static conformance analysis of a bundled
  system (spec + mapping + instrumented source) or bare spec; rule
  catalogue in docs/ANALYSIS.md (``--format sarif`` for GitHub code
  scanning),
* ``mocket analyze TARGET`` — static effect analysis of a target's
  spec: per-action read/write sets, purity violations and the
  statically-certified independence relation POR consumes
  (``--format json`` for the v1 envelope, ``--dot FILE`` for the
  action-dependency graph; see docs/ANALYSIS.md),
* ``mocket conform LOG --spec TARGET`` — validate an externally
  captured log (production, staging, foreign test rig) against the
  spec's verified state graph; reports the first divergent log line
  with a ranked near-miss explanation (``--format json`` for the
  stable v1 envelope, ``--stream`` for incremental progress; see
  docs/CONFORMANCE.md),
* ``mocket trace summarize FILE`` — reload a JSONL trace (streaming,
  bounded memory) and print the reconstructed per-case timelines
  (``--format json`` for the stable v1 envelope).

``check``, ``testgen`` and ``test`` all take ``--trace FILE`` (write a
JSONL trace of the run) and ``--metrics`` (print the metrics table at
the end); see docs/OBSERVABILITY.md.  They also take the engine flags
``--workers N`` (parallel exploration — and, for ``test``, parallel
case execution), ``--checkpoint DIR`` and ``--resume``; see
docs/ENGINE.md.

Models: ``example``, ``xraft``, ``raftkv``, ``zab``.
Targets: ``toycache``, ``pyxraft``, ``raftkv``, ``minizk``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional

from .core import ControlledTester, RunnerConfig, generate_test_cases
from .obs import METRICS, TRACER, TraceReader
from .tlaplus import check, write_dot

__all__ = ["main"]

_RUNNER = RunnerConfig(match_timeout=1.0, done_timeout=1.0, quiesce_delay=0.05)


def _build_model(name: str):
    if name == "example":
        from .specs import build_example_spec

        return build_example_spec()
    if name == "xraft":
        from .specs.raft import RaftSpecOptions, build_raft_spec

        return build_raft_spec(RaftSpecOptions(
            max_term=1, max_client_requests=0, candidates=("n1",),
            name="xraft-model",
        ))
    if name == "raftkv":
        from .specs.raft import RaftSpecOptions, build_raft_spec

        return build_raft_spec(RaftSpecOptions(
            max_term=1, max_client_requests=0, candidates=("n1",),
            enable_drop=False, enable_duplicate=False, name="raftkv-model",
        ))
    if name == "zab":
        from .specs.zab import ZabSpecOptions, build_zab_spec

        return build_zab_spec(ZabSpecOptions(
            max_elections=1, max_crashes=0, max_restarts=0, starters=("n3",),
            name="zab-model",
        ))
    raise SystemExit(f"unknown model {name!r} (example|xraft|raftkv|zab)")


def _target_kit(name: str, bugs):
    """(spec, mapping, cluster factory) for a system under test."""
    bug_flags = set(bugs or ())

    def flags(prefix, known):
        selected = {}
        for flag in bug_flags:
            if flag not in known:
                raise SystemExit(
                    f"unknown bug {flag!r} for {name}; known: {sorted(known)}")
            selected[flag] = True
        return selected

    if name == "toycache":
        from .specs import build_example_spec
        from .systems.toycache import (
            ToyCacheConfig, build_toycache_mapping, make_toycache_cluster,
        )

        known = {"bug_wrong_max", "bug_forget_respond", "bug_double_respond"}
        config = ToyCacheConfig(**flags("toycache", known))
        spec = build_example_spec()
        return spec, build_toycache_mapping(), lambda: make_toycache_cluster(config)
    if name == "pyxraft":
        from .systems.pyxraft import (
            XraftConfig, build_xraft_mapping, make_xraft_cluster,
        )

        known = {"bug_duplicate_vote_count", "bug_votedfor_not_persisted",
                 "bug_stale_vote_grant"}
        config = XraftConfig(**flags("pyxraft", known))
        spec = _build_model("xraft")
        return (spec, build_xraft_mapping(spec, config),
                lambda: make_xraft_cluster(("n1", "n2", "n3"), config))
    if name == "raftkv":
        from .systems.raftkv import (
            RaftKvConfig, build_raftkv_mapping, make_raftkv_cluster,
        )

        known = {"bug_drop_higher_term_response", "bug_append_no_truncate"}
        config = RaftKvConfig(**flags("raftkv", known))
        spec = _build_model("raftkv")
        return (spec, build_raftkv_mapping(spec, config),
                lambda: make_raftkv_cluster(("n1", "n2", "n3"), config))
    if name == "minizk":
        from .systems.minizk import (
            MiniZkConfig, build_minizk_mapping, make_minizk_cluster,
        )

        known = {"bug_rebroadcast_on_worse_vote", "bug_epoch_mismatch_abort"}
        config = MiniZkConfig(**flags("minizk", known))
        spec = _build_model("zab")
        return (spec, build_minizk_mapping(spec, config),
                lambda: make_minizk_cluster(("n1", "n2", "n3"), config))
    raise SystemExit(f"unknown target {name!r} (toycache|pyxraft|raftkv|minizk)")


def _spec_independence(spec):
    """Static POR certificates for ``spec``; None when unavailable.

    The effect analyzer is conservative — an unanalyzable spec yields
    an empty relation, and any failure degrades to the legacy dynamic
    diamond search rather than aborting the command.
    """
    try:
        from .analysis.effects import analyze_spec

        return analyze_spec(spec).independence()
    except Exception:
        return None


def _obs_begin(args) -> bool:
    """Arm tracing/metrics for a command run; returns whether armed."""
    wanted = bool(getattr(args, "trace", None) or getattr(args, "metrics", False))
    if wanted:
        TRACER.reset()
        METRICS.reset()
        TRACER.configure(enabled=True, sink=getattr(args, "trace", None))
    return wanted


def _obs_end(args) -> None:
    """Tear down tracing, print the metrics table / trace location."""
    TRACER.disable()
    if getattr(args, "metrics", False):
        print("-- metrics " + "-" * 48)
        print(METRICS.render())
    if getattr(args, "trace", None):
        print(f"trace written to {args.trace} "
              f"({TRACER.emitted} records, {TRACER.dropped} dropped "
              f"from the ring buffer)")


def _with_obs(args, command) -> int:
    if not _obs_begin(args):
        return command()
    try:
        return command()
    finally:
        _obs_end(args)


def _check_kwargs(args) -> dict:
    """Engine flags (--workers/--checkpoint/--resume) for check()."""
    return dict(workers=args.workers, checkpoint=args.checkpoint,
                resume=args.resume)


def _cmd_check(args) -> int:
    def command() -> int:
        spec = _build_model(args.model)
        result = check(spec, max_states=args.max_states, truncate=True,
                       **_check_kwargs(args))
        print(result.summary())
        if args.checkpoint:
            print(f"checkpoint directory: {args.checkpoint}")
        if args.dot:
            write_dot(result.graph, args.dot)
            print(f"state-space graph written to {args.dot}")
        return 0 if result.ok else 1

    return _with_obs(args, command)


def _cmd_testgen(args) -> int:
    def command() -> int:
        spec = _build_model(args.model)
        graph = check(spec, max_states=args.max_states, truncate=True,
                      **_check_kwargs(args)).graph
        suite_ec = generate_test_cases(graph, por=False)
        suite_por = generate_test_cases(graph, por=True, seed=args.seed,
                                        independence=_spec_independence(spec))
        print(f"model: {graph.num_states} states, {graph.num_edges} edges")
        print(f"PathEC:     {len(suite_ec)} cases, "
              f"{suite_ec.total_actions()} actions")
        print(f"PathEC+POR: {len(suite_por)} cases, "
              f"{suite_por.total_actions()} actions "
              f"({suite_por.excluded_edges} edges dropped)")
        if args.show:
            for case in list(suite_por)[: args.show]:
                print(f"  #{case.case_id}: {case.describe()}")
        if args.out:
            suite_por.save(args.out)
            print(f"EC+POR suite written to {args.out}")
        return 0

    return _with_obs(args, command)


def _load_or_generate_suite(args, graph, spec=None):
    if getattr(args, "suite", None):
        from .core.testgen import TestSuite

        return TestSuite.load(args.suite)
    independence = _spec_independence(spec) if spec is not None else None
    return generate_test_cases(graph, por=not args.no_por, seed=args.seed,
                               independence=independence)


def _cmd_test(args) -> int:
    target = args.target or args.system
    if target is None:
        raise SystemExit("test: name a target (positional or --system)")
    want_faults = args.faults or args.chaos

    def command() -> int:
        spec, mapping, cluster_factory = _target_kit(target, args.bug)
        graph = check(spec, max_states=args.max_states, truncate=True,
                      **_check_kwargs(args)).graph
        if want_faults:
            # fault planning consumes graph *ordering* (edge indices,
            # rng-driven edge picks); serial FIFO BFS and the sharded
            # explorer discover in different orders, so renumber into
            # the content-only canonical form first — same plan bytes
            # for any --workers value
            from .engine import canonicalize

            graph = canonicalize(graph)
        suite = _load_or_generate_suite(args, graph, spec)
        plan = None
        base_suite = suite
        max_cases = args.cases
        if want_faults:
            from .faults import FaultRunner, apply_plan, plan_faults

            # cap the base suite *before* planning, so the appended
            # derived fault cases run even under --cases
            suite = suite.truncated(max_cases)
            base_suite = suite
            max_cases = None
            node_ids = cluster_factory().node_ids
            plan = plan_faults(graph, suite, mapping, str(args.fault_seed),
                               node_ids, chaos=args.chaos, target=target,
                               max_faults_per_case=args.max_faults)
            suite = apply_plan(suite, graph, plan)
            tester = FaultRunner(mapping, graph, cluster_factory, plan,
                                 _RUNNER)
            print(f"fault plan: {plan.summary()}")
        else:
            tester = ControlledTester(mapping, graph, cluster_factory, _RUNNER)
        print(f"running up to {max_cases or len(suite)} of {len(suite)} cases "
              f"against {target} "
              f"({'buggy: ' + ','.join(args.bug) if args.bug else 'correct'})")
        started = time.monotonic()
        outcome = tester.run_suite(suite, stop_on_divergence=args.stop_on_bug,
                                   max_cases=max_cases, workers=args.workers)
        elapsed = time.monotonic() - started
        print(f"{outcome.summary()} ({elapsed:.1f}s wall clock)")
        if plan is not None:
            from .faults import render_triage, triage

            payload = triage(outcome, plan)
            print(render_triage(payload))
            if payload["unattributed"] and args.shrink_on_failure:
                _shrink_and_report(plan, graph, base_suite, mapping,
                                   cluster_factory, args)
            return 0 if payload["unattributed"] == 0 else 1
        for failing in outcome.failures[:5]:
            print(f"  case #{failing.case.case_id}: "
                  f"{failing.divergence.headline()}")
            print(f"    schedule: {failing.case.describe()[:160]}")
        return 0 if outcome.passed else 1

    return _with_obs(args, command)


def _shrink_and_report(plan, graph, suite, mapping, cluster_factory,
                       args) -> int:
    """Run :func:`shrink_plan` on a failing plan and print/save results.

    ``suite`` must be the *base* suite (before ``apply_plan``); the
    shrinker re-derives fault cases for every candidate sub-plan.
    """
    from .faults import shrink_plan

    try:
        result = shrink_plan(
            plan, graph, suite, mapping, cluster_factory, _RUNNER,
            budget=getattr(args, "budget", 200) or 200,
            workers=getattr(args, "workers", 1) or 1)
    except ValueError as exc:
        raise SystemExit(f"shrink: {exc}")
    print(f"shrink: {result.summary()}")
    out = getattr(args, "out", None)
    if out:
        result.minimal.save(out)
        print(f"minimal plan written to {out}")
    else:
        print(result.minimal.to_json(), end="")
    log = getattr(args, "log", None)
    if log:
        result.write_log(log)
        print(f"shrink log written to {log} "
              f"({len(result.log)} records; readable by 'trace summarize')")
    return 0


def _cmd_faults(args) -> int:
    from .faults import (
        FaultPlan, FaultRunner, apply_plan, plan_faults, render_triage, triage,
    )

    def build_kit():
        from .engine import canonicalize

        spec, mapping, cluster_factory = _target_kit(args.target, args.bug)
        # canonical renumbering, as in `mocket test --faults`: plans are
        # exchangeable between the two verbs and independent of how the
        # graph was explored
        graph = canonicalize(
            check(spec, max_states=args.max_states, truncate=True).graph)
        suite = _load_or_generate_suite(args, graph, spec)
        return mapping, cluster_factory, graph, suite

    if args.faults_command == "plan":
        mapping, cluster_factory, graph, suite = build_kit()
        plan = plan_faults(graph, suite, mapping, str(args.fault_seed),
                           cluster_factory().node_ids, chaos=args.chaos,
                           target=args.target,
                           max_faults_per_case=args.max_faults)
        print(f"fault plan: {plan.summary()}")
        if args.out:
            plan.save(args.out)
            print(f"fault plan written to {args.out}")
        else:
            print(plan.to_json(), end="")
        return 0

    if args.faults_command in ("run", "replay"):
        def command() -> int:
            mapping, cluster_factory, graph, suite = build_kit()
            max_cases = args.cases
            if args.faults_command == "replay":
                plan = FaultPlan.load(args.plan)
            else:
                suite = suite.truncated(max_cases)
                max_cases = None
                plan = plan_faults(graph, suite, mapping,
                                   str(args.fault_seed),
                                   cluster_factory().node_ids,
                                   chaos=args.chaos, target=args.target,
                                   max_faults_per_case=args.max_faults)
            base_suite = suite
            suite = apply_plan(suite, graph, plan)
            print(f"fault plan: {plan.summary()}")
            tester = FaultRunner(mapping, graph, cluster_factory, plan,
                                 _RUNNER)
            outcome = tester.run_suite(suite, max_cases=max_cases,
                                       workers=args.workers)
            print(outcome.summary())
            payload = triage(outcome, plan, graph=graph)
            print(render_triage(payload))
            if (payload["unattributed"]
                    and getattr(args, "shrink_on_failure", False)):
                _shrink_and_report(plan, graph, base_suite, mapping,
                                   cluster_factory, args)
            return 0 if payload["unattributed"] == 0 else 1

        return _with_obs(args, command)

    if args.faults_command == "shrink":
        def command() -> int:
            mapping, cluster_factory, graph, suite = build_kit()
            plan = FaultPlan.load(args.plan)
            suite = suite.truncated(args.cases)
            print(f"shrinking: {plan.summary()}")
            return _shrink_and_report(plan, graph, suite, mapping,
                                      cluster_factory, args)

        return _with_obs(args, command)

    if args.faults_command == "scenarios":
        from .faults import all_chaos_scenarios

        rows = []
        for build in all_chaos_scenarios():
            scenario = build()
            if scenario.target == "pyxraft":
                from .systems.pyxraft import (
                    XraftConfig, build_xraft_mapping, make_xraft_cluster,
                )

                config = XraftConfig()
                mapping = build_xraft_mapping(scenario.spec, config)
                factory = (lambda servers=scenario.servers, cfg=config:
                           make_xraft_cluster(servers, cfg))
            elif scenario.target == "minizk":
                from .systems.minizk import (
                    MiniZkConfig, build_minizk_mapping, make_minizk_cluster,
                )

                config = MiniZkConfig()
                mapping = build_minizk_mapping(scenario.spec, config)
                factory = (lambda servers=scenario.servers, cfg=config:
                           make_minizk_cluster(servers, cfg))
            else:
                from .systems.raftkv import (
                    RaftKvConfig, build_raftkv_mapping, make_raftkv_cluster,
                )

                config = RaftKvConfig()
                mapping = build_raftkv_mapping(scenario.spec, config)
                factory = (lambda servers=scenario.servers, cfg=config:
                           make_raftkv_cluster(servers, cfg))
            tester = FaultRunner(mapping, scenario.graph, factory,
                                 scenario.plan, _RUNNER)
            result = tester.run_case(scenario.case)
            outcome = ("pass" if result.passed
                       else result.divergence.kind.value)
            detail = ("all clear" if result.passed
                      else result.divergence.headline())
            rows.append({
                "name": scenario.name,
                "target": scenario.target,
                "expected": scenario.expected_kind,
                "outcome": outcome,
                "ok": outcome == scenario.expected_kind,
                "detail": detail,
            })
        failed = sum(1 for row in rows if not row["ok"])
        if getattr(args, "format", "text") == "json":
            # stable v1 envelope, like `mocket lint --format json`
            import json

            print(json.dumps({
                "version": 1,
                "scenarios": rows,
                "summary": {"total": len(rows), "failed": failed},
            }, indent=2, sort_keys=True))
        else:
            for row in rows:
                print(f"{row['name']}: {row['detail']} "
                      f"[{'as expected' if row['ok'] else 'UNEXPECTED'}]")
        return 1 if failed else 0

    raise SystemExit(f"unknown faults subcommand {args.faults_command!r}")


def _cmd_fuzz(args) -> int:
    from .engine import canonicalize
    from .faults import FaultPlan
    from .fuzz import (
        FuzzError, fuzz_campaign, render_fuzz_json, render_fuzz_text,
    )

    def command() -> int:
        spec, mapping, cluster_factory = _target_kit(args.target, args.bug)
        # canonical renumbering, as everywhere plans travel: corpora are
        # exchangeable and independent of how the graph was explored
        graph = canonicalize(
            check(spec, max_states=args.max_states, truncate=True).graph)
        suite = _load_or_generate_suite(args, graph, spec)
        suite = suite.truncated(args.cases)
        try:
            seed_plans = [FaultPlan.load(path) for path in args.seed_plan]
        except FileNotFoundError as exc:
            print(f"fuzz: no such seed plan: {exc.filename}",
                  file=sys.stderr)
            return 2
        try:
            result = fuzz_campaign(
                graph, suite, mapping, cluster_factory,
                cluster_factory().node_ids,
                budget=args.budget, fuzz_seed=str(args.fuzz_seed),
                corpus_dir=args.corpus, target=args.target,
                chaos=args.chaos, max_faults=args.max_faults,
                workers=args.workers, guided=not args.unguided,
                seed_plans=seed_plans, runner_config=_RUNNER)
        except FuzzError as exc:
            print(f"fuzz: {exc}", file=sys.stderr)
            return 2
        if args.format == "json":
            print(render_fuzz_json(result))
        else:
            arm = "guided" if result.guided else "unguided"
            print(f"fuzzing {args.target} ({arm}): budget {args.budget}, "
                  f"fuzz seed '{result.corpus.meta['fuzz_seed']}', "
                  f"{len(suite)} base case(s)")
            print(render_fuzz_text(result))
        return 1 if result.bugs else 0

    return _with_obs(args, command)


def _cmd_soak(args) -> int:
    import json

    from .soak import SoakConfig, build_report, render_text, run_soak
    from .soak.nemesis import SCHEDULE_FORMAT

    def command() -> int:
        schedule = None
        if args.schedule:
            try:
                with open(args.schedule, encoding="utf-8") as fh:
                    doc = json.load(fh)
            except (OSError, ValueError) as exc:
                print(f"soak: cannot read schedule {args.schedule}: {exc}",
                      file=sys.stderr)
                return 2
            if doc.get("format") != SCHEDULE_FORMAT:
                print(f"soak: {args.schedule} is not a "
                      f"{SCHEDULE_FORMAT} file", file=sys.stderr)
                return 2
            schedule = doc["events"]
            schedule_faults = bool(doc.get("faults", any(schedule)))
        try:
            config = SoakConfig(
                target=args.target,
                ops=args.ops,
                seed=str(args.soak_seed),
                shards=len(schedule) if schedule is not None else args.shards,
                workers=args.workers,
                rate=args.rate,
                faults=schedule_faults if schedule is not None
                else args.faults,
                bug=args.bug,
                snapshot_every=args.snapshot_every,
                schedule=schedule,
            )
        except ValueError as exc:
            print(f"soak: {exc}", file=sys.stderr)
            return 2
        start = time.perf_counter()
        shard_reports = run_soak(config)
        wall = time.perf_counter() - start
        report = build_report(config, shard_reports)
        if args.schedule_out:
            doc = {"format": SCHEDULE_FORMAT, "seed": config.seed,
                   "shards": config.shards, "faults": config.faults,
                   "events": [s["fault_schedule"] for s in shard_reports]}
            with open(args.schedule_out, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, indent=2, sort_keys=True)
                fh.write("\n")
        if args.format == "json":
            # The canonical artifact: pure (seed, schedule) quantities,
            # no wall-clock readings — byte-identical across workers
            # and hash seeds (the determinism guard diffs exactly this).
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            print(render_text(report, wall_seconds=wall))
            if args.schedule_out:
                print(f"fault schedule written to {args.schedule_out}")
        return 1 if report["totals"]["divergences"] else 0

    return _with_obs(args, command)


def _cmd_lint(args) -> int:
    from .analysis import Severity, lint_target, render_json, render_text
    from .analysis.targets import all_targets

    names = all_targets() if args.target == "all" else [args.target]
    worst_hit = False
    results = []
    for name in names:
        try:
            result = lint_target(name)
        except ValueError as exc:
            raise SystemExit(str(exc))
        results.append(result)
        if args.format == "json":
            print(render_json(result))
        elif args.format == "text":
            print(render_text(result))
        if args.fail_on != "none":
            threshold = Severity.parse(args.fail_on)
            if result.unsuppressed(threshold):
                worst_hit = True
    if args.format == "sarif":
        # one aggregated SARIF document over every linted target, for
        # GitHub code scanning upload
        from .analysis import render_sarif

        print(render_sarif(results))
    return 1 if worst_hit else 0


def _cmd_analyze(args) -> int:
    from .analysis import targets
    from .analysis.effects import analyze_spec
    from .analysis.effects_report import (
        render_effects_dot, render_effects_json, render_effects_text,
    )

    try:
        context = targets.resolve(args.target)
    except ValueError as exc:
        raise SystemExit(str(exc))
    effects = analyze_spec(context.spec)
    print(render_effects_json(effects) if args.format == "json"
          else render_effects_text(effects))
    if args.dot:
        with open(args.dot, "w", encoding="utf-8") as handle:
            handle.write(render_effects_dot(effects))
        print(f"action-dependency graph written to {args.dot}")
    return 0


def _cmd_trace(args) -> int:
    if args.trace_command == "summarize":
        reader = TraceReader.from_file(args.file)
        if getattr(args, "format", "text") == "json":
            import json

            print(json.dumps(reader.summary_dict(max_cases=args.cases),
                             indent=2, sort_keys=True))
        else:
            print(reader.summarize(max_cases=args.cases))
        return 0
    raise SystemExit(f"unknown trace subcommand {args.trace_command!r}")


#: conform targets: systems resolve spec + event bindings, models are bare
_CONFORM_SYSTEMS = ("toycache", "pyxraft", "raftkv", "minizk")
_CONFORM_SPECS = ("example", "xraft", "zab")


def _conform_kit(name: str):
    """(spec, mapping-or-None) for a conform target.

    System targets carry a mapping whose event bindings translate log
    events into spec actions; bare models assume events name actions
    directly.  ``raftkv`` names both a system and a model — the system
    (with its bindings) wins, as in ``mocket test``.
    """
    if name in _CONFORM_SYSTEMS:
        spec, mapping, _factory = _target_kit(name, None)
        return spec, mapping
    if name in _CONFORM_SPECS:
        return _build_model(name), None
    known = "|".join(_CONFORM_SYSTEMS + _CONFORM_SPECS)
    raise SystemExit(f"unknown conform target {name!r} ({known})")


def _cmd_conform(args) -> int:
    from .conform import ConformanceMonitor, ConformanceOptions, get_adapter

    def command() -> int:
        spec, mapping = _conform_kit(args.spec)
        graph = check(spec, max_states=args.max_states, truncate=True,
                      **_check_kwargs(args)).graph
        options = ConformanceOptions(max_frontier=args.max_frontier,
                                     explain=args.explain,
                                     ignore_unknown=args.ignore_unknown)
        monitor = ConformanceMonitor(graph, mapping, options)
        try:
            adapter = get_adapter(args.adapter)
        except ValueError as exc:
            print(f"conform: {exc}", file=sys.stderr)
            return 2
        if args.log == "-":
            source, label = sys.stdin, "<stdin>"
        else:
            source, label = args.log, args.log
        try:
            if args.stream:
                # incremental mode: deterministic count-based progress
                # (never timing-based — output stays byte-identical)
                for event in adapter.read(source):
                    monitor.feed(event)
                    if args.progress and monitor.events % args.progress == 0:
                        print(f"... {monitor.events} events, frontier "
                              f"{len(monitor.frontier)}", file=sys.stderr)
                report = monitor.finish(log=label, adapter=args.adapter)
            else:
                report = monitor.run(adapter.read(source), log=label,
                                     adapter=args.adapter)
        except FileNotFoundError:
            print(f"conform: no such log: {args.log}", file=sys.stderr)
            return 2
        except ValueError as exc:
            print(f"conform: {exc}", file=sys.stderr)
            return 2
        print(report.to_json() if args.format == "json"
              else report.render_text())
        return 0 if report.ok else 1

    return _with_obs(args, command)


def _cmd_bugs(args) -> int:
    from .systems.minizk import MiniZkConfig, build_minizk_mapping, make_minizk_cluster
    from .systems.minizk.scenarios import zk_bug_1419, zk_bug_1653
    from .systems.pyxraft import build_xraft_mapping, make_xraft_cluster
    from .systems.pyxraft.scenarios import xraft_bug1, xraft_bug2, xraft_bug3
    from .systems.raftkv import build_raftkv_mapping, make_raftkv_cluster
    from .systems.raftkv.scenarios import (
        raft_spec_bug_missing_reply, raft_spec_bug_update_term,
        raftkv_bug1, raftkv_bug2,
    )

    kits = {
        "xraft": (build_xraft_mapping, make_xraft_cluster),
        "raftkv": (build_raftkv_mapping, make_raftkv_cluster),
        "minizk": (build_minizk_mapping, make_minizk_cluster),
    }
    scenarios = [
        (xraft_bug1, "xraft"), (xraft_bug2, "xraft"), (xraft_bug3, "xraft"),
        (raftkv_bug1, "raftkv"), (raftkv_bug2, "raftkv"),
        (zk_bug_1419, "minizk"), (zk_bug_1653, "minizk"),
        (raft_spec_bug_missing_reply, "raftkv"),
        (raft_spec_bug_update_term, "raftkv"),
    ]
    failures = 0
    for build, kit in scenarios:
        scenario = build()
        build_mapping, make_cluster = kits[kit]
        tester = ControlledTester(
            build_mapping(scenario.spec, scenario.buggy_config), scenario.graph,
            lambda: make_cluster(scenario.servers, scenario.buggy_config),
            _RUNNER,
        )
        result = tester.run_case(scenario.case)
        if result.passed:
            print(f"{scenario.name}: NOT DETECTED (unexpected)")
            failures += 1
        else:
            print(f"{scenario.name}: {result.divergence.headline()} "
                  f"({len(scenario.case)} actions)")
    return 1 if failures else 0


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="mocket",
        description="Model checking guided testing for distributed systems",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_obs_flags(p) -> None:
        p.add_argument("--trace", metavar="FILE",
                       help="write a JSONL trace of the run to FILE")
        p.add_argument("--metrics", action="store_true",
                       help="print the metrics table after the run")

    def add_fault_seed_flags(p) -> None:
        p.add_argument("--fault-seed", default="0", metavar="SEED",
                       help="nemesis seed: same seed => byte-identical "
                            "fault plan and identical reports (default: 0)")
        p.add_argument("--chaos", action="store_true",
                       help="also inject disruptive spec-unmodeled faults "
                            "(bounce/crash/corrupt) with convergence-mode "
                            "checking")
        p.add_argument("--max-faults", type=int, default=1, metavar="K",
                       help="schedule up to K faults per case (default: 1; "
                            "K>1 widens the vocabulary to link cuts, "
                            "partial partitions, delays and corruption)")

    def add_shrink_flag(p) -> None:
        p.add_argument("--shrink-on-failure", action="store_true",
                       help="after an unattributed failure, shrink the "
                            "plan to a minimal repro (docs/FAULTS.md)")

    def add_fault_flags(p) -> None:
        p.add_argument("--faults", action="store_true",
                       help="inject modeled + transparent chaos faults "
                            "while testing (docs/FAULTS.md)")
        add_fault_seed_flags(p)
        add_shrink_flag(p)

    def add_engine_flags(p) -> None:
        p.add_argument("--workers", type=int, default=1, metavar="N",
                       help="explore/run with N parallel worker processes "
                            "(default: 1, the serial path)")
        p.add_argument("--checkpoint", metavar="DIR",
                       help="snapshot checking progress to DIR after "
                            "every BFS level")
        p.add_argument("--resume", action="store_true",
                       help="continue checking from the latest snapshot "
                            "in --checkpoint DIR")

    p_check = sub.add_parser("check", help="model-check a built-in model")
    p_check.add_argument("model")
    p_check.add_argument("--max-states", type=int, default=100_000)
    p_check.add_argument("--dot", help="dump the state-space graph to this file")
    add_engine_flags(p_check)
    add_obs_flags(p_check)
    p_check.set_defaults(func=_cmd_check)

    p_gen = sub.add_parser("testgen", help="generate test cases from a model")
    p_gen.add_argument("model")
    p_gen.add_argument("--max-states", type=int, default=100_000)
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("--show", type=int, default=0,
                       help="print the first N generated cases")
    p_gen.add_argument("--out", help="save the EC+POR suite to a JSON file")
    add_engine_flags(p_gen)
    add_obs_flags(p_gen)
    p_gen.set_defaults(func=_cmd_testgen)

    p_test = sub.add_parser("test", help="controlled testing of a target")
    p_test.add_argument("target", nargs="?", default=None)
    p_test.add_argument("--system", default=None,
                        help="the target system (alias for the positional)")
    p_test.add_argument("--bug", action="append", default=[],
                        help="seed a bug flag (repeatable)")
    p_test.add_argument("--cases", type=int, default=None)
    p_test.add_argument("--max-states", type=int, default=100_000)
    p_test.add_argument("--seed", type=int, default=0)
    p_test.add_argument("--no-por", action="store_true")
    p_test.add_argument("--suite", help="run a suite saved by 'testgen --out'")
    p_test.add_argument("--stop-on-bug", action="store_true")
    add_fault_flags(p_test)
    add_engine_flags(p_test)
    add_obs_flags(p_test)
    p_test.set_defaults(func=_cmd_test)

    p_faults = sub.add_parser(
        "faults", help="seeded fault injection (see docs/FAULTS.md)")
    faults_sub = p_faults.add_subparsers(dest="faults_command", required=True)

    def add_faults_common(p) -> None:
        p.add_argument("target",
                       help="a system under test (toycache|pyxraft|raftkv|minizk)")
        p.add_argument("--bug", action="append", default=[],
                       help="seed a bug flag (repeatable)")
        p.add_argument("--max-states", type=int, default=100_000)
        p.add_argument("--seed", type=int, default=0,
                       help="test-generation seed (POR tie-breaking)")
        p.add_argument("--no-por", action="store_true")
        p.add_argument("--suite", help="use a suite saved by 'testgen --out'")

    p_fplan = faults_sub.add_parser(
        "plan", help="derive a seeded fault plan from the state graph")
    add_faults_common(p_fplan)
    add_fault_seed_flags(p_fplan)
    p_fplan.add_argument("--out", help="write the plan JSON to this file")
    p_fplan.set_defaults(func=_cmd_faults)

    p_frun = faults_sub.add_parser(
        "run", help="plan + execute fault injection, then triage")
    add_faults_common(p_frun)
    add_fault_seed_flags(p_frun)
    add_shrink_flag(p_frun)
    p_frun.add_argument("--cases", type=int, default=None)
    add_engine_flags(p_frun)
    add_obs_flags(p_frun)
    p_frun.set_defaults(func=_cmd_faults)

    p_freplay = faults_sub.add_parser(
        "replay", help="re-execute a saved fault plan bit-identically")
    add_faults_common(p_freplay)
    p_freplay.add_argument("--plan", required=True,
                           help="a plan written by 'faults plan --out'")
    p_freplay.add_argument("--cases", type=int, default=None)
    add_engine_flags(p_freplay)
    add_obs_flags(p_freplay)
    p_freplay.set_defaults(func=_cmd_faults)

    p_fshrink = faults_sub.add_parser(
        "shrink", help="minimize a failing fault plan to a minimal repro")
    add_faults_common(p_fshrink)
    p_fshrink.add_argument("--plan", required=True,
                           help="a failing plan written by 'faults plan --out'")
    p_fshrink.add_argument("--cases", type=int, default=None,
                           help="truncate the base suite as the failing "
                                "run did")
    p_fshrink.add_argument("--budget", type=int, default=200, metavar="N",
                           help="replay budget for the shrink search "
                                "(default: 200)")
    p_fshrink.add_argument("--out", help="write the minimal plan JSON here")
    p_fshrink.add_argument("--log", metavar="FILE",
                           help="write the JSONL shrink log to FILE "
                                "(readable by 'mocket trace summarize')")
    add_engine_flags(p_fshrink)
    add_obs_flags(p_fshrink)
    p_fshrink.set_defaults(func=_cmd_faults)

    p_fscen = faults_sub.add_parser(
        "scenarios", help="replay the bundled chaos scenarios")
    p_fscen.add_argument("--format", choices=("text", "json"), default="text",
                         help="json prints the stable v1 envelope")
    p_fscen.set_defaults(func=_cmd_faults, faults_command="scenarios")

    p_fuzz = sub.add_parser(
        "fuzz",
        help="coverage-guided fuzzing of fault schedules "
             "(see docs/FUZZING.md)")
    add_faults_common(p_fuzz)
    p_fuzz.add_argument("--budget", type=int, default=20, metavar="N",
                        help="execute N schedules this invocation "
                             "(default: 20); re-running with --corpus "
                             "resumes the same deterministic stream")
    p_fuzz.add_argument("--corpus", metavar="DIR",
                        help="keep coverage-novel schedules in DIR "
                             "(created if missing; omitted = in-memory)")
    p_fuzz.add_argument("--fuzz-seed", default="0", metavar="SEED",
                        help="campaign seed: same seed => byte-identical "
                             "corpus, independent of --workers and "
                             "PYTHONHASHSEED (default: 0)")
    p_fuzz.add_argument("--cases", type=int, default=None,
                        help="truncate the base suite to N cases")
    p_fuzz.add_argument("--chaos", action="store_true",
                        help="let mutations also inject disruptive "
                             "spec-unmodeled faults (bounce/crash/corrupt)")
    p_fuzz.add_argument("--max-faults", type=int, default=1, metavar="K",
                        help="k-budget per case for mutated schedules "
                             "(default: 1)")
    p_fuzz.add_argument("--seed-plan", action="append", default=[],
                        metavar="FILE",
                        help="import a plan written by 'faults plan --out' "
                             "as a corpus seed (repeatable)")
    p_fuzz.add_argument("--unguided", action="store_true",
                        help="control arm: same budget, plain seeded "
                             "planner stream, no coverage feedback")
    p_fuzz.add_argument("--format", choices=("text", "json"),
                        default="text",
                        help="json prints the stable v1 envelope")
    add_engine_flags(p_fuzz)
    add_obs_flags(p_fuzz)
    p_fuzz.set_defaults(func=_cmd_fuzz)

    p_soak = sub.add_parser(
        "soak",
        help="soak-scale workload on the deterministic simulation "
             "runtime (see docs/RUNTIME.md)")
    p_soak.add_argument("target", help="system to soak (raftkv)")
    p_soak.add_argument("--ops", type=int, default=100_000, metavar="N",
                        help="total open-loop client operations across "
                             "all shards (default: 100000)")
    p_soak.add_argument("--soak-seed", default="0", metavar="SEED",
                        help="run seed: same (seed, schedule) => "
                             "byte-identical report, independent of "
                             "--workers and PYTHONHASHSEED (default: 0)")
    p_soak.add_argument("--shards", type=int, default=4, metavar="N",
                        help="fixed number of independent simulation "
                             "shards; part of the run's identity, unlike "
                             "--workers (default: 4)")
    p_soak.add_argument("--workers", type=int, default=1, metavar="N",
                        help="OS processes executing shards concurrently; "
                             "never changes a byte of output (default: 1)")
    p_soak.add_argument("--rate", type=float, default=200.0, metavar="OPS",
                        help="open-loop client rate per shard, in "
                             "simulated ops/second (default: 200)")
    p_soak.add_argument("--faults", action="store_true",
                        help="derive and inject a seeded virtual-time "
                             "fault schedule (partitions, crashes, link "
                             "delays)")
    p_soak.add_argument("--bug", choices=("bug_skip_apply",), default=None,
                        help="enable a seeded soak bug in the simulated "
                             "system under test")
    p_soak.add_argument("--snapshot-every", type=float, default=25.0,
                        metavar="SIMSECS",
                        help="triage snapshot cadence in simulated "
                             "seconds (default: 25)")
    p_soak.add_argument("--schedule", metavar="FILE",
                        help="replay a saved fault schedule verbatim "
                             "instead of deriving one from the seed")
    p_soak.add_argument("--schedule-out", metavar="FILE",
                        help="write this run's fault schedule for exact "
                             "replay")
    p_soak.add_argument("--format", choices=("text", "json"),
                        default="text",
                        help="json prints the canonical v1 soak report")
    add_obs_flags(p_soak)
    p_soak.set_defaults(func=_cmd_soak)

    p_bugs = sub.add_parser("bugs", help="replay all Table 2 bug scenarios")
    p_bugs.set_defaults(func=_cmd_bugs)

    p_lint = sub.add_parser(
        "lint", help="static conformance analysis of a bundled target")
    p_lint.add_argument(
        "target",
        help="a system (toycache|pyxraft|raftkv|minizk), a bare spec "
             "(example|xraft|zab), or 'all'")
    p_lint.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text",
                        help="sarif prints one aggregated SARIF 2.1.0 "
                             "document for GitHub code scanning")
    p_lint.add_argument(
        "--fail-on", choices=("error", "warning", "none"), default="error",
        help="exit 1 when unsuppressed findings at/above this severity "
             "exist (default: error)")
    p_lint.set_defaults(func=_cmd_lint)

    p_analyze = sub.add_parser(
        "analyze",
        help="static effect analysis of a target's spec actions")
    p_analyze.add_argument(
        "target",
        help="a system (toycache|pyxraft|raftkv|minizk) or a bare spec "
             "(example|xraft|zab)")
    p_analyze.add_argument("--format", choices=("text", "json"),
                           default="text",
                           help="json prints the stable v1 envelope")
    p_analyze.add_argument("--dot", metavar="FILE",
                           help="write the action-dependency graph (DOT) "
                                "to FILE")
    p_analyze.set_defaults(func=_cmd_analyze)

    p_conform = sub.add_parser(
        "conform",
        help="validate a captured log against the spec's state graph")
    p_conform.add_argument("log",
                           help="the log file to validate ('-' reads stdin)")
    p_conform.add_argument(
        "--spec", required=True, metavar="TARGET",
        help="a system (toycache|pyxraft|raftkv|minizk: spec + event "
             "bindings) or a bare model (example|xraft|zab)")
    p_conform.add_argument(
        "--adapter", default="obs", metavar="NAME",
        help="log format adapter: 'obs' (native JSONL traces) or 'jsonl' "
             "(one {\"action\": ...} object per line); default: obs")
    p_conform.add_argument("--format", choices=("text", "json"),
                           default="text",
                           help="json prints the stable v1 envelope")
    p_conform.add_argument(
        "--stream", action="store_true",
        help="incremental mode: print count-based progress to stderr "
             "while the log is consumed")
    p_conform.add_argument(
        "--progress", type=int, default=100_000, metavar="N",
        help="with --stream, report every N events (default: 100000)")
    p_conform.add_argument(
        "--max-frontier", type=int, default=4096, metavar="N",
        help="cap the tracked state set at N (TLC-style bounded memory; "
             "lowest canonical ids kept on spill; default: 4096)")
    p_conform.add_argument(
        "--explain", type=int, default=5, metavar="K",
        help="list up to K near-miss transitions at a divergence "
             "(default: 5)")
    p_conform.add_argument(
        "--ignore-unknown", action="store_true",
        help="skip events with no spec binding instead of diverging")
    p_conform.add_argument("--max-states", type=int, default=100_000)
    add_engine_flags(p_conform)
    add_obs_flags(p_conform)
    p_conform.set_defaults(func=_cmd_conform)

    p_trace = sub.add_parser("trace", help="work with recorded JSONL traces")
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_sum = trace_sub.add_parser(
        "summarize", help="reconstruct per-case timelines from a trace")
    p_sum.add_argument("file")
    p_sum.add_argument("--cases", type=int, default=None,
                       help="show at most N case timelines")
    p_sum.add_argument("--format", choices=("text", "json"), default="text",
                       help="json prints the stable v1 summary envelope")
    p_sum.set_defaults(func=_cmd_trace)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
