"""Seeded virtual-time fault schedules for soak runs.

A soak fault schedule is a list of timestamped events — *when*, in
simulated seconds, to isolate a node, crash one, delay a link, and
when to undo it — derived entirely from the soak seed.  It is the
"schedule" half of the ``(seed, schedule)`` replay contract: the
schedule is embedded in every soak report, and ``mocket soak
--schedule FILE`` re-runs a saved one verbatim instead of deriving it.

Faults are generated one at a time (each ends before the next begins)
so a minority is never silently wedged by overlapping disruptions; the
point of a soak is sustained throughput under recoverable turbulence,
with the monitor's ``stalled`` check watching the recovery.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Sequence

__all__ = ["build_fault_schedule", "SCHEDULE_FORMAT"]

SCHEDULE_FORMAT = "mocket-soak-schedule/1"

# kind -> weight; partitions dominate, crashes and link delays season.
_KIND_WEIGHTS = (("partition", 5), ("crash", 3), ("delay", 2))


def build_fault_schedule(seed: str, until: float,
                         node_ids: Sequence[str],
                         mean_gap: float = 40.0,
                         min_duration: float = 3.0,
                         max_duration: float = 10.0,
                         start: float = 5.0) -> List[Dict[str, Any]]:
    """Derive the deterministic fault event list for one shard.

    Events are dicts ``{"at": t, "op": ..., ...}`` sorted by time;
    every disruptive event is paired with its undo (``heal`` /
    ``restart``) before the next fault begins.
    """
    rng = random.Random(f"{seed}:nemesis")
    kinds = [k for k, w in _KIND_WEIGHTS for _ in range(w)]
    events: List[Dict[str, Any]] = []
    t = start
    while True:
        t += rng.uniform(0.5 * mean_gap, 1.5 * mean_gap)
        if t >= until:
            break
        kind = rng.choice(kinds)
        duration = rng.uniform(min_duration, max_duration)
        if kind == "partition":
            victim = rng.choice(list(node_ids))
            events.append({"at": round(t, 6), "op": "partition",
                           "node": victim})
            events.append({"at": round(t + duration, 6), "op": "heal"})
        elif kind == "crash":
            victim = rng.choice(list(node_ids))
            events.append({"at": round(t, 6), "op": "crash",
                           "node": victim})
            events.append({"at": round(t + duration, 6), "op": "restart",
                           "node": victim})
        else:  # delay
            src, dst = rng.sample(list(node_ids), 2)
            count = rng.randrange(5, 50)
            events.append({"at": round(t, 6), "op": "delay",
                           "src": src, "dst": dst, "count": count})
            events.append({"at": round(t + duration, 6), "op": "heal"})
        t += duration
    return events


def apply_schedule(cluster, scheduler, events: Sequence[Dict[str, Any]]) -> None:
    """Arm every schedule event on the shard's event loop."""
    for event in events:
        scheduler.schedule(max(0.0, event["at"] - scheduler.now()),
                           _fire, cluster, event)


def _fire(cluster, event: Dict[str, Any]) -> None:
    op = event["op"]
    if op == "partition":
        cluster.isolate(event["node"])
    elif op == "heal":
        cluster.heal()
    elif op == "crash":
        if cluster.is_up(event["node"]):
            cluster.crash_node(event["node"])
    elif op == "restart":
        if not cluster.is_up(event["node"]):
            cluster.restart_node(event["node"])
    elif op == "delay":
        cluster.delay_link(event["src"], event["dst"], event["count"])
    else:  # pragma: no cover - schedule files are validated upstream
        raise ValueError(f"unknown soak fault op {op!r}")
