"""Soak report assembly and rendering.

The JSON report is the *canonical* artifact of a soak run: it contains
only simulated-time quantities (never wall-clock readings, never the
worker count), so the same ``(seed, schedule)`` produces the same
bytes on any machine, any ``PYTHONHASHSEED``, any ``--workers`` —
that is what the determinism guard diffs.  Wall-clock throughput is a
*measurement about* the run, made by the CLI/benchmark layers, and is
printed on the text path only.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

__all__ = ["build_report", "render_text", "totals"]


def totals(shards: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate shard reports (shard order is fixed, so this is too)."""
    by_kind: Dict[str, int] = {}
    for shard in shards:
        for kind, count in shard["divergences"].items():
            by_kind[kind] = by_kind.get(kind, 0) + count
    return {
        "submitted": sum(s["submitted"] for s in shards),
        "accepted": sum(s["accepted"] for s in shards),
        "rejected": sum(s["rejected"] for s in shards),
        "acked": sum(s["acked"] for s in shards),
        "applied_events": sum(s["applied_events"] for s in shards),
        "sim_time": round(sum(s["sim_time"] for s in shards), 6),
        "divergences": {k: by_kind[k] for k in sorted(by_kind)},
    }


def build_report(config, shards: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """The stable v1 soak envelope.  ``workers`` is deliberately absent:
    it may not influence a single byte of this document."""
    return {
        "version": 1,
        "kind": "soak",
        "target": config.target,
        "seed": config.seed,
        "ops": config.ops,
        "shards": config.shards,
        "rate": config.rate,
        "faults": config.faults,
        "bug": config.bug,
        "totals": totals(shards),
        "shard_reports": list(shards),
    }


def render_text(report: Dict[str, Any],
                wall_seconds: Optional[float] = None) -> str:
    """Human summary; the only place wall-clock throughput may appear."""
    lines: List[str] = []
    t = report["totals"]
    faults = "faults on" if report["faults"] else "no faults"
    if report["bug"]:
        faults += f", bug {report['bug']}"
    lines.append(
        f"soak {report['target']}: {report['shards']} shard(s), "
        f"{report['ops']} ops (seed {report['seed']!r}, {faults})")
    for shard in report["shard_reports"]:
        div = sum(shard["divergences"].values())
        lines.append(
            f"  shard {shard['shard']}: {shard['submitted']} submitted, "
            f"{shard['acked']} acked, {shard['rejected']} rejected, "
            f"{div} divergence(s), {shard['sim_time']:.1f}s simulated")
    lost = t["accepted"] - t["acked"]
    lines.append(
        f"soak: {t['submitted']} submitted, {t['acked']} acked "
        f"({t['rejected']} rejected, {lost} lost unacked), "
        f"{t['sim_time']:.1f}s simulated")
    if t["divergences"]:
        kinds = ", ".join(f"{k}={v}" for k, v in t["divergences"].items())
        lines.append(f"divergences: {kinds}")
        for shard in report["shard_reports"]:
            for event in shard["divergence_events"][:3]:
                node = event["node"] or "-"
                lines.append(
                    f"  !! shard {shard['shard']} t={event['sim_time']:.1f} "
                    f"{event['kind']} node={node}: {event['detail']}")
    else:
        lines.append("divergences: none")
    if wall_seconds is not None and wall_seconds > 0:
        rate = t["submitted"] / wall_seconds
        lines.append(
            f"wall: {wall_seconds:.1f}s, {rate:,.0f} simulated ops/sec, "
            f"{t['sim_time'] / wall_seconds:.0f}x real time")
    return "\n".join(lines)
