"""Soak-scale workloads on the deterministic simulation harness.

``mocket soak`` drives the raftkv KV path with an open-loop seeded
client generator on :mod:`repro.runtime.sim`: millions of simulated
client operations, a seeded virtual-time nemesis schedule, periodic
triage snapshots, and an always-on invariant monitor — all compressed
from hours of simulated time into seconds of CPU.  A soak run is a
pure function of ``(seed, schedule)``: the report is byte-identical
for any ``--workers`` count and any ``PYTHONHASHSEED``, so a failure
replays exactly (see ``docs/RUNTIME.md``).

Workload sharding: a run is split over a *fixed* number of independent
simulation shards (``--shards``, each its own cluster, scheduler and
derived seed); ``--workers`` only chooses how many OS processes
execute those shards concurrently and never changes a byte of output.

No module in this package may read the wall clock
(``tests/soak/test_no_wallclock_guard.py`` greps for violations);
wall-clock throughput is measured by the CLI and benchmark layers
around the simulation, never inside it.
"""

from .monitor import SoakMonitor
from .nemesis import build_fault_schedule
from .report import build_report, render_text
from .runner import SoakConfig, run_shard, run_soak

__all__ = [
    "SoakConfig",
    "SoakMonitor",
    "build_fault_schedule",
    "build_report",
    "render_text",
    "run_shard",
    "run_soak",
]
