"""The soak runner: open-loop workload over sharded simulations.

One *shard* is a complete simulated raftkv cluster on its own seeded
event loop: an open-loop client generator submits writes at a fixed
simulated rate (clients do not wait for acks — the paper's production
workloads are open-loop, and so is this one), a seeded nemesis
schedule disrupts the cluster, the :class:`~repro.soak.monitor
.SoakMonitor` checks invariants, and periodic triage snapshots record
progress on the virtual timeline.

A run of ``--ops N`` splits N over ``--shards`` fixed shards with
derived seeds (``{seed}:shard{i}``); ``--workers`` picks how many OS
processes execute them (fork pool when the platform has it, serial
otherwise) and **cannot** change a byte of the merged report — the
determinism guard pins that, together with ``PYTHONHASHSEED``
independence, in ``tests/soak/test_determinism_guard.py``.

Termination is simulated-time, never wall-time: the generator stops
at its submit horizon, then the shard drains in snapshot windows
until apply progress stops (with the monitor's ``stalled`` check
separating a quiet tail from a wedged cluster).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..obs import METRICS, TRACER
from ..runtime.sim import SimScheduler
from ..systems.raftkv.sim import (
    LEADER,
    SimRaftKvConfig,
    make_sim_raftkv_cluster,
)
from .monitor import SoakMonitor
from .nemesis import apply_schedule, build_fault_schedule
from .report import totals as _totals

__all__ = ["SoakConfig", "run_shard", "run_soak"]

# Simulated seconds between open-loop generator ticks.
_TICK = 0.25
# Generator starts after the first election has settled.
_WARMUP = 1.0
# Give up draining after this many progress-free snapshot windows.
_MAX_DRAIN_WINDOWS = 40

SOAK_BUGS = ("bug_skip_apply",)


class SoakConfig:
    """Everything a soak run depends on; all of it seeds the outcome."""

    def __init__(self,
                 target: str = "raftkv",
                 ops: int = 100000,
                 seed: str = "0",
                 shards: int = 4,
                 workers: int = 1,
                 rate: float = 200.0,
                 key_space: int = 1024,
                 faults: bool = False,
                 bug: Optional[str] = None,
                 snapshot_every: float = 25.0,
                 checkpoint_every: int = 1000,
                 schedule: Optional[List[List[Dict[str, Any]]]] = None):
        if target != "raftkv":
            raise ValueError(f"mocket soak drives raftkv, not {target!r}")
        if ops < 1:
            raise ValueError("ops must be >= 1")
        if shards < 1 or workers < 1:
            raise ValueError("shards and workers must be >= 1")
        if bug is not None and bug not in SOAK_BUGS:
            raise ValueError(f"unknown soak bug {bug!r} (have {SOAK_BUGS})")
        if schedule is not None and len(schedule) != shards:
            raise ValueError(
                f"schedule has {len(schedule)} shard entries, need {shards}")
        self.target = target
        self.ops = ops
        self.seed = str(seed)
        self.shards = shards
        self.workers = workers
        self.rate = float(rate)
        self.key_space = key_space
        self.faults = faults
        self.bug = bug
        self.snapshot_every = float(snapshot_every)
        self.checkpoint_every = checkpoint_every
        self.schedule = schedule

    def shard_seed(self, index: int) -> str:
        return f"{self.seed}:shard{index}"

    def shard_ops(self) -> List[int]:
        base, extra = divmod(self.ops, self.shards)
        return [base + (1 if i < extra else 0) for i in range(self.shards)]


class _Generator:
    """Open-loop seeded client: fires at a fixed simulated rate whether
    or not the cluster is keeping up, retrying nothing."""

    def __init__(self, cluster, scheduler, monitor, seed: str,
                 total_ops: int, rate: float, key_space: int):
        import random
        self.cluster = cluster
        self.scheduler = scheduler
        self.monitor = monitor
        self.rng = random.Random(f"{seed}:client")
        self.total_ops = total_ops
        self.rate = rate
        self.key_space = key_space
        self.submitted = 0
        self.accepted = 0
        self.rejected = 0
        self._due = 0.0
        self._leader = None

    def start(self) -> None:
        self.scheduler.schedule(_WARMUP, self._tick)

    def _find_leader(self):
        node = self._leader
        if node is not None and node.started and node.role is LEADER:
            return node
        self._leader = None
        for node in self.cluster.nodes.values():
            if node.role is LEADER and node.started:
                self._leader = node
                return node
        return None

    def _tick(self) -> None:
        self._due += self.rate * _TICK
        leader = self._find_leader()
        while self._due >= 1.0 and self.submitted < self.total_ops:
            self._due -= 1.0
            op_id = self.submitted
            self.submitted += 1
            key = self.rng.randrange(self.key_space)
            value = self.rng.randrange(1 << 31)
            if leader is not None and leader.client_request(op_id, key, value):
                self.accepted += 1
            else:
                self.rejected += 1
                leader = self._find_leader()
        if self.submitted < self.total_ops:
            self.scheduler.schedule(_TICK, self._tick)

    @property
    def done(self) -> bool:
        return self.submitted >= self.total_ops


def run_shard(config: SoakConfig, index: int,
              emit_trace: bool = False) -> Dict[str, Any]:
    """Execute one simulation shard to completion; pure virtual time."""
    seed = config.shard_seed(index)
    ops = config.shard_ops()[index]
    kv_config = SimRaftKvConfig(
        seed=seed,
        bug_skip_apply=(config.bug == "bug_skip_apply"),
    )
    scheduler = SimScheduler(seed)
    cluster = make_sim_raftkv_cluster(kv_config, scheduler)
    monitor = SoakMonitor(ops, checkpoint_every=config.checkpoint_every,
                          clock=scheduler.clock)
    cluster.observer = monitor
    generator = _Generator(cluster, scheduler, monitor, seed,
                           ops, config.rate, config.key_space)

    submit_end = _WARMUP + ops / config.rate
    schedule: List[Dict[str, Any]] = []
    if config.schedule is not None:
        schedule = config.schedule[index]
    elif config.faults:
        schedule = build_fault_schedule(seed, submit_end, cluster.node_ids)

    emit = emit_trace and TRACER.enabled
    if emit:
        TRACER.set_sim_clock(scheduler.clock)
    try:
        cluster.deploy()
        generator.start()
        apply_schedule(cluster, scheduler, schedule)

        snapshots: List[Dict[str, Any]] = []
        last_applied_events = 0
        drain_windows = 0
        while True:
            scheduler.run_for(config.snapshot_every)
            progressed = monitor.applied_events > last_applied_events
            last_applied_events = monitor.applied_events
            monitor.check_stall(
                progressed, _pending_work(cluster),
                disrupted=cluster.network.disrupted,
                all_up=len(cluster.nodes) == len(cluster.node_ids))
            row = {
                "sim_time": round(scheduler.now(), 6),
                "submitted": generator.submitted,
                "accepted": generator.accepted,
                "rejected": generator.rejected,
                "acked": monitor.acked,
                "applied_events": monitor.applied_events,
                "divergences": monitor.total_divergences,
            }
            snapshots.append(row)
            if emit:
                TRACER.emit("soak.snapshot", shard=index, **row)
            if generator.done and scheduler.now() >= submit_end:
                if not progressed and not cluster.network.disrupted:
                    break
                drain_windows += 1
                if drain_windows >= _MAX_DRAIN_WINDOWS:
                    break

        final = {}
        for node_id in sorted(cluster.node_ids):
            node = cluster.nodes.get(node_id)
            if node is None:
                final[node_id] = {"up": False}
                continue
            final[node_id] = {
                "up": True,
                "fp": f"{node.kv_fp:016x}",
                "applied": node.last_applied,
                "commit": node.commit_index,
                "log": len(node.log),
                "term": node.current_term,
            }
        result = {
            "shard": index,
            "seed": seed,
            "ops": ops,
            "sim_time": round(scheduler.now(), 6),
            "events_dispatched": scheduler.dispatched,
            "messages_sent": cluster.network.sent_count,
            "submitted": generator.submitted,
            "accepted": generator.accepted,
            "rejected": generator.rejected,
            "acked": monitor.acked,
            "applied_events": monitor.applied_events,
            "final": final,
            "divergences": monitor.counts_sorted(),
            "divergence_events": monitor.divergences,
            "fault_schedule": schedule,
            "snapshots": snapshots,
        }
        if emit:
            TRACER.emit("soak.shard", shard=index, seed=seed, ops=ops,
                        sim_time=result["sim_time"],
                        acked=monitor.acked,
                        divergences=monitor.total_divergences)
        return result
    finally:
        if emit:
            TRACER.set_sim_clock(None)
        if cluster.deployed:
            cluster.shutdown()


def _pending_work(cluster) -> int:
    """Entries the cluster should still commit or apply, measured from
    the acting leader: its own uncommitted tail plus every live node's
    apply lag behind its commit index.  Dead tails on deposed leaders
    (entries a newer term will truncate) are *not* pending — those ops
    count as lost-unacked in the report, never as a stall (that is
    normal Raft, not a liveness failure).  A quiet, healed,
    fully-up cluster with no leader at all counts as pending work too:
    an election is overdue."""
    leaders = [n for n in cluster.nodes.values() if n.role == LEADER]
    if not leaders:
        return 1
    leader = max(leaders, key=lambda n: n.current_term)
    pending = max(0, len(leader.log) - leader.commit_index)
    for node in cluster.nodes.values():
        pending += max(0, leader.commit_index - node.last_applied)
    return pending


def _run_shard_pooled(args) -> Dict[str, Any]:
    config_kwargs, index = args
    return run_shard(SoakConfig(**config_kwargs), index, emit_trace=False)


def _config_kwargs(config: SoakConfig) -> Dict[str, Any]:
    return {
        "target": config.target, "ops": config.ops, "seed": config.seed,
        "shards": config.shards, "workers": config.workers,
        "rate": config.rate, "key_space": config.key_space,
        "faults": config.faults, "bug": config.bug,
        "snapshot_every": config.snapshot_every,
        "checkpoint_every": config.checkpoint_every,
        "schedule": config.schedule,
    }


def run_soak(config: SoakConfig) -> List[Dict[str, Any]]:
    """Run every shard (possibly in parallel) and return their reports
    in shard order — identical bytes for any worker count."""
    with TRACER.span("soak.run", target=config.target, ops=config.ops,
                     seed=config.seed, shards=config.shards,
                     workers=config.workers, faults=config.faults):
        indices = list(range(config.shards))
        workers = min(config.workers, config.shards)
        results: List[Dict[str, Any]] = []
        if workers > 1 and _fork_available():
            import multiprocessing
            ctx = multiprocessing.get_context("fork")
            kwargs = _config_kwargs(config)
            with ctx.Pool(workers) as pool:
                results = pool.map(_run_shard_pooled,
                                   [(kwargs, i) for i in indices])
        else:
            results = [run_shard(config, i, emit_trace=True)
                       for i in indices]
        if TRACER.enabled:
            for shard in results:
                for event in shard["divergence_events"]:
                    TRACER.emit("soak.divergence", shard=shard["shard"],
                                **event)
            totals = _totals(results)
            TRACER.emit("soak.done", target=config.target,
                        seed=config.seed, shards=config.shards, **totals)
        METRICS.counter("soak.ops_submitted").inc(
            sum(s["submitted"] for s in results))
        METRICS.counter("soak.ops_acked").inc(
            sum(s["acked"] for s in results))
        METRICS.counter("soak.divergences").inc(
            sum(sum(s["divergences"].values()) for s in results))
        return results


def _fork_available() -> bool:
    import multiprocessing
    return "fork" in multiprocessing.get_all_start_methods()
