"""The soak invariant monitor: end-to-end checking at soak scale.

The testbed compares full shadow state after every step; at a million
ops that is the wrong tool.  The soak monitor instead observes three
cheap streams every simulated node reports —

* **apply events** — each committed entry applied to a state machine,
* **leader elections** — who won which term,
* **commit advances** — the commit index moving on a node —

and checks soak-scale invariants incrementally:

* ``fingerprint_mismatch`` — at every checkpoint (each ``K`` applied
  entries) a node's rolling state fingerprint must equal the first
  fingerprint recorded for that index.  Committed-prefix agreement,
  O(ops/K) memory.
* ``dual_leader`` — at most one leader per term (election safety).
* ``commit_regression`` — a node's commit index never moves backward
  within an incarnation.
* ``stalled`` — *simulated-time* liveness: the cluster made no apply
  progress across a whole snapshot window although committable work
  was pending, no network fault was active and every node was up.
  Stalls are a property of the virtual clock, never of wall time.

Divergences are recorded once per condition transition (not once per
affected entry), with the virtual timestamp they fired at, and are
deterministic: the same ``(seed, schedule)`` yields the same
divergence list, byte for byte.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

__all__ = ["SoakMonitor", "DIVERGENCE_KINDS"]

DIVERGENCE_KINDS = (
    "fingerprint_mismatch",
    "dual_leader",
    "commit_regression",
    "stalled",
)

# Keep at most this many full divergence records per shard; counts by
# kind are always exact.
MAX_RECORDED = 50


class SoakMonitor:
    """Observer attached to every node of one simulated shard."""

    def __init__(self, expected_ops: int, checkpoint_every: int = 1000,
                 clock: Optional[Any] = None):
        self.checkpoint_every = max(1, checkpoint_every)
        self.clock = clock
        # op_id -> acknowledged? (op ids are dense shard-local ints)
        self._acked = bytearray(max(1, expected_ops))
        self.acked = 0
        self.applied_events = 0
        self.leaders: Dict[int, str] = {}          # term -> winner
        self.checkpoints: Dict[int, int] = {}      # applied index -> fp
        self.divergences: List[Dict[str, Any]] = []
        self.divergence_counts: Dict[str, int] = {}
        self._diverged_fp_nodes = set()            # transition tracking
        self._stalled = False

    # -- node callbacks ------------------------------------------------------
    def applied(self, node, index: int, entry) -> None:
        self.applied_events += 1
        # An op is acknowledged when it applies on the current leader
        # (the commit point a client response would be sent from).
        if node.role == "leader":
            op_id = entry[1]
            if 0 <= op_id < len(self._acked) and not self._acked[op_id]:
                self._acked[op_id] = 1
                self.acked += 1
        if index % self.checkpoint_every == 0:
            self._check_checkpoint(node, index)

    def _check_checkpoint(self, node, index: int) -> None:
        fp = node.kv_fp
        expected = self.checkpoints.get(index)
        if expected is None:
            self.checkpoints[index] = fp
            return
        if fp != expected:
            if node.node_id not in self._diverged_fp_nodes:
                self._diverged_fp_nodes.add(node.node_id)
                self._record("fingerprint_mismatch", node.node_id,
                             f"checkpoint {index}: fp {fp:#018x} != "
                             f"agreed {expected:#018x}")
        else:
            self._diverged_fp_nodes.discard(node.node_id)

    def leader_elected(self, node, term: int) -> None:
        prior = self.leaders.get(term)
        if prior is not None and prior != node.node_id:
            self._record("dual_leader", node.node_id,
                         f"term {term} already won by {prior}")
        else:
            self.leaders[term] = node.node_id

    def commit_advanced(self, node, old: int, new: int) -> None:
        if new < old:
            self._record("commit_regression", node.node_id,
                         f"commit {old} -> {new}")

    # -- runner hooks --------------------------------------------------------
    def check_stall(self, progressed: bool, pending: int,
                    disrupted: bool, all_up: bool) -> None:
        """Called once per snapshot window by the shard runner.
        ``pending`` counts entries the cluster could still commit or
        apply (log tails, commit/apply lag) — simulated-time liveness
        over actual remaining work, not wall-clock impatience."""
        stalled_now = (not progressed and pending > 0
                       and not disrupted and all_up)
        if stalled_now and not self._stalled:
            self._record("stalled", None,
                         f"no apply progress, {pending} entries pending")
        self._stalled = stalled_now

    def _record(self, kind: str, node: Optional[str], detail: str) -> None:
        self.divergence_counts[kind] = self.divergence_counts.get(kind, 0) + 1
        if len(self.divergences) < MAX_RECORDED:
            now = self.clock.now() if self.clock is not None else 0.0
            self.divergences.append({
                "kind": kind,
                "sim_time": round(now, 6),
                "node": node,
                "detail": detail,
            })

    @property
    def total_divergences(self) -> int:
        return sum(self.divergence_counts.values())

    def counts_sorted(self) -> Dict[str, int]:
        return {k: self.divergence_counts[k]
                for k in sorted(self.divergence_counts)}
