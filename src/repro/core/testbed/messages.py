"""Testbed message sets for message-related variables (Section 4.1.1).

Message-related TLA+ variables (``messages``, ``le_msgs``, ``bc_msgs``)
have no counterpart in the implementation, so Mocket's testbed keeps
one multiset per variable: a sending action's ``Action.getMsg`` adds
the message, a matched receiving action removes it.  The state checker
then compares these bags against the verified state's message
variables.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List

from ...tlaplus.values import EMPTY_BAG, FrozenDict, bag_add, bag_remove, freeze

__all__ = ["UnknownMessage", "MessageSets"]


class UnknownMessage(Exception):
    """A received message was never recorded as sent (or already consumed)."""

    def __init__(self, variable: str, message: Any):
        self.variable = variable
        self.message = message
        super().__init__(f"message not in flight in {variable!r}: {message!r}")


class MessageSets:
    """One bag per message-related variable, spec-domain values."""

    def __init__(self, variables: List[str]):
        self._bags: Dict[str, FrozenDict] = {name: EMPTY_BAG for name in variables}
        self._lock = threading.Lock()

    def variables(self) -> List[str]:
        with self._lock:
            return sorted(self._bags)

    def add(self, variable: str, message: Any) -> None:
        """Record a sent (or duplicated) message."""
        message = freeze(message)
        with self._lock:
            self._require(variable)
            self._bags[variable] = bag_add(self._bags[variable], message)

    def remove(self, variable: str, message: Any) -> None:
        """Consume a received (or dropped) message.

        Raises :class:`UnknownMessage` when the implementation received
        something the testbed never saw sent — itself a divergence.
        """
        message = freeze(message)
        with self._lock:
            self._require(variable)
            try:
                self._bags[variable] = bag_remove(self._bags[variable], message)
            except KeyError:
                raise UnknownMessage(variable, message) from None

    def as_bag(self, variable: str) -> FrozenDict:
        with self._lock:
            self._require(variable)
            return self._bags[variable]

    def snapshot(self) -> Dict[str, FrozenDict]:
        with self._lock:
            return dict(self._bags)

    def reset(self) -> None:
        with self._lock:
            for name in self._bags:
                self._bags[name] = EMPTY_BAG

    def _require(self, variable: str) -> None:
        if variable not in self._bags:
            raise KeyError(f"unknown message variable {variable!r}")

    def __repr__(self) -> str:
        with self._lock:
            sizes = {name: sum(bag.values()) for name, bag in self._bags.items()}
        return f"MessageSets({sizes})"
