"""Controlled testing orchestration (Sections 4.3.2-4.3.3).

:class:`ControlledTester` runs test cases against the system under
test.  For every case it deploys a fresh cluster, checks the initial
state, then walks the action sequence:

* *spontaneous* actions — wait for the matching notification, consume
  its message (for receives), enable it, wait for completion,
* *user requests* — invoke the client script in its own thread, then
  wait for the resulting notification,
* *faults* — run the crash/restart script, operate the drop switch on
  the matching receive, or re-inject the duplicated message.

After each action the state checker compares the runtime state against
the verified state.  At the end of a case, leftover notifications that
match no enabled transition of the final verified state are reported as
unexpected actions.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from typing import Callable, List, Optional

from ...obs import METRICS, TRACER
from ...runtime.cluster import Cluster
from ...tlaplus.graph import StateGraph
from ..mapping.kinds import FaultKind, TriggerKind
from ..mapping.registry import ActionMapping, SpecMapping
from ..testgen.testcase import TestCase, TestStep, TestSuite
from .messages import UnknownMessage
from .report import (
    Divergence,
    DivergenceKind,
    SuiteResult,
    TestCaseResult,
    VariableDivergence,
)
from .runtime import MocketRuntime
from .scheduler import Notification
from .statecheck import StateChecker

__all__ = ["RunnerConfig", "ControlledTester"]


class RunnerConfig:
    """Timeouts and toggles for controlled testing."""

    def __init__(self, match_timeout: float = 2.0, done_timeout: float = 2.0,
                 quiesce_delay: float = 0.05, check_unexpected: bool = True):
        self.match_timeout = match_timeout      # waiting for a matching notification
        self.done_timeout = done_timeout        # waiting for an enabled action to finish
        self.quiesce_delay = quiesce_delay      # settle time before the end-of-case check
        self.check_unexpected = check_unexpected


class ControlledTester:
    """Runs generated test cases against an instrumented system."""

    def __init__(self, mapping: SpecMapping, graph: StateGraph,
                 cluster_factory: Callable[[], Cluster],
                 config: Optional[RunnerConfig] = None):
        mapping.validate()
        self.mapping = mapping
        self.graph = graph
        self.cluster_factory = cluster_factory
        self.config = config or RunnerConfig()
        # state-fingerprint cache for traced runs (states are interned
        # in the graph, so keying by the State object amortizes hashing)
        self._fp_cache: dict = {}

    # -- suite ------------------------------------------------------------------
    def run_suite(self, suite: TestSuite, stop_on_divergence: bool = False,
                  max_cases: Optional[int] = None,
                  workers: int = 1) -> SuiteResult:
        if workers != 1:
            # lazy: repro.engine builds on this module
            from ...engine import run_suite_parallel

            return run_suite_parallel(self, suite, workers=workers,
                                      stop_on_divergence=stop_on_divergence,
                                      max_cases=max_cases)
        with TRACER.span("runner.suite", cases=len(suite),
                         graph_states=self.graph.num_states,
                         graph_edges=self.graph.num_edges) as suite_span:
            if TRACER.enabled:
                # pre-register so the table always shows every kind, 0 included
                for kind in DivergenceKind:
                    METRICS.counter(f"divergence.{kind.value}")
            started = time.monotonic()
            results: List[TestCaseResult] = []
            for case in suite:
                if max_cases is not None and len(results) >= max_cases:
                    break
                result = self.run_case(case)
                results.append(result)
                if stop_on_divergence and not result.passed:
                    break
            outcome = SuiteResult(results, time.monotonic() - started)
            suite_span.add(ran=len(results), divergent=len(outcome.failures))
            return outcome

    # -- one case -----------------------------------------------------------------
    def run_case(self, case: TestCase) -> TestCaseResult:
        with TRACER.span("runner.case", case=case.case_id,
                         actions=len(case)) as case_span:
            result = self._run_case(case)
            if TRACER.enabled:
                outcome = ("pass" if result.passed
                           else result.divergence.kind.value)
                case_span.add(outcome=outcome,
                              executed=result.executed_actions)
                METRICS.counter("runner.cases").inc()
                if result.divergence is not None:
                    METRICS.counter(
                        f"divergence.{result.divergence.kind.value}").inc()
                    TRACER.emit("runner.divergence", case=case.case_id,
                                kind=result.divergence.kind.value,
                                step=result.divergence.step_index,
                                action=result.divergence.action)
            return result

    def _run_case(self, case: TestCase) -> TestCaseResult:
        started = time.monotonic()
        phases = {"deploy": 0.0, "steps": 0.0, "check": 0.0, "teardown": 0.0}
        cluster = self.cluster_factory()
        runtime = MocketRuntime(self.mapping, cluster)
        runtime.attach()
        runtime.activate()
        executed = 0
        divergence: Optional[Divergence] = None
        request_threads: List[threading.Thread] = []
        try:
            phase_start = time.monotonic()
            cluster.deploy()
            runtime.snapshot_all()
            checker = StateChecker(self.mapping, cluster.node_ids,
                                   runtime.shadow_cache, runtime.message_sets,
                                   cluster=cluster)
            # check the initial state before the first action (Section 4.3.1)
            initial = checker.compare(case.initial_state)
            phases["deploy"] = time.monotonic() - phase_start
            if initial:
                divergence = Divergence(DivergenceKind.INCONSISTENT_STATE, -1,
                                        variables=initial,
                                        detail="initial state mismatch")
            else:
                phase_start = time.monotonic()
                occurrences: Counter = Counter()
                for index, step in enumerate(case.steps):
                    divergence = self._traced_step(
                        case, index, step, runtime, cluster, checker,
                        occurrences, request_threads,
                    )
                    if divergence is not None:
                        break
                    executed += 1
                phases["steps"] = time.monotonic() - phase_start
                if divergence is None and self.config.check_unexpected:
                    phase_start = time.monotonic()
                    divergence = self._end_of_case_check(case, runtime, checker)
                    phases["check"] = time.monotonic() - phase_start
        finally:
            phase_start = time.monotonic()
            runtime.deactivate()
            cluster.shutdown()
            for thread in request_threads:
                thread.join(timeout=1.0)
            phases["teardown"] = time.monotonic() - phase_start
        return TestCaseResult(case, divergence, executed,
                              time.monotonic() - started,
                              phase_seconds=phases)

    def _traced_step(self, case: TestCase, index: int, step: TestStep,
                     runtime: MocketRuntime, cluster: Cluster,
                     checker: StateChecker, occurrences: Counter,
                     request_threads: List[threading.Thread]) -> Optional[Divergence]:
        """One step wrapped in a ``runner.step`` span + wall-time metric."""
        with TRACER.span("runner.step", case=case.case_id, step=index,
                         action=step.label.name,
                         params=dict(step.label.params)) as step_span:
            step_start = time.monotonic()
            divergence = self._execute_step(index, step, runtime, cluster,
                                            checker, occurrences,
                                            request_threads)
            if TRACER.enabled:
                step_span.add(outcome=("ok" if divergence is None
                                       else divergence.kind.value))
                if divergence is None:
                    # the step confirmed a verified transition: record
                    # its stable fingerprints so `trace summarize` (and
                    # the fuzzer) can compute graph coverage offline
                    src_fp, edge_fp, dst_fp = self._step_fingerprints(
                        case, index, step)
                    step_span.add(src_fp=src_fp, edge_fp=edge_fp,
                                  dst_fp=dst_fp)
                METRICS.counter("runner.steps").inc()
                METRICS.histogram("runner.step_seconds").observe(
                    time.monotonic() - step_start)
            return divergence

    def _step_fingerprints(self, case: TestCase, index: int,
                           step: TestStep) -> tuple:
        """Content-anchored (src, edge, dst) fingerprints of one step.

        The hex values match :mod:`repro.engine.fingerprint` on states
        and :func:`repro.fuzz.fingerprint.edge_fingerprint` on edges,
        so offline consumers can align them with the canonical graph
        regardless of worker count or ``PYTHONHASHSEED``.
        """
        # lazy: repro.engine builds on this module
        from ...engine.fingerprint import fingerprint_state, fingerprint_value

        def state_fp(state) -> int:
            fp = self._fp_cache.get(state)
            if fp is None:
                fp = fingerprint_state(state)
                self._fp_cache[state] = fp
            return fp

        src_state = (case.initial_state if index == 0
                     else case.steps[index - 1].expected_state)
        src = state_fp(src_state)
        dst = state_fp(step.expected_state)
        edge = fingerprint_value((src, step.label.name, step.label.params,
                                  dst))
        return f"{src:016x}", f"{edge:016x}", f"{dst:016x}"

    # -- steps ----------------------------------------------------------------------
    def _execute_step(self, index: int, step: TestStep, runtime: MocketRuntime,
                      cluster: Cluster, checker: StateChecker,
                      occurrences: Counter,
                      request_threads: List[threading.Thread]) -> Optional[Divergence]:
        action = self.mapping.action_mapping(step.label.name)
        if action.trigger is TriggerKind.SPONTANEOUS:
            divergence = self._run_spontaneous(index, step, runtime)
        elif action.trigger is TriggerKind.USER_REQUEST:
            divergence = self._run_user_request(index, step, runtime, cluster,
                                                action, occurrences, request_threads)
        else:
            divergence = self._run_fault(index, step, runtime, cluster, action)
        if divergence is not None:
            return divergence
        return self._check_expected(index, step, checker)

    def _check_expected(self, index: int, step: TestStep,
                        checker: StateChecker) -> Optional[Divergence]:
        """Per-step expected-state comparison.  Overridden by the fault
        runner, which relaxes it to end-of-case convergence under
        spec-unmodeled (chaos) injections."""
        mismatches = checker.compare(step.expected_state)
        if mismatches:
            return Divergence(DivergenceKind.INCONSISTENT_STATE, index,
                              action=step.label.name, variables=mismatches)
        return None

    def _run_spontaneous(self, index: int, step: TestStep,
                         runtime: MocketRuntime) -> Optional[Divergence]:
        notification = runtime.scheduler.wait_for_label(
            step.label, self.config.match_timeout
        )
        if notification is None:
            return self._no_match_divergence(index, step, runtime)
        if notification.recv_msg is not None and notification.msg_var is not None:
            try:
                runtime.message_sets.remove(notification.msg_var,
                                            notification.recv_msg)
            except UnknownMessage as exc:
                return Divergence(
                    DivergenceKind.INCONSISTENT_STATE, index,
                    action=step.label.name,
                    variables=[VariableDivergence(exc.variable, "in flight",
                                                  exc.message)],
                    detail="received a message the testbed never saw sent",
                )
        return self._enable_and_wait(index, step, runtime, notification)

    def _run_user_request(self, index: int, step: TestStep,
                          runtime: MocketRuntime, cluster: Cluster,
                          action: ActionMapping, occurrences: Counter,
                          request_threads: List[threading.Thread]) -> Optional[Divergence]:
        occurrences[step.label.name] += 1
        occurrence = occurrences[step.label.name]
        params = dict(step.label.params)

        def script() -> None:
            try:
                action.run(cluster, params, occurrence)
            except Exception:
                pass  # failures surface as missing actions / state mismatches

        thread = threading.Thread(target=script, daemon=True,
                                  name=f"request-{step.label.name}-{occurrence}")
        request_threads.append(thread)
        thread.start()
        return self._run_spontaneous(index, step, runtime)

    def _run_fault(self, index: int, step: TestStep, runtime: MocketRuntime,
                   cluster: Cluster, action: ActionMapping) -> Optional[Divergence]:
        kind = action.fault_kind
        if TRACER.enabled:
            TRACER.emit("fault.injected", action=step.label.name,
                        kind=getattr(kind, "value", str(kind)), step=index,
                        params=dict(step.label.params))
            METRICS.counter("fault.injected").inc()
        if kind is FaultKind.CRASH:
            node_id = step.label.params[action.node_param]
            cluster.crash_node(node_id)
            return None
        if kind is FaultKind.RESTART:
            node_id = step.label.params[action.node_param]
            node = cluster.restart_node(node_id)
            runtime.snapshot_node(node)
            return None
        decl = self.mapping.spec.actions[step.label.name]
        message = step.label.params[decl.msg_param]
        if kind is FaultKind.DROP_MESSAGE:
            return self._run_drop(index, step, runtime, action, decl, message)
        if kind is FaultKind.DUPLICATE_MESSAGE:
            action.duplicate(cluster, message)
            runtime.message_sets.add(decl.message_var, message)
            return None
        raise ValueError(f"unsupported fault kind {kind!r}")

    def _run_drop(self, index: int, step: TestStep, runtime: MocketRuntime,
                  action: ActionMapping, decl, message) -> Optional[Divergence]:
        """Operate the drop switch: the matching receive skips its body."""

        def matches(notification: Notification) -> bool:
            if notification.recv_msg != message:
                return False
            return (action.receive_action is None
                    or notification.name == action.receive_action)

        notification = runtime.scheduler.wait_for(matches, self.config.match_timeout)
        if notification is None:
            return self._no_match_divergence(index, step, runtime)
        runtime.message_sets.remove(decl.message_var, message)
        return self._enable_and_wait(index, step, runtime, notification,
                                     directive="drop")

    def _enable_and_wait(self, index: int, step: TestStep,
                         runtime: MocketRuntime, notification: Notification,
                         directive: str = "normal") -> Optional[Divergence]:
        runtime.scheduler.enable(notification, directive)
        if not notification.done_event.wait(self.config.done_timeout):
            return Divergence(
                DivergenceKind.MISSING_ACTION, index, action=step.label.name,
                detail="the enabled action never finished",
            )
        return None

    def _no_match_divergence(self, index: int, step: TestStep,
                             runtime: MocketRuntime) -> Divergence:
        """Classify a scheduling timeout (Section 4.3.3).

        If the system produced a notification for the *same action* with
        different parameters, the implementation did something the
        verified state space does not allow: an unexpected action.
        Otherwise the scheduled action simply never happened: missing.
        """
        same_name = runtime.scheduler.pending_with_name(step.label.name)
        pending = [n.summary() for n in runtime.scheduler.pending_snapshot()]
        if same_name:
            return Divergence(
                DivergenceKind.UNEXPECTED_ACTION, index, action=step.label.name,
                pending=pending,
                detail=f"expected {step.label!r}; the system offered "
                       f"{[n.summary() for n in same_name]}",
            )
        return Divergence(DivergenceKind.MISSING_ACTION, index,
                          action=step.label.name, pending=pending)

    def _end_of_case_check(self, case: TestCase, runtime: MocketRuntime,
                           checker: StateChecker) -> Optional[Divergence]:
        """Leftover notifications must match transitions enabled in the
        final verified state; anything else is an unexpected action."""
        time.sleep(self.config.quiesce_delay)
        enabled = set(self.graph.enabled_labels(case.final_id))
        for notification in runtime.scheduler.pending_snapshot():
            if notification.label() not in enabled:
                return Divergence(
                    DivergenceKind.UNEXPECTED_ACTION, len(case.steps),
                    action=notification.name,
                    pending=[n.summary() for n in runtime.scheduler.pending_snapshot()],
                    detail=f"{notification.summary()} is not enabled in the "
                           f"final verified state s{case.final_id}",
                )
        return None
