"""Divergence reports and test results (Section 4.3.3).

Mocket reports an inconsistency between specification and
implementation in four situations:

* **inconsistent state** — the collected runtime values differ from the
  verified state in the test case,
* **missing action** — the scheduler timed out waiting for a
  notification matching the scheduled action,
* **unexpected action** — a notification that matches no verified
  behaviour (same action with different parameters while the scheduler
  waited, or a leftover notification not enabled in the final verified
  state when the test case ends),
* **stalled** — under fault injection (:mod:`repro.faults`), a
  scheduled action still never arrived (or never finished) after every
  injected fault was healed and the bounded retry/backoff budget was
  exhausted; the case is reported instead of hanging.

A report cannot by itself distinguish an implementation bug from a
specification bug — that is the investigator's job (Section 4.3.3), so
reports carry the full evidence: the test case, the step, the offending
variables/notifications.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, List, Optional

from ..testgen.testcase import TestCase

__all__ = [
    "DivergenceKind",
    "VariableDivergence",
    "Divergence",
    "TestCaseResult",
    "SuiteResult",
]


class DivergenceKind(enum.Enum):
    INCONSISTENT_STATE = "inconsistent_state"
    MISSING_ACTION = "missing_action"
    UNEXPECTED_ACTION = "unexpected_action"
    STALLED = "stalled"


class VariableDivergence:
    """One variable whose runtime value differs from the verified state."""

    __slots__ = ("variable", "expected", "actual")

    def __init__(self, variable: str, expected: Any, actual: Any):
        self.variable = variable
        self.expected = expected
        self.actual = actual

    def __repr__(self) -> str:
        return (
            f"VariableDivergence({self.variable}: expected {self.expected!r}, "
            f"got {self.actual!r})"
        )


class Divergence:
    """A reported inconsistency (a potential bug)."""

    def __init__(
        self,
        kind: DivergenceKind,
        step_index: int,
        action: Optional[str] = None,
        variables: Optional[List[VariableDivergence]] = None,
        pending: Optional[List[str]] = None,
        detail: str = "",
    ):
        self.kind = kind
        self.step_index = step_index       # -1 = initial state / end of case
        self.action = action
        self.variables = variables or []
        self.pending = pending or []       # unmatched notification summaries
        self.detail = detail

    @property
    def variable_names(self) -> List[str]:
        return [vd.variable for vd in self.variables]

    def headline(self) -> str:
        """A Table 2 style one-liner for the report."""
        if self.kind is DivergenceKind.INCONSISTENT_STATE:
            names = ", ".join(self.variable_names) or "?"
            return f"Inconsistent state for variable {names}"
        if self.kind is DivergenceKind.MISSING_ACTION:
            return f"Missing action {self.action}"
        if self.kind is DivergenceKind.STALLED:
            return f"Stalled action {self.action}"
        return f"Unexpected action {self.action}"

    def __repr__(self) -> str:
        return f"Divergence({self.headline()} @ step {self.step_index})"


class TestCaseResult:
    """Outcome of running one test case against the system under test."""

    __test__ = False  # not a pytest class, despite the name

    def __init__(self, case: TestCase, divergence: Optional[Divergence],
                 executed_actions: int, elapsed_seconds: float,
                 phase_seconds: Optional[Dict[str, float]] = None):
        self.case = case
        self.divergence = divergence
        self.executed_actions = executed_actions
        self.elapsed_seconds = elapsed_seconds
        # wall time per phase: deploy / steps / check / teardown
        self.phase_seconds: Dict[str, float] = dict(phase_seconds or {})
        # faults the nemesis injected while this case ran (one summary
        # string per injection, in injection order); empty without
        # fault-injection mode
        self.injected_faults: List[str] = []

    @property
    def passed(self) -> bool:
        return self.divergence is None

    def bug_report(self) -> Dict[str, Any]:
        """The paper's bug report: test case + inconsistency evidence."""
        if self.divergence is None:
            raise ValueError("test case passed; no bug to report")
        return {
            "headline": self.divergence.headline(),
            "kind": self.divergence.kind.value,
            "step_index": self.divergence.step_index,
            "schedule": self.case.describe(),
            "actions_in_case": len(self.case),
            "executed_actions": self.executed_actions,
            "elapsed_seconds": self.elapsed_seconds,
            "phase_seconds": dict(self.phase_seconds),
            "variables": [
                {"variable": vd.variable, "expected": repr(vd.expected),
                 "actual": repr(vd.actual)}
                for vd in self.divergence.variables
            ],
            "pending_notifications": list(self.divergence.pending),
            "detail": self.divergence.detail,
            "injected_faults": list(self.injected_faults),
        }

    def __repr__(self) -> str:
        status = "PASS" if self.passed else f"FAIL({self.divergence.headline()})"
        return f"TestCaseResult(#{self.case.case_id}, {status})"


class SuiteResult:
    """Outcome of running a whole suite."""

    def __init__(self, results: List[TestCaseResult], elapsed_seconds: float):
        self.results = results
        self.elapsed_seconds = elapsed_seconds

    @property
    def failures(self) -> List[TestCaseResult]:
        return [r for r in self.results if not r.passed]

    @property
    def passed(self) -> bool:
        return not self.failures

    def first_divergence(self) -> Optional[Divergence]:
        for result in self.results:
            if not result.passed:
                return result.divergence
        return None

    @property
    def phase_seconds(self) -> Dict[str, float]:
        """Suite-wide wall time per phase, summed across cases."""
        totals: Dict[str, float] = {}
        for result in self.results:
            for phase, seconds in result.phase_seconds.items():
                totals[phase] = totals.get(phase, 0.0) + seconds
        return dict(sorted(totals.items()))

    def divergence_counts(self) -> Dict[str, int]:
        """``{DivergenceKind value: count}`` over the failing cases."""
        counts: Dict[str, int] = {kind.value: 0 for kind in DivergenceKind}
        for result in self.failures:
            counts[result.divergence.kind.value] += 1
        return counts

    def bug_report(self) -> Dict[str, Any]:
        """Suite-level JSON report with timing, so benchmark scripts can
        read wall-clock and per-phase cost instead of re-measuring."""
        return {
            "cases": len(self.results),
            "divergent": len(self.failures),
            "elapsed_seconds": self.elapsed_seconds,
            "phase_seconds": self.phase_seconds,
            "divergence_counts": self.divergence_counts(),
            "case_elapsed_seconds": [r.elapsed_seconds for r in self.results],
            "failures": [r.bug_report() for r in self.failures],
        }

    def summary(self) -> str:
        return (
            f"{len(self.results)} cases, {len(self.failures)} divergent, "
            f"{self.elapsed_seconds:.2f}s"
        )

    def __repr__(self) -> str:
        return f"SuiteResult({self.summary()})"
