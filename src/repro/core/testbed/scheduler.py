"""The action scheduler (Section 4.3.2).

Instrumented actions notify the scheduler and block.  The scheduler
matches notifications against the scheduled action of the current test
case: the matching notification's thread is resumed, all others stay
blocked in the waiting set "until they match their corresponding
scheduled actions".
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from ...obs import METRICS, TRACER
from ...tlaplus.state import ActionLabel
from ...tlaplus.values import FrozenDict, freeze

__all__ = ["Notification", "ActionScheduler"]

_seq = itertools.count()


class Notification:
    """One blocked action waiting to be scheduled."""

    __slots__ = ("node_id", "name", "params", "recv_msg", "msg_var",
                 "enable_event", "done_event", "directive", "seq",
                 "submitted_at", "incarnation")

    def __init__(self, node_id: str, name: str, params: Dict[str, Any],
                 recv_msg: Optional[Any] = None, msg_var: Optional[str] = None,
                 incarnation: int = 0):
        self.node_id = node_id
        self.name = name
        self.params = FrozenDict({k: freeze(v) for k, v in params.items()})
        self.recv_msg = freeze(recv_msg) if recv_msg is not None else None
        self.msg_var = msg_var
        self.enable_event = threading.Event()
        self.done_event = threading.Event()
        self.directive = "normal"   # set by the scheduler: normal | drop | abort
        self.seq = next(_seq)
        self.submitted_at = 0.0     # set on submit; feeds the queue-wait timer
        # which restart generation of the node submitted this (0 = never
        # restarted); pending/stalled summaries use it to tell a
        # pre-bounce thread's leftovers from the relaunched node's work
        self.incarnation = incarnation

    def label(self) -> ActionLabel:
        return ActionLabel(self.name, dict(self.params))

    def matches(self, label: ActionLabel) -> bool:
        return self.name == label.name and self.params == label.params

    def summary(self) -> str:
        base = repr(self.label())
        node = (f"{self.node_id}#{self.incarnation}" if self.incarnation
                else self.node_id)
        return f"{base} on {node}"

    def __repr__(self) -> str:
        return f"Notification({self.summary()}, seq={self.seq})"


class ActionScheduler:
    """Waiting set + matching logic."""

    def __init__(self):
        self._pending: List[Notification] = []
        self._cond = threading.Condition()
        self.notified_count = 0

    # -- hook side ------------------------------------------------------------
    def submit(self, notification: Notification) -> None:
        notification.submitted_at = time.monotonic()
        if TRACER.enabled:
            TRACER.emit("scheduler.notification", name=notification.name,
                        node=notification.node_id, seq=notification.seq,
                        params=dict(notification.params))
            METRICS.counter("scheduler.notifications").inc()
        with self._cond:
            self._pending.append(notification)
            self.notified_count += 1
            self._cond.notify_all()

    # -- testbed side -----------------------------------------------------------
    def wait_for(self, predicate: Callable[[Notification], bool],
                 timeout: float) -> Optional[Notification]:
        """Wait until a pending notification satisfies ``predicate``.

        The matched notification is removed from the waiting set but NOT
        yet enabled — the caller sets its directive and calls
        :meth:`enable`.
        """
        deadline = time.monotonic() + timeout
        with self._cond:
            while True:
                for notification in self._pending:
                    if predicate(notification):
                        self._pending.remove(notification)
                        if TRACER.enabled:
                            METRICS.histogram(
                                "scheduler.queue_wait_seconds"
                            ).observe(
                                time.monotonic() - notification.submitted_at
                            )
                        return notification
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None
                self._cond.wait(remaining)

    def wait_for_label(self, label: ActionLabel, timeout: float) -> Optional[Notification]:
        """Wait for a notification matching the scheduled action exactly."""
        return self.wait_for(lambda n: n.matches(label), timeout)

    @staticmethod
    def enable(notification: Notification, directive: str = "normal") -> None:
        """Resume the blocked thread with the given fault directive."""
        notification.directive = directive
        notification.enable_event.set()

    # -- end-of-case bookkeeping ----------------------------------------------------
    def pending_snapshot(self) -> List[Notification]:
        with self._cond:
            return list(self._pending)

    def pending_with_name(self, name: str) -> List[Notification]:
        with self._cond:
            return [n for n in self._pending if n.name == name]

    def discard_notification(self, notification: Notification) -> None:
        """Remove one notification if it is still waiting (no-op otherwise)."""
        with self._cond:
            if notification in self._pending:
                self._pending.remove(notification)

    def discard_node(self, node_id: str) -> None:
        """Drop (and abort) every pending notification from ``node_id``.

        Used when a node crashes: its blocked threads are dying, so their
        notifications must not linger in the waiting set where they could
        be matched later.
        """
        with self._cond:
            stale = [n for n in self._pending if n.node_id == node_id]
            self._pending = [n for n in self._pending if n.node_id != node_id]
        for notification in stale:
            notification.directive = "abort"
            notification.enable_event.set()

    def abort_all(self) -> None:
        """Release every blocked thread with the abort directive (teardown)."""
        with self._cond:
            pending, self._pending = self._pending, []
        for notification in pending:
            notification.directive = "abort"
            notification.enable_event.set()

    def __repr__(self) -> str:
        with self._cond:
            return f"ActionScheduler({len(self._pending)} pending)"
