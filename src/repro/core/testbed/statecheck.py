"""The state checker (Section 4.3.2).

After every scheduled action the testbed assembles the system's runtime
state from the per-node shadow stores and the testbed message sets, and
compares it with the verified state in the test case:

* state-related variables — translated through the constant table (and
  the per-variable ``to_spec`` translator); per-node variables are
  assembled into the spec's ``[s \\in Server |-> ...]`` function from
  every node's latest snapshot (crashed nodes keep their last values,
  exactly as the spec keeps a crashed node's variables),
* message-related variables — compared against the testbed message
  sets (``STRICT`` mode) or skipped (``CONSUME`` mode, where message
  contents are validated on consumption instead),
* action counters and auxiliary variables — never checked.

A custom ``compare`` hook supports lossy implementations — e.g. Xraft
realizes the ``votesGranted`` *set* as an *int*, so the mapping
compares cardinality.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ...obs import METRICS, TRACER
from ...tlaplus.spec import VarKind
from ...tlaplus.state import State
from ...tlaplus.values import FrozenDict
from ..mapping.kinds import MessageCheckMode
from ..mapping.registry import SpecMapping, VariableMapping
from .messages import MessageSets
from .report import VariableDivergence

__all__ = ["UNREPORTED", "StateChecker"]

UNREPORTED = "<unreported>"


class StateChecker:
    """Compares runtime state against verified states."""

    def __init__(self, mapping: SpecMapping, node_ids: List[str],
                 shadow_cache: Dict[str, Dict[str, Any]],
                 message_sets: MessageSets, cluster: Optional[Any] = None):
        self.mapping = mapping
        self.node_ids = list(node_ids)
        self.shadow_cache = shadow_cache      # shared with the runtime (live view)
        self.message_sets = message_sets
        self.cluster = cluster                # for derive()-mapped variables

    # -- assembly ---------------------------------------------------------------
    def assemble_variable(self, name: str, vm: VariableMapping):
        """The runtime value of one spec variable, in raw impl domain.

        Per-node variables come back as ``{node_id: raw_value}``; global
        variables as the single reporting node's raw value.
        """
        decl = self.mapping.spec.variables[name]
        if vm.derive is not None:
            if decl.per_node:
                return {node_id: vm.derive(self.cluster, node_id)
                        for node_id in self.node_ids}
            return vm.derive(self.cluster, None)
        if decl.per_node:
            return {
                node_id: self.shadow_cache.get(node_id, {}).get(vm.impl_name, UNREPORTED)
                for node_id in self.node_ids
            }
        reporters = [
            shadows[vm.impl_name]
            for shadows in self.shadow_cache.values()
            if vm.impl_name in shadows
        ]
        if not reporters:
            return UNREPORTED
        return reporters[0]

    # -- comparison -----------------------------------------------------------------
    def compare(self, expected: State) -> List[VariableDivergence]:
        """All variable divergences between runtime state and ``expected``."""
        with TRACER.span("statecheck.compare") as compare_span:
            divergences: List[VariableDivergence] = []
            divergences.extend(self._compare_state_variables(expected))
            divergences.extend(self._compare_message_variables(expected))
            if TRACER.enabled:
                METRICS.counter("statecheck.compares").inc()
                if divergences:
                    METRICS.counter("statecheck.mismatches").inc(len(divergences))
                compare_span.add(
                    mismatches=len(divergences),
                    variables=[d.variable for d in divergences],
                )
            return divergences

    def _compare_state_variables(self, expected: State) -> List[VariableDivergence]:
        out: List[VariableDivergence] = []
        for name, vm in self.mapping.checked_variables():
            expected_value = expected[name]
            raw = self.assemble_variable(name, vm)
            decl = self.mapping.spec.variables[name]
            if decl.per_node:
                mismatch = self._per_node_mismatch(expected_value, raw, vm)
            else:
                mismatch = not self._values_match(expected_value, raw, vm)
            if mismatch:
                out.append(VariableDivergence(name, expected_value, raw))
        return out

    def _per_node_mismatch(self, expected_value: FrozenDict,
                           raw: Dict[str, Any], vm: VariableMapping) -> bool:
        for node_id in self.node_ids:
            if node_id not in expected_value:
                # spec tracks a subset of nodes; ignore the others
                continue
            if not self._values_match(expected_value[node_id],
                                      raw.get(node_id, UNREPORTED), vm):
                return True
        return False

    def _values_match(self, expected_value: Any, raw: Any,
                      vm: VariableMapping) -> bool:
        if raw is UNREPORTED or raw == UNREPORTED:
            return False
        if vm.compare is not None:
            return bool(vm.compare(expected_value, raw))
        translated = vm.to_spec(raw) if vm.to_spec is not None else raw
        return self.mapping.to_spec_value(translated) == expected_value

    def converged(self, expected: State, timeout: float,
                  poll: float = 0.1,
                  clock: Optional[Any] = None) -> List[VariableDivergence]:
        """Poll :meth:`compare` until it comes back clean or ``timeout``
        elapses; returns the *last* mismatch list (empty on success).

        Per-step comparison expects the runtime to already sit in the
        verified state; after a disruptive fault (crash, bounce) the
        fault runner instead demands eventual re-convergence, which is
        inherently a bounded wait.  ``clock`` defaults to the wall
        clock; callers on the simulated path pass a virtual clock so
        the wait advances simulated time instead of blocking.
        """
        if clock is None:
            from ...runtime.clock import WALL_CLOCK
            clock = WALL_CLOCK

        deadline = clock.now() + timeout
        while True:
            mismatches = self.compare(expected)
            if not mismatches or clock.now() >= deadline:
                return mismatches
            clock.sleep(poll)

    def _compare_message_variables(self, expected: State) -> List[VariableDivergence]:
        if self.mapping.message_check is not MessageCheckMode.STRICT:
            return []
        out: List[VariableDivergence] = []
        for name in self.mapping.message_variables():
            expected_bag = expected[name]
            actual_bag = self.message_sets.as_bag(name)
            if expected_bag != actual_bag:
                out.append(VariableDivergence(name, expected_bag, actual_bag))
        return out
