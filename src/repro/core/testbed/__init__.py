"""Controlled testing: scheduler, state checker, faults, reports (Section 4.3)."""

from .messages import MessageSets, UnknownMessage
from .report import (
    Divergence,
    DivergenceKind,
    SuiteResult,
    TestCaseResult,
    VariableDivergence,
)
from .runner import ControlledTester, RunnerConfig
from .runtime import MocketRuntime
from .scheduler import ActionScheduler, Notification
from .statecheck import UNREPORTED, StateChecker

__all__ = [
    "ActionScheduler",
    "ControlledTester",
    "Divergence",
    "DivergenceKind",
    "MessageSets",
    "MocketRuntime",
    "Notification",
    "RunnerConfig",
    "StateChecker",
    "SuiteResult",
    "TestCaseResult",
    "UNREPORTED",
    "UnknownMessage",
    "VariableDivergence",
]
