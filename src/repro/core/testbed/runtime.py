"""The hook-facing side of Mocket's testbed.

:class:`MocketRuntime` is what the instrumentation in
:mod:`repro.core.mapping.annotations` talks to.  It owns the action
scheduler, the message sets and the shadow-state cache, and implements
``notifyAndBlock`` / ``checkAllStates`` semantics:

* ``begin_action`` — translate the action's parameters (and received
  message) into the spec domain, submit a notification, block the
  calling node thread until the scheduler enables it (or the node
  crashes / the run is aborted),
* ``end_action`` — record the messages the action sent, snapshot the
  node's shadow variables, and signal completion so the test runner can
  check the state.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional

from ...runtime.node import Node, NodeCrashed
from ..mapping.registry import SpecMapping
from .messages import MessageSets
from .scheduler import ActionScheduler, Notification

__all__ = ["MocketRuntime"]


class MocketRuntime:
    """Shared testbed state for one controlled test-case run."""

    def __init__(self, mapping: SpecMapping, cluster):
        self.mapping = mapping
        self.cluster = cluster
        self.scheduler = ActionScheduler()
        self.message_sets = MessageSets(mapping.message_variables())
        # node_id -> {spec_var: raw impl value}; crashed nodes keep their
        # last snapshot, matching the spec's view of a dead node.
        self.shadow_cache: Dict[str, Dict[str, Any]] = {}
        self._lock = threading.Lock()
        self.active = False

    # -- lifecycle -------------------------------------------------------------
    def attach(self) -> None:
        """Install this runtime as the cluster's controller."""
        self.cluster.mocket_runtime = self

    def activate(self) -> None:
        self.active = True

    def deactivate(self) -> None:
        """Stop controlling: release every blocked thread."""
        self.active = False
        self.scheduler.abort_all()

    # -- shadow snapshots -----------------------------------------------------------
    def snapshot_node(self, node: Node) -> None:
        with self._lock:
            self.shadow_cache[node.node_id] = dict(node.mocket_shadow)

    def snapshot_all(self) -> None:
        for node in self.cluster.live_nodes():
            self.snapshot_node(node)

    def node_stopping(self, node: Node) -> None:
        """Called by ``Node.stop``: keep the last state, drop stale
        notifications from the waiting set (their threads are dying)."""
        self.snapshot_node(node)
        self.scheduler.discard_node(node.node_id)

    # -- hook protocol -----------------------------------------------------------------
    def begin_action(self, scope) -> None:
        """``notifyAndBlock``: submit the notification and wait."""
        if not self.active:
            return
        node: Node = scope.node
        params = {
            key: self.mapping.to_spec_value(value)
            for key, value in scope.params.items()
        }
        recv_msg = None
        if scope.recv_msg is not None:
            recv_msg = self.mapping.to_spec_value(scope.recv_msg)
            decl = self.mapping.spec.actions.get(scope.name)
            if decl is not None and decl.msg_param is not None:
                params[decl.msg_param] = recv_msg
        notification = Notification(
            node.node_id, scope.name, params, recv_msg=recv_msg,
            msg_var=scope.msg_var, incarnation=node.incarnation,
        )
        scope.ticket = notification
        node.check_alive()
        self.scheduler.submit(notification)
        try:
            node.wait_or_crash(notification.enable_event)
        except NodeCrashed:
            # The node died while (or just before) waiting: make sure the
            # notification cannot linger and be matched later.
            self.scheduler.discard_notification(notification)
            raise
        if notification.directive == "abort":
            raise NodeCrashed(node.node_id)
        scope.directive = notification.directive

    def end_action(self, scope, failed: bool = False) -> None:
        """``checkAllStates`` side: record sends, snapshot, signal done."""
        notification: Optional[Notification] = scope.ticket
        if notification is None:
            return
        if not failed and self.active:
            for msg_var, fields in scope.sent_messages:
                self.message_sets.add(msg_var, self.mapping.to_spec_value(fields))
            self.snapshot_node(scope.node)
        notification.done_event.set()
