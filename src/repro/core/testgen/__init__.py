"""Test-case generation from model-checked state graphs (Section 4.2)."""

from .endstates import (
    EndStates,
    node_ids,
    reached_by,
    state_matching,
    terminal_only,
    union,
)
from .generator import generate_test_cases
from .por import Diamond, diamond_stats, find_diamonds, por_excluded_edges
from .scenario import ScenarioError, label, scenario_case
from .testcase import TestCase, TestStep, TestSuite
from .traversal import TraversalResult, edge_coverage_paths, node_coverage_paths

__all__ = [
    "Diamond",
    "EndStates",
    "TestCase",
    "TestStep",
    "TestSuite",
    "TraversalResult",
    "diamond_stats",
    "edge_coverage_paths",
    "find_diamonds",
    "generate_test_cases",
    "label",
    "node_coverage_paths",
    "node_ids",
    "ScenarioError",
    "scenario_case",
    "por_excluded_edges",
    "reached_by",
    "state_matching",
    "terminal_only",
    "union",
]
