"""Test-suite generation front-end (Section 4.2).

Combines the pieces: model-checked state graph → (optional POR) →
edge-coverage-guided traversal → executable :class:`TestCase` objects.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ...obs import METRICS, TRACER
from ...tlaplus.graph import StateGraph
from .endstates import EndStates
from .por import por_excluded_edges
from .testcase import TestCase, TestSuite
from .traversal import edge_coverage_paths

__all__ = ["generate_test_cases"]


def generate_test_cases(
    graph: StateGraph,
    end_states: Optional[EndStates] = None,
    por: bool = True,
    seed: int = 0,
    max_cases: Optional[int] = None,
    independence=None,
) -> TestSuite:
    """Generate a test suite from a verified state-space graph.

    ``end_states`` — optional end-state specification (see
    :mod:`repro.core.testgen.endstates`); paths stop there.
    ``por`` — apply partial order reduction before traversal.
    ``seed`` — determinizes POR's interleaving choices.
    ``max_cases`` — optional cap on the number of generated cases.
    ``independence`` — optional static commutativity certificates from
    :func:`repro.analysis.effects.analyze_spec`; accelerates POR's
    diamond search without changing the generated suite.
    """
    with TRACER.span("testgen.generate", spec=graph.spec_name, por=por,
                     seed=seed) as gen_span:
        end_ids: Iterable[int] = end_states(graph) if end_states is not None else ()
        excluded = (por_excluded_edges(graph, seed=seed,
                                       independence=independence)
                    if por else set())
        traversal = edge_coverage_paths(
            graph,
            end_state_ids=end_ids,
            excluded_edges=excluded,
            max_paths=max_cases,
        )
        cases = []
        for case_id, path in enumerate(traversal.paths):
            case = TestCase.from_edges(case_id, graph, path)
            cases.append(case)
            if TRACER.enabled:
                TRACER.emit("testgen.case_emitted", case=case_id,
                            actions=len(case), initial=case.initial_id,
                            final=case.final_id)
        if TRACER.enabled:
            coverage_pct = (100.0 * len(traversal.covered) / len(traversal.targets)
                            if traversal.targets else 100.0)
            METRICS.set_gauge("testgen.cases", len(cases))
            METRICS.set_gauge("testgen.actions",
                              sum(len(case) for case in cases))
            METRICS.set_gauge("testgen.edge_coverage_pct", coverage_pct)
            gen_span.add(cases=len(cases), excluded_edges=len(excluded),
                         edge_coverage_pct=coverage_pct)
        return TestSuite(
            cases,
            graph=graph,
            excluded_edges=len(excluded),
            uncovered_edges=len(traversal.uncovered),
        )
