"""Test cases generated from the state-space graph.

A test case is a path through the verified state space starting at an
initial state (Section 4.2): a sequence of actions to schedule, plus the
verified state expected after each action.  During controlled testing
the scheduler forces the implementation through the action sequence and
the state checker compares runtime state with each expected state.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence

from ...tlaplus.dot import decode_value, encode_value
from ...tlaplus.graph import Edge, StateGraph
from ...tlaplus.state import ActionLabel, State

__all__ = ["TestStep", "TestCase", "TestSuite"]


class TestStep:
    """One scheduled action and the verified state expected after it."""

    __test__ = False  # not a pytest class, despite the name
    __slots__ = ("label", "expected_state", "src_id", "dst_id")

    def __init__(self, label: ActionLabel, expected_state: State,
                 src_id: int = -1, dst_id: int = -1):
        self.label = label
        self.expected_state = expected_state
        self.src_id = src_id
        self.dst_id = dst_id

    def __repr__(self) -> str:
        return f"TestStep({self.label!r} -> state {self.dst_id})"

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, TestStep):
            return NotImplemented
        return (self.label, self.expected_state) == (other.label, other.expected_state)


class TestCase:
    """An executable test case: initial state + action/state sequence."""

    __test__ = False  # not a pytest class, despite the name

    def __init__(self, case_id: int, initial_state: State, steps: Sequence[TestStep],
                 initial_id: int = 0):
        self.case_id = case_id
        self.initial_state = initial_state
        self.initial_id = initial_id
        self.steps: List[TestStep] = list(steps)

    @classmethod
    def from_edges(cls, case_id: int, graph: StateGraph, edges: Sequence[Edge]) -> "TestCase":
        """Build a test case from a root-to-end edge path in ``graph``."""
        if not edges:
            raise ValueError("a test case needs at least one action")
        initial_id = edges[0].src
        if initial_id not in graph.initial_ids:
            raise ValueError(
                f"test case must start from an initial state, got node {initial_id}"
            )
        steps = []
        previous = initial_id
        for edge in edges:
            if edge.src != previous:
                raise ValueError(f"edge path is not contiguous at {edge!r}")
            steps.append(TestStep(edge.label, graph.state_of(edge.dst),
                                  src_id=edge.src, dst_id=edge.dst))
            previous = edge.dst
        return cls(case_id, graph.state_of(initial_id), steps, initial_id=initial_id)

    # -- queries ----------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self) -> Iterator[TestStep]:
        return iter(self.steps)

    def labels(self) -> List[ActionLabel]:
        return [step.label for step in self.steps]

    def action_names(self) -> List[str]:
        return [step.label.name for step in self.steps]

    @property
    def final_state(self) -> State:
        return self.steps[-1].expected_state if self.steps else self.initial_state

    @property
    def final_id(self) -> int:
        return self.steps[-1].dst_id if self.steps else self.initial_id

    def describe(self) -> str:
        """A one-line schedule summary: ``s0 -> A -> s1 -> B -> s2``."""
        parts = [f"s{self.initial_id}"]
        for step in self.steps:
            parts.append(repr(step.label))
            parts.append(f"s{step.dst_id}")
        return " -> ".join(parts)

    def __repr__(self) -> str:
        return f"TestCase(#{self.case_id}, {len(self.steps)} actions)"

    # -- serialization --------------------------------------------------------------
    def to_jsonable(self) -> Dict[str, Any]:
        """A JSON-serializable dump (values encoded as tagged literals)."""
        return {
            "case_id": self.case_id,
            "initial_id": self.initial_id,
            "initial_state": encode_value(self.initial_state._vars),
            "steps": [
                {
                    "action": step.label.name,
                    "params": encode_value(step.label.params),
                    "expected_state": encode_value(step.expected_state._vars),
                    "src_id": step.src_id,
                    "dst_id": step.dst_id,
                }
                for step in self.steps
            ],
        }

    @classmethod
    def from_jsonable(cls, payload: Dict[str, Any]) -> "TestCase":
        initial_state = State(dict(decode_value(payload["initial_state"])))
        steps = [
            TestStep(
                ActionLabel(raw["action"], dict(decode_value(raw["params"]))),
                State(dict(decode_value(raw["expected_state"]))),
                src_id=raw["src_id"],
                dst_id=raw["dst_id"],
            )
            for raw in payload["steps"]
        ]
        return cls(payload["case_id"], initial_state, steps,
                   initial_id=payload["initial_id"])


class TestSuite:
    """A group of test cases plus generation statistics."""

    __test__ = False  # not a pytest class, despite the name

    def __init__(self, cases: Sequence[TestCase], graph: Optional[StateGraph] = None,
                 excluded_edges: int = 0, uncovered_edges: int = 0):
        self.cases: List[TestCase] = list(cases)
        self.graph = graph
        self.excluded_edges = excluded_edges      # edges removed by POR
        self.uncovered_edges = uncovered_edges    # coverage targets no path hit

    def __len__(self) -> int:
        return len(self.cases)

    def __iter__(self) -> Iterator[TestCase]:
        return iter(self.cases)

    def __getitem__(self, index: int) -> TestCase:
        return self.cases[index]

    def total_actions(self) -> int:
        return sum(len(case) for case in self.cases)

    def covered_action_names(self) -> set:
        names = set()
        for case in self.cases:
            names.update(case.action_names())
        return names

    def stats(self) -> Dict[str, int]:
        return {
            "cases": len(self.cases),
            "total_actions": self.total_actions(),
            "excluded_edges": self.excluded_edges,
            "uncovered_edges": self.uncovered_edges,
        }

    def truncated(self, max_cases: Optional[int]) -> "TestSuite":
        """The first ``max_cases`` cases as a suite (self when no cap).

        Fault planning composes with ``--cases`` through this: the base
        suite is capped *before* the planner runs, so derived fault
        cases — appended after the base cases — still execute.
        """
        if max_cases is None or max_cases >= len(self.cases):
            return self
        return TestSuite(self.cases[:max_cases], graph=self.graph,
                         excluded_edges=self.excluded_edges,
                         uncovered_edges=self.uncovered_edges)

    # -- persistence ----------------------------------------------------------
    def save(self, path_or_file) -> None:
        """Write the suite (and generation stats) to a JSON file.

        Generated suites can be expensive to rebuild for large graphs;
        saved suites replay bit-identically (`mocket testgen --out` /
        `mocket test --suite`).
        """
        import json

        payload = {
            "format": "mocket-test-suite/1",
            "excluded_edges": self.excluded_edges,
            "uncovered_edges": self.uncovered_edges,
            "cases": [case.to_jsonable() for case in self.cases],
        }
        if hasattr(path_or_file, "write"):
            json.dump(payload, path_or_file)
        else:
            with open(path_or_file, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)

    @classmethod
    def load(cls, path_or_file) -> "TestSuite":
        """Read a suite previously written by :meth:`save`."""
        import json

        if hasattr(path_or_file, "read"):
            payload = json.load(path_or_file)
        else:
            with open(path_or_file, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        if payload.get("format") != "mocket-test-suite/1":
            raise ValueError(f"not a mocket test suite: {path_or_file!r}")
        cases = [TestCase.from_jsonable(raw) for raw in payload["cases"]]
        return cls(cases, excluded_edges=payload["excluded_edges"],
                   uncovered_edges=payload["uncovered_edges"])

    def __repr__(self) -> str:
        return f"TestSuite({len(self.cases)} cases, {self.total_actions()} actions)"
