"""Scenario test cases: a verified path built directly from the spec.

The graph traversal enumerates test cases breadth-first; the paper's
deep bugs (Xraft bug #3 took 39 minutes and a 19-action case) surface
only after running many cases.  A *scenario* takes the complementary
route: the investigator writes down an action schedule, and this module
**verifies it against the specification** — every action must be an
enabled transition, states are computed by the spec itself — producing
the same artifact a graph path would (a :class:`TestCase` plus a graph
fragment carrying the final state's enabled transitions for the
unexpected-action check).

A scenario is therefore never "hand-written expected states": if the
schedule is not a behaviour of the verified state space, building it
fails.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple, Union

from ...tlaplus.graph import StateGraph
from ...tlaplus.spec import Specification
from ...tlaplus.state import ActionLabel
from .testcase import TestCase

__all__ = ["ScenarioError", "label", "scenario_case"]


class ScenarioError(Exception):
    """The scenario schedule is not a behaviour of the specification."""


def label(name: str, **params) -> ActionLabel:
    """Shorthand for building scenario steps: ``label("Timeout", i="n1")``."""
    return ActionLabel(name, params)


def scenario_case(
    spec: Specification,
    schedule: Sequence[Union[ActionLabel, Tuple[str, dict]]],
    case_id: int = 0,
    initial_index: int = 0,
) -> Tuple[StateGraph, TestCase]:
    """Verify ``schedule`` against ``spec`` and build its test case.

    Returns ``(graph, case)`` where ``graph`` contains the path's states
    plus every transition enabled in the final state (so the controlled
    tester's end-of-case unexpected-action check works exactly as with a
    full state-space graph).

    Raises :class:`ScenarioError` if any step is not enabled, with the
    enabled alternatives in the message — this is how scenario authoring
    mistakes surface.
    """
    labels = [
        step if isinstance(step, ActionLabel) else ActionLabel(step[0], step[1])
        for step in schedule
    ]
    if not labels:
        raise ScenarioError("a scenario needs at least one action")

    initial_states = spec.initial_states()
    if not 0 <= initial_index < len(initial_states):
        raise ScenarioError(f"no initial state with index {initial_index}")
    current = initial_states[initial_index]

    graph = StateGraph(f"{spec.name}-scenario")
    current_id = graph.add_state(current, initial=True)
    edges = []
    for position, step in enumerate(labels):
        decl = spec.actions.get(step.name)
        if decl is None:
            raise ScenarioError(f"step {position}: unknown action {step.name!r}")
        successor = spec.apply(decl, current, dict(step.params))
        if successor is None:
            enabled = sorted(repr(lbl) for lbl, _ in spec.enabled(current))
            raise ScenarioError(
                f"step {position}: {step!r} is not enabled; enabled here: "
                f"{enabled}"
            )
        succ_id = graph.add_state(successor)
        edge = graph.add_edge(current_id, succ_id, step)
        if edge is None:  # revisiting a transition (cycle): reuse it
            edge = graph.edge_between(current_id, succ_id, step)
        edges.append(edge)
        current, current_id = successor, succ_id

    # Materialize the final state's enabled transitions for the
    # end-of-case unexpected-action check.
    for enabled_label, successor in spec.enabled(current):
        succ_id = graph.add_state(successor)
        graph.add_edge(current_id, succ_id, enabled_label)

    case = TestCase.from_edges(case_id, graph, edges)
    return graph, case
