"""Edge-coverage-guided graph traversal (Algorithm 1 of the paper).

Depth-first traversal from each initial state.  Every edge is a global
coverage target visited at most once across the whole traversal; a path
ends when the current state is a developer-declared end state or when
every outgoing edge of the current state has already been visited.  The
resulting set of root-to-end paths covers every reachable coverage
target exactly once.

Partial order reduction plugs in by shrinking the coverage-target set
(excluded edges behave as if already visited, per Section 4.2.2: the
schedules that are not chosen "are not treated as our coverage target").
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple

from ...obs import TRACER
from ...tlaplus.graph import Edge, StateGraph

__all__ = ["TraversalResult", "edge_coverage_paths"]


class TraversalResult:
    """Paths produced by the traversal plus coverage bookkeeping."""

    def __init__(self, paths: List[List[Edge]], targets: Set[Tuple],
                 covered: Set[Tuple]):
        self.paths = paths
        self.targets = targets
        self.covered = covered

    @property
    def uncovered(self) -> Set[Tuple]:
        """Coverage targets no path visited (unreachable via target edges)."""
        return self.targets - self.covered

    def __len__(self) -> int:
        return len(self.paths)

    def __iter__(self):
        return iter(self.paths)

    def __repr__(self) -> str:
        return (
            f"TraversalResult({len(self.paths)} paths, "
            f"{len(self.covered)}/{len(self.targets)} edges covered)"
        )


def edge_coverage_paths(
    graph: StateGraph,
    end_state_ids: Optional[Iterable[int]] = None,
    excluded_edges: Optional[Iterable[Edge]] = None,
    max_paths: Optional[int] = None,
) -> TraversalResult:
    """Run Algorithm 1 over ``graph``.

    ``end_state_ids`` — developer-declared end states (paths stop there).
    ``excluded_edges`` — edges removed from the coverage targets (POR).
    ``max_paths`` — optional cap for very large graphs (the paper bounds
    testing wall-clock instead; a cap keeps benches tractable).
    """
    with TRACER.span("testgen.traversal", spec=graph.spec_name) as walk_span:
        ends: Set[int] = set(end_state_ids or ())
        excluded: Set[Tuple] = {edge.key() for edge in (excluded_edges or ())}
        targets: Set[Tuple] = {
            edge.key() for edge in graph.edges() if edge.key() not in excluded
        }

        visited: Set[Tuple] = set()
        paths: List[List[Edge]] = []

        for init_id in graph.initial_ids:
            if max_paths is not None and len(paths) >= max_paths:
                break
            _traverse_from(graph, init_id, ends, excluded, visited, paths,
                           max_paths)

        walk_span.add(paths=len(paths), targets=len(targets),
                      covered=len(visited))
        return TraversalResult(paths=paths, targets=targets, covered=visited)


class _Frame:
    """One simulated recursion frame of Algorithm 1's ``traverse``."""

    __slots__ = ("state_id", "path", "edge_iter", "entered")

    def __init__(self, state_id: int, path: List[Edge], edges: List[Edge]):
        self.state_id = state_id
        self.path = path
        self.edge_iter = iter(edges)
        self.entered = False


def _traverse_from(
    graph: StateGraph,
    init_id: int,
    ends: Set[int],
    excluded: Set[Tuple],
    visited: Set[Tuple],
    paths: List[List[Edge]],
    max_paths: Optional[int],
) -> None:
    """Iterative DFS that simulates Algorithm 1's recursion exactly.

    The add-path decision happens at frame *entry* (Algorithm 1 line 5):
    a path is emitted when the current state is an end state or has no
    unvisited outgoing coverage target.  Edges are claimed lazily, one at
    a time, so an edge covered deep inside a sibling subtree is skipped
    when the loop returns to it — exactly as in the recursive original.
    """
    stack: List[_Frame] = [_Frame(init_id, [], graph.out_edges(init_id))]
    while stack:
        if max_paths is not None and len(paths) >= max_paths:
            return
        frame = stack[-1]

        if not frame.entered:
            frame.entered = True
            has_candidate = any(
                edge.key() not in visited and edge.key() not in excluded
                for edge in graph.out_edges(frame.state_id)
            )
            # Line 5: end state, or every outgoing edge already visited.
            # (An initial state that is itself an end state would yield an
            # empty path, which is not a test case, so require progress.)
            if (frame.state_id in ends and frame.path) or not has_candidate:
                if frame.path:
                    paths.append(frame.path)
                stack.pop()
                continue

        # Lines 8-15: pick the next still-unvisited edge, claim it, recurse.
        next_edge = None
        for edge in frame.edge_iter:
            if edge.key() in visited or edge.key() in excluded:
                continue
            next_edge = edge
            break
        if next_edge is None:
            stack.pop()
            continue
        visited.add(next_edge.key())
        stack.append(
            _Frame(next_edge.dst, frame.path + [next_edge],
                   graph.out_edges(next_edge.dst))
        )


def paths_to_lengths(paths: Sequence[List[Edge]]) -> List[int]:
    """Convenience for stats/benches: path lengths in traversal order."""
    return [len(path) for path in paths]


def node_coverage_paths(
    graph: StateGraph,
    end_state_ids: Optional[Iterable[int]] = None,
    max_paths: Optional[int] = None,
) -> TraversalResult:
    """The alternative strategy of Section 4.2.1: cover *states*.

    Same DFS skeleton, but the coverage targets are nodes: an edge is
    only worth traversing if it leads to a not-yet-visited state (or if
    the current state still has unvisited reachable successors).  This
    produces far fewer paths than edge coverage — and correspondingly
    misses every behaviour that only differs in *which action* connects
    two states, which is why Mocket chooses edge coverage.

    ``TraversalResult.targets``/``covered`` hold node ids wrapped as
    1-tuples so the result type matches the edge-coverage variant.
    """
    ends: Set[int] = set(end_state_ids or ())
    visited_nodes: Set[int] = set()
    paths: List[List[Edge]] = []

    for init_id in graph.initial_ids:
        if max_paths is not None and len(paths) >= max_paths:
            break
        visited_nodes.add(init_id)
        stack: List[_Frame] = [_Frame(init_id, [], graph.out_edges(init_id))]
        while stack:
            if max_paths is not None and len(paths) >= max_paths:
                break
            frame = stack[-1]
            if not frame.entered:
                frame.entered = True
                has_candidate = any(
                    edge.dst not in visited_nodes
                    for edge in graph.out_edges(frame.state_id)
                )
                if (frame.state_id in ends and frame.path) or not has_candidate:
                    if frame.path:
                        paths.append(frame.path)
                    stack.pop()
                    continue
            next_edge = None
            for edge in frame.edge_iter:
                if edge.dst in visited_nodes:
                    continue
                next_edge = edge
                break
            if next_edge is None:
                stack.pop()
                continue
            visited_nodes.add(next_edge.dst)
            stack.append(_Frame(next_edge.dst, frame.path + [next_edge],
                                graph.out_edges(next_edge.dst)))

    targets = {(node_id,) for node_id in range(graph.num_states)}
    covered = {(node_id,) for node_id in visited_nodes}
    return TraversalResult(paths=paths, targets=targets, covered=covered)
