"""Partial order reduction over the state-space graph (Section 4.2.2).

Two actions ``a1`` and ``a2`` enabled in the same state ``s0`` are
*commutative* when both interleavings reach the same state::

    s0 --a1--> s1 --a2--> s3
    s0 --a2--> s2 --a1--> s3

For every such diamond we keep one interleaving and drop the other from
the traversal's coverage targets; the dropped edge is the *second* hop
of the non-chosen interleaving (``s2 --a1--> s3``), so that ``s2`` and
its remaining outgoing edges stay reachable.

The paper notes this is a heuristic: commutativity in the graph does not
always imply commutativity in the implementation, so reduction trades
coverage for tractability.  The choice of which interleaving survives
is deterministic given ``seed``.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Set, Tuple

from ...obs import METRICS, TRACER
from ...tlaplus.graph import Edge, StateGraph

__all__ = ["Diamond", "find_diamonds", "por_excluded_edges"]


class Diamond:
    """One commutative diamond found in the graph."""

    __slots__ = ("origin", "first_a", "first_b", "second_a", "second_b", "join")

    def __init__(self, origin: int, first_a: Edge, second_a: Edge,
                 first_b: Edge, second_b: Edge):
        self.origin = origin
        self.first_a = first_a      # s0 --a1--> s1
        self.second_a = second_a    # s1 --a2--> s3
        self.first_b = first_b      # s0 --a2--> s2
        self.second_b = second_b    # s2 --a1--> s3
        self.join = second_a.dst

    def __repr__(self) -> str:
        return (
            f"Diamond(s{self.origin}: {self.first_a.label!r}/{self.first_b.label!r}"
            f" join s{self.join})"
        )


def find_diamonds(graph: StateGraph, independence=None) -> List[Diamond]:
    """Enumerate commutative diamonds.

    For each state, each unordered pair of outgoing edges with distinct
    labels is checked for the matching pair of second hops that join in
    a single state.  Each diamond is reported once (labels ordered by
    repr, so ``first_a.label < first_b.label``).

    ``independence`` is an optional
    :class:`repro.analysis.effects.IndependenceRelation`: for action
    pairs it certifies as statically commutative the per-diamond join
    verification is skipped (the disjoint effect footprints already
    guarantee both interleavings land in the same state), turning the
    dominant cost of diamond search into a dictionary lookup.  The
    result is the same diamond list either way — the certificate is a
    proof, not a heuristic — which the byte-identical suite guard test
    checks for every bundled target.
    """
    if independence is None:
        return _find_diamonds_legacy(graph)
    return _find_diamonds_static(graph, independence)


def _find_diamonds_legacy(graph: StateGraph) -> List[Diamond]:
    diamonds: List[Diamond] = []
    for node_id in range(graph.num_states):
        out = graph.out_edges(node_id)
        for i, edge_a in enumerate(out):
            for edge_b in out[i + 1 :]:
                if edge_a.label == edge_b.label:
                    continue
                if edge_a.dst == edge_b.dst:
                    continue
                # order the pair so each diamond is found exactly once
                first_a, first_b = edge_a, edge_b
                if repr(first_b.label) < repr(first_a.label):
                    first_a, first_b = first_b, first_a
                second_a = _edge_with_label(graph, first_a.dst, first_b.label)
                second_b = _edge_with_label(graph, first_b.dst, first_a.label)
                if second_a is None or second_b is None:
                    continue
                if second_a.dst != second_b.dst:
                    continue
                diamonds.append(Diamond(node_id, first_a, second_a, first_b, second_b))
    return diamonds


def _find_diamonds_static(graph: StateGraph, independence) -> List[Diamond]:
    """The statically-accelerated diamond search.

    Semantically identical to the legacy nested loop (same iteration
    order, same first-match-per-label second-hop lookup), with two
    speedups: per-state ``{label: first edge}`` indexes replace the
    linear ``_edge_with_label`` scans, and certified pairs skip the
    join-equality comparison.  Both second hops must still *exist* —
    a truncated graph (depth bound) can cut one interleaving short,
    and those half-diamonds are skipped exactly as before.
    """
    diamonds: List[Diamond] = []
    label_index: Dict[int, Dict] = {}
    label_repr: Dict = {}   # ActionLabel -> repr, computed once per label
    certified: Dict[Tuple[str, str], bool] = {}

    def index_of(node_id: int) -> Dict:
        idx = label_index.get(node_id)
        if idx is None:
            idx = {}
            for edge in graph.out_edges(node_id):
                idx.setdefault(edge.label, edge)
            label_index[node_id] = idx
        return idx

    def repr_of(label) -> str:
        text = label_repr.get(label)
        if text is None:
            text = repr(label)
            label_repr[label] = text
        return text

    for node_id in range(graph.num_states):
        out = graph.out_edges(node_id)
        for i, edge_a in enumerate(out):
            for edge_b in out[i + 1 :]:
                if edge_a.label == edge_b.label:
                    continue
                if edge_a.dst == edge_b.dst:
                    continue
                first_a, first_b = edge_a, edge_b
                if repr_of(first_b.label) < repr_of(first_a.label):
                    first_a, first_b = first_b, first_a
                second_a = index_of(first_a.dst).get(first_b.label)
                second_b = index_of(first_b.dst).get(first_a.label)
                if second_a is None or second_b is None:
                    continue
                names = (first_a.label.name, first_b.label.name)
                is_certified = certified.get(names)
                if is_certified is None:
                    is_certified = independence.certified(*names)
                    certified[names] = is_certified
                if not is_certified and second_a.dst != second_b.dst:
                    continue
                diamonds.append(Diamond(node_id, first_a, second_a, first_b, second_b))
    return diamonds


def _edge_with_label(graph: StateGraph, src: int, label) -> Edge:
    for edge in graph.out_edges(src):
        if edge.label == label:
            return edge
    return None


def por_excluded_edges(graph: StateGraph, seed: int = 0,
                       independence=None) -> Set[Edge]:
    """Pick the coverage targets to drop: one interleaving per diamond.

    Returns the set of *second-hop* edges of the non-chosen
    interleavings.  An edge that survives as the kept interleaving of
    one diamond is never also excluded by another diamond (kept edges
    are pinned first), so at least one interleaving of every diamond
    remains fully traversable.

    ``independence`` (optional static certificates from
    ``repro.analysis.effects``) accelerates the diamond search without
    changing its result; the seeded exclusion choice consumes the rng
    identically either way, so suites stay byte-identical.
    """
    rng = random.Random(seed)
    with TRACER.span("por.reduce", spec=graph.spec_name, seed=seed) as por_span:
        excluded: Set[Tuple] = set()
        kept: Set[Tuple] = set()
        result: Set[Edge] = set()
        diamonds = find_diamonds(graph, independence=independence)
        for diamond in diamonds:
            option_a = diamond.second_a  # drop candidate if order B is kept
            option_b = diamond.second_b
            a_key, b_key = option_a.key(), option_b.key()
            if a_key in excluded and b_key in excluded:
                continue  # both orders already dropped by earlier diamonds
            if a_key in excluded:
                choice = option_b  # order A already dead; keep order B
                drop = None
            elif b_key in excluded:
                choice = option_a
                drop = None
            elif a_key in kept and b_key in kept:
                continue  # both orders pinned by earlier diamonds; drop neither
            elif a_key in kept:
                drop = option_b
            elif b_key in kept:
                drop = option_a
            else:
                drop = option_a if rng.random() < 0.5 else option_b
            if drop is not None and drop.key() not in kept:
                excluded.add(drop.key())
                result.add(drop)
                keep = option_b if drop is option_a else option_a
                kept.add(keep.key())
                if TRACER.enabled:
                    TRACER.emit("por.pruned", origin=diamond.origin,
                                src=drop.src, dst=drop.dst,
                                label=repr(drop.label),
                                kept=repr(keep.label))
        if TRACER.enabled:
            METRICS.counter("por.pruned_edges").inc(len(result))
            METRICS.set_gauge("por.diamonds", len(diamonds))
            por_span.add(diamonds=len(diamonds), pruned=len(result))
        return result


def diamond_stats(graph: StateGraph, independence=None) -> Dict[str, int]:
    """Summary numbers for benches: diamonds found and edges dropped."""
    diamonds = find_diamonds(graph, independence=independence)
    dropped = por_excluded_edges(graph, independence=independence)
    return {"diamonds": len(diamonds), "excluded_edges": len(dropped)}
