"""Mapping categories (Sections 4.1.1 and 4.1.2).

Variables and actions in a TLA+ specification fall into categories that
determine *how* they map onto the implementation:

* state-related variables → annotated fields (shadow variables),
* message-related variables → testbed message sets,
* action counters / auxiliary variables → not mapped at all;

* single-node and message-related actions → *spontaneous*: they occur
  while the system runs and the testbed waits for their notification,
* external faults and user requests → *triggered*: the testbed causes
  them (fault scripts / client scripts).
"""

from __future__ import annotations

import enum

__all__ = ["TriggerKind", "FaultKind", "MessageCheckMode"]


class TriggerKind(enum.Enum):
    """How the testbed makes an action happen during controlled testing."""

    SPONTANEOUS = "spontaneous"   # wait for the instrumented notification
    USER_REQUEST = "user_request"  # invoke a client script, then wait
    FAULT = "fault"                # invoke a fault script / message fault


class FaultKind(enum.Enum):
    """The four external faults Mocket supports (Section 4.1.2)."""

    CRASH = "crash"
    RESTART = "restart"
    DROP_MESSAGE = "drop_message"
    DUPLICATE_MESSAGE = "duplicate_message"


class MessageCheckMode(enum.Enum):
    """How strictly message-related variables are compared.

    ``STRICT`` compares the full message bag after every action — this
    is what reveals Raft specification bug #1 (a message the spec keeps
    in flight that the implementation consumed).  ``CONSUME`` validates
    messages only when they are consumed (the scheduled receive action's
    message content must match); systems whose specs abstract response
    contents use this mode.
    """

    STRICT = "strict"
    CONSUME = "consume"
