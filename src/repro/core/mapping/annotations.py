"""Instrumentation hooks — the Python analogue of Mocket's annotations.

The paper instruments Java systems with ``@Variable``/``@Action``
annotations plus ASM-generated hooks (shadow fields, notify-and-block,
state collection).  In Python the same observable hooks are:

* :class:`traced_field` — a descriptor; every assignment also updates
  the node's shadow store (the ``Mocket$x`` shadow field),
* :func:`record_var` — explicit shadow update for *method variables*
  (the paper's ``<SpecName, ImplName, Location>`` configuration tuples),
* :func:`mocket_action` — decorator mapping a method to a single-node
  or message-sending action (``@Action`` + ``notifyAndBlock`` +
  ``checkAllStates``),
* :func:`mocket_receive` — decorator for message-receiving actions; the
  received message content is sent with the notification, and the body
  honours the drop-fault switch,
* :func:`action_span` — context manager mapping a *code snippet* to an
  action (the paper's ``Action.begin``/``Action.end``),
* :func:`get_msg` — records an outgoing message's content
  (``Action.getMsg``) into the current action scope.

Every hook is a no-op when the node's cluster has no active Mocket
runtime, so instrumented systems run unchanged in production mode.
"""

from __future__ import annotations

import functools
import threading
from typing import Any, Callable, Dict, Optional

__all__ = [
    "traced_field",
    "record_var",
    "mocket_action",
    "mocket_receive",
    "action_span",
    "get_msg",
    "current_scope",
]

_tls = threading.local()


def _runtime(node) -> Optional[Any]:
    """The active Mocket runtime controlling ``node``'s cluster, if any."""
    runtime = getattr(node.cluster, "mocket_runtime", None)
    if runtime is not None and runtime.active:
        return runtime
    return None


def current_scope():
    """The innermost open action scope on this thread (None outside)."""
    stack = getattr(_tls, "scopes", None)
    return stack[-1] if stack else None


def _push_scope(scope) -> None:
    stack = getattr(_tls, "scopes", None)
    if stack is None:
        stack = []
        _tls.scopes = stack
    stack.append(scope)


def _pop_scope(scope) -> None:
    stack = getattr(_tls, "scopes", [])
    if stack and stack[-1] is scope:
        stack.pop()


class traced_field:
    """Descriptor that mirrors every assignment into the node's shadow store.

    ``state = traced_field("nodeState")`` is the analogue of annotating
    the ``state`` field with ``@Variable("nodeState")``: Mocket's state
    checker reads the shadow store, never the field itself.
    """

    def __init__(self, spec_name: str):
        self.spec_name = spec_name
        self.attr = None

    def __set_name__(self, owner, name: str) -> None:
        self.attr = f"_traced_{name}"

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        try:
            return getattr(obj, self.attr)
        except AttributeError:
            raise AttributeError(
                f"traced field {self.spec_name!r} read before first assignment"
            ) from None

    def __set__(self, obj, value) -> None:
        setattr(obj, self.attr, value)
        obj.mocket_shadow[self.spec_name] = value


def record_var(node, spec_name: str, value: Any) -> None:
    """Shadow update for a method variable (configuration-tuple mapping)."""
    node.mocket_shadow[spec_name] = value


class ActionScope:
    """One in-flight instrumented action on one node."""

    __slots__ = ("node", "name", "params", "recv_msg", "msg_var", "directive",
                 "sent_messages", "ticket")

    def __init__(self, node, name: str, params: Dict[str, Any],
                 recv_msg: Optional[Dict[str, Any]] = None,
                 msg_var: Optional[str] = None):
        self.node = node
        self.name = name
        self.params = params
        self.recv_msg = recv_msg
        self.msg_var = msg_var
        self.directive = "normal"
        self.sent_messages = []  # [(msg_var, fields_dict), ...]
        self.ticket = None

    @property
    def dropped(self) -> bool:
        return self.directive == "drop"


class action_span:
    """Context manager mapping a code snippet to an action.

    ``with action_span(self, "StartElection", {"i": self.node_id}): ...``
    is ``Action.begin`` + ``notifyAndBlock`` on entry and
    ``checkAllStates`` + ``Action.end`` on exit.  Outside controlled
    testing it is free.
    """

    def __init__(self, node, name: str, params: Optional[Dict[str, Any]] = None,
                 recv_msg: Optional[Dict[str, Any]] = None,
                 msg_var: Optional[str] = None):
        self.scope = ActionScope(node, name, dict(params or {}),
                                 recv_msg=recv_msg, msg_var=msg_var)
        self.runtime = _runtime(node)

    def __enter__(self) -> ActionScope:
        if self.runtime is not None:
            self.runtime.begin_action(self.scope)
        _push_scope(self.scope)
        return self.scope

    def __exit__(self, exc_type, exc, tb) -> None:
        _pop_scope(self.scope)
        if self.runtime is not None:
            self.runtime.end_action(self.scope, failed=exc_type is not None)


def get_msg(node, msg_var: str, **fields: Any) -> None:
    """Record an outgoing message's content (``Action.getMsg``).

    Must be called inside an instrumented action, at a program point
    where every field value is available.  Field names must match the
    spec's message record fields.
    """
    scope = current_scope()
    if scope is None:
        runtime = _runtime(node)
        if runtime is None:
            return  # standalone run: nothing to record
        raise RuntimeError(
            f"get_msg({msg_var!r}) called outside an instrumented action"
        )
    scope.sent_messages.append((msg_var, dict(fields)))


def mocket_action(name: str,
                  params: Optional[Callable[..., Dict[str, Any]]] = None):
    """Decorator mapping a method to a single-node / message-sending action.

    ``params(self, *args, **kwargs)`` computes the action's parameter
    binding (``Action.collectParams``); values are implementation-domain
    and are translated through the constant table by the testbed.
    """

    def decorator(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(self, *args, **kwargs):
            if _runtime(self) is None:
                return fn(self, *args, **kwargs)
            bound = params(self, *args, **kwargs) if params is not None else {}
            with action_span(self, name, bound):
                return fn(self, *args, **kwargs)

        wrapper.mocket_action_name = name
        return wrapper

    return decorator


def mocket_receive(name: str, msg_var: str,
                   params: Optional[Callable[..., Dict[str, Any]]] = None,
                   msg: Optional[Callable[..., Dict[str, Any]]] = None):
    """Decorator mapping a method to a message-receiving action.

    ``msg(self, *args, **kwargs)`` extracts the received message's
    content; it is sent with the notification so the testbed can match
    it against the scheduled step and operate the drop/duplicate switch.
    When the scheduler schedules a *drop* fault for this message the
    handler body is skipped (the paper's overridden action).
    """

    def decorator(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(self, *args, **kwargs):
            if _runtime(self) is None:
                return fn(self, *args, **kwargs)
            bound = params(self, *args, **kwargs) if params is not None else {}
            content = msg(self, *args, **kwargs) if msg is not None else {}
            with action_span(self, name, bound, recv_msg=content,
                             msg_var=msg_var) as scope:
                if scope.dropped:
                    return None  # drop fault: skip the handler body
                return fn(self, *args, **kwargs)

        wrapper.mocket_action_name = name
        return wrapper

    return decorator
