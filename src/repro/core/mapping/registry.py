"""The spec↔implementation mapping tables (Section 4.1).

A :class:`SpecMapping` records, for one (specification, system) pair:

* which implementation shadow variable realizes each TLA+ variable,
  with an optional value translator and an optional custom comparator
  (e.g. Xraft realizes the ``votesGranted`` *set* as an *integer*, so
  the comparison is ``len(spec_value) == impl_value``),
* how each TLA+ action is made to happen: spontaneously (wait for its
  instrumented notification), by invoking a user-request script, or by
  injecting a fault (crash / restart / drop / duplicate),
* the constant translation table (``Leader`` ↔ ``Role.LEADER`` ...),
* the message-checking mode.

``validate()`` catches the paper's "developer errors" early: unmapped
state variables, unmapped actions, unknown names.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, NamedTuple, Optional, Sequence

from ...tlaplus.spec import ActionKind, Specification, VarKind
from ...tlaplus.values import FrozenDict, freeze
from .kinds import FaultKind, MessageCheckMode, TriggerKind

__all__ = [
    "MappingError",
    "MappingProblem",
    "VariableMapping",
    "ActionMapping",
    "EventBinding",
    "SpecMapping",
    "UNMAPPED_VARIABLE",
    "FORBIDDEN_MAPPING",
    "UNMAPPED_ACTION",
    "TRIGGER_MISMATCH",
]

# Problem codes shared with the static linter (``repro.analysis``): the
# runtime validator and ``mocket lint`` report the same defects under the
# same stable codes (see docs/ANALYSIS.md).
UNMAPPED_VARIABLE = "MCK101"
FORBIDDEN_MAPPING = "MCK102"
UNMAPPED_ACTION = "MCK103"
TRIGGER_MISMATCH = "MCK104"


class MappingProblem(NamedTuple):
    """One defect found while checking a mapping against its spec."""

    code: str
    message: str


class MappingError(Exception):
    """The mapping is incomplete or references unknown spec elements.

    ``problems`` carries every defect found (not just the first one) as
    :class:`MappingProblem` tuples when the error comes from
    :meth:`SpecMapping.validate`; it is empty for point errors such as
    mapping an unknown name.
    """

    def __init__(self, message: str,
                 problems: Optional[Sequence[MappingProblem]] = None):
        super().__init__(message)
        self.problems: List[MappingProblem] = list(problems or [])


class VariableMapping:
    """How one state-related TLA+ variable maps to the implementation.

    ``derive`` computes the runtime value from the live cluster instead
    of the shadow store — for properties of the *deployment* rather than
    of node memory (e.g. ZAB's ``online``, which must reflect whether
    the process is up even though a dead process cannot report it).
    """

    __slots__ = ("spec_name", "impl_name", "to_spec", "compare", "skipped", "derive")

    def __init__(self, spec_name: str, impl_name: Optional[str],
                 to_spec: Optional[Callable[[Any], Any]] = None,
                 compare: Optional[Callable[[Any, Any], bool]] = None,
                 skipped: bool = False,
                 derive: Optional[Callable[[Any, str], Any]] = None):
        self.spec_name = spec_name
        self.impl_name = impl_name or spec_name
        self.to_spec = to_spec
        self.compare = compare
        self.skipped = skipped
        self.derive = derive

    def __repr__(self) -> str:
        if self.skipped:
            return f"VariableMapping({self.spec_name!r}, skipped)"
        return f"VariableMapping({self.spec_name!r} -> {self.impl_name!r})"


class ActionMapping:
    """How one TLA+ action is driven during controlled testing."""

    __slots__ = ("spec_name", "trigger", "fault_kind", "node_param", "run",
                 "duplicate", "receive_action")

    def __init__(self, spec_name: str, trigger: TriggerKind,
                 fault_kind: Optional[FaultKind] = None,
                 node_param: Optional[str] = None,
                 run: Optional[Callable] = None,
                 duplicate: Optional[Callable] = None,
                 receive_action: Optional[str] = None):
        self.spec_name = spec_name
        self.trigger = trigger
        self.fault_kind = fault_kind
        self.node_param = node_param          # which param names the node (crash/restart)
        self.run = run                        # user-request script: run(cluster, params, occurrence)
        self.duplicate = duplicate            # duplicate-fault script: duplicate(cluster, msg)
        self.receive_action = receive_action  # receive action a drop fault overrides

    def __repr__(self) -> str:
        return f"ActionMapping({self.spec_name!r}, {self.trigger.value})"


class EventBinding:
    """How one logged event name resolves to a spec action.

    Trace conformance (:mod:`repro.conform`) validates externally
    captured logs against the verified state graph; the binding table
    is the log-side twin of the action table: it says which spec action
    a logged event *witnesses*, and optionally how to translate the
    event's raw fields into that action's parameter binding.
    """

    __slots__ = ("event_name", "action", "params")

    def __init__(self, event_name: str, action: str,
                 params: Optional[Callable[[Mapping[str, Any]],
                                           Mapping[str, Any]]] = None):
        self.event_name = event_name   # the name as it appears in the log
        self.action = action           # the spec action it witnesses
        self.params = params           # fields -> spec params (None: identity)

    def __repr__(self) -> str:
        return f"EventBinding({self.event_name!r} -> {self.action!r})"


class SpecMapping:
    """The full mapping between a specification and a system under test."""

    def __init__(self, spec: Specification,
                 message_check: MessageCheckMode = MessageCheckMode.STRICT):
        self.spec = spec
        self.message_check = message_check
        self.variables: Dict[str, VariableMapping] = {}
        self.actions: Dict[str, ActionMapping] = {}
        self.events: Dict[str, EventBinding] = {}
        self._const_to_impl: Dict[Any, Any] = {}
        self._impl_to_const: Dict[Any, Any] = {}

    # -- variables --------------------------------------------------------------
    def map_variable(self, spec_name: str, impl_name: Optional[str] = None,
                     to_spec: Optional[Callable[[Any], Any]] = None,
                     compare: Optional[Callable[[Any, Any], bool]] = None,
                     derive: Optional[Callable[[Any, str], Any]] = None) -> "SpecMapping":
        """Map a state-related variable to the shadow field ``impl_name``
        (or to a ``derive(cluster, node_id)`` computation)."""
        self._require_variable(spec_name)
        self.variables[spec_name] = VariableMapping(spec_name, impl_name, to_spec,
                                                    compare, derive=derive)
        return self

    def skip_variable(self, spec_name: str) -> "SpecMapping":
        """Explicitly leave a variable unchecked (documented omission)."""
        self._require_variable(spec_name)
        self.variables[spec_name] = VariableMapping(spec_name, None, skipped=True)
        return self

    # -- constants -----------------------------------------------------------------
    def map_constant(self, spec_value: Any, impl_value: Any) -> "SpecMapping":
        """Record that ``spec_value`` is realized as ``impl_value``."""
        spec_value = freeze(spec_value)
        self._const_to_impl[spec_value] = impl_value
        self._impl_to_const[impl_value] = spec_value
        return self

    def to_spec_value(self, value: Any) -> Any:
        """Translate an implementation value into the spec's domain.

        Applies the constant table recursively through containers, then
        freezes the result.
        """
        translated = self._translate(value)
        return freeze(translated)

    def _translate(self, value: Any) -> Any:
        try:
            if value in self._impl_to_const:
                return self._impl_to_const[value]
        except TypeError:
            pass  # unhashable: recurse below
        if isinstance(value, Mapping):
            return {self._translate(k): self._translate(v) for k, v in value.items()}
        if isinstance(value, (list, tuple)):
            return tuple(self._translate(v) for v in value)
        if isinstance(value, (set, frozenset)):
            return frozenset(self._translate(v) for v in value)
        return value

    # -- actions -----------------------------------------------------------------------
    def map_action(self, spec_name: str) -> "SpecMapping":
        """Map a spontaneous action (single-node or message-related)."""
        self._require_action(spec_name)
        self.actions[spec_name] = ActionMapping(spec_name, TriggerKind.SPONTANEOUS)
        return self

    def map_user_request(self, spec_name: str,
                         run: Callable[..., Any]) -> "SpecMapping":
        """Map a user request to its client script.

        ``run(cluster, params, occurrence)`` launches the request;
        ``occurrence`` is 1 for the first scheduled execution, 2 for the
        second, ... (the paper writes ``(1, 1)`` then ``(2, 2)``).
        """
        self._require_action(spec_name)
        self.actions[spec_name] = ActionMapping(
            spec_name, TriggerKind.USER_REQUEST, run=run
        )
        return self

    def map_crash(self, spec_name: str, node_param: str = "i") -> "SpecMapping":
        self._require_action(spec_name)
        self.actions[spec_name] = ActionMapping(
            spec_name, TriggerKind.FAULT, fault_kind=FaultKind.CRASH,
            node_param=node_param,
        )
        return self

    def map_restart(self, spec_name: str, node_param: str = "i") -> "SpecMapping":
        self._require_action(spec_name)
        self.actions[spec_name] = ActionMapping(
            spec_name, TriggerKind.FAULT, fault_kind=FaultKind.RESTART,
            node_param=node_param,
        )
        return self

    def map_drop(self, spec_name: str, receive_action: Optional[str] = None) -> "SpecMapping":
        """Map a message-drop fault: the matching receive is overridden
        to skip its handler body (the paper's switch mechanism)."""
        self._require_action(spec_name)
        self.actions[spec_name] = ActionMapping(
            spec_name, TriggerKind.FAULT, fault_kind=FaultKind.DROP_MESSAGE,
            receive_action=receive_action,
        )
        return self

    def map_duplicate(self, spec_name: str,
                      duplicate: Callable[..., Any]) -> "SpecMapping":
        """Map a message-duplicate fault.

        ``duplicate(cluster, msg)`` re-injects the (spec-domain) message
        into the destination node, so the duplicate copy flows through
        the normal receive path.
        """
        self._require_action(spec_name)
        self.actions[spec_name] = ActionMapping(
            spec_name, TriggerKind.FAULT, fault_kind=FaultKind.DUPLICATE_MESSAGE,
            duplicate=duplicate,
        )
        return self

    # -- event bindings (trace conformance) ----------------------------------------------
    def bind_event(self, event_name: str, action: Optional[str] = None,
                   params: Optional[Callable[[Mapping[str, Any]],
                                             Mapping[str, Any]]] = None) -> "SpecMapping":
        """Bind a logged event name to the spec action it witnesses.

        ``action`` defaults to ``event_name`` (the native ``repro.obs``
        format logs spec action names directly); ``params(fields)``
        optionally translates the event's raw fields into the action's
        parameter binding for foreign log formats.
        """
        action = action or event_name
        self._require_action(action)
        self.events[event_name] = EventBinding(event_name, action, params)
        return self

    def bind_default_events(self) -> "SpecMapping":
        """Identity-bind every spec action not yet bound to an event.

        This is the native-format default: the testbed's ``runner.step``
        records carry the spec action name, so every action is
        observable under its own name.  Explicit :meth:`bind_event`
        calls made beforehand are preserved.
        """
        for name in self.spec.actions:
            if name not in self.events:
                self.events[name] = EventBinding(name, name)
        return self

    def event_binding(self, event_name: str) -> Optional[EventBinding]:
        return self.events.get(event_name)

    def bound_actions(self) -> set:
        """Spec actions witnessed by at least one event binding."""
        return {binding.action for binding in self.events.values()}

    # -- validation ----------------------------------------------------------------------
    def problems(self) -> List[MappingProblem]:
        """Every mapping defect, as ``(code, message)`` tuples.

        This is the single source of truth shared by the runtime
        :meth:`validate` gate and the static linter's MCK101-MCK104
        conformance rules.
        """
        problems: List[MappingProblem] = []
        for name, decl in self.spec.variables.items():
            if decl.kind in (VarKind.COUNTER, VarKind.AUXILIARY):
                if name in self.variables and not self.variables[name].skipped:
                    problems.append(MappingProblem(
                        FORBIDDEN_MAPPING,
                        f"variable {name!r} is a {decl.kind.value} and must "
                        f"not be mapped"))
                continue
            if decl.kind is VarKind.MESSAGE:
                continue  # message variables live in the testbed's message sets
            if name not in self.variables:
                problems.append(MappingProblem(
                    UNMAPPED_VARIABLE,
                    f"state variable {name!r} is not mapped (or skipped)"))
        for name, decl in self.spec.actions.items():
            mapping = self.actions.get(name)
            if mapping is None:
                problems.append(MappingProblem(
                    UNMAPPED_ACTION, f"action {name!r} is not mapped"))
                continue
            if decl.kind is ActionKind.FAULT and mapping.trigger is not TriggerKind.FAULT:
                problems.append(MappingProblem(
                    TRIGGER_MISMATCH,
                    f"action {name!r} is a fault but mapped as "
                    f"{mapping.trigger.value}"))
            if decl.kind is ActionKind.USER_REQUEST and \
                    mapping.trigger is not TriggerKind.USER_REQUEST:
                problems.append(MappingProblem(
                    TRIGGER_MISMATCH,
                    f"action {name!r} is a user request but mapped as "
                    f"{mapping.trigger.value}"))
        return problems

    def validate(self) -> None:
        """Check the mapping covers the spec (catching developer errors).

        Collects *every* problem and raises a single :class:`MappingError`
        whose ``problems`` attribute lists them all.
        """
        problems = self.problems()
        if problems:
            raise MappingError("; ".join(p.message for p in problems),
                               problems=problems)

    # -- queries --------------------------------------------------------------------------
    def checked_variables(self):
        """State-related variables the state checker compares."""
        return [
            (name, self.variables[name])
            for name, decl in self.spec.variables.items()
            if decl.kind is VarKind.STATE
            and name in self.variables
            and not self.variables[name].skipped
        ]

    def message_variables(self):
        return self.spec.variables_of_kind(VarKind.MESSAGE)

    def action_mapping(self, spec_name: str) -> ActionMapping:
        mapping = self.actions.get(spec_name)
        if mapping is None:
            raise MappingError(f"action {spec_name!r} is not mapped")
        return mapping

    def _require_variable(self, name: str) -> None:
        if name not in self.spec.variables:
            raise MappingError(f"unknown spec variable {name!r}")

    def _require_action(self, name: str) -> None:
        if name not in self.spec.actions:
            raise MappingError(f"unknown spec action {name!r}")

    def mapping_loc(self) -> int:
        """Rough 'mapping LOC' figure for the Table 1 bench: one line per
        mapped variable/constant plus the per-action hook lines."""
        return (
            len(self.variables)
            + len(self._const_to_impl)
            + sum(2 for _ in self.actions)
        )

    def __repr__(self) -> str:
        return (
            f"SpecMapping({self.spec.name!r}: {len(self.variables)} vars, "
            f"{len(self.actions)} actions)"
        )
