"""Mapping a TLA+ specification to its implementation (Section 4.1)."""

from .annotations import (
    ActionScope,
    action_span,
    current_scope,
    get_msg,
    mocket_action,
    mocket_receive,
    record_var,
    traced_field,
)
from .kinds import FaultKind, MessageCheckMode, TriggerKind
from .registry import (
    ActionMapping,
    EventBinding,
    MappingError,
    MappingProblem,
    SpecMapping,
    VariableMapping,
)

__all__ = [
    "ActionMapping",
    "ActionScope",
    "EventBinding",
    "FaultKind",
    "MappingError",
    "MappingProblem",
    "MessageCheckMode",
    "SpecMapping",
    "TriggerKind",
    "VariableMapping",
    "action_span",
    "current_scope",
    "get_msg",
    "mocket_action",
    "mocket_receive",
    "record_var",
    "traced_field",
]
