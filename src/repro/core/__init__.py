"""Mocket core: the paper's primary contribution.

Three stages, mirroring Section 4:

* :mod:`repro.core.mapping` — map a specification to its implementation
  (variable/action/constant mapping, annotations, instrumentation hooks),
* :mod:`repro.core.testgen` — generate executable test cases from the
  model-checked state-space graph (edge-coverage-guided traversal with
  partial order reduction),
* :mod:`repro.core.testbed` — controlled testing: action scheduler,
  state checker, fault injection and divergence reporting.
"""

from .mapping import (
    FaultKind,
    MappingError,
    MessageCheckMode,
    SpecMapping,
    TriggerKind,
    action_span,
    get_msg,
    mocket_action,
    mocket_receive,
    record_var,
    traced_field,
)
from .testbed import (
    ControlledTester,
    Divergence,
    DivergenceKind,
    RunnerConfig,
    SuiteResult,
    TestCaseResult,
)
from .testgen import TestCase, TestStep, TestSuite, generate_test_cases

__all__ = [
    "ControlledTester",
    "Divergence",
    "DivergenceKind",
    "FaultKind",
    "MappingError",
    "MessageCheckMode",
    "RunnerConfig",
    "SpecMapping",
    "SuiteResult",
    "TestCase",
    "TestCaseResult",
    "TestStep",
    "TestSuite",
    "TriggerKind",
    "action_span",
    "generate_test_cases",
    "get_msg",
    "mocket_action",
    "mocket_receive",
    "record_var",
    "traced_field",
]
