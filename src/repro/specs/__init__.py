"""Specifications written in the TLA+-style DSL.

* :mod:`repro.specs.example` — the paper's Figure 1 cache example.
* :mod:`repro.specs.raft` — the Raft consensus specification (Xraft and
  Raft-java variants; official spec bugs reproducible via a switch).
* :mod:`repro.specs.zab` — the ZooKeeper ZAB specification (fast leader
  election plus synchronization/broadcast).
"""

from .example import build_example_spec

__all__ = ["build_example_spec"]
