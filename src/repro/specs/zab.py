"""The ZooKeeper ZAB specification (fast leader election + epoch handshake).

The paper develops a TLA+ specification for ZooKeeper's ZAB protocol
from the implementation and its design documents (Section 5.3), with
two message-related variables — one per communication mechanism:

* ``le_msgs`` — vote notifications of the fast-leader-election stage,
* ``bc_msgs`` — the synchronization stage's LEADERINFO / ACKEPOCH /
  NEWLEADER / ACK handshake (the epoch agreement that ZOOKEEPER-1653
  lives in).

Faults are ``Crash``/``Restart`` (message drop/duplicate are not
modelled, matching the paper: ZAB's designers never claimed to handle
them).  Votes are ``(lastZxid, sid)`` pairs compared lexicographically,
``round`` is the election's logical clock (volatile), and
``acceptedEpoch``/``currentEpoch``/``lastZxid`` are persistent.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..tlaplus import (
    ActionKind,
    Specification,
    VarKind,
    bag_add,
    bag_count,
    bag_remove,
    from_constant,
    in_flight,
)
from ..tlaplus.values import EMPTY_BAG, freeze

__all__ = ["LOOKING", "FOLLOWING", "LEADING", "NIL", "ZabSpecOptions", "build_zab_spec"]

LOOKING = "Looking"
FOLLOWING = "Following"
LEADING = "Leading"
NIL = "Nil"

VOTE = "Vote"
LEADER_INFO = "LeaderInfo"
ACK_EPOCH = "AckEpoch"
NEW_LEADER = "NewLeader"
ACK = "Ack"
PROPOSAL = "Proposal"
PROPOSAL_ACK = "ProposalAck"
COMMIT = "Commit"


class ZabSpecOptions:
    """Model constants for the ZAB specification."""

    def __init__(
        self,
        servers: Iterable[str] = ("n1", "n2", "n3"),
        max_elections: int = 2,
        max_crashes: int = 1,
        max_restarts: int = 1,
        max_client_requests: int = 0,
        starters: Optional[Iterable[str]] = None,
        crashers: Optional[Iterable[str]] = None,
        name: str = "zab",
    ):
        self.servers = tuple(servers)
        self.max_elections = max_elections
        self.max_crashes = max_crashes
        self.max_restarts = max_restarts
        self.max_client_requests = max_client_requests
        # model restriction: which nodes may spontaneously start elections
        self.starters = tuple(starters) if starters is not None else tuple(servers)
        # model restriction: which nodes may crash/restart — restricting
        # the crash set is the standard TLC trick to keep a
        # fault-enabled ZAB space tractable (all-servers × crashes
        # explodes well past 10^5 states)
        self.crashers = tuple(crashers) if crashers is not None else tuple(servers)
        self.name = name

    def fault_actions(self) -> tuple:
        """Names of the fault actions this model enables — the legal
        modeled-injection vocabulary for ``repro.faults.plan_faults``."""
        names = []
        if self.max_crashes > 0:
            names.append("Crash")
        if self.max_restarts > 0:
            names.append("Restart")
        return tuple(names)


def _vote_notif(src, dst, rnd, vote):
    return freeze({"mtype": VOTE, "mround": rnd, "mvote": vote,
                   "msource": src, "mdest": dst})


def build_zab_spec(options: Optional[ZabSpecOptions] = None) -> Specification:
    """Build the ZAB specification for the given model options."""
    opts = options or ZabSpecOptions()
    servers = opts.servers
    quorum = len(servers) // 2 + 1

    spec = Specification(
        opts.name,
        constants={
            "Server": servers,
            "Looking": LOOKING, "Following": FOLLOWING, "Leading": LEADING,
            "Nil": NIL,
            "Quorum": quorum,
            "MaxElections": opts.max_elections,
            "MaxCrashes": opts.max_crashes,
            "MaxRestarts": opts.max_restarts,
            "MaxClientRequests": opts.max_client_requests,
        },
    )

    # -- variables ----------------------------------------------------------
    spec.add_variable("le_msgs", kind=VarKind.MESSAGE,
                      doc="Leader-election vote notifications.")
    spec.add_variable("bc_msgs", kind=VarKind.MESSAGE,
                      doc="Synchronization-stage handshake messages.")
    spec.add_variable("state", per_node=True, doc="Looking / Following / Leading.")
    spec.add_variable("online", per_node=True, doc="Process liveness (crash window).")
    spec.add_variable("round", per_node=True, doc="FLE logical clock (volatile).")
    spec.add_variable("vote", per_node=True, doc="Current vote (lastZxid, sid) or Nil.")
    spec.add_variable("voteTable", per_node=True,
                      doc="Votes received this round, per voter.")
    spec.add_variable("leader", per_node=True, doc="Elected leader id or Nil.")
    spec.add_variable("acceptedEpoch", per_node=True,
                      doc="Epoch acknowledged via LEADERINFO (persistent).")
    spec.add_variable("currentEpoch", per_node=True,
                      doc="Epoch committed via NEWLEADER (persistent).")
    spec.add_variable("lastZxid", per_node=True, doc="Last txn id (persistent).")
    spec.add_variable("ackd", per_node=True,
                      doc="Leader: followers that acked NEWLEADER.")
    spec.add_variable("history", per_node=True,
                      doc="Accepted proposals (zxid, value) (persistent).")
    spec.add_variable("committed", per_node=True,
                      doc="Highest committed zxid (volatile view).")
    spec.add_variable("proposalAcks", per_node=True,
                      doc="Leader: acks collected per proposed zxid.")
    spec.add_variable("electionCtr", kind=VarKind.COUNTER)
    spec.add_variable("crashCtr", kind=VarKind.COUNTER)
    spec.add_variable("restartCtr", kind=VarKind.COUNTER)
    spec.add_variable("requestCtr", kind=VarKind.COUNTER)

    @spec.init
    def init(const):
        return {
            "le_msgs": EMPTY_BAG,
            "bc_msgs": EMPTY_BAG,
            "state": {i: LOOKING for i in servers},
            "online": {i: True for i in servers},
            "round": {i: 0 for i in servers},
            "vote": {i: NIL for i in servers},
            "voteTable": {i: {} for i in servers},
            "leader": {i: NIL for i in servers},
            "acceptedEpoch": {i: 0 for i in servers},
            "currentEpoch": {i: 0 for i in servers},
            "lastZxid": {i: 0 for i in servers},
            "ackd": {i: frozenset() for i in servers},
            "history": {i: () for i in servers},
            "committed": {i: 0 for i in servers},
            "proposalAcks": {i: {} for i in servers},
            "electionCtr": 0,
            "crashCtr": 0,
            "restartCtr": 0,
            "requestCtr": 0,
        }

    def broadcast(bag, src, rnd, vote):
        """Send a notification to every peer, deduplicating identical
        in-flight copies (the state constraint that bounds the bag)."""
        for j in servers:
            if j != src:
                notif = _vote_notif(src, j, rnd, vote)
                if bag_count(bag, notif) == 0:
                    bag = bag_add(bag, notif)
        return bag

    def vote_gt(a, b):
        """FLE's total order on votes: (zxid, sid) lexicographic."""
        return tuple(a) > tuple(b)

    # -- fast leader election --------------------------------------------------
    @spec.action(params={"i": from_constant("Server")})
    def StartElection(state, const, i):
        """A LOOKING node starts (or restarts) a round of leader election,
        proposing itself and notifying every peer (Figure 5's snippet)."""
        if i not in opts.starters:
            return None
        if not state.online[i] or state.state[i] != LOOKING:
            return None
        if state.electionCtr >= const["MaxElections"]:
            return None
        rnd = state.round[i] + 1
        vote = (state.lastZxid[i], i)
        return {
            "round": state.round.set(i, rnd),
            "vote": state.vote.set(i, vote),
            "voteTable": state.voteTable.set(i, {i: vote}),
            "le_msgs": broadcast(state.le_msgs, i, rnd, vote),
            "electionCtr": state.electionCtr + 1,
        }

    @spec.action(params={"m": in_flight("le_msgs")},
                 kind=ActionKind.MESSAGE_RECEIVE, msg_param="m",
                 message_var="le_msgs")
    def HandleVote(state, const, m):
        """A node processes one vote notification (FLE's receive loop)."""
        i, src = m["mdest"], m["msource"]
        if not state.online[i]:
            return None
        if state.state[i] != LOOKING:
            # non-LOOKING nodes swallow stale notifications
            return {"le_msgs": bag_remove(state.le_msgs, m)}
        msgs = bag_remove(state.le_msgs, m)
        rnd = state.round[i]
        vote = state.vote[i]
        table = dict(state.voteTable[i])
        if m["mround"] > rnd:
            # adopt the newer round; revote between ours and theirs
            own = (state.lastZxid[i], i)
            best = m["mvote"] if vote_gt(m["mvote"], own) else own
            table = {i: best, src: m["mvote"]}
            return {
                "le_msgs": broadcast(msgs, i, m["mround"], best),
                "round": state.round.set(i, m["mround"]),
                "vote": state.vote.set(i, best),
                "voteTable": state.voteTable.set(i, table),
            }
        if m["mround"] < rnd:
            # answer a laggard with our current vote (only when no such
            # notification is already in flight, to bound the bag)
            reply = _vote_notif(i, src, rnd, vote)
            if bag_count(msgs, reply) == 0:
                msgs = bag_add(msgs, reply)
            return {"le_msgs": msgs}
        # same round
        table[src] = m["mvote"]
        if vote_gt(m["mvote"], vote):
            table[i] = m["mvote"]
            return {
                "le_msgs": broadcast(msgs, i, rnd, m["mvote"]),
                "vote": state.vote.set(i, m["mvote"]),
                "voteTable": state.voteTable.set(i, table),
            }
        # the received vote is not better: record it, send nothing
        return {
            "le_msgs": msgs,
            "voteTable": state.voteTable.set(i, table),
        }

    def _quorum_for_vote(state, const, i):
        vote = state.vote[i]
        if vote == NIL:
            return False
        supporters = sum(
            1 for v in state.voteTable[i].values() if v == freeze(vote)
        )
        return supporters >= const["Quorum"]

    @spec.action(params={"i": from_constant("Server")})
    def BecomeLeading(state, const, i):
        """A quorum agrees on this node: it leads and proposes a new epoch."""
        if not state.online[i] or state.state[i] != LOOKING:
            return None
        if not _quorum_for_vote(state, const, i):
            return None
        if state.vote[i][1] != i:
            return None
        return {
            "state": state.state.set(i, LEADING),
            "leader": state.leader.set(i, i),
            "acceptedEpoch": state.acceptedEpoch.set(i, state.acceptedEpoch[i] + 1),
            "ackd": state.ackd.set(i, frozenset({i})),
        }

    @spec.action(params={"i": from_constant("Server")})
    def BecomeFollowing(state, const, i):
        """A quorum agrees on another node: this node follows it."""
        if not state.online[i] or state.state[i] != LOOKING:
            return None
        if not _quorum_for_vote(state, const, i):
            return None
        if state.vote[i][1] == i:
            return None
        return {
            "state": state.state.set(i, FOLLOWING),
            "leader": state.leader.set(i, state.vote[i][1]),
        }

    # -- synchronization stage (the epoch handshake) -------------------------------
    @spec.action(params={"i": from_constant("Server"), "j": from_constant("Server")},
                 kind=ActionKind.MESSAGE_SEND, message_var="bc_msgs")
    def SendLeaderInfo(state, const, i, j):
        """The leader proposes its new epoch to a connected follower."""
        if i == j or not state.online[i] or state.state[i] != LEADING:
            return None
        if state.leader[j] != i or state.state[j] != FOLLOWING:
            return None
        # one handshake message at a time per (leader, follower) session —
        # ZAB runs the synchronization over a single ordered connection,
        # and this is also the state constraint that bounds the bag.
        if any({m2["msource"], m2["mdest"]} == {i, j} for m2 in state.bc_msgs):
            return None
        m = freeze({"mtype": LEADER_INFO, "mepoch": state.acceptedEpoch[i],
                    "msource": i, "mdest": j})
        return {"bc_msgs": bag_add(state.bc_msgs, m)}

    @spec.action(params={"m": in_flight("bc_msgs")},
                 kind=ActionKind.MESSAGE_RECEIVE, msg_param="m",
                 message_var="bc_msgs")
    def HandleLeaderInfo(state, const, m):
        """Follower accepts the proposed epoch (persists acceptedEpoch)."""
        if m["mtype"] != LEADER_INFO:
            return None
        i = m["mdest"]
        if not state.online[i] or state.state[i] != FOLLOWING:
            return None
        if m["mepoch"] < state.acceptedEpoch[i]:
            return None
        reply = freeze({"mtype": ACK_EPOCH, "mepoch": m["mepoch"],
                        "msource": i, "mdest": m["msource"]})
        return {
            "bc_msgs": bag_add(bag_remove(state.bc_msgs, m), reply),
            "acceptedEpoch": state.acceptedEpoch.set(i, m["mepoch"]),
        }

    @spec.action(params={"m": in_flight("bc_msgs")},
                 kind=ActionKind.MESSAGE_RECEIVE, msg_param="m",
                 message_var="bc_msgs")
    def HandleAckEpoch(state, const, m):
        """Leader tells the acking follower to adopt the new leadership."""
        if m["mtype"] != ACK_EPOCH:
            return None
        i = m["mdest"]
        if not state.online[i] or state.state[i] != LEADING:
            return None
        if m["mepoch"] != state.acceptedEpoch[i]:
            return None
        reply = freeze({"mtype": NEW_LEADER, "mepoch": m["mepoch"],
                        "msource": i, "mdest": m["msource"]})
        return {"bc_msgs": bag_add(bag_remove(state.bc_msgs, m), reply)}

    @spec.action(params={"m": in_flight("bc_msgs")},
                 kind=ActionKind.MESSAGE_RECEIVE, msg_param="m",
                 message_var="bc_msgs")
    def HandleNewLeader(state, const, m):
        """Follower commits the epoch (persists currentEpoch) and acks."""
        if m["mtype"] != NEW_LEADER:
            return None
        i = m["mdest"]
        if not state.online[i] or state.state[i] != FOLLOWING:
            return None
        reply = freeze({"mtype": ACK, "mepoch": m["mepoch"],
                        "msource": i, "mdest": m["msource"]})
        return {
            "bc_msgs": bag_add(bag_remove(state.bc_msgs, m), reply),
            "currentEpoch": state.currentEpoch.set(i, m["mepoch"]),
        }

    @spec.action(params={"m": in_flight("bc_msgs")},
                 kind=ActionKind.MESSAGE_RECEIVE, msg_param="m",
                 message_var="bc_msgs")
    def HandleAck(state, const, m):
        """Leader tallies acks; a quorum commits its own currentEpoch."""
        if m["mtype"] != ACK:
            return None
        i = m["mdest"]
        if not state.online[i] or state.state[i] != LEADING:
            return None
        ackd = state.ackd[i] | {m["msource"]}
        updates = {
            "bc_msgs": bag_remove(state.bc_msgs, m),
            "ackd": state.ackd.set(i, ackd),
        }
        if len(ackd) >= const["Quorum"]:
            updates["currentEpoch"] = state.currentEpoch.set(
                i, state.acceptedEpoch[i]
            )
        return updates

    # -- broadcast stage ------------------------------------------------------------
    def session_busy(bag, i, j):
        return any({m2["msource"], m2["mdest"]} == {i, j} for m2 in bag)

    @spec.action(params={"i": from_constant("Server")},
                 kind=ActionKind.USER_REQUEST)
    def ClientRequest(state, const, i):
        """A client writes through the established leader.

        Concrete data is not modelled; the action counter's value is the
        datum (the same convention as the Raft spec)."""
        if not state.online[i] or state.state[i] != LEADING:
            return None
        if state.currentEpoch[i] != state.acceptedEpoch[i]:
            return None  # synchronization not finished
        if state.requestCtr >= const["MaxClientRequests"]:
            return None
        zxid = state.lastZxid[i] + 1
        value = state.requestCtr + 1
        acks = dict(state.proposalAcks[i])
        acks[zxid] = frozenset({i})
        return {
            "history": state.history.set(i, state.history[i] + ((zxid, value),)),
            "lastZxid": state.lastZxid.set(i, zxid),
            "proposalAcks": state.proposalAcks.set(i, acks),
            "requestCtr": state.requestCtr + 1,
        }

    @spec.action(params={"i": from_constant("Server"), "j": from_constant("Server")},
                 kind=ActionKind.MESSAGE_SEND, message_var="bc_msgs")
    def SendProposal(state, const, i, j):
        """The leader replicates its next uncommitted proposal to j."""
        if i == j or not state.online[i] or state.state[i] != LEADING:
            return None
        if state.leader[j] != i or state.currentEpoch[j] != state.acceptedEpoch[i]:
            return None  # follower not synchronized yet
        pending = [entry for entry in state.history[i]
                   if entry[0] > state.lastZxid[j]]
        if not pending:
            return None
        if session_busy(state.bc_msgs, i, j):
            return None
        zxid, value = pending[0]
        m = freeze({"mtype": PROPOSAL, "mzxid": zxid, "mvalue": value,
                    "msource": i, "mdest": j})
        return {"bc_msgs": bag_add(state.bc_msgs, m)}

    @spec.action(params={"m": in_flight("bc_msgs")},
                 kind=ActionKind.MESSAGE_RECEIVE, msg_param="m",
                 message_var="bc_msgs")
    def HandleProposal(state, const, m):
        """Follower logs the proposal (persistent) and acks it."""
        if m["mtype"] != PROPOSAL:
            return None
        i = m["mdest"]
        if not state.online[i] or state.state[i] != FOLLOWING:
            return None
        if m["mzxid"] != state.lastZxid[i] + 1:
            return None  # strict zxid order over the FIFO session
        reply = freeze({"mtype": PROPOSAL_ACK, "mzxid": m["mzxid"],
                        "msource": i, "mdest": m["msource"]})
        return {
            "bc_msgs": bag_add(bag_remove(state.bc_msgs, m), reply),
            "history": state.history.set(
                i, state.history[i] + ((m["mzxid"], m["mvalue"]),)),
            "lastZxid": state.lastZxid.set(i, m["mzxid"]),
        }

    @spec.action(params={"m": in_flight("bc_msgs")},
                 kind=ActionKind.MESSAGE_RECEIVE, msg_param="m",
                 message_var="bc_msgs")
    def HandleProposalAck(state, const, m):
        """Leader tallies acks; a quorum commits the proposal locally."""
        if m["mtype"] != PROPOSAL_ACK:
            return None
        i = m["mdest"]
        if not state.online[i] or state.state[i] != LEADING:
            return None
        acks = dict(state.proposalAcks[i])
        acked = acks.get(m["mzxid"], frozenset()) | {m["msource"]}
        acks[m["mzxid"]] = acked
        updates = {
            "bc_msgs": bag_remove(state.bc_msgs, m),
            "proposalAcks": state.proposalAcks.set(i, acks),
        }
        if len(acked) >= const["Quorum"] and m["mzxid"] == state.committed[i] + 1:
            updates["committed"] = state.committed.set(i, m["mzxid"])
        return updates

    @spec.action(params={"i": from_constant("Server"), "j": from_constant("Server")},
                 kind=ActionKind.MESSAGE_SEND, message_var="bc_msgs")
    def SendCommit(state, const, i, j):
        """The leader announces a commit to a synchronized follower."""
        if i == j or not state.online[i] or state.state[i] != LEADING:
            return None
        if state.leader[j] != i or state.committed[i] <= state.committed[j]:
            return None
        if state.committed[i] > state.lastZxid[j]:
            return None  # the follower has not logged that far yet
        if session_busy(state.bc_msgs, i, j):
            return None
        m = freeze({"mtype": COMMIT, "mzxid": state.committed[i],
                    "msource": i, "mdest": j})
        return {"bc_msgs": bag_add(state.bc_msgs, m)}

    @spec.action(params={"m": in_flight("bc_msgs")},
                 kind=ActionKind.MESSAGE_RECEIVE, msg_param="m",
                 message_var="bc_msgs")
    def HandleCommit(state, const, m):
        """Follower advances its committed zxid."""
        if m["mtype"] != COMMIT:
            return None
        i = m["mdest"]
        if not state.online[i] or state.state[i] != FOLLOWING:
            return None
        return {
            "bc_msgs": bag_remove(state.bc_msgs, m),
            "committed": state.committed.set(
                i, max(state.committed[i], min(m["mzxid"], state.lastZxid[i]))),
        }

    # -- external faults ----------------------------------------------------------
    @spec.action(params={"i": from_constant("Server")}, kind=ActionKind.FAULT)
    def Crash(state, const, i):
        """The process dies; its durable state is untouched."""
        if i not in opts.crashers:
            return None
        if not state.online[i] or state.crashCtr >= const["MaxCrashes"]:
            return None
        return {
            "online": state.online.set(i, False),
            "crashCtr": state.crashCtr + 1,
        }

    @spec.action(params={"i": from_constant("Server")}, kind=ActionKind.FAULT)
    def Restart(state, const, i):
        """The process relaunches: volatile election state resets, the
        persistent epochs and zxid survive."""
        if i not in opts.crashers:
            return None
        if state.online[i] or state.restartCtr >= const["MaxRestarts"]:
            return None
        return {
            "online": state.online.set(i, True),
            "state": state.state.set(i, LOOKING),
            "round": state.round.set(i, 0),
            "vote": state.vote.set(i, NIL),
            "voteTable": state.voteTable.set(i, {}),
            "leader": state.leader.set(i, NIL),
            "ackd": state.ackd.set(i, frozenset()),
            "committed": state.committed.set(i, 0),
            "proposalAcks": state.proposalAcks.set(i, {}),
            "restartCtr": state.restartCtr + 1,
        }

    # -- properties -------------------------------------------------------------------
    @spec.invariant()
    def SingleLeaderPerEpoch(state, const):
        """Two LEADING nodes never share an accepted epoch."""
        epochs = [state.acceptedEpoch[i] for i in servers
                  if state.state[i] == LEADING and state.online[i]]
        return len(epochs) == len(set(epochs))

    @spec.invariant()
    def EpochsMonotone(state, const):
        """currentEpoch never runs ahead of acceptedEpoch."""
        return all(state.currentEpoch[i] <= state.acceptedEpoch[i] for i in servers)

    @spec.invariant()
    def CommittedWithinHistory(state, const):
        """A node never commits past what it has logged."""
        return all(state.committed[i] <= state.lastZxid[i] for i in servers)

    return spec
