"""The Raft consensus specification (after ongardie/raft.tla).

Transcribed from the official Raft TLA+ specification [9] with the
modifications the paper makes to fit each target implementation:

* the **xraft variant** models asynchronous communication with all four
  external faults (restart, message drop, message duplicate),
* the **raftkv variant** (the Raft-java analogue) models synchronous
  communication, so ``DropMessage``/``DuplicateMessage`` are removed
  exactly as in Section 5.2.

Both variants come in two flavours:

* ``spec_bugs=False`` (default) — the *fixed* specification: term
  updates are folded into the message handlers and the
  candidate-steps-down branch of ``HandleAppendEntriesRequest`` replies
  and consumes its message,
* ``spec_bugs=True`` — the *official* specification faithfully
  reproducing the two specification bugs the paper reports (Section
  6.1): ``UpdateTerm`` is a standalone action interleaving with the
  handlers and not consuming its message (Figure 10), and the
  return-to-follower branch does not ``Reply`` (Figure 11).

As in the official spec, in-flight messages live in a bag
(multiset), elections are bounded by a term ceiling and client
requests / faults by action counters.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..tlaplus import (
    ActionKind,
    Specification,
    VarKind,
    bag_add,
    bag_count,
    bag_remove,
    from_constant,
    in_flight,
)
from ..tlaplus.values import EMPTY_BAG, FrozenDict, freeze

__all__ = [
    "FOLLOWER",
    "CANDIDATE",
    "LEADER",
    "NIL",
    "RaftSpecOptions",
    "build_raft_spec",
    "build_xraft_spec",
    "build_raftkv_spec",
    "last_term",
]

FOLLOWER = "Follower"
CANDIDATE = "Candidate"
LEADER = "Leader"
NIL = "Nil"

RV_REQUEST = "RequestVoteRequest"
RV_RESPONSE = "RequestVoteResponse"
AE_REQUEST = "AppendEntriesRequest"
AE_RESPONSE = "AppendEntriesResponse"


def last_term(log: Sequence) -> int:
    """The term of the last log entry (0 for an empty log)."""
    return log[-1][0] if log else 0


class RaftSpecOptions:
    """Model constants (the values a TLC model would assign)."""

    def __init__(
        self,
        servers: Iterable[str] = ("n1", "n2", "n3"),
        max_term: int = 2,
        max_client_requests: int = 1,
        max_restarts: int = 1,
        max_drops: int = 1,
        max_duplicates: int = 1,
        enable_restart: bool = True,
        enable_drop: bool = True,
        enable_duplicate: bool = True,
        spec_bugs: bool = False,
        candidates: Optional[Iterable[str]] = None,
        max_messages: Optional[int] = None,
        name: str = "raft",
    ):
        self.servers = tuple(servers)
        # Model restrictions TLC users routinely apply to keep checking
        # tractable: limit which nodes may time out, bound the bag size.
        self.candidates = tuple(candidates) if candidates is not None else tuple(servers)
        self.max_messages = max_messages
        self.max_term = max_term
        self.max_client_requests = max_client_requests
        self.max_restarts = max_restarts
        self.max_drops = max_drops
        self.max_duplicates = max_duplicates
        self.enable_restart = enable_restart
        self.enable_drop = enable_drop
        self.enable_duplicate = enable_duplicate
        self.spec_bugs = spec_bugs
        self.name = name

    def fault_actions(self) -> tuple:
        """Names of the fault actions this model enables — the legal
        modeled-injection vocabulary: ``repro.faults.plan_faults`` can
        only splice edges labelled with these actions."""
        names = []
        if self.enable_restart:
            names.append("Restart")
        if self.enable_drop:
            names.append("DropMessage")
        if self.enable_duplicate:
            names.append("DuplicateMessage")
        return tuple(names)


def build_xraft_spec(**kwargs) -> Specification:
    """The Xraft model: asynchronous communication, all faults."""
    kwargs.setdefault("name", "raft-xraft")
    return build_raft_spec(RaftSpecOptions(**kwargs))


def build_raftkv_spec(**kwargs) -> Specification:
    """The Raft-java model: synchronous communication (no drop/duplicate)."""
    kwargs.setdefault("name", "raft-raftkv")
    kwargs.setdefault("enable_drop", False)
    kwargs.setdefault("enable_duplicate", False)
    return build_raft_spec(RaftSpecOptions(**kwargs))


def build_raft_spec(options: Optional[RaftSpecOptions] = None) -> Specification:
    """Build the Raft specification for the given model options."""
    opts = options or RaftSpecOptions()
    servers = opts.servers
    quorum = len(servers) // 2 + 1

    spec = Specification(
        opts.name,
        constants={
            "Server": servers,
            "Follower": FOLLOWER,
            "Candidate": CANDIDATE,
            "Leader": LEADER,
            "Nil": NIL,
            "MaxTerm": opts.max_term,
            "MaxClientRequests": opts.max_client_requests,
            "MaxRestarts": opts.max_restarts,
            "Quorum": quorum,
        },
    )
    # Budget constants only exist alongside the actions they bound, so a
    # synchronous model (raftkv) carries no dead drop/duplicate knobs.
    if opts.enable_drop:
        spec.constants["MaxDrops"] = opts.max_drops
    if opts.enable_duplicate:
        spec.constants["MaxDuplicates"] = opts.max_duplicates

    # -- variables (Section 4.1.1 categories) --------------------------------
    spec.add_variable("messages", kind=VarKind.MESSAGE,
                      doc="Bag of in-flight messages (raft.tla's multiset).")
    spec.add_variable("currentTerm", per_node=True, doc="Latest term seen (persistent).")
    spec.add_variable("state", per_node=True, doc="Follower / Candidate / Leader.")
    spec.add_variable("votedFor", per_node=True,
                      doc="Candidate voted for in the current term (persistent).")
    spec.add_variable("log", per_node=True, doc="Log entries (term, value) (persistent).")
    spec.add_variable("commitIndex", per_node=True, doc="Highest committed index (volatile).")
    spec.add_variable("votesGranted", per_node=True,
                      doc="Nodes that granted this candidate's vote request.")
    spec.add_variable("votesResponded", per_node=True,
                      doc="Nodes that answered this candidate's vote request.")
    spec.add_variable("nextIndex", per_node=True,
                      doc="Leader: next log index to send to each peer.")
    spec.add_variable("matchIndex", per_node=True,
                      doc="Leader: highest replicated index per peer.")
    spec.add_variable("electionCtr", kind=VarKind.COUNTER)
    spec.add_variable("requestCtr", kind=VarKind.COUNTER)
    spec.add_variable("restartCtr", kind=VarKind.COUNTER)
    if opts.enable_drop:
        spec.add_variable("dropCtr", kind=VarKind.COUNTER)
    if opts.enable_duplicate:
        spec.add_variable("dupCtr", kind=VarKind.COUNTER)

    @spec.init
    def init(const):
        fault_ctrs = {}
        if opts.enable_drop:
            fault_ctrs["dropCtr"] = 0
        if opts.enable_duplicate:
            fault_ctrs["dupCtr"] = 0
        return {
            "messages": EMPTY_BAG,
            "currentTerm": {i: 0 for i in servers},
            "state": {i: FOLLOWER for i in servers},
            "votedFor": {i: NIL for i in servers},
            "log": {i: () for i in servers},
            "commitIndex": {i: 0 for i in servers},
            "votesGranted": {i: frozenset() for i in servers},
            "votesResponded": {i: frozenset() for i in servers},
            "nextIndex": {i: {j: 1 for j in servers if j != i} for i in servers},
            "matchIndex": {i: {j: 0 for j in servers if j != i} for i in servers},
            "electionCtr": 0,
            "requestCtr": 0,
            "restartCtr": 0,
            **fault_ctrs,
        }

    # -- helpers ----------------------------------------------------------------
    def discard(bag, m):
        return bag_remove(bag, m)

    def reply(bag, m, response):
        return bag_add(bag_remove(bag, m), response)

    def fold_update_term(st, i, mterm):
        """The fixed spec folds UpdateTerm into every handler."""
        term = st.currentTerm[i]
        role = st.state[i]
        voted = st.votedFor[i]
        if not opts.spec_bugs and mterm > term:
            return mterm, FOLLOWER, NIL
        return term, role, voted

    def exchange_outstanding(bag, i, j, response_type):
        """True when node j still owes i an answer of ``response_type``.

        Senders do not re-send while the previous answer is in flight.
        This is the state constraint TLC models impose to keep raft.tla's
        message bag bounded; without it identical responses accumulate
        without bound.
        """
        return any(
            m["mtype"] == response_type and m["msource"] == j and m["mdest"] == i
            for m in bag
        )

    def bag_full(bag):
        """Optional global bag bound (a TLC state constraint)."""
        if opts.max_messages is None:
            return False
        return sum(bag.values()) >= opts.max_messages

    # -- elections ------------------------------------------------------------------
    @spec.action(params={"i": from_constant("Server")})
    def Timeout(state, const, i):
        """Election timeout: the node becomes a candidate and votes for
        itself (implementations fold the self-vote into the timeout)."""
        if i not in opts.candidates:
            return None  # model restriction: only these nodes time out
        if state.state[i] not in (FOLLOWER, CANDIDATE):
            return None
        if state.currentTerm[i] >= const["MaxTerm"]:
            return None
        term = state.currentTerm[i] + 1
        return {
            "state": state.state.set(i, CANDIDATE),
            "currentTerm": state.currentTerm.set(i, term),
            "votedFor": state.votedFor.set(i, i),
            "votesGranted": state.votesGranted.set(i, frozenset({i})),
            "votesResponded": state.votesResponded.set(i, frozenset({i})),
            "electionCtr": state.electionCtr + 1,
        }

    @spec.action(
        params={"i": from_constant("Server"), "j": from_constant("Server")},
        kind=ActionKind.MESSAGE_SEND, message_var="messages",
    )
    def RequestVote(state, const, i, j):
        """Candidate i solicits j's vote."""
        if i == j or state.state[i] != CANDIDATE:
            return None
        if j in state.votesResponded[i]:
            return None
        m = freeze({
            "mtype": RV_REQUEST,
            "mterm": state.currentTerm[i],
            "mlastLogTerm": last_term(state.log[i]),
            "mlastLogIndex": len(state.log[i]),
            "msource": i,
            "mdest": j,
        })
        if bag_count(state.messages, m) > 0:
            return None  # already in flight (bounds the state space)
        if exchange_outstanding(state.messages, i, j, RV_RESPONSE):
            return None  # j's previous answer not yet processed
        if bag_full(state.messages):
            return None  # bag bound (state constraint)
        return {"messages": bag_add(state.messages, m)}

    @spec.action(
        params={"m": in_flight("messages")},
        kind=ActionKind.MESSAGE_RECEIVE, msg_param="m", message_var="messages",
    )
    def HandleRequestVoteRequest(state, const, m):
        """Receiver decides whether to grant its vote."""
        if m["mtype"] != RV_REQUEST:
            return None
        i, j = m["mdest"], m["msource"]
        if opts.spec_bugs and m["mterm"] > state.currentTerm[i]:
            return None  # official spec: UpdateTerm must fire first
        term, role, voted = fold_update_term(state, i, m["mterm"])
        log_ok = (
            m["mlastLogTerm"] > last_term(state.log[i])
            or (m["mlastLogTerm"] == last_term(state.log[i])
                and m["mlastLogIndex"] >= len(state.log[i]))
        )
        grant = m["mterm"] == term and log_ok and voted in (NIL, j)
        if grant:
            voted = j
        response = freeze({
            "mtype": RV_RESPONSE,
            "mterm": term,
            "mvoteGranted": grant,
            "msource": i,
            "mdest": j,
        })
        return {
            "messages": reply(state.messages, m, response),
            "currentTerm": state.currentTerm.set(i, term),
            "state": state.state.set(i, role),
            "votedFor": state.votedFor.set(i, voted),
        }

    @spec.action(
        params={"m": in_flight("messages")},
        kind=ActionKind.MESSAGE_RECEIVE, msg_param="m", message_var="messages",
    )
    def HandleRequestVoteResponse(state, const, m):
        """Candidate tallies a vote response."""
        if m["mtype"] != RV_RESPONSE:
            return None
        i, j = m["mdest"], m["msource"]
        if opts.spec_bugs and m["mterm"] > state.currentTerm[i]:
            return None  # official spec: UpdateTerm must fire first
        if not opts.spec_bugs and m["mterm"] > state.currentTerm[i]:
            # fixed spec: step down and consume
            return {
                "messages": discard(state.messages, m),
                "currentTerm": state.currentTerm.set(i, m["mterm"]),
                "state": state.state.set(i, FOLLOWER),
                "votedFor": state.votedFor.set(i, NIL),
            }
        if m["mterm"] < state.currentTerm[i]:
            return {"messages": discard(state.messages, m)}  # stale response
        updates = {"messages": discard(state.messages, m)}
        updates["votesResponded"] = state.votesResponded.set(
            i, state.votesResponded[i] | {j}
        )
        if m["mvoteGranted"]:
            updates["votesGranted"] = state.votesGranted.set(
                i, state.votesGranted[i] | {j}
            )
        return updates

    @spec.action(params={"i": from_constant("Server")})
    def BecomeLeader(state, const, i):
        """Candidate with a quorum of granted votes takes leadership."""
        if state.state[i] != CANDIDATE:
            return None
        if len(state.votesGranted[i]) < const["Quorum"]:
            return None
        return {
            "state": state.state.set(i, LEADER),
            "nextIndex": state.nextIndex.set(
                i, {j: len(state.log[i]) + 1 for j in servers if j != i}
            ),
            "matchIndex": state.matchIndex.set(
                i, {j: 0 for j in servers if j != i}
            ),
        }

    # -- log replication ---------------------------------------------------------------
    @spec.action(
        params={"i": from_constant("Server"), "j": from_constant("Server")},
        kind=ActionKind.MESSAGE_SEND, message_var="messages",
    )
    def AppendEntries(state, const, i, j):
        """Leader i replicates (at most one entry) to j, or heartbeats."""
        if i == j or state.state[i] != LEADER:
            return None
        prev_index = state.nextIndex[i][j] - 1
        prev_term = state.log[i][prev_index - 1][0] if prev_index > 0 else 0
        if state.nextIndex[i][j] <= len(state.log[i]):
            entries = (state.log[i][state.nextIndex[i][j] - 1],)
        else:
            entries = ()
        m = freeze({
            "mtype": AE_REQUEST,
            "mterm": state.currentTerm[i],
            "mprevLogIndex": prev_index,
            "mprevLogTerm": prev_term,
            "mentries": entries,
            "mcommitIndex": min(state.commitIndex[i], prev_index + len(entries)),
            "msource": i,
            "mdest": j,
        })
        if bag_count(state.messages, m) > 0:
            return None
        if exchange_outstanding(state.messages, i, j, AE_RESPONSE):
            return None  # j's previous ack not yet processed
        if bag_full(state.messages):
            return None  # bag bound (state constraint)
        return {"messages": bag_add(state.messages, m)}

    @spec.action(
        params={"m": in_flight("messages")},
        kind=ActionKind.MESSAGE_RECEIVE, msg_param="m", message_var="messages",
    )
    def HandleAppendEntriesRequest(state, const, m):
        """Receiver checks log consistency and appends entries.

        The official spec (``spec_bugs=True``) keeps the three-branch
        structure of Figure 11, where the return-to-follower branch
        neither replies nor consumes the message.
        """
        if m["mtype"] != AE_REQUEST:
            return None
        i, j = m["mdest"], m["msource"]
        if opts.spec_bugs and m["mterm"] > state.currentTerm[i]:
            return None  # official spec: UpdateTerm must fire first
        term, role, voted = fold_update_term(state, i, m["mterm"])
        log = state.log[i]
        log_ok = (
            m["mprevLogIndex"] == 0
            or (m["mprevLogIndex"] <= len(log)
                and log[m["mprevLogIndex"] - 1][0] == m["mprevLogTerm"])
        )

        def reject():
            response = freeze({
                "mtype": AE_RESPONSE, "mterm": term, "msuccess": False,
                "mmatchIndex": 0, "msource": i, "mdest": j,
            })
            return {
                "messages": reply(state.messages, m, response),
                "currentTerm": state.currentTerm.set(i, term),
                "state": state.state.set(i, role),
                "votedFor": state.votedFor.set(i, voted),
            }

        if m["mterm"] < term:
            return reject()
        # m.mterm == term from here on
        if role == CANDIDATE:
            if opts.spec_bugs:
                # Figure 11 second branch: step down WITHOUT replying and
                # WITHOUT consuming m — the message is handled again later.
                return {"state": state.state.set(i, FOLLOWER)}
            role = FOLLOWER  # fixed spec: fold step-down into the handling
        if not log_ok:
            return reject()
        new_log = log[: m["mprevLogIndex"]] + m["mentries"]
        match_index = m["mprevLogIndex"] + len(m["mentries"])
        response = freeze({
            "mtype": AE_RESPONSE, "mterm": term, "msuccess": True,
            "mmatchIndex": match_index, "msource": i, "mdest": j,
        })
        return {
            "messages": reply(state.messages, m, response),
            "currentTerm": state.currentTerm.set(i, term),
            "state": state.state.set(i, role),
            "votedFor": state.votedFor.set(i, voted),
            "log": state.log.set(i, new_log),
            "commitIndex": state.commitIndex.set(
                i, min(m["mcommitIndex"], len(new_log))
            ),
        }

    @spec.action(
        params={"m": in_flight("messages")},
        kind=ActionKind.MESSAGE_RECEIVE, msg_param="m", message_var="messages",
    )
    def HandleAppendEntriesResponse(state, const, m):
        """Leader advances/backs off a peer's nextIndex."""
        if m["mtype"] != AE_RESPONSE:
            return None
        i, j = m["mdest"], m["msource"]
        if opts.spec_bugs and m["mterm"] > state.currentTerm[i]:
            return None  # official spec: UpdateTerm must fire first
        if not opts.spec_bugs and m["mterm"] > state.currentTerm[i]:
            return {
                "messages": discard(state.messages, m),
                "currentTerm": state.currentTerm.set(i, m["mterm"]),
                "state": state.state.set(i, FOLLOWER),
                "votedFor": state.votedFor.set(i, NIL),
            }
        if m["mterm"] < state.currentTerm[i] or state.state[i] != LEADER:
            return {"messages": discard(state.messages, m)}
        if m["msuccess"]:
            next_i = state.nextIndex[i].set(j, m["mmatchIndex"] + 1)
            match_i = state.matchIndex[i].set(j, m["mmatchIndex"])
        else:
            next_i = state.nextIndex[i].set(
                j, max(state.nextIndex[i][j] - 1, 1)
            )
            match_i = state.matchIndex[i]
        return {
            "messages": discard(state.messages, m),
            "nextIndex": state.nextIndex.set(i, next_i),
            "matchIndex": state.matchIndex.set(i, match_i),
        }

    @spec.action(params={"i": from_constant("Server")},
                 kind=ActionKind.USER_REQUEST)
    def ClientRequest(state, const, i):
        """A client writes a value through the leader.

        Concrete data is not modelled: the action counter's value serves
        as the datum (Section 4.1.2's user-request convention).
        """
        if state.state[i] != LEADER:
            return None
        if state.requestCtr >= const["MaxClientRequests"]:
            return None
        value = state.requestCtr + 1
        entry = (state.currentTerm[i], value)
        return {
            "log": state.log.set(i, state.log[i] + (entry,)),
            "requestCtr": state.requestCtr + 1,
        }

    @spec.action(params={"i": from_constant("Server")})
    def AdvanceCommitIndex(state, const, i):
        """Leader commits the highest quorum-replicated index of its term."""
        if state.state[i] != LEADER:
            return None
        log = state.log[i]
        best = None
        for k in range(len(log), state.commitIndex[i], -1):
            agree = 1 + sum(
                1 for j in servers
                if j != i and state.matchIndex[i][j] >= k
            )
            if agree >= const["Quorum"] and log[k - 1][0] == state.currentTerm[i]:
                best = k
                break
        if best is None:
            return None
        return {"commitIndex": state.commitIndex.set(i, best)}

    # -- the official spec bug #1: standalone UpdateTerm -----------------------------
    if opts.spec_bugs:

        @spec.action(
            params={"m": in_flight("messages")},
            kind=ActionKind.MESSAGE_RECEIVE, msg_param="m", message_var="messages",
        )
        def UpdateTerm(state, const, m):
            """Figure 10: UpdateTerm interleaves with the handlers as an
            independent action and does NOT consume its message."""
            i = m["mdest"]
            if m["mterm"] <= state.currentTerm[i]:
                return None
            return {
                "currentTerm": state.currentTerm.set(i, m["mterm"]),
                "state": state.state.set(i, FOLLOWER),
                "votedFor": state.votedFor.set(i, NIL),
            }

    # -- external faults ------------------------------------------------------------------
    if opts.enable_restart:

        @spec.action(params={"i": from_constant("Server")}, kind=ActionKind.FAULT)
        def Restart(state, const, i):
            """Node crash + relaunch: volatile state resets; currentTerm,
            votedFor and the log are persistent and survive."""
            if state.restartCtr >= const["MaxRestarts"]:
                return None
            return {
                "state": state.state.set(i, FOLLOWER),
                "votesGranted": state.votesGranted.set(i, frozenset()),
                "votesResponded": state.votesResponded.set(i, frozenset()),
                "nextIndex": state.nextIndex.set(
                    i, {j: 1 for j in servers if j != i}
                ),
                "matchIndex": state.matchIndex.set(
                    i, {j: 0 for j in servers if j != i}
                ),
                "commitIndex": state.commitIndex.set(i, 0),
                "restartCtr": state.restartCtr + 1,
            }

    if opts.enable_drop:

        @spec.action(
            params={"m": in_flight("messages")},
            kind=ActionKind.FAULT, msg_param="m", message_var="messages",
        )
        def DropMessage(state, const, m):
            """The network loses one copy of an in-flight message."""
            if state.dropCtr >= const["MaxDrops"]:
                return None
            return {
                "messages": bag_remove(state.messages, m),
                "dropCtr": state.dropCtr + 1,
            }

    if opts.enable_duplicate:

        @spec.action(
            params={"m": in_flight("messages")},
            kind=ActionKind.FAULT, msg_param="m", message_var="messages",
        )
        def DuplicateMessage(state, const, m):
            """The network duplicates an in-flight message."""
            if state.dupCtr >= const["MaxDuplicates"]:
                return None
            if bag_count(state.messages, m) != 1:
                return None  # bound the bag
            return {
                "messages": bag_add(state.messages, m),
                "dupCtr": state.dupCtr + 1,
            }

    # -- properties -----------------------------------------------------------------------
    @spec.invariant()
    def ElectionSafety(state, const):
        """At most one leader per term."""
        leaders = [i for i in servers if state.state[i] == LEADER]
        terms = [state.currentTerm[i] for i in leaders]
        return len(terms) == len(set(terms))

    @spec.invariant()
    def CommittedWithinLog(state, const):
        """commitIndex never points past the log."""
        return all(state.commitIndex[i] <= len(state.log[i]) for i in servers)

    return spec
