"""Mocket — Model Checking Guided Testing for Distributed Systems.

A from-scratch Python reproduction of the EuroSys 2023 paper by Wang,
Dou, Gao, Wu, Wei and Huang.  The package contains:

* :mod:`repro.tlaplus` — a TLA+-style specification DSL plus an
  explicit-state model checker (the TLC substitute),
* :mod:`repro.core` — Mocket itself: spec<->implementation mapping,
  state-graph test-case generation (edge coverage + partial order
  reduction) and the controlled-testing testbed,
* :mod:`repro.runtime` — an in-process pseudo-distributed cluster,
* :mod:`repro.specs` — Raft, ZAB and example specifications,
* :mod:`repro.systems` — the three systems under test (pyxraft, raftkv,
  minizk) with the paper's bugs seeded behind flags.

Quickstart::

    from repro.tlaplus import check
    from repro.specs import build_example_spec

    result = check(build_example_spec(data=(1, 2)))
    print(result.summary())            # 13 states, 17 edges
"""

__version__ = "1.0.0"

from .tlaplus import (
    ActionKind,
    ActionLabel,
    FrozenDict,
    Specification,
    State,
    StateGraph,
    VarKind,
    check,
)

__all__ = [
    "ActionKind",
    "ActionLabel",
    "FrozenDict",
    "Specification",
    "State",
    "StateGraph",
    "VarKind",
    "check",
    "__version__",
]
