"""Clock abstraction: the seam between wall time and simulated time.

Every runtime component that waits — fault-runner backoff, convergence
polling, retry pauses — takes a :class:`Clock` instead of calling
``time.sleep`` directly.  The default :data:`WALL_CLOCK` preserves the
threaded runtime's behaviour exactly; a
:class:`repro.runtime.sim.VirtualClock` substitutes simulated time so
the same code runs under the deterministic simulation harness without
ever touching the wall clock (see ``docs/RUNTIME.md``).
"""

from __future__ import annotations

import time

__all__ = ["Clock", "WallClock", "WALL_CLOCK"]


class Clock:
    """Minimal clock interface: a monotonic ``now`` and a ``sleep``.

    ``now()`` returns seconds on a monotonic axis whose origin is
    unspecified (only differences are meaningful, like
    ``time.monotonic``).  ``sleep(dt)`` blocks the caller for ``dt``
    seconds *of this clock's time* — wall seconds for
    :class:`WallClock`, simulated seconds (instantaneous in wall time)
    for a virtual clock.
    """

    def now(self) -> float:  # pragma: no cover - interface
        raise NotImplementedError

    def sleep(self, dt: float) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class WallClock(Clock):
    """Real time: ``time.monotonic`` + ``time.sleep``."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, dt: float) -> None:
        if dt > 0:
            time.sleep(dt)

    def __repr__(self) -> str:
        return "WallClock()"


#: Shared default instance; stateless, safe to share across clusters.
WALL_CLOCK = WallClock()
