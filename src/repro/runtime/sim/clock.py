"""Virtual time for the deterministic simulation harness.

A :class:`VirtualClock` is a number, not a thread: ``now()`` reads it,
``advance()`` moves it forward, and ``sleep(dt)`` *is* ``advance(dt)``
— a virtual sleep costs zero wall time, which is how a soak run
compresses hours of simulated time into seconds of CPU.  Time only
moves when the :class:`~repro.runtime.sim.scheduler.SimScheduler`
dispatches the next event, so two runs that dispatch the same events
read the same timestamps, bit for bit.

This module must never import ``time`` or read the wall clock in any
form; ``tests/soak/test_no_wallclock_guard.py`` enforces that for the
whole simulated path.
"""

from __future__ import annotations

from ..clock import Clock

__all__ = ["VirtualClock"]


class VirtualClock(Clock):
    """Simulated monotonic time, starting at 0.0."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        """Move time forward by ``dt`` simulated seconds."""
        if dt < 0:
            raise ValueError(f"cannot advance a monotonic clock by {dt}")
        self._now += dt
        return self._now

    def advance_to(self, t: float) -> float:
        """Move time forward to the absolute instant ``t``."""
        if t < self._now:
            raise ValueError(
                f"cannot rewind a monotonic clock ({t} < {self._now})")
        self._now = float(t)
        return self._now

    def sleep(self, dt: float) -> None:
        """A virtual sleep: advances simulated time, costs no wall time."""
        if dt > 0:
            self.advance(dt)

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now:.6f})"
