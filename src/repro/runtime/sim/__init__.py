"""Deterministic simulation harness (the DST/FoundationDB playbook).

One seeded event loop — :class:`SimScheduler` over a
:class:`VirtualClock` — owns every source of nondeterminism in a
simulated cluster: timers, message delivery order and latency, and
fault timing.  Given the same seed and workload, a run is bit-identical
on any machine, any ``PYTHONHASHSEED``, any ``--workers`` count, and a
failure replays from ``(seed, schedule)`` alone.  See
``docs/RUNTIME.md`` for the semantics and the soak workload built on
top (:mod:`repro.soak`, ``mocket soak``).

Nothing in this package (or in :mod:`repro.soak`) may read the wall
clock; ``tests/soak/test_no_wallclock_guard.py`` greps the simulated
path to keep it that way.
"""

from .clock import VirtualClock
from .cluster import SimCluster
from .network import SimNetwork
from .scheduler import SimEvent, SimScheduler

__all__ = [
    "SimCluster",
    "SimEvent",
    "SimNetwork",
    "SimScheduler",
    "VirtualClock",
]
