"""Simulated network fabric: delivery as seeded virtual-time events.

:class:`SimNetwork` subclasses the threaded
:class:`~repro.runtime.network.Network` and keeps its entire fault
vocabulary — partitions, one-way cuts, delay budgets, reorder,
corruption — by reusing ``_route``.  What changes is *when* a message
arrives: instead of an immediate mailbox put, ``send`` draws a latency
from a seeded stream and schedules a delivery event on the
:class:`~repro.runtime.sim.scheduler.SimScheduler`.  A simulated node
registers a **handler** (``attach_handler``) and is called back with
each envelope at its delivery instant; there is no inbox-polling
thread.  Mailbox semantics survive crashes exactly as on the threaded
path: envelopes delivered while a node is down are retained in its
mailbox and drained (in order) when the next incarnation attaches.

Held messages released by :meth:`heal` are re-scheduled with fresh
seeded latencies from the heal instant, preserving the base-class
contract that a partition delays delivery without losing messages.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Optional

from ..network import Envelope, Network
from .scheduler import SimScheduler

__all__ = ["SimNetwork"]

DeliveryHandler = Callable[[Envelope], None]


class SimNetwork(Network):
    """The cluster fabric, rewired onto the simulation event loop."""

    def __init__(self, scheduler: SimScheduler, seed: str = "0",
                 min_latency: float = 0.001, max_latency: float = 0.010):
        super().__init__()
        if min_latency < 0 or max_latency < min_latency:
            raise ValueError(
                f"bad latency range [{min_latency}, {max_latency}]")
        self.scheduler = scheduler
        self.min_latency = min_latency
        self.max_latency = max_latency
        # String-seeded: independent of PYTHONHASHSEED.
        self._latency_rng = random.Random(f"{seed}:latency")
        self._handlers: Dict[str, DeliveryHandler] = {}
        self.delivered_count = 0

    # -- latency -------------------------------------------------------------
    def _draw_latency(self) -> float:
        if self.max_latency == self.min_latency:
            return self.min_latency
        return self._latency_rng.uniform(self.min_latency, self.max_latency)

    # -- delivery ------------------------------------------------------------
    def send(self, src: str, dst: str, payload: Any) -> bool:
        """Route under the active fault set, then schedule delivery at
        ``now + latency`` instead of putting into the mailbox directly."""
        envelope = Envelope(src, dst, payload)
        with self._lock:
            disposition, _inbox, up = self._route(envelope)
        if disposition == "deliver":
            self.scheduler.schedule(self._draw_latency(), self._deliver, envelope)
            return up
        return disposition == "held"

    def _deliver(self, envelope: Envelope) -> None:
        """The delivery event: hand to the live handler, or retain in
        the mailbox for the destination's next incarnation."""
        with self._lock:
            handler = self._handlers.get(envelope.dst)
            if handler is None:
                inbox = self._inboxes.get(envelope.dst)
                if inbox is None:
                    self.dead_letters.append(envelope)
                    return
                inbox.put(envelope)
                return
        self.delivered_count += 1
        handler(envelope)

    # -- handlers (the sim replacement for inbox-loop threads) ----------------
    def attach_handler(self, node_id: str, handler: DeliveryHandler) -> int:
        """Register ``node_id``'s delivery callback and drain any
        backlog its mailbox retained while it was down (scheduled as
        immediate events, preserving arrival order).  Returns the number
        of backlog envelopes drained."""
        self.register(node_id)
        backlog = []
        with self._lock:
            self._handlers[node_id] = handler
            inbox = self._inboxes.get(node_id)
            if inbox is not None:
                while not inbox.empty():
                    backlog.append(inbox.get_nowait())
        for envelope in backlog:
            self.scheduler.call_soon(self._deliver, envelope)
        return len(backlog)

    def detach_handler(self, node_id: str) -> None:
        """Drop the callback (crash): deliveries from now on are
        retained in the mailbox, exactly like the threaded path."""
        with self._lock:
            self._handlers.pop(node_id, None)
        self.unregister(node_id)

    # -- nemesis -------------------------------------------------------------
    def heal(self) -> int:
        """Remove every network fault and re-schedule held messages as
        fresh delivery events (send order, fresh seeded latencies)."""
        with self._lock:
            self._partition = {}
            self._cuts = {}
            self._delays = {}
            held, self._held = self._held, []
        for envelope in held:
            self.scheduler.schedule(self._draw_latency(), self._deliver, envelope)
        return len(held)

    def __repr__(self) -> str:
        with self._lock:
            handlers = len(self._handlers)
        return (f"SimNetwork({handlers} handlers, sent={self.sent_count}, "
                f"delivered={self.delivered_count}, t={self.scheduler.now():.3f})")
