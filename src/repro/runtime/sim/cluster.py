"""A pseudo-distributed cluster that lives entirely on the event loop.

:class:`SimCluster` is a :class:`~repro.runtime.cluster.Cluster` whose
network is a :class:`~repro.runtime.sim.network.SimNetwork` and whose
``clock``/``scheduler`` attributes point at one shared seeded
:class:`~repro.runtime.sim.scheduler.SimScheduler`.  Nodes built for
the simulated path (e.g. :mod:`repro.systems.raftkv.sim`) spawn no
threads: timers are scheduler events, message handling happens inside
delivery callbacks, and the whole cluster advances only when the
owner pumps the scheduler.  Fault scripts (``crash_node``,
``restart_node``, ``partition``, ``heal`` …) are inherited unchanged —
they manipulate the same network state, so a fault schedule reads the
same on both paths.
"""

from __future__ import annotations

from typing import Sequence

from ..cluster import Cluster, NodeFactory
from .network import SimNetwork
from .scheduler import SimScheduler

__all__ = ["SimCluster"]


class SimCluster(Cluster):
    """Single-threaded deterministic cluster over a seeded scheduler."""

    def __init__(self, node_ids: Sequence[str], factory: NodeFactory,
                 scheduler: SimScheduler, seed: str = "0",
                 min_latency: float = 0.001, max_latency: float = 0.010):
        super().__init__(node_ids, factory)
        self.scheduler = scheduler
        self.clock = scheduler.clock
        self.network = SimNetwork(scheduler, seed=seed,
                                  min_latency=min_latency,
                                  max_latency=max_latency)

    def run_until(self, deadline: float, max_events=None) -> int:
        """Pump the event loop to ``deadline`` simulated seconds."""
        return self.scheduler.run_until(deadline, max_events=max_events)

    def run_for(self, duration: float, max_events=None) -> int:
        return self.scheduler.run_for(duration, max_events=max_events)

    @property
    def now(self) -> float:
        return self.clock.now()

    def __repr__(self) -> str:
        up = sorted(self.nodes)
        return (f"SimCluster({len(self.node_ids)} nodes, up={up}, "
                f"t={self.clock.now():.3f})")
