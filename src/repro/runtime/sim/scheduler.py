"""The single seeded event loop that owns all simulated nondeterminism.

Everything that *happens* in a simulated cluster — a timer firing, a
message arriving, a fault being injected or healed — is a
:class:`SimEvent` on one priority queue, dispatched strictly in order
by the :class:`SimScheduler`.  The ordering contract (the heart of the
``(seed, schedule)`` replay guarantee, see ``docs/RUNTIME.md``) is:

1. **Time first** — events fire in ascending simulated timestamp; the
   clock jumps directly to each event's instant (no busy waiting).
2. **FIFO at equal timestamps** — events scheduled for the same
   instant dispatch in the order they were scheduled (a monotonically
   increasing sequence number breaks the tie).
3. **Seeded tie-break on request** — an event scheduled with
   ``jitter=True`` draws a *lane* from the scheduler's seeded RNG and
   sorts by ``(time, lane, seq)``; callers use this to randomize
   same-instant ordering (e.g. which election timer wins) while
   keeping it a pure function of the seed.

There are no threads and no wall-clock reads anywhere in this module:
given the same seed and the same sequence of ``schedule()`` calls, two
runs dispatch the identical event sequence at identical virtual times
on any machine, any ``PYTHONHASHSEED``, any worker count.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Any, Callable, List, Optional

from .clock import VirtualClock

__all__ = ["SimEvent", "SimScheduler"]


class SimEvent:
    """One scheduled callback; cancellable, ordered by (time, lane, seq)."""

    __slots__ = ("time", "lane", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, lane: float, seq: int,
                 fn: Callable[..., Any], args: tuple):
        self.time = time
        self.lane = lane
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Unschedule: the event stays in the heap but never dispatches."""
        self.cancelled = True
        self.fn = None
        self.args = ()

    def __lt__(self, other: "SimEvent") -> bool:
        return (self.time, self.lane, self.seq) < (other.time, other.lane, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"SimEvent(t={self.time:.6f}, seq={self.seq}, {state})"


class SimScheduler:
    """Seeded deterministic event loop over a :class:`VirtualClock`."""

    def __init__(self, seed: str = "0", clock: Optional[VirtualClock] = None):
        self.seed = str(seed)
        self.clock = clock if clock is not None else VirtualClock()
        self._heap: List[SimEvent] = []
        self._seq = itertools.count()
        # The tie-break lane stream; string-seeded so it is independent
        # of PYTHONHASHSEED (random.Random hashes the bytes, not the id).
        self._rng = random.Random(f"{self.seed}:ties")
        self.dispatched = 0

    # -- scheduling ----------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any,
                 jitter: bool = False) -> SimEvent:
        """Run ``fn(*args)`` after ``delay`` simulated seconds.

        Returns a cancellable handle.  ``jitter=True`` draws a seeded
        lane so same-instant events dispatch in seeded random order
        instead of FIFO.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule {delay}s into the past")
        lane = self._rng.random() if jitter else 0.0
        event = SimEvent(self.clock.now() + delay, lane, next(self._seq), fn, args)
        heapq.heappush(self._heap, event)
        return event

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> SimEvent:
        """Schedule ``fn`` at the current instant (after already-pending
        events at this instant, by the FIFO rule)."""
        return self.schedule(0.0, fn, *args)

    # -- dispatch ------------------------------------------------------------
    def _pop_live(self) -> Optional[SimEvent]:
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def run_next(self) -> bool:
        """Dispatch the single next event; False when the queue is empty."""
        event = self._pop_live()
        if event is None:
            return False
        self.clock.advance_to(event.time)
        self.dispatched += 1
        fn, args = event.fn, event.args
        event.fn, event.args = None, ()  # break cycles for gc
        fn(*args)
        return True

    def run_until(self, deadline: float, max_events: Optional[int] = None) -> int:
        """Dispatch every event with ``time <= deadline``, then advance
        the clock to ``deadline``.  Returns the number dispatched."""
        count = 0
        while self._heap and (max_events is None or count < max_events):
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if head.time > deadline:
                break
            self.run_next()
            count += 1
        if max_events is None or count < max_events:
            if deadline > self.clock.now():
                self.clock.advance_to(deadline)
        return count

    def run(self, max_events: Optional[int] = None) -> int:
        """Dispatch until the queue drains (or ``max_events``)."""
        count = 0
        while (max_events is None or count < max_events) and self.run_next():
            count += 1
        return count

    def run_for(self, duration: float, max_events: Optional[int] = None) -> int:
        """Dispatch events for ``duration`` simulated seconds from now."""
        return self.run_until(self.clock.now() + duration, max_events=max_events)

    # -- introspection -------------------------------------------------------
    def now(self) -> float:
        return self.clock.now()

    @property
    def pending(self) -> int:
        """Live (non-cancelled) events still queued."""
        return sum(1 for e in self._heap if not e.cancelled)

    def next_time(self) -> Optional[float]:
        """Timestamp of the next live event, or None when drained."""
        for event in sorted(self._heap):
            if not event.cancelled:
                return event.time
        return None

    def __repr__(self) -> str:
        return (f"SimScheduler(seed={self.seed!r}, now={self.clock.now():.6f}, "
                f"pending={self.pending}, dispatched={self.dispatched})")
