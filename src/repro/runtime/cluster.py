"""The pseudo-distributed cluster.

The paper deploys each system as processes on one host and drives
crash/restart faults with shell scripts.  :class:`Cluster` is the same
thing in-process: a node factory, a shared network, shared persistent
storage, and the two "scripts" — :meth:`crash_node` (kill the process)
and :meth:`restart_node` (kill + relaunch with the same configuration
and the same durable storage).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional, Sequence

from .clock import Clock, WALL_CLOCK
from .network import Network
from .node import Node
from .storage import StorageBackend

__all__ = ["Cluster"]

NodeFactory = Callable[[str, "Cluster"], Node]


class Cluster:
    """A set of nodes plus their network and storage."""

    def __init__(self, node_ids: Sequence[str], factory: NodeFactory):
        if len(set(node_ids)) != len(node_ids):
            raise ValueError("node ids must be unique")
        self.node_ids: List[str] = list(node_ids)
        self.factory = factory
        self.network = Network()
        self.storage = StorageBackend()
        # The cluster's time source.  The threaded path runs on real
        # time; SimCluster swaps in a VirtualClock plus a scheduler so
        # every delay and retry becomes a deterministic event.
        self.clock: Clock = WALL_CLOCK
        self.scheduler: Optional[Any] = None
        self.nodes: Dict[str, Node] = {}
        self._lock = threading.Lock()
        self.deployed = False
        # Mocket attachment point; None when the system runs standalone.
        self.mocket_runtime: Optional[Any] = None
        self.restart_counts: Dict[str, int] = {node_id: 0 for node_id in node_ids}

    # -- deployment ----------------------------------------------------------
    def deploy(self) -> None:
        """Create and start every node (a fresh cluster per test case)."""
        if self.deployed:
            raise RuntimeError("cluster already deployed")
        self.deployed = True
        for node_id in self.node_ids:
            self._launch(node_id)

    def shutdown(self) -> None:
        """Stop every node and tear the cluster down."""
        for node in list(self.nodes.values()):
            self.network.unregister(node.node_id)
            node.stop()
        self.nodes.clear()
        self.deployed = False

    def _launch(self, node_id: str) -> Node:
        node = self.factory(node_id, self)
        self.nodes[node_id] = node
        node.start()
        return node

    # -- queries ---------------------------------------------------------------
    def node(self, node_id: str) -> Node:
        """The live node object; raises KeyError if the node is down."""
        node = self.nodes.get(node_id)
        if node is None:
            raise KeyError(f"node {node_id!r} is not running")
        return node

    def is_up(self, node_id: str) -> bool:
        return node_id in self.nodes

    def live_nodes(self) -> List[Node]:
        return [self.nodes[node_id] for node_id in self.node_ids if node_id in self.nodes]

    @property
    def quorum_size(self) -> int:
        return len(self.node_ids) // 2 + 1

    # -- fault scripts -------------------------------------------------------------
    def crash_node(self, node_id: str) -> None:
        """The node-crash script: kill the node's process."""
        with self._lock:
            node = self.nodes.pop(node_id, None)
        if node is None:
            raise KeyError(f"cannot crash {node_id!r}: not running")
        self.network.unregister(node_id)
        node.stop()

    def restart_node(self, node_id: str) -> Node:
        """The node-restart script: kill then relaunch with the same
        configuration; the persistent store is preserved."""
        if node_id in self.nodes:
            self.crash_node(node_id)
        self.restart_counts[node_id] += 1
        return self._launch(node_id)

    def partition(self, groups: Sequence[Sequence[str]]) -> None:
        """Install a symmetric network partition (see ``Network.partition``)."""
        self.network.partition(groups)

    def heal(self) -> int:
        """Heal any partition, releasing held messages; returns the count."""
        return self.network.heal()

    def isolate(self, node_id: str) -> None:
        """Partition ``node_id`` away from every other node."""
        rest = [n for n in self.node_ids if n != node_id]
        self.partition([[node_id], rest])

    def partition_group(self, group: Sequence[str]) -> None:
        """Partition the nodes in ``group`` away from the rest of the
        cluster (a *partial* partition: the subset is arbitrary, not
        necessarily a single node)."""
        members = list(group)
        rest = [n for n in self.node_ids if n not in set(members)]
        self.partition([members, rest])

    def cut_link(self, src: str, dst: str) -> None:
        """Asymmetric one-way cut (see ``Network.cut_link``)."""
        self.network.cut_link(src, dst)

    def delay_link(self, src: str, dst: str, count: int) -> None:
        """Hold the next ``count`` messages on one directed link
        (see ``Network.delay_link``)."""
        self.network.delay_link(src, dst, count)

    # -- context manager -------------------------------------------------------------
    def __enter__(self) -> "Cluster":
        self.deploy()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        up = sorted(self.nodes)
        return f"Cluster({len(self.node_ids)} nodes, up={up})"
