"""Per-node persistent storage that survives restarts.

Real deployments keep Raft's ``currentTerm``/``votedFor``/``log`` (and
ZooKeeper's epochs and history) on disk so they survive a process
restart.  The pseudo-distributed cluster models the disk as an
in-memory key/value store owned by the *cluster*, not the node object:
a restarted node gets a fresh object but the same store.

Fault-injection hooks: a store can be wiped (``clear``) to model disk
loss, and every write is counted so tests can assert on persistence
behaviour.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterator, Optional

__all__ = ["PersistentStore", "StorageBackend"]

_MISSING = object()


class PersistentStore:
    """The durable state of one node (a tiny transactional KV store)."""

    def __init__(self, node_id: str):
        self.node_id = node_id
        self._data: Dict[str, Any] = {}
        self._lock = threading.RLock()
        self.write_count = 0

    def get(self, key: str, default: Any = None) -> Any:
        with self._lock:
            return self._data.get(key, default)

    def set(self, key: str, value: Any) -> None:
        with self._lock:
            self._data[key] = value
            self.write_count += 1

    def delete(self, key: str) -> None:
        with self._lock:
            self._data.pop(key, None)
            self.write_count += 1

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._data

    def keys(self) -> Iterator[str]:
        with self._lock:
            return iter(sorted(self._data))

    def snapshot(self) -> Dict[str, Any]:
        """A shallow copy of the stored data (for assertions and dumps)."""
        with self._lock:
            return dict(self._data)

    def clear(self) -> None:
        """Wipe the store (models disk loss, not a normal restart)."""
        with self._lock:
            self._data.clear()
            self.write_count += 1

    def __repr__(self) -> str:
        return f"PersistentStore({self.node_id!r}, {len(self._data)} keys)"


class StorageBackend:
    """All nodes' persistent stores, owned by the cluster."""

    def __init__(self):
        self._stores: Dict[str, PersistentStore] = {}
        self._lock = threading.Lock()

    def store_for(self, node_id: str) -> PersistentStore:
        """The store for ``node_id``, created on first use."""
        with self._lock:
            store = self._stores.get(node_id)
            if store is None:
                store = PersistentStore(node_id)
                self._stores[node_id] = store
            return store

    def wipe(self, node_id: str) -> None:
        with self._lock:
            store = self._stores.get(node_id)
        if store is not None:
            store.clear()

    def node_ids(self):
        with self._lock:
            return sorted(self._stores)

    def __repr__(self) -> str:
        return f"StorageBackend({len(self._stores)} stores)"
