"""Node base class: lifecycle, threads and Mocket attachment points.

A :class:`Node` is one process of the pseudo-distributed cluster.  It
owns worker threads (e.g. an inbox loop), a persistent store, and the
per-node shadow state Mocket's instrumentation writes into.  Crashing a
node sets its stop event; any instrumentation hook blocked on the
Mocket testbed observes the event and unwinds via
:class:`NodeCrashed`, exactly like killing a JVM tears down its threads.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional

from .storage import PersistentStore

__all__ = ["Node", "NodeCrashed"]


class NodeCrashed(Exception):
    """Raised inside a node thread when the node is killed mid-action."""


class Node:
    """Base class for all systems under test.

    Subclasses implement :meth:`on_start` (spawn loops, initialize
    state) and may implement :meth:`on_stop`.  ``mocket_shadow`` holds
    the shadow copies of annotated variables — the analogue of the
    ``Mocket$x`` fields the paper's instrumentation adds.
    """

    def __init__(self, node_id: str, cluster: "Any"):
        self.node_id = node_id
        self.cluster = cluster
        self.network = cluster.network
        # Time source inherited from the cluster: wall clock on the
        # threaded path, a VirtualClock under the simulation harness.
        # Subclasses must route every delay through it (or through
        # `sim`, the cluster's event-loop scheduler, None when threaded)
        # so the simulated path never reads the wall clock.
        self.clock = getattr(cluster, "clock", None)
        if self.clock is None:
            from .clock import WALL_CLOCK
            self.clock = WALL_CLOCK
        self.sim = getattr(cluster, "scheduler", None)
        self.storage: PersistentStore = cluster.storage.store_for(node_id)
        self.peers: List[str] = [n for n in cluster.node_ids if n != node_id]
        self._threads: List[threading.Thread] = []
        self._stop_event = threading.Event()
        self._lock = threading.RLock()
        self.started = False
        # Mocket attachment points (populated by the instrumentation).
        self.mocket_shadow: Dict[str, Any] = {}

    # -- lifecycle --------------------------------------------------------------
    def start(self) -> None:
        if self.started:
            raise RuntimeError(f"node {self.node_id} already started")
        self.started = True
        self._stop_event.clear()
        self.on_start()

    def stop(self) -> None:
        """Stop the node and join its threads (crash or teardown)."""
        if not self.started:
            return
        self.started = False
        self._stop_event.set()
        self.on_stop()
        runtime = getattr(self.cluster, "mocket_runtime", None)
        if runtime is not None:
            runtime.node_stopping(self)
        for thread in self._threads:
            if thread is not threading.current_thread():
                thread.join(timeout=5.0)
        self._threads.clear()

    def on_start(self) -> None:  # pragma: no cover - overridden
        """Subclass hook: spawn loops, initialize protocol state."""

    def on_stop(self) -> None:
        """Subclass hook: release resources before threads are joined."""

    # -- threads -----------------------------------------------------------------
    def spawn(self, target: Callable[[], None], name: Optional[str] = None) -> threading.Thread:
        """Start a daemon worker thread owned by this node.

        The target is wrapped so that :class:`NodeCrashed` (raised when
        the node dies while the thread is blocked in a hook) terminates
        the thread silently.
        """

        def runner() -> None:
            try:
                target()
            except NodeCrashed:
                pass

        thread = threading.Thread(
            target=runner, name=name or f"{self.node_id}-worker", daemon=True
        )
        if self._stop_event.is_set():
            return thread  # node is dying: never start new work
        thread.start()
        self._threads.append(thread)
        return thread

    @property
    def stopping(self) -> bool:
        return self._stop_event.is_set()

    @property
    def mocket_controlled(self) -> bool:
        """True while a Mocket testbed is driving this cluster.

        Systems use this to switch off self-driven scheduling (timers,
        follow-up tasks) whose spec actions the testbed triggers itself.
        """
        runtime = getattr(self.cluster, "mocket_runtime", None)
        return runtime is not None and runtime.active

    def check_alive(self) -> None:
        """Raise :class:`NodeCrashed` if the node has been stopped."""
        if self._stop_event.is_set():
            raise NodeCrashed(self.node_id)

    def wait_or_crash(self, event: threading.Event, poll: float = 0.01,
                      timeout: Optional[float] = None) -> bool:
        """Block on ``event``, aborting with :class:`NodeCrashed` on stop.

        Returns True when the event fired, False on timeout.
        """
        waited = 0.0
        while True:
            if event.wait(poll):
                return True
            self.check_alive()
            waited += poll
            if timeout is not None and waited >= timeout:
                return False

    # -- convenience ---------------------------------------------------------------
    @property
    def lock(self) -> threading.RLock:
        return self._lock

    @property
    def incarnation(self) -> int:
        """How many times this node id has been restarted (0 = first
        launch).  Fault-injection events carry this so a report can tell
        which incarnation of a node an injection hit."""
        return self.cluster.restart_counts.get(self.node_id, 0)

    def __repr__(self) -> str:
        status = "up" if self.started else "down"
        return f"{type(self).__name__}({self.node_id}, {status})"
