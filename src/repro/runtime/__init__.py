"""Pseudo-distributed cluster substrate: nodes, network, storage, faults."""

from .cluster import Cluster
from .network import Envelope, Network, RpcError
from .node import Node, NodeCrashed
from .storage import PersistentStore, StorageBackend

__all__ = [
    "Cluster",
    "Envelope",
    "Network",
    "Node",
    "NodeCrashed",
    "PersistentStore",
    "RpcError",
    "StorageBackend",
]
