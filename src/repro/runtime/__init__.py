"""Pseudo-distributed cluster substrate: nodes, network, storage, faults.

Two execution modes share this package: the original **threaded** path
(real threads, real time — what the controlled testbed drives) and the
**deterministic simulation** path under :mod:`repro.runtime.sim`
(virtual clock, one seeded event loop, zero threads — what ``mocket
soak`` drives).  The :class:`Clock` seam in :mod:`repro.runtime.clock`
is what lets the same waiting code run on either.
"""

from .clock import Clock, WallClock, WALL_CLOCK
from .cluster import Cluster
from .network import Envelope, Network, RpcError
from .node import Node, NodeCrashed
from .storage import PersistentStore, StorageBackend

__all__ = [
    "Clock",
    "Cluster",
    "Envelope",
    "Network",
    "Node",
    "NodeCrashed",
    "PersistentStore",
    "RpcError",
    "StorageBackend",
    "WALL_CLOCK",
    "WallClock",
]
